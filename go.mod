module ipv4market

go 1.22
