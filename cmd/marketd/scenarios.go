package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipv4market/internal/scenario"
	"ipv4market/internal/serve"
	"ipv4market/internal/simulation"
)

// scenarioSettings carries the flag values into the scenario-matrix
// serving path.
type scenarioSettings struct {
	dir, listen, dataDir, follow string
	baseCfg                      simulation.Config
	timeout, drain, pollEvery    time.Duration
	admin, selfcheck             bool
	workers, storeKeep           int
	lagGate                      bool
	lagGens                      int
	lagAge                       time.Duration
}

// runScenarios is main's -scenarios branch: load and validate the spec
// directory, build every world (fanned out in parallel), and serve the
// whole matrix behind the scenario router.
func runScenarios(ctx context.Context, w io.Writer, set scenarioSettings) error {
	specs, err := scenario.LoadDir(set.dir)
	if err != nil {
		return fmt.Errorf("marketd: %w", err)
	}
	fmt.Fprintf(w, "marketd: scenario matrix: %d spec(s) from %s, default %q\n",
		len(specs), set.dir, scenario.DefaultName(specs))

	build := time.Now()
	reg, err := scenario.New(ctx, specs, scenario.Options{
		BaseCfg:      set.baseCfg,
		DataDir:      set.dataDir,
		StoreKeep:    set.storeKeep,
		Timeout:      set.timeout,
		EnableAdmin:  set.admin || set.selfcheck,
		BuildWorkers: set.workers,
		FollowURL:    set.follow,
		PollInterval: set.pollEvery,
		LagGate:      set.lagGate,
		MaxLagGens:   set.lagGens,
		MaxLagAge:    set.lagAge,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, "marketd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return fmt.Errorf("marketd: %w", err)
	}
	for _, name := range reg.Names() {
		snap := reg.World(name).Snapshot()
		fmt.Fprintf(w, "marketd: scenario %s: seed=%d gen=%d source=%s (%d transfers, %d delegations)\n",
			name, snap.Cfg.Seed, snap.Gen, snap.Source, snap.TransferTotal(), snap.Delegations.Len())
	}
	fmt.Fprintf(w, "marketd: scenario matrix ready in %v\n", time.Since(build).Round(time.Millisecond))

	if set.selfcheck {
		return runScenarioSelfcheck(w, reg, set.drain, set.dataDir != "")
	}

	ln, err := net.Listen("tcp", set.listen)
	if err != nil {
		return fmt.Errorf("marketd: listen: %w", err)
	}
	fmt.Fprintf(w, "marketd: serving on http://%s\n", ln.Addr())

	if set.follow != "" {
		reg.Run(ctx)
	} else {
		watchHUPScenarios(ctx, w, reg)
	}

	httpSrv := &http.Server{Handler: reg}
	if err := serve.Serve(ctx, httpSrv, ln, set.drain); err != nil {
		return err
	}
	reg.Wait()
	fmt.Fprintln(w, "marketd: shut down cleanly")
	return nil
}

// watchHUPScenarios rebuilds every scenario on SIGHUP, each with its own
// config.
func watchHUPScenarios(ctx context.Context, w io.Writer, reg *scenario.Registry) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() { // coordinated: exits when ctx is done, signal handler released
		defer signal.Stop(hup)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				fmt.Fprintf(w, "marketd: SIGHUP: rebuilding %d scenario(s)\n", reg.RebuildAll())
			}
		}
	}()
}

// scenarioCheckPaths is the per-scenario surface the scenario selfcheck
// walks, each prefixed with /v1/{name}. It stays clear of date-pinned
// asof queries because scenario specs may shrink the routing window.
var scenarioCheckPaths = []string{
	"/healthz",
	"/readyz",
	"/varz",
	"/table1",
	"/table1?format=csv",
	"/figures/1",
	"/prices",
	"/transfers",
	"/delegations",
	"/leasing",
	"/headline",
	"/utilization",
	"/utilization?format=csv",
	"/rpki",
	"/scenarios",
}

// runScenarioSelfcheck boots the matrix on a loopback port and proves
// the scenario contract over real HTTP: the listing names every world,
// each scenario answers its full prefixed surface, the bare /v1/...
// alias is byte-identical to the default scenario, scenarios with
// different seeds serve different artifacts, and (with a store) ?gen=
// pins resolve per scenario.
func runScenarioSelfcheck(w io.Writer, reg *scenario.Registry, drain time.Duration, durable bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("marketd: selfcheck listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpSrv := &http.Server{Handler: reg}
	done := make(chan error, 1)
	go func() { // coordinated: result drained below after cancel
		done <- serve.Serve(ctx, httpSrv, ln, drain)
	}()
	defer func() {
		cancel()
		<-done
		reg.Wait()
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	// The listing is the matrix's table of contents; everything else is
	// checked against it.
	listBody, _, err := checkGet(w, client, base, "/v1/scenarios")
	if err != nil {
		return err
	}
	var listing struct {
		Default   string `json:"default"`
		Scenarios []struct {
			Name string `json:"name"`
			Seed int64  `json:"seed"`
			Gen  uint64 `json:"gen"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(listBody, &listing); err != nil {
		return fmt.Errorf("marketd: selfcheck /v1/scenarios: %w", err)
	}
	if got, want := len(listing.Scenarios), len(reg.Names()); got != want {
		return fmt.Errorf("marketd: selfcheck /v1/scenarios lists %d scenario(s), want %d", got, want)
	}
	if listing.Default != reg.DefaultName() {
		return fmt.Errorf("marketd: selfcheck /v1/scenarios default %q, want %q", listing.Default, reg.DefaultName())
	}

	checked := 1
	type artifactID struct {
		body []byte
		etag string
	}
	transfers := make([]artifactID, len(listing.Scenarios))
	for i, sc := range listing.Scenarios {
		prefix := "/v1/" + sc.Name
		for _, p := range scenarioCheckPaths {
			body, etag, err := checkGet(w, client, base, prefix+p)
			if err != nil {
				return err
			}
			if p == "/transfers" {
				transfers[i] = artifactID{body, etag}
			}
			checked++
		}
		if durable {
			pinned := fmt.Sprintf("%s/utilization?gen=%d", prefix, sc.Gen)
			pinnedBody, _, err := checkGet(w, client, base, pinned)
			if err != nil {
				return err
			}
			live, _, err := checkGet(w, client, base, prefix+"/utilization")
			if err != nil {
				return err
			}
			if !bytes.Equal(pinnedBody, live) {
				return fmt.Errorf("marketd: selfcheck: %s differs from the live artifact", pinned)
			}
			checked += 2
		}
	}

	// Isolation: distinct seeds must produce distinct worlds.
	for i, a := range listing.Scenarios {
		for j, b := range listing.Scenarios[i+1:] {
			if a.Seed == b.Seed {
				continue
			}
			if bytes.Equal(transfers[i].body, transfers[i+1+j].body) {
				return fmt.Errorf("marketd: selfcheck: scenarios %s and %s (different seeds) serve identical transfer logs",
					a.Name, b.Name)
			}
		}
	}

	// Alias: bare paths are the default scenario, byte for byte.
	aliasBody, aliasETag, err := checkGet(w, client, base, "/v1/transfers")
	if err != nil {
		return err
	}
	checked++
	for i, sc := range listing.Scenarios {
		if sc.Name != listing.Default {
			continue
		}
		if !bytes.Equal(aliasBody, transfers[i].body) || aliasETag != transfers[i].etag {
			return fmt.Errorf("marketd: selfcheck: bare /v1/transfers is not byte-identical to /v1/%s/transfers", sc.Name)
		}
	}

	fmt.Fprintf(w, "marketd: scenario selfcheck passed (%d scenario(s), %d requests)\n",
		len(listing.Scenarios), checked)
	return nil
}
