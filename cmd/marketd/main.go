// Command marketd serves the full study — tables, figures, price cells,
// transfer statistics, delegation lookups, leasing summaries — as an
// HTTP API backed by immutable precomputed snapshots.
//
//	marketd -listen 127.0.0.1:8090 -seed 42
//
// The study runs exactly once at startup (and again on SIGHUP or
// POST /admin/rebuild when -admin is set); every request after that is
// served from the pre-encoded snapshot, so query latency is independent
// of simulation cost. Independent snapshot artifacts build concurrently;
// -buildworkers caps the fan-out (0 means NumCPU) and any value yields a
// byte-identical snapshot. See internal/serve and ARCHITECTURE.md for
// the pipeline.
//
//	GET /v1/table1            exhaustion timeline        (JSON, CSV)
//	GET /v1/figures/{1..4}    the paper's figures        (JSON, CSV)
//	GET /v1/prices            price cells, filterable    (JSON, CSV)
//	GET /v1/transfers         transfer log + stats       (JSON)
//	GET /v1/delegations       lease index, ?prefix=CIDR  (JSON)
//	GET /v1/leasing           leasing market summary     (JSON)
//	GET /v1/headline          §3 headline statistics     (JSON)
//	GET /v1/asof              point-in-time state, ?date=&prefix=  (JSON)
//	GET /v1/asof/timeline     one prefix's full history, ?prefix=  (JSON)
//	GET /v1/asof/diff         events between dates, ?from=&to=     (JSON)
//	GET /v1/history           persisted generations      (JSON, needs -data-dir)
//	GET /healthz /readyz /varz
//
// With -data-dir the server is durable: every successful build is
// appended to an on-disk snapshot store (internal/store), a restart
// warm-starts from the newest intact generation (serving immediately,
// with a fresh build in the background), -store-keep bounds retention,
// and ?gen=N on the artifact endpoints pins a read to a stored
// generation with its original bytes and ETag.
//
// With -data-dir the server is also a replication leader: it exposes
// GET /v1/replication/generations (the sealed-segment catalog) and
// GET /v1/replication/segment/{gen} (raw segment bytes with ETag and
// Range support). A second marketd started with -follow <leader-url>
// runs as a follower: it never builds locally, pulls the leader's
// segments into its own -data-dir (verified, atomic, quarantining
// corrupt downloads), and serves byte- and ETag-identical responses.
// Followers poll every -poll-interval, back off with jitter when the
// leader is unreachable, keep serving their last good generation in the
// meantime, and answer 409 on POST /admin/rebuild. See internal/replicate.
// A follower's -max-lag gates its /readyz on replication lag — an
// integer bounds generations behind the leader, a duration bounds time
// since the last successful sync — so a router polling /readyz drains
// stale followers while they keep serving direct clients.
//
// With -scenarios dir/ the server hosts a whole scenario matrix: every
// *.json spec in the directory (name, seed, scale, adversarial knobs —
// price shocks, RPKI churn storms, hijack waves, a utilization profile)
// becomes an isolated world served under /v1/{scenario}/... with the
// full artifact and asof surface; bare /v1/... paths alias the default
// scenario so single-scenario clients keep working. Each scenario
// persists under -data-dir/{scenario} with its own generation ratchet,
// and followers mirror every scenario's segment stream. GET
// /v1/scenarios lists the matrix; -seed conflicts with -scenarios
// (seeds come from the specs). See internal/scenario and docs/API.md.
//
// -selfcheck boots the server on a loopback port, queries the key
// endpoints through a real HTTP client, and exits; scripts/check.sh uses
// it as the smoke test. With -data-dir it additionally proves the
// restart path: it shuts the first server down, re-verifies every
// on-disk segment checksum, warm-starts a second server over the same
// directory, and asserts body and ETag continuity. With -scenarios it
// walks the matrix instead: every scenario's surface, the default
// alias, cross-scenario isolation, and per-scenario gen pinning.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ipv4market/internal/replicate"
	"ipv4market/internal/serve"
	"ipv4market/internal/simulation"
	"ipv4market/internal/store"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "marketd:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("marketd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:8090", "listen address")
		seed      = fs.Int64("seed", 0, "simulation seed (overrides config default when nonzero)")
		lirs      = fs.Int("lirs", 0, "number of LIR organizations (0: config default)")
		days      = fs.Int("days", 0, "routing window length in days (0: config default)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		admin     = fs.Bool("admin", false, "expose POST /admin/rebuild")
		selfcheck = fs.Bool("selfcheck", false, "boot on a loopback port, smoke-query the API, exit")
		workers   = fs.Int("buildworkers", 0, "snapshot build-stage worker count (0: NumCPU); output is identical at any count")
		dataDir   = fs.String("data-dir", "", "durable snapshot store directory (empty: in-memory only)")
		storeKeep = fs.Int("store-keep", 5, "generations to retain in the store after each persist (< 1: keep all)")
		scenDir   = fs.String("scenarios", "", "scenario config directory: serve a multi-scenario matrix from its *.json specs (see docs/API.md)")
		follow    = fs.String("follow", "", "run as replication follower of this leader base URL (requires -data-dir)")
		pollEvery = fs.Duration("poll-interval", 5*time.Second, "follower: steady-state leader poll period")
		maxLag    = fs.String("max-lag", "", "follower: /readyz answers 503 beyond this lag — an integer bounds generations behind the leader, a duration (e.g. 30s) bounds time since the last successful sync")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := simulation.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *lirs > 0 {
		cfg.NumLIRs = *lirs
	}
	if *days > 0 {
		cfg.RoutingDays = *days
	}

	follower := *follow != ""
	if follower && *dataDir == "" {
		return fmt.Errorf("marketd: -follow requires -data-dir (the follower's local segment store)")
	}
	maxLagGens, maxLagAge, err := parseMaxLag(*maxLag)
	if err != nil {
		return err
	}
	if *maxLag != "" && !follower {
		return fmt.Errorf("marketd: -max-lag only applies to followers (set -follow)")
	}
	if follower && *selfcheck {
		return fmt.Errorf("marketd: -selfcheck and -follow are mutually exclusive (selfcheck the leader instead)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scenDir != "" {
		if *seed != 0 {
			return fmt.Errorf("marketd: -seed conflicts with -scenarios (each scenario spec carries its own seed)")
		}
		return runScenarios(ctx, w, scenarioSettings{
			dir:       *scenDir,
			listen:    *listen,
			dataDir:   *dataDir,
			follow:    *follow,
			baseCfg:   cfg,
			timeout:   *timeout,
			drain:     *drain,
			pollEvery: *pollEvery,
			admin:     *admin,
			selfcheck: *selfcheck,
			workers:   *workers,
			storeKeep: *storeKeep,
			lagGate:   *maxLag != "",
			lagGens:   maxLagGens,
			lagAge:    maxLagAge,
		})
	}

	opts := serve.Options{
		Timeout:      *timeout,
		EnableAdmin:  *admin || *selfcheck,
		BuildWorkers: *workers,
		StoreKeep:    *storeKeep,
		WarmStart:    true,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			return fmt.Errorf("marketd: open store: %w", err)
		}
		opts.Store = st
		stats := st.Stats()
		fmt.Fprintf(w, "marketd: store %s: %d generation(s), %d bytes", *dataDir, stats.Segments, stats.Bytes)
		if stats.TruncatedTails > 0 {
			fmt.Fprintf(w, " (%d corrupt segment(s) quarantined)", stats.TruncatedTails)
		}
		fmt.Fprintln(w)
	}

	// Every store-backed marketd is a replication leader (followers can
	// chain from followers); a -follow process is additionally a
	// follower, and its /varz replication section reports that role.
	var leader *replicate.Leader
	if st != nil {
		leader = replicate.NewLeader(st)
		opts.ReplicationVarz = leader.Varz
	}
	var repl *replicate.Replicator
	if follower {
		var err error
		repl, err = replicate.New(replicate.Options{
			LeaderURL: *follow,
			Store:     st,
			Interval:  *pollEvery,
			Keep:      *storeKeep,
			Logf:      opts.Logf,
		})
		if err != nil {
			return fmt.Errorf("marketd: %w", err)
		}
		opts.Follower = true
		opts.ReplicationVarz = repl.Varz
		if *maxLag != "" {
			opts.ReadyCheck = repl.ReadyCheck(maxLagGens, maxLagAge)
			fmt.Fprintf(w, "marketd: follower: /readyz gated at max lag %s\n", *maxLag)
		}
		// Serving needs at least one generation; sync until we have one
		// (or the process is told to stop). The leader being down — or
		// up but empty — at follower boot is expected; keep trying.
		for {
			if _, ok := st.Latest(); ok {
				break
			}
			fmt.Fprintf(w, "marketd: follower: syncing initial generation from %s...\n", *follow)
			if err := repl.SyncOnce(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(w, "marketd: follower: initial sync failed (will retry in %s): %v\n", *pollEvery, err)
			}
			if _, ok := st.Latest(); ok {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("marketd: follower: interrupted before first sync")
			case <-time.After(*pollEvery):
			}
		}
	}

	build := time.Now()
	if !follower {
		fmt.Fprintf(w, "marketd: building snapshot (seed=%d lirs=%d days=%d)...\n", cfg.Seed, cfg.NumLIRs, cfg.RoutingDays)
	}
	srv, err := serve.New(cfg, opts)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	switch {
	case follower:
		fmt.Fprintf(w, "marketd: follower of %s: serving generation %d (seed=%d, built %s)\n",
			*follow, snap.Gen, snap.Cfg.Seed, snap.BuiltAt.UTC().Format(time.RFC3339))
	case srv.WarmStarted():
		fmt.Fprintf(w, "marketd: warm start: restored generation %d (seed=%d, built %s) in %v; serving now\n",
			snap.Gen, snap.Cfg.Seed, snap.BuiltAt.UTC().Format(time.RFC3339), time.Since(build).Round(time.Millisecond))
	default:
		fmt.Fprintf(w, "marketd: snapshot ready in %v (%d workers): %d transfers, %d price cells, %d delegations\n",
			time.Since(build).Round(time.Millisecond), snap.Workers, snap.TransferTotal(), len(snap.PriceCells), snap.Delegations.Len())
	}

	if leader != nil {
		srv.Mount(replicate.PatternGenerations, leader.Generations(), *timeout)
		// Segment bodies can be large; 0 disables the timeout middleware
		// so a slow follower's download is never cut mid-stream.
		srv.Mount(replicate.PatternSegment, leader.Segment(), 0)
	}

	if *selfcheck {
		return runSelfcheck(w, srv, *drain, *dataDir, cfg, opts)
	}

	if follower {
		// From here on every new generation the replicator installs is
		// hot-swapped into the serving layer. The loop's first pass may
		// re-adopt the generation serve.New just restored; the swap is
		// idempotent.
		repl.SetApply(func(m store.Meta) error { return srv.AdoptGeneration(m.Gen) })
	} else if srv.WarmStarted() && srv.RebuildAsync(cfg) {
		// A warm-started leader is serving yesterday's data by design;
		// kick off a fresh build in the background so it converges on a
		// current snapshot without delaying the first request.
		fmt.Fprintln(w, "marketd: fresh rebuild started in background")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("marketd: listen: %w", err)
	}
	fmt.Fprintf(w, "marketd: serving on http://%s\n", ln.Addr())

	if follower {
		go repl.Run(ctx)
	} else {
		// SIGHUP rebuilds are a leader affordance; a follower's snapshots
		// only ever come from its leader.
		watchHUP(ctx, w, srv, cfg)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	if err := serve.Serve(ctx, httpSrv, ln, *drain); err != nil {
		return err
	}
	srv.Wait() // let an in-flight SIGHUP rebuild finish before exiting
	fmt.Fprintln(w, "marketd: shut down cleanly")
	return nil
}

// parseMaxLag interprets the -max-lag value: empty means no gate, a
// bare integer bounds generations behind the leader, and anything
// time.ParseDuration accepts bounds staleness of the last successful
// sync. The unused dimension is disabled (-1 generations / 0 age).
func parseMaxLag(s string) (maxGens int, maxAge time.Duration, err error) {
	if s == "" {
		return -1, 0, nil
	}
	if n, convErr := strconv.Atoi(s); convErr == nil {
		if n < 0 {
			return 0, 0, fmt.Errorf("marketd: -max-lag %q: generation bound must be >= 0", s)
		}
		return n, 0, nil
	}
	d, parseErr := time.ParseDuration(s)
	if parseErr != nil {
		return 0, 0, fmt.Errorf("marketd: -max-lag %q: want a generation count (e.g. 2) or a duration (e.g. 30s)", s)
	}
	if d <= 0 {
		return 0, 0, fmt.Errorf("marketd: -max-lag %q: duration bound must be positive", s)
	}
	return -1, d, nil
}

// watchHUP triggers a same-config rebuild on each SIGHUP until ctx ends.
// Readers keep the old snapshot until the new one swaps in.
func watchHUP(ctx context.Context, w io.Writer, srv *serve.Server, cfg simulation.Config) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() { // coordinated: exits when ctx is done, signal handler released
		defer signal.Stop(hup)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if srv.RebuildAsync(cfg) {
					fmt.Fprintln(w, "marketd: SIGHUP: rebuild started")
				} else {
					fmt.Fprintln(w, "marketd: SIGHUP: rebuild already in flight")
				}
			}
		}
	}()
}

// selfcheckPaths are the endpoints the -selfcheck smoke test must serve
// with 200 OK.
var selfcheckPaths = []string{
	"/healthz",
	"/readyz",
	"/varz",
	"/v1/table1",
	"/v1/table1?format=csv",
	"/v1/figures/1",
	"/v1/figures/2",
	"/v1/figures/3",
	"/v1/figures/4",
	"/v1/prices",
	"/v1/prices?size=/16",
	"/v1/transfers",
	"/v1/delegations",
	"/v1/leasing",
	"/v1/headline",
	"/v1/utilization",
	"/v1/utilization?format=csv",
	"/v1/rpki",
	"/v1/scenarios",
	"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
	"/v1/asof/timeline?prefix=185.0.0.0/16",
	"/v1/asof/diff?from=2015-01-01&to=2015-12-31",
}

// loopbackServer serves srv on an ephemeral loopback port. The returned
// shutdown function drains the listener and waits for in-flight
// rebuilds; it is safe to call exactly once.
func loopbackServer(srv *serve.Server, drain time.Duration) (base string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("marketd: selfcheck listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { // coordinated: result drained in shutdown after cancel
		done <- serve.Serve(ctx, httpSrv, ln, drain)
	}()
	shutdown = func() error {
		cancel()
		err := <-done
		srv.Wait()
		return err
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// checkGet expects 200 OK for path and logs the result.
func checkGet(w io.Writer, client *http.Client, base, path string) ([]byte, string, error) {
	resp, err := client.Get(base + path)
	if err != nil {
		return nil, "", fmt.Errorf("marketd: selfcheck %s: %w", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, "", fmt.Errorf("marketd: selfcheck %s: read: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("marketd: selfcheck %s: status %d", path, resp.StatusCode)
	}
	fmt.Fprintf(w, "marketd: selfcheck %-28s %d (%d bytes)\n", path, resp.StatusCode, len(body))
	return body, resp.Header.Get("ETag"), nil
}

// runSelfcheck serves on an ephemeral loopback port, exercises every
// endpoint through a real HTTP client, and reports pass/fail. It is the
// full boot-listen-query-shutdown cycle in one process, so CI needs no
// curl or background job control. With a data directory it then proves
// the durability contract end to end: shut down, warm-start a second
// server over the same directory, and require byte- and ETag-identical
// answers (including 304 on a pre-restart ETag).
func runSelfcheck(w io.Writer, srv *serve.Server, drain time.Duration, dataDir string, cfg simulation.Config, opts serve.Options) error {
	base, shutdown, err := loopbackServer(srv, drain)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 10 * time.Second}
	paths := selfcheckPaths
	if dataDir != "" {
		gen := srv.Snapshot().Gen
		paths = append(append([]string{}, paths...),
			"/v1/history",
			fmt.Sprintf("/v1/table1?gen=%d", gen),
			fmt.Sprintf("/v1/prices?gen=%d", gen),
		)
	}
	var (
		checkErr   error
		table1Body []byte
		table1ETag string
	)
	for _, path := range paths {
		body, etag, err := checkGet(w, client, base, path)
		if err != nil {
			checkErr = err
			break
		}
		if path == "/v1/table1" {
			table1Body, table1ETag = body, etag
		}
	}

	if err := shutdown(); err != nil && checkErr == nil {
		checkErr = err
	}
	if checkErr != nil || dataDir == "" {
		if checkErr == nil {
			fmt.Fprintf(w, "marketd: selfcheck passed (%d endpoints)\n", len(paths))
		}
		return checkErr
	}

	return selfcheckRestart(w, drain, dataDir, cfg, opts, client, table1Body, table1ETag, len(paths))
}

// selfcheckRestart is the second phase of a durable selfcheck: a fresh
// server over the same data directory must warm-start and answer with
// the bytes and ETags the first server persisted.
func selfcheckRestart(w io.Writer, drain time.Duration, dataDir string, cfg simulation.Config,
	opts serve.Options, client *http.Client, wantBody []byte, wantETag string, phase1 int) error {
	fmt.Fprintln(w, "marketd: selfcheck restart: warm-starting a second server over", dataDir)
	st, err := store.Open(dataDir)
	if err != nil {
		return fmt.Errorf("marketd: selfcheck restart: reopen store: %w", err)
	}

	// Re-checksum every segment on disk (frame CRCs + footer) — the same
	// verification replication followers run on downloads.
	gens := st.Generations()
	for _, g := range gens {
		if err := st.Verify(g.Gen); err != nil {
			return fmt.Errorf("marketd: selfcheck: %w", err)
		}
	}
	fmt.Fprintf(w, "marketd: selfcheck verify: %d segment(s) re-checksummed clean\n", len(gens))

	opts.Store = st
	opts.WarmStart = true
	leader := replicate.NewLeader(st)
	opts.ReplicationVarz = leader.Varz
	srv2, err := serve.New(cfg, opts)
	if err != nil {
		return fmt.Errorf("marketd: selfcheck restart: %w", err)
	}
	if !srv2.WarmStarted() {
		return fmt.Errorf("marketd: selfcheck restart: second server did not warm-start")
	}
	srv2.Mount(replicate.PatternGenerations, leader.Generations(), 0)
	srv2.Mount(replicate.PatternSegment, leader.Segment(), 0)
	base, shutdown, err := loopbackServer(srv2, drain)
	if err != nil {
		return err
	}
	defer shutdown()

	body, etag, err := checkGet(w, client, base, "/v1/table1")
	if err != nil {
		return err
	}
	if !bytes.Equal(body, wantBody) {
		return fmt.Errorf("marketd: selfcheck restart: /v1/table1 body differs from pre-restart bytes")
	}
	if etag != wantETag {
		return fmt.Errorf("marketd: selfcheck restart: /v1/table1 ETag %s, want %s", etag, wantETag)
	}

	req, err := http.NewRequest(http.MethodGet, base+"/v1/table1", nil)
	if err != nil {
		return fmt.Errorf("marketd: selfcheck restart: %w", err)
	}
	req.Header.Set("If-None-Match", wantETag)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("marketd: selfcheck restart: conditional GET: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("marketd: selfcheck restart: pre-restart ETag answered %d, want 304", resp.StatusCode)
	}
	fmt.Fprintf(w, "marketd: selfcheck %-28s %d (ETag continuity)\n", "/v1/table1 If-None-Match", resp.StatusCode)

	replBody, _, err := checkGet(w, client, base, "/v1/replication/generations")
	if err != nil {
		return err
	}
	var listing struct {
		Generations []struct {
			Gen uint64 `json:"gen"`
		} `json:"generations"`
	}
	if err := json.Unmarshal(replBody, &listing); err != nil {
		return fmt.Errorf("marketd: selfcheck restart: /v1/replication/generations: %w", err)
	}
	if len(listing.Generations) == 0 {
		return fmt.Errorf("marketd: selfcheck restart: replication listing is empty")
	}

	histBody, _, err := checkGet(w, client, base, "/v1/history")
	if err != nil {
		return err
	}
	var hist struct {
		Generations []struct {
			Gen uint64 `json:"gen"`
		} `json:"generations"`
	}
	if err := json.Unmarshal(histBody, &hist); err != nil {
		return fmt.Errorf("marketd: selfcheck restart: /v1/history: %w", err)
	}
	if len(hist.Generations) == 0 {
		return fmt.Errorf("marketd: selfcheck restart: /v1/history lists no generations")
	}

	fmt.Fprintf(w, "marketd: selfcheck passed (%d endpoints + restart continuity)\n", phase1)
	return nil
}
