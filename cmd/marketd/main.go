// Command marketd serves the full study — tables, figures, price cells,
// transfer statistics, delegation lookups, leasing summaries — as an
// HTTP API backed by immutable precomputed snapshots.
//
//	marketd -listen 127.0.0.1:8090 -seed 42
//
// The study runs exactly once at startup (and again on SIGHUP or
// POST /admin/rebuild when -admin is set); every request after that is
// served from the pre-encoded snapshot, so query latency is independent
// of simulation cost. Independent snapshot artifacts build concurrently;
// -buildworkers caps the fan-out (0 means NumCPU) and any value yields a
// byte-identical snapshot. See internal/serve and ARCHITECTURE.md for
// the pipeline.
//
//	GET /v1/table1            exhaustion timeline        (JSON, CSV)
//	GET /v1/figures/{1..4}    the paper's figures        (JSON, CSV)
//	GET /v1/prices            price cells, filterable    (JSON, CSV)
//	GET /v1/transfers         transfer log + stats       (JSON)
//	GET /v1/delegations       lease index, ?prefix=CIDR  (JSON)
//	GET /v1/leasing           leasing market summary     (JSON)
//	GET /v1/headline          §3 headline statistics     (JSON)
//	GET /healthz /readyz /varz
//
// -selfcheck boots the server on a loopback port, queries the key
// endpoints through a real HTTP client, and exits; scripts/check.sh uses
// it as the smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipv4market/internal/serve"
	"ipv4market/internal/simulation"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "marketd:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("marketd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:8090", "listen address")
		seed      = fs.Int64("seed", 0, "simulation seed (overrides config default when nonzero)")
		lirs      = fs.Int("lirs", 0, "number of LIR organizations (0: config default)")
		days      = fs.Int("days", 0, "routing window length in days (0: config default)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		admin     = fs.Bool("admin", false, "expose POST /admin/rebuild")
		selfcheck = fs.Bool("selfcheck", false, "boot on a loopback port, smoke-query the API, exit")
		workers   = fs.Int("buildworkers", 0, "snapshot build-stage worker count (0: NumCPU); output is identical at any count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := simulation.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *lirs > 0 {
		cfg.NumLIRs = *lirs
	}
	if *days > 0 {
		cfg.RoutingDays = *days
	}

	opts := serve.Options{
		Timeout:      *timeout,
		EnableAdmin:  *admin || *selfcheck,
		BuildWorkers: *workers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}

	build := time.Now()
	fmt.Fprintf(w, "marketd: building snapshot (seed=%d lirs=%d days=%d)...\n", cfg.Seed, cfg.NumLIRs, cfg.RoutingDays)
	srv, err := serve.New(cfg, opts)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(w, "marketd: snapshot ready in %v (%d workers): %d transfers, %d price cells, %d delegations\n",
		time.Since(build).Round(time.Millisecond), snap.Workers, len(snap.Transfers), len(snap.PriceCells), snap.Delegations.Len())

	if *selfcheck {
		return runSelfcheck(w, srv, *drain)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("marketd: listen: %w", err)
	}
	fmt.Fprintf(w, "marketd: serving on http://%s\n", ln.Addr())

	watchHUP(ctx, w, srv, cfg)

	httpSrv := &http.Server{Handler: srv.Handler()}
	if err := serve.Serve(ctx, httpSrv, ln, *drain); err != nil {
		return err
	}
	srv.Wait() // let an in-flight SIGHUP rebuild finish before exiting
	fmt.Fprintln(w, "marketd: shut down cleanly")
	return nil
}

// watchHUP triggers a same-config rebuild on each SIGHUP until ctx ends.
// Readers keep the old snapshot until the new one swaps in.
func watchHUP(ctx context.Context, w io.Writer, srv *serve.Server, cfg simulation.Config) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() { // coordinated: exits when ctx is done, signal handler released
		defer signal.Stop(hup)
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				if srv.RebuildAsync(cfg) {
					fmt.Fprintln(w, "marketd: SIGHUP: rebuild started")
				} else {
					fmt.Fprintln(w, "marketd: SIGHUP: rebuild already in flight")
				}
			}
		}
	}()
}

// selfcheckPaths are the endpoints the -selfcheck smoke test must serve
// with 200 OK.
var selfcheckPaths = []string{
	"/healthz",
	"/readyz",
	"/varz",
	"/v1/table1",
	"/v1/table1?format=csv",
	"/v1/figures/1",
	"/v1/figures/2",
	"/v1/figures/3",
	"/v1/figures/4",
	"/v1/prices",
	"/v1/prices?size=/16",
	"/v1/transfers",
	"/v1/delegations",
	"/v1/leasing",
	"/v1/headline",
}

// runSelfcheck serves on an ephemeral loopback port, exercises every
// endpoint through a real HTTP client, and reports pass/fail. It is the
// full boot-listen-query-shutdown cycle in one process, so CI needs no
// curl or background job control.
func runSelfcheck(w io.Writer, srv *serve.Server, drain time.Duration) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("marketd: selfcheck listen: %w", err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { // coordinated: result drained below after cancel
		done <- serve.Serve(ctx, httpSrv, ln, drain)
	}()

	client := &http.Client{Timeout: 10 * time.Second}
	var checkErr error
	for _, path := range selfcheckPaths {
		resp, err := client.Get(base + path)
		if err != nil {
			checkErr = fmt.Errorf("marketd: selfcheck %s: %w", path, err)
			break
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			checkErr = fmt.Errorf("marketd: selfcheck %s: read: %w", path, err)
			break
		}
		if resp.StatusCode != http.StatusOK {
			checkErr = fmt.Errorf("marketd: selfcheck %s: status %d", path, resp.StatusCode)
			break
		}
		fmt.Fprintf(w, "marketd: selfcheck %-28s %d (%d bytes)\n", path, resp.StatusCode, len(body))
	}

	cancel()
	if err := <-done; err != nil && checkErr == nil {
		checkErr = err
	}
	srv.Wait()
	if checkErr != nil {
		return checkErr
	}
	fmt.Fprintf(w, "marketd: selfcheck passed (%d endpoints)\n", len(selfcheckPaths))
	return nil
}
