package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var smallWorld = []string{"-lirs", "14", "-days", "40"}

func TestSelfcheckPasses(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-selfcheck"}, smallWorld...)
	if err := run(&buf, args); err != nil {
		t.Fatalf("selfcheck failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "selfcheck passed") {
		t.Errorf("output lacks pass marker:\n%s", out)
	}
	for _, path := range selfcheckPaths {
		if !strings.Contains(out, path+" ") && !strings.Contains(out, path+"\n") {
			t.Errorf("selfcheck did not report %s", path)
		}
	}
}

// TestSelfcheckWithDataDir drives the durable selfcheck: persist,
// shut down, warm-start over the same directory, verify continuity.
func TestSelfcheckWithDataDir(t *testing.T) {
	var buf bytes.Buffer
	dir := t.TempDir()
	args := append([]string{"-selfcheck", "-data-dir", dir}, smallWorld...)
	if err := run(&buf, args); err != nil {
		t.Fatalf("durable selfcheck failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"/v1/history",
		"?gen=1",
		"selfcheck restart",
		"ETag continuity",
		"restart continuity",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("durable selfcheck output lacks %q:\n%s", marker, out)
		}
	}

	// A second run over the same directory must warm-start (the store
	// already holds generation 1) and still pass end to end.
	buf.Reset()
	if err := run(&buf, args); err != nil {
		t.Fatalf("selfcheck over existing store failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "warm start: restored generation") {
		t.Errorf("second run did not warm-start:\n%s", buf.String())
	}
}

// TestFollowerFlagValidation pins the follower-mode flag contract:
// -follow needs a local store, and -selfcheck targets leaders only.
func TestFollowerFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-follow", "http://127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "-follow requires -data-dir") {
		t.Errorf("-follow without -data-dir: err = %v", err)
	}
	if err := run(&buf, []string{"-follow", "http://127.0.0.1:1", "-data-dir", t.TempDir(), "-selfcheck"}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-follow with -selfcheck: err = %v", err)
	}
}

// TestSelfcheckVerifiesSegments asserts the durable selfcheck includes
// the store Verify pass and the replication listing.
func TestSelfcheckVerifiesSegments(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-selfcheck", "-data-dir", t.TempDir()}, smallWorld...)
	if err := run(&buf, args); err != nil {
		t.Fatalf("durable selfcheck failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, marker := range []string{
		"selfcheck verify: 1 segment(s) re-checksummed clean",
		"/v1/replication/generations",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("selfcheck output lacks %q:\n%s", marker, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-nosuchflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestBadListenAddress(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-listen", "256.0.0.1:http"}, smallWorld...)
	if err := run(&buf, args); err == nil {
		t.Error("invalid listen address accepted")
	}
}

// TestParseMaxLag pins the -max-lag grammar: empty disables both
// bounds, an integer bounds generations, a duration bounds staleness.
func TestParseMaxLag(t *testing.T) {
	gens, age, err := parseMaxLag("")
	if err != nil || gens != -1 || age != 0 {
		t.Errorf("empty: (%d, %v, %v), want (-1, 0, nil)", gens, age, err)
	}
	gens, age, err = parseMaxLag("2")
	if err != nil || gens != 2 || age != 0 {
		t.Errorf("\"2\": (%d, %v, %v), want (2, 0, nil)", gens, age, err)
	}
	gens, age, err = parseMaxLag("30s")
	if err != nil || gens != -1 || age != 30*time.Second {
		t.Errorf("\"30s\": (%d, %v, %v), want (-1, 30s, nil)", gens, age, err)
	}
	for _, bad := range []string{"-1", "-5s", "0s", "soon"} {
		if _, _, err := parseMaxLag(bad); err == nil {
			t.Errorf("parseMaxLag(%q) accepted", bad)
		}
	}
}

// TestMaxLagRequiresFollower keeps -max-lag a follower-only flag.
func TestMaxLagRequiresFollower(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-max-lag", "2", "-selfcheck"}, smallWorld...)
	if err := run(&buf, args); err == nil {
		t.Error("-max-lag without -follow accepted")
	} else if !strings.Contains(err.Error(), "-max-lag") {
		t.Errorf("error %v does not name the flag", err)
	}
}
