package main

import (
	"bytes"
	"strings"
	"testing"
)

var smallWorld = []string{"-lirs", "14", "-days", "40"}

func TestSelfcheckPasses(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-selfcheck"}, smallWorld...)
	if err := run(&buf, args); err != nil {
		t.Fatalf("selfcheck failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "selfcheck passed") {
		t.Errorf("output lacks pass marker:\n%s", out)
	}
	for _, path := range selfcheckPaths {
		if !strings.Contains(out, path+" ") && !strings.Contains(out, path+"\n") {
			t.Errorf("selfcheck did not report %s", path)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-nosuchflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestBadListenAddress(t *testing.T) {
	var buf bytes.Buffer
	args := append([]string{"-listen", "256.0.0.1:http"}, smallWorld...)
	if err := run(&buf, args); err == nil {
		t.Error("invalid listen address accepted")
	}
}
