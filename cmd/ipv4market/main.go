// Command ipv4market is the end-to-end harness: it generates the
// synthetic IPv4-market world and regenerates every table and figure of
// "When Wells Run Dry: The 2020 IPv4 Address Market" (CoNEXT 2020).
//
// Usage:
//
//	ipv4market -figure all
//	ipv4market -figure fig6 -sample 7 -days 882
//	ipv4market -figure coverage -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ipv4market/internal/core"
	"ipv4market/internal/simulation"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ipv4market:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ipv4market", flag.ContinueOnError)
	var (
		figure  = fs.String("figure", "all", "which artifact to print: table1, fig1..fig6, coverage, census, headline, amortization, waitinglist, reputation, mergers, combined, or all")
		seed    = fs.Int64("seed", 1, "world seed")
		lirs    = fs.Int("lirs", 40, "LIRs per major region")
		days    = fs.Int("days", 882, "routing window length in days (paper: 882)")
		sample  = fs.Int("sample", 7, "sampling stride in days for the BGP time series")
		csvDir  = fs.String("csv", "", "also export every figure's data series as CSV files into this directory")
		workers = fs.Int("buildworkers", 0, "worker count for the per-date inference fan-out in fig6 (0: NumCPU); output is identical at any count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := simulation.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumLIRs = *lirs
	cfg.RoutingDays = *days

	fmt.Fprintf(w, "building world (seed=%d, %d LIRs/region, %d routing days)...\n", cfg.Seed, cfg.NumLIRs, cfg.RoutingDays)
	study, err := core.NewStudy(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "world: %d orgs, %d leases, %d transfers, %d priced deals\n\n",
		len(study.World.Orgs), len(study.World.Leases),
		len(study.World.Registry.Transfers()), len(study.World.Prices))

	sections := []struct {
		key    string
		title  string
		render func() error
	}{
		{"table1", "Table 1: IPv4 exhaustion timeline", func() error { return study.RenderTable1(w) }},
		{"fig1", "Figure 1: price per IP by prefix size, region and quarter", func() error { return study.RenderFigure1(w) }},
		{"fig2", "Figure 2: market transfers per region and quarter", func() error { return study.RenderFigure2(w) }},
		{"fig3", "Figure 3: inter-RIR transfers", func() error { return study.RenderFigure3(w) }},
		{"fig4", "Figure 4: advertised /24 leasing prices", func() error { return study.RenderFigure4(w) }},
		{"fig5", "Figure 5: consistency-rule fail rates on RPKI delegations", func() error {
			return study.RenderFigure5(w, []int{2, 5, 10, 20, 40, 60, 80, 100}, []int{0, 1, 2, 3, 5, 10})
		}},
		{"fig6", "Figure 6: BGP delegations, baseline vs extended", func() error { return study.RenderFigure6Workers(w, *sample, *workers) }},
		{"coverage", "S1: BGP-delegations vs RDAP-delegations", func() error { return study.RenderCoverage(w) }},
		{"census", "S2: WHOIS input space", func() error { return study.RenderCensus(w) }},
		{"headline", "S3: pricing headline statistics", func() error { return study.RenderHeadline(w) }},
		{"amortization", "S4: buy-vs-lease amortization", func() error { return study.RenderAmortization(w) }},
		{"waitinglist", "S6: waiting-list dynamics", func() error { return study.RenderWaitingLists(w) }},
		{"reputation", "S7: blacklists, clean IPs and the SWIP shield", func() error { return study.RenderReputation(w) }},
		{"mergers", "S8: merger-inference heuristic evaluated against ground truth", func() error { return study.RenderMergers(w) }},
		{"combined", "S9: combined BGP+RDAP+RPKI market estimate vs ground truth", func() error { return study.RenderCombined(w) }},
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		names, err := study.ExportCSV(*sample, func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name))
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "exported %d CSV series to %s: %s\n\n", len(names), *csvDir, strings.Join(names, ", "))
	}

	want := strings.ToLower(*figure)
	found := false
	for _, sec := range sections {
		if want != "all" && want != sec.key {
			continue
		}
		found = true
		fmt.Fprintf(w, "== %s ==\n", sec.title)
		if err := sec.render(); err != nil {
			return fmt.Errorf("%s: %w", sec.key, err)
		}
		fmt.Fprintln(w)
	}
	if !found {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return nil
}
