package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllFiguresSmall(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-figure", "all", "-lirs", "12", "-days", "40", "-sample", "10"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "S1:", "S2:", "S3:", "S4:",
		"RIPE NCC", "consistency-rule", "amortization",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-figure", "table1", "-lirs", "12", "-days", "30"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Figure 1") {
		t.Error("single-figure run should not print other sections")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-figure", "nope", "-lirs", "12", "-days", "30"}); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}
