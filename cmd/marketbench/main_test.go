package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipv4market/internal/loadgen"
)

// fakeMarket answers every default-mix path plausibly enough to pass
// the endpoint validators: JSON everywhere, CSV when format=csv.
func fakeMarket(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprintln(w, "quarter,price")
			fmt.Fprintln(w, "2020Q1,22.5")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"path":%q}`, r.URL.Path)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFlagValidation pins the CLI contract: one mode must be chosen,
// the modes are exclusive, and malformed values are refused.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{}, // no mode picked
		{"-target", "http://x", "-marketd", "bin"},     // both modes
		{"-target", "http://x", "-out", "b.json"},      // -out without fleet
		{"-marketd", "bin", "-topologies", "a,b"},      // non-numeric counts
		{"-marketd", "bin", "-topologies", "-1"},       // negative count
		{"-marketd", "bin", "-topologies", ","},        // empty list
		{"-target", "http://x", "-mode", "sideways"},   // unknown mode
		{"-target", "http://x", "-error-budget", "-1"}, // negative budget
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}

	f, err := parseFlags([]string{"-marketd", "bin", "-topologies", " 0, 2 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.topologies) != 2 || f.topologies[0] != 0 || f.topologies[1] != 2 {
		t.Errorf("topologies = %v, want [0 2]", f.topologies)
	}
}

// TestSingleTargetRun drives the single-target mode against a fake
// server: the run must complete, report, and stay inside the budget.
func TestSingleTargetRun(t *testing.T) {
	ts := fakeMarket(t)
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-target", ts.URL, "-warmup", "10", "-requests", "200",
		"-concurrency", "4", "-seed", "7",
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"200 measured", "aggregate", "within budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestSingleTargetBudgetViolation makes every response a 500 and
// expects the run to fail its zero budget.
func TestSingleTargetBudgetViolation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "overloaded", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-target", ts.URL, "-requests", "50", "-warmup", "0", "-error-budget", "0",
	})
	if err == nil {
		t.Fatal("all-500 run passed a zero error budget")
	}
	if !strings.Contains(err.Error(), "error budget violated") {
		t.Errorf("error = %v, want a budget violation", err)
	}
}

// TestWriteBaselineRoundTrips writes a minimal baseline and reads it
// back through the schema Validate path.
func TestWriteBaselineRoundTrips(t *testing.T) {
	ts := fakeMarket(t)
	res := driveFake(t, ts.URL)

	b := loadgen.NewClusterBaseline("2020-01-02", "scripts/bench.sh cluster", "test")
	tp := loadgen.NewTopologyReport("leader", 0, false, 0.01, res)
	tp.World = loadgen.WorldParams{Seed: 1, LIRs: 14, Days: 40}
	b.Topologies = []loadgen.TopologyReport{tp}

	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := writeBaseline(path, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back loadgen.ClusterBaseline
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("written baseline does not validate: %v", err)
	}
	if back.Topologies[0].Aggregate.Requests != res.Completed {
		t.Errorf("round-tripped aggregate requests %d, want %d",
			back.Topologies[0].Aggregate.Requests, res.Completed)
	}
}

// driveFake runs a short deterministic load against base.
func driveFake(t *testing.T, base string) *loadgen.Result {
	t.Helper()
	runner, err := loadgen.NewRunner(loadgen.Spec{
		BaseURL:  base,
		Mix:      loadgen.DefaultMix(),
		Seed:     3,
		Requests: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	return res
}
