// Command marketbench drives the real /v1 endpoint mix against marketd
// servers and reports latency percentiles, throughput, and an error
// budget verdict. It runs in two modes:
//
// Single target — drive one already-running server:
//
//	marketbench -target http://127.0.0.1:8090 -requests 5000
//
// Fleet — boot a leader, K followers replicating from it, and a
// round-robin router over loopback, drive mixed traffic through the
// router, exercise a rebuild under load and follower catch-up while
// saturated, and write the BENCH_cluster.json baseline:
//
//	marketbench -marketd ./bin/marketd -topologies 0,2 -out BENCH_cluster.json
//
// The workload is deterministic: -seed fixes the request mix exactly
// (internal/loadgen derives one splitmix64 stream per worker), -mode
// picks closed-loop (fixed concurrency, the capacity question) or
// open-loop (fixed arrival rate with shedding, the latency question).
// Warmup requests are issued and validated but never measured.
//
// After every run marketbench scrapes each node's /varz and recomputes
// server-side percentiles from the machine-readable latency buckets —
// a cross-check that the client-side numbers aren't an artifact of the
// harness. Followers boot with -max-lag so the router's health loop
// drains them while they trail the leader; the fleet run asserts they
// catch up and rejoin.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ipv4market/internal/loadgen"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "marketbench:", err)
		os.Exit(1)
	}
}

// benchFlags is the parsed CLI surface shared by both modes.
type benchFlags struct {
	target     string
	marketdBin string
	topologies []int
	out        string
	procedure  string
	note       string

	mode        loadgen.Mode
	concurrency int
	rate        float64
	warmup      int
	requests    int
	duration    time.Duration
	seed        uint64
	budget      float64

	worldSeed int64
	lirs      int
	days      int
	pollEvery time.Duration
	maxLag    string

	scenarios []string
}

// mix builds the request mix: the default single-scenario workload, or
// the same workload spread across the -scenario names, each endpoint
// rebased onto its /v1/{scenario}/... prefix.
func (f *benchFlags) mix() (*loadgen.Mix, error) {
	if len(f.scenarios) == 0 {
		return loadgen.DefaultMix(), nil
	}
	return loadgen.ScenarioMix(loadgen.DefaultMix(), f.scenarios...)
}

func parseFlags(args []string) (*benchFlags, error) {
	fs := flag.NewFlagSet("marketbench", flag.ContinueOnError)
	var (
		target      = fs.String("target", "", "drive this base URL (single-target mode; no fleet is booted)")
		marketdBin  = fs.String("marketd", "", "path to a built marketd binary (fleet mode)")
		topologies  = fs.String("topologies", "0,2", "comma-separated follower counts to benchmark (fleet mode)")
		out         = fs.String("out", "", "write the BENCH_cluster.json baseline here (fleet mode)")
		procedure   = fs.String("procedure", "", "procedure string recorded in the baseline (how to re-record)")
		note        = fs.String("note", "", "note recorded in the baseline")
		mode        = fs.String("mode", "closed", "load model: closed (fixed concurrency) or open (fixed arrival rate)")
		concurrency = fs.Int("concurrency", 8, "closed-loop worker count")
		rate        = fs.Float64("rate", 200, "open-loop arrivals per second")
		warmup      = fs.Int("warmup", 200, "warmup requests before measurement starts")
		requests    = fs.Int("requests", 2000, "measured requests per run (0: duration-bounded)")
		duration    = fs.Duration("duration", 0, "measured wall-clock bound (0: request-bounded)")
		seed        = fs.Uint64("seed", 1, "load-mix seed; equal seeds yield equal request sequences")
		budget      = fs.Float64("error-budget", 0.01, "max tolerated error fraction (transport+HTTP+validation)")
		worldSeed   = fs.Int64("world-seed", 0, "simulation seed for booted servers (0: marketd default)")
		lirs        = fs.Int("lirs", 24, "world size: LIR count for booted servers")
		days        = fs.Int("days", 60, "world size: routing window days for booted servers")
		pollEvery   = fs.Duration("poll-interval", 250*time.Millisecond, "follower leader-poll period (fleet mode)")
		maxLag      = fs.String("max-lag", "2", "follower -max-lag readiness bound (fleet mode; empty: ungated)")
		scenarios   = fs.String("scenario", "", "comma-separated scenario names: spread the mix across /v1/{scenario}/... (target must serve a marketd -scenarios matrix)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	f := &benchFlags{
		target:      *target,
		marketdBin:  *marketdBin,
		out:         *out,
		procedure:   *procedure,
		note:        *note,
		concurrency: *concurrency,
		rate:        *rate,
		warmup:      *warmup,
		requests:    *requests,
		duration:    *duration,
		seed:        *seed,
		budget:      *budget,
		worldSeed:   *worldSeed,
		lirs:        *lirs,
		days:        *days,
		pollEvery:   *pollEvery,
		maxLag:      *maxLag,
	}
	switch *mode {
	case "closed":
		f.mode = loadgen.ClosedLoop
	case "open":
		f.mode = loadgen.OpenLoop
	default:
		return nil, fmt.Errorf("marketbench: -mode %q: want closed or open", *mode)
	}
	if f.budget < 0 {
		return nil, fmt.Errorf("marketbench: -error-budget must be >= 0")
	}
	if f.target == "" && f.marketdBin == "" {
		return nil, fmt.Errorf("marketbench: pick a mode: -target URL (drive one server) or -marketd BIN (boot a fleet)")
	}
	if f.target != "" && f.marketdBin != "" {
		return nil, fmt.Errorf("marketbench: -target and -marketd are mutually exclusive")
	}
	for _, part := range strings.Split(*scenarios, ",") {
		if part = strings.TrimSpace(part); part != "" {
			f.scenarios = append(f.scenarios, part)
		}
	}
	if len(f.scenarios) > 0 && f.target == "" {
		return nil, fmt.Errorf("marketbench: -scenario drives an existing scenario matrix; it needs -target (fleet servers are single-scenario)")
	}
	if f.target != "" && f.out != "" {
		return nil, fmt.Errorf("marketbench: -out records fleet topologies; it needs -marketd, not -target")
	}
	for _, part := range strings.Split(*topologies, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("marketbench: -topologies %q: want comma-separated follower counts >= 0", *topologies)
		}
		f.topologies = append(f.topologies, n)
	}
	if f.marketdBin != "" && len(f.topologies) == 0 {
		return nil, fmt.Errorf("marketbench: -topologies lists no follower counts")
	}
	return f, nil
}

func run(w io.Writer, args []string) error {
	f, err := parseFlags(args)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if f.target != "" {
		res, err := driveTarget(ctx, w, f, f.target)
		if err != nil {
			return err
		}
		printResult(w, res, f.budget)
		if res.BudgetViolated(f.budget) {
			return fmt.Errorf("marketbench: error budget violated: %d errors in %d requests (allowed fraction %g)",
				res.Aggregate.Errors(), res.Aggregate.Requests, f.budget)
		}
		return nil
	}

	recorded := time.Now().UTC().Format("2006-01-02")
	procedure := f.procedure
	if procedure == "" {
		procedure = fmt.Sprintf("scripts/bench.sh cluster (marketbench -topologies %s -mode %s -concurrency %d -warmup %d -requests %d -seed %d)",
			joinInts(f.topologies), f.mode, f.concurrency, f.warmup, f.requests, f.seed)
	}
	baseline := loadgen.NewClusterBaseline(recorded, procedure, f.note)

	for _, followers := range f.topologies {
		report, err := runTopology(ctx, w, f, followers)
		if err != nil {
			return err
		}
		baseline.Topologies = append(baseline.Topologies, *report)
	}

	if f.out != "" {
		if err := writeBaseline(f.out, &baseline); err != nil {
			return err
		}
		fmt.Fprintf(w, "marketbench: wrote %s (%d topologies)\n", f.out, len(baseline.Topologies))
	}
	for _, t := range baseline.Topologies {
		if t.ErrorBudget.Violated {
			return fmt.Errorf("marketbench: topology %q violated its error budget: %d errors in %d requests (allowed fraction %g)",
				t.Name, t.ErrorBudget.Errors, t.Aggregate.Requests, t.ErrorBudget.AllowedFraction)
		}
	}
	return nil
}

// driveTarget runs the configured load against one base URL.
func driveTarget(ctx context.Context, w io.Writer, f *benchFlags, base string) (*loadgen.Result, error) {
	mix, err := f.mix()
	if err != nil {
		return nil, err
	}
	spec := loadgen.Spec{
		BaseURL:        strings.TrimRight(base, "/"),
		Mix:            mix,
		Seed:           f.seed,
		Mode:           f.mode,
		Concurrency:    f.concurrency,
		RatePerSec:     f.rate,
		WarmupRequests: f.warmup,
		Requests:       f.requests,
		Duration:       f.duration,
	}
	runner, err := loadgen.NewRunner(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "marketbench: driving %s (%s loop, seed %d, warmup %d, requests %d)\n",
		base, f.mode, f.seed, f.warmup, f.requests)
	return runner.Run(ctx)
}

// printResult renders one run's human-readable summary.
func printResult(w io.Writer, res *loadgen.Result, budget float64) {
	fmt.Fprintf(w, "marketbench: %d measured in %.2fs = %.1f req/s (warmup %d, dropped %d)\n",
		res.Completed, res.MeasuredSeconds, res.ThroughputRPS, res.Warmup, res.Dropped)
	rows := append([]*loadgen.EndpointStats{res.Aggregate}, res.Endpoints...)
	for _, es := range rows {
		if es.Requests == 0 {
			continue
		}
		fmt.Fprintf(w, "marketbench:   %-20s n=%-6d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms err=%d\n",
			es.Name, es.Requests, es.Hist.Quantile(0.50), es.Hist.Quantile(0.95),
			es.Hist.Quantile(0.99), es.Hist.MaxMS(), es.Errors())
	}
	verdict := "within"
	if res.BudgetViolated(budget) {
		verdict = "VIOLATES"
	}
	fmt.Fprintf(w, "marketbench: error fraction %.5f %s budget %g\n", res.ErrorFraction(), verdict, budget)
}

// writeBaseline marshals the baseline with stable formatting.
func writeBaseline(path string, b *loadgen.ClusterBaseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("marketbench: encode baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("marketbench: write baseline: %w", err)
	}
	return nil
}

func joinInts(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}
