package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ipv4market/internal/loadgen"
)

const (
	bootTimeout  = 120 * time.Second
	eventTimeout = 120 * time.Second
)

// daemon is one managed marketd process.
type daemon struct {
	name string
	cmd  *exec.Cmd
	base string // http://host:port once the serving line appears
}

// startMarketd launches bin with args, echoing its output with a name
// prefix, and returns once the "serving on http://..." line appears.
func startMarketd(w io.Writer, name, bin string, args ...string) (*daemon, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("%s: stdout pipe: %w", name, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("%s: start: %w", name, err)
	}
	urls := make(chan string, 1)
	go func() { // coordinated: closes urls when the pipe drains
		defer close(urls)
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(w, "[%s] %s\n", name, line)
			if _, addr, ok := strings.Cut(line, "serving on http://"); ok {
				select {
				case urls <- "http://" + strings.TrimSpace(addr):
				default:
				}
			}
		}
	}()
	select {
	case base, ok := <-urls:
		if !ok {
			err := cmd.Wait()
			return nil, fmt.Errorf("%s: exited before serving: %w", name, err)
		}
		return &daemon{name: name, cmd: cmd, base: base}, nil
	case <-time.After(bootTimeout):
		cmd.Process.Kill()
		return nil, fmt.Errorf("%s: no serving line within %v", name, bootTimeout)
	}
}

// stop shuts the daemon down with SIGTERM and waits for a clean exit.
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.cmd.Process.Kill()
		return fmt.Errorf("%s: signal: %w", d.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }() // coordinated: result received below or in kill path
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("%s: exit: %w", d.name, err)
		}
		return nil
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("%s: did not exit on SIGTERM", d.name)
	}
}

// nodeVarz is the slice of a marketd /varz document the orchestrator
// polls: snapshot identity, rebuild progress, replication lag.
type nodeVarz struct {
	Snapshot *struct {
		Seq uint64 `json:"seq"`
		Gen uint64 `json:"gen"`
	} `json:"snapshot"`
	Rebuilds *struct {
		Total    int64 `json:"total"`
		Errors   int64 `json:"errors"`
		InFlight bool  `json:"in_flight"`
	} `json:"rebuilds"`
	Replication *struct {
		AppliedGen     uint64 `json:"applied_gen"`
		LagGenerations int    `json:"lag_generations"`
	} `json:"replication"`
}

// fetchNodeVarz GETs and decodes one node's /varz.
func fetchNodeVarz(client *http.Client, base string) (*nodeVarz, error) {
	resp, err := client.Get(base + "/varz")
	if err != nil {
		return nil, fmt.Errorf("varz %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("varz %s: status %d", base, resp.StatusCode)
	}
	var v nodeVarz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&v); err != nil {
		return nil, fmt.Errorf("varz %s: decode: %w", base, err)
	}
	return &v, nil
}

// fleet is one booted topology: a leader, its followers, and (when
// followers exist) a router in front.
type fleet struct {
	leader    *daemon
	followers []*daemon
	base      string // what the load is driven at
	router    *loadgen.Router

	routerSrv    *http.Server
	routerDone   chan error
	healthCancel context.CancelFunc
}

// nodes returns name→base for every marketd in the fleet.
func (fl *fleet) nodes() map[string]string {
	m := map[string]string{"leader": fl.leader.base}
	for i, d := range fl.followers {
		m[fmt.Sprintf("follower%d", i+1)] = d.base
	}
	return m
}

// shutdown tears the fleet down: router first (stop new traffic), then
// followers, then the leader. The first error wins; teardown continues
// regardless so no process outlives the bench.
func (fl *fleet) shutdown() error {
	var firstErr error
	if fl.healthCancel != nil {
		fl.healthCancel()
	}
	if fl.routerSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := fl.routerSrv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("router shutdown: %w", err)
		}
		cancel()
		if err := <-fl.routerDone; err != nil && err != http.ErrServerClosed && firstErr == nil {
			firstErr = fmt.Errorf("router serve: %w", err)
		}
	}
	for _, d := range fl.followers {
		if err := d.stop(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := fl.leader.stop(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// bootFleet starts a leader with a durable store and admin rebuilds,
// `followers` marketd followers replicating from it (readiness gated by
// -max-lag), and — when there are followers — a round-robin router
// whose health loop polls every node's /readyz.
func bootFleet(w io.Writer, f *benchFlags, followers int, workdir string) (*fleet, error) {
	world := []string{"-lirs", strconv.Itoa(f.lirs), "-days", strconv.Itoa(f.days)}
	if f.worldSeed != 0 {
		world = append(world, "-seed", strconv.FormatInt(f.worldSeed, 10))
	}

	leader, err := startMarketd(w, "leader", f.marketdBin, append([]string{
		"-listen", "127.0.0.1:0", "-data-dir", filepath.Join(workdir, "leader"), "-admin"}, world...)...)
	if err != nil {
		return nil, err
	}
	fl := &fleet{leader: leader, base: leader.base}

	for i := 0; i < followers; i++ {
		name := fmt.Sprintf("follower%d", i+1)
		args := append([]string{
			"-listen", "127.0.0.1:0",
			"-data-dir", filepath.Join(workdir, name),
			"-follow", leader.base,
			"-poll-interval", f.pollEvery.String()}, world...)
		if f.maxLag != "" {
			args = append(args, "-max-lag", f.maxLag)
		}
		d, err := startMarketd(w, name, f.marketdBin, args...)
		if err != nil {
			fl.shutdown()
			return nil, err
		}
		fl.followers = append(fl.followers, d)
	}

	if followers == 0 {
		return fl, nil
	}

	targets := []string{leader.base}
	names := map[string]string{leader.base: "leader"}
	for i, d := range fl.followers {
		targets = append(targets, d.base)
		names[d.base] = fmt.Sprintf("follower%d", i+1)
	}
	rt, err := loadgen.NewNamedRouter(targets, names)
	if err != nil {
		fl.shutdown()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fl.shutdown()
		return nil, fmt.Errorf("router listen: %w", err)
	}
	healthCtx, cancel := context.WithCancel(context.Background())
	go rt.HealthLoop(healthCtx, f.pollEvery) // coordinated: exits when healthCancel fires in shutdown
	fl.router = rt
	fl.routerSrv = &http.Server{Handler: rt}
	fl.routerDone = make(chan error, 1)
	fl.healthCancel = cancel
	srv, done := fl.routerSrv, fl.routerDone
	go func() { done <- srv.Serve(ln) }() // coordinated: result received in shutdown
	fl.base = "http://" + ln.Addr().String()
	fmt.Fprintf(w, "marketbench: router on %s over %d backends\n", fl.base, len(targets))

	// One synchronous health pass so the first measured request never
	// races the loop's first tick.
	rt.CheckHealth(healthCtx)
	return fl, nil
}

// runTopology boots one topology, drives the configured load at it,
// triggers a leader rebuild mid-run, waits for the swap and (with
// followers) for every follower to catch back up, cross-checks the
// client percentiles against each node's /varz buckets, and renders the
// report row.
func runTopology(ctx context.Context, w io.Writer, f *benchFlags, followers int) (*loadgen.TopologyReport, error) {
	name := "leader"
	if followers > 0 {
		name = fmt.Sprintf("leader+%d", followers)
	}
	fmt.Fprintf(w, "marketbench: === topology %s (%d follower(s)) ===\n", name, followers)

	workdir, err := os.MkdirTemp("", "marketbench-"+name)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workdir)

	fl, err := bootFleet(w, f, followers, workdir)
	if err != nil {
		return nil, err
	}
	defer fl.shutdown()

	spec := loadgen.Spec{
		BaseURL:        fl.base,
		Mix:            loadgen.DefaultMix(),
		Seed:           f.seed,
		Mode:           f.mode,
		Concurrency:    f.concurrency,
		RatePerSec:     f.rate,
		WarmupRequests: f.warmup,
		Requests:       f.requests,
		Duration:       f.duration,
	}
	runner, err := loadgen.NewRunner(spec)
	if err != nil {
		return nil, err
	}

	// Baseline scrape for per-node allocation accounting: the /varz
	// process counters are cumulative, so the report needs the values
	// from before any load hit the fleet.
	beforeVarz, err := scrapeFleetVarz(fl)
	if err != nil {
		return nil, fmt.Errorf("pre-load varz scrape: %w", err)
	}

	t0 := time.Now()
	type runOutcome struct {
		res *loadgen.Result
		err error
	}
	loadDone := make(chan runOutcome, 1)
	go func() { // coordinated: outcome received below
		res, err := runner.Run(ctx)
		loadDone <- runOutcome{res, err}
	}()

	events, eventErr := exerciseFleet(w, fl, runner, t0, f)

	outcome := <-loadDone
	if outcome.err != nil {
		return nil, fmt.Errorf("load run: %w", outcome.err)
	}
	if eventErr != nil {
		return nil, eventErr
	}
	res := outcome.res
	printResult(w, res, f.budget)

	report := loadgen.NewTopologyReport(name, followers, followers > 0, f.budget, res)
	report.World = loadgen.WorldParams{Seed: f.worldSeed, LIRs: f.lirs, Days: f.days}
	if f.mode == loadgen.OpenLoop {
		report.Load.RatePerSec = f.rate
	}
	report.Events = events

	server, err := crossCheck(w, fl, res)
	if err != nil {
		return nil, err
	}
	report.Server = server

	afterVarz, err := scrapeFleetVarz(fl)
	if err != nil {
		return nil, fmt.Errorf("post-load varz scrape: %w", err)
	}
	for _, nodeName := range sortedKeys(fl.nodes()) {
		if nr, ok := loadgen.NewNodeReport(nodeName, beforeVarz[nodeName], afterVarz[nodeName]); ok {
			report.Nodes = append(report.Nodes, nr)
			fmt.Fprintf(w, "marketbench: %s: %.0f alloc bytes/request, %.1f mallocs/request over %d requests (zero-copy file reads %d, fallbacks %d)\n",
				nodeName, nr.AllocBytesPerRequest, nr.MallocsPerRequest, nr.Requests, nr.ZeroCopyFileReads, nr.ZeroCopyFallbacks)
		}
	}
	return &report, nil
}

// scrapeFleetVarz captures every node's /varz document, keyed by node
// name.
func scrapeFleetVarz(fl *fleet) (map[string]*loadgen.ServerVarz, error) {
	out := make(map[string]*loadgen.ServerVarz, len(fl.nodes()))
	for nodeName, base := range fl.nodes() {
		sv, err := loadgen.ScrapeVarz(context.Background(), nil, base)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nodeName, err)
		}
		out[nodeName] = sv
	}
	return out, nil
}

// exerciseFleet runs the mid-load milestones: once measurement is under
// way it triggers a rebuild on the leader, waits for the new snapshot
// to swap in, and — when followers exist — waits for every follower to
// re-adopt the leader's newest generation. Offsets are relative to t0.
func exerciseFleet(w io.Writer, fl *fleet, runner *loadgen.Runner, t0 time.Time, f *benchFlags) ([]loadgen.EventReport, error) {
	client := &http.Client{Timeout: 10 * time.Second}

	// Wait for measurement to actually be in flight so the rebuild runs
	// under load, not beside it.
	deadline := time.Now().Add(eventTimeout)
	for runner.Issued() <= int64(f.warmup) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("load never reached the measured phase")
		}
		time.Sleep(5 * time.Millisecond)
	}

	before, err := fetchNodeVarz(client, fl.leader.base)
	if err != nil {
		return nil, err
	}
	if before.Snapshot == nil || before.Rebuilds == nil {
		return nil, fmt.Errorf("leader /varz lacks snapshot/rebuilds sections")
	}

	resp, err := client.Post(fl.leader.base+"/admin/rebuild", "", nil)
	if err != nil {
		return nil, fmt.Errorf("trigger rebuild: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("trigger rebuild: status %d, want 202", resp.StatusCode)
	}
	events := []loadgen.EventReport{{
		Name:      "rebuild_triggered",
		AtSeconds: time.Since(t0).Seconds(),
		Detail:    fmt.Sprintf("POST /admin/rebuild with %d requests issued", runner.Issued()),
	}}
	fmt.Fprintf(w, "marketbench: rebuild triggered at +%.2fs\n", events[0].AtSeconds)

	// The swap is visible as a sequence bump with no rebuild in flight.
	swapDeadline := time.Now().Add(eventTimeout)
	var after *nodeVarz
	for {
		after, err = fetchNodeVarz(client, fl.leader.base)
		if err != nil {
			return nil, err
		}
		if after.Snapshot != nil && after.Rebuilds != nil &&
			after.Snapshot.Seq > before.Snapshot.Seq && !after.Rebuilds.InFlight {
			break
		}
		if after.Rebuilds != nil && after.Rebuilds.Errors > before.Rebuilds.Errors {
			return nil, fmt.Errorf("rebuild under load failed on the leader")
		}
		if time.Now().After(swapDeadline) {
			return nil, fmt.Errorf("leader did not swap a rebuilt snapshot within %v", eventTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
	events = append(events, loadgen.EventReport{
		Name:      "leader_swapped",
		AtSeconds: time.Since(t0).Seconds(),
		Detail: fmt.Sprintf("seq %d -> %d, gen %d", before.Snapshot.Seq,
			after.Snapshot.Seq, after.Snapshot.Gen),
	})
	fmt.Fprintf(w, "marketbench: leader swapped generation %d at +%.2fs\n",
		after.Snapshot.Gen, events[1].AtSeconds)

	if len(fl.followers) == 0 {
		return events, nil
	}

	// Followers must re-adopt the new generation while traffic flows;
	// their -max-lag gate keeps the router away from them in between.
	catchDeadline := time.Now().Add(eventTimeout)
	for _, d := range fl.followers {
		for {
			fv, err := fetchNodeVarz(client, d.base)
			if err != nil {
				return nil, err
			}
			if fv.Replication != nil && fv.Replication.AppliedGen >= after.Snapshot.Gen {
				break
			}
			if time.Now().After(catchDeadline) {
				return nil, fmt.Errorf("%s did not adopt generation %d within %v", d.name, after.Snapshot.Gen, eventTimeout)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	events = append(events, loadgen.EventReport{
		Name:      "followers_caught_up",
		AtSeconds: time.Since(t0).Seconds(),
		Detail:    fmt.Sprintf("%d follower(s) adopted generation %d", len(fl.followers), after.Snapshot.Gen),
	})
	fmt.Fprintf(w, "marketbench: followers caught up to generation %d at +%.2fs\n",
		after.Snapshot.Gen, events[2].AtSeconds)
	return events, nil
}

// crossCheck scrapes every node's /varz and recomputes server-side
// percentiles from the exported latency buckets for each route the
// load actually drove.
func crossCheck(w io.Writer, fl *fleet, res *loadgen.Result) ([]loadgen.ServerRouteReport, error) {
	driven := make(map[string]bool)
	for _, es := range res.Endpoints {
		if es.Requests > 0 && es.Route != "" {
			driven[es.Route] = true
		}
	}

	var rows []loadgen.ServerRouteReport
	for _, nodeName := range sortedKeys(fl.nodes()) {
		base := fl.nodes()[nodeName]
		sv, err := loadgen.ScrapeVarz(context.Background(), nil, base)
		if err != nil {
			return nil, fmt.Errorf("cross-check: %w", err)
		}
		for _, route := range sv.RouteNames() {
			if !driven[route] {
				continue
			}
			rv := sv.Routes[route]
			p50, ok := sv.RouteQuantile(route, 0.50)
			if !ok {
				continue
			}
			p95, _ := sv.RouteQuantile(route, 0.95)
			p99, _ := sv.RouteQuantile(route, 0.99)
			rows = append(rows, loadgen.ServerRouteReport{
				Node:     nodeName,
				Route:    route,
				Requests: rv.Requests,
				P50MS:    p50,
				P95MS:    p95,
				P99MS:    p99,
			})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("cross-check: no /varz latency buckets matched the driven routes")
	}
	fmt.Fprintf(w, "marketbench: server-side cross-check: %d node-route rows\n", len(rows))
	return rows, nil
}

// sortedKeys returns m's keys in sorted order (stable report rows).
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
