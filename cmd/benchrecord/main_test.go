package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ipv4market/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSnapshotServe/table1-4          218061     11011 ns/op    9787 B/op    38 allocs/op
BenchmarkSnapshotServe/prices_full-4       8406     71248 ns/op  220792 B/op    39 allocs/op
BenchmarkSnapshotServe/table1_304-4      139862      8602.5 ns/op  8040 B/op    35 allocs/op
PASS
ok   ipv4market/internal/serve  7.031s
`

func TestParseBenchOutput(t *testing.T) {
	results, cpu, err := parseBenchOutput("BenchmarkSnapshotServe", sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	want := []result{
		{Name: "table1", NsPerOp: 11011, BPerOp: 9787, AllocsOp: 38},
		{Name: "prices_full", NsPerOp: 71248, BPerOp: 220792, AllocsOp: 39},
		{Name: "table1_304", NsPerOp: 8602, BPerOp: 8040, AllocsOp: 35},
	}
	if len(results) != len(want) {
		t.Fatalf("parsed %d rows, want %d: %+v", len(results), len(want), results)
	}
	for i, r := range results {
		if r != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	if _, _, err := parseBenchOutput("BenchmarkSnapshotServe", "PASS\nok x 0.1s\n"); err == nil {
		t.Error("output without result rows accepted")
	}
}

// TestBaselineDocument checks the written JSON carries the machine
// metadata the serve-side baseline test (and a human comparing two
// recordings) depends on.
func TestBaselineDocument(t *testing.T) {
	results, cpu, err := parseBenchOutput("BenchmarkSnapshotServe", sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	b := newBaseline(suites[1], results, cpu, time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"suite", "package", "recorded", "goos", "goarch", "cpu",
		"num_cpu", "gomaxprocs", "go_version", "benchtime", "procedure", "note", "results"} {
		if _, ok := back[key]; !ok {
			t.Errorf("baseline document lacks %q", key)
		}
	}
	if back["recorded"] != "2026-08-06" {
		t.Errorf("recorded = %v", back["recorded"])
	}
	if n, _ := back["num_cpu"].(float64); n < 1 {
		t.Errorf("num_cpu = %v, want >= 1", back["num_cpu"])
	}
	if !strings.Contains(b.Procedure, "scripts/bench.sh") {
		t.Error("procedure does not name scripts/bench.sh")
	}
}

func TestUnknownSuiteFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-suite", "nope"}); err == nil {
		t.Error("unknown -suite accepted")
	}
}
