// Command benchrecord re-records the repository's benchmark baselines
// (BENCH_build.json, BENCH_serve.json, BENCH_cluster.json at the repo
// root). The build and serve suites run through `go test -bench` and
// the JSON is rewritten with the parsed results plus the recording
// machine's metadata (CPU model, core count, GOMAXPROCS, Go version).
// The cluster suite builds marketd and marketbench, then boots real
// process topologies (leader-only and leader+2 followers behind a
// round-robin router) and drives the mixed /v1 workload at them;
// cmd/marketbench writes BENCH_cluster.json itself. scripts/bench.sh
// is the front door:
//
//	scripts/bench.sh            # re-record all baselines
//	scripts/bench.sh -suite build
//	scripts/bench.sh -suite cluster
//
// Benchmark numbers are machine-dependent; the embedded metadata is
// what makes a baseline comparable (same hardware) or visibly not
// (different hardware). The files are never edited by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suiteDef describes one recordable benchmark suite.
type suiteDef struct {
	// Flag is the -suite selector ("build", "serve").
	Flag string
	// Suite is the Go benchmark function name.
	Suite string
	// File is the baseline filename at the repo root.
	File string
	// Benchtime is the default -benchtime (build is seconds-per-op, so
	// a fixed iteration count keeps recording time bounded).
	Benchtime string
	// Note documents what the numbers mean, carried into the JSON.
	Note string
}

const benchPackage = "ipv4market/internal/serve"

var suites = []suiteDef{
	{
		Flag:      "build",
		Suite:     "BenchmarkSnapshotBuild",
		File:      "BENCH_build.json",
		Benchtime: "3x",
		Note: "full snapshot build (world generation + every analysis pipeline + encoding) at different " +
			"build-stage worker counts; workers=1 is the serial reference and the workers=NumCPU row is " +
			"what marketd does at boot. The observable speedup is bounded by the hardware's core count " +
			"and by the serial study stage (Amdahl); per-stage wall-clock splits are exported on /varz " +
			"as snapshot.build_stages. Determinism across worker counts is pinned by TestBuildSnapshotDeterministic.",
	},
	{
		Flag:      "serve",
		Suite:     "BenchmarkSnapshotServe",
		File:      "BENCH_serve.json",
		Benchtime: "0.5s",
		Note: "parallel (RunParallel) request cost against a prebuilt, store-backed snapshot; snapshot build " +
			"excluded by design. Static artifact rows serve zero-copy from the sealed segment file. Responses " +
			"are discarded through a ReaderFrom writer with a pooled copy buffer (like a production net/http " +
			"connection), so bytes_per_op measures handler allocations, not harness buffer growth — numbers " +
			"recorded with the pre-zero-copy recorder harness are not comparable.",
	},
}

// result is one benchmark row in the baseline file.
type result struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_per_op"`
	BPerOp   int64  `json:"bytes_per_op"`
	AllocsOp int64  `json:"allocs_per_op"`
}

// baseline is the BENCH_*.json schema. internal/serve's
// TestBenchBaselinesWellFormed reads these files back, so the two
// schemas evolve together.
type baseline struct {
	Suite      string   `json:"suite"`
	Package    string   `json:"package"`
	Recorded   string   `json:"recorded"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPU        string   `json:"cpu"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Benchtime  string   `json:"benchtime"`
	Procedure  string   `json:"procedure"`
	Note       string   `json:"note"`
	Results    []result `json:"results"`
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchrecord", flag.ContinueOnError)
	var (
		which       = fs.String("suite", "all", `which baseline to re-record: "build", "serve", "cluster", or "all"`)
		dir         = fs.String("dir", ".", "repository root (where the BENCH_*.json files live)")
		benchtime   = fs.String("benchtime", "", "override the suite's default -benchtime (build/serve)")
		clusterReqs = fs.Int("cluster-requests", 5000, "measured requests per topology for the cluster suite")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ran := 0
	for _, s := range suites {
		if *which != "all" && *which != s.Flag {
			continue
		}
		ran++
		if *benchtime != "" {
			s.Benchtime = *benchtime
		}
		if err := record(w, *dir, s); err != nil {
			return err
		}
	}
	if *which == "all" || *which == "cluster" {
		ran++
		if err := recordCluster(w, *dir, *clusterReqs); err != nil {
			return err
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown -suite %q (want build, serve, cluster, or all)", *which)
	}
	return nil
}

// recordCluster re-records BENCH_cluster.json: it builds marketd and
// marketbench, then lets marketbench boot and drive the two recorded
// topologies (leader-only, leader+2 followers behind the router) and
// write the baseline itself — the schema lives in internal/loadgen and
// TestBenchClusterJSONParses reads the file back through it.
func recordCluster(w io.Writer, dir string, requests int) error {
	tmp, err := os.MkdirTemp("", "benchrecord-cluster")
	if err != nil {
		return fmt.Errorf("benchrecord: %w", err)
	}
	defer os.RemoveAll(tmp)

	for _, pkg := range []string{"marketd", "marketbench"} {
		fmt.Fprintf(w, "benchrecord: building %s...\n", pkg)
		cmd := exec.Command("go", "build", "-o", filepath.Join(tmp, pkg), "./cmd/"+pkg)
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("benchrecord: build %s: %w\n%s", pkg, err, out)
		}
	}

	args := []string{
		"-marketd", filepath.Join(tmp, "marketd"),
		"-topologies", "0,2",
		"-requests", strconv.Itoa(requests),
		"-out", filepath.Join(dir, "BENCH_cluster.json"),
		"-procedure", "recorded by scripts/bench.sh -suite cluster (cmd/benchrecord): go build ./cmd/marketd " +
			"./cmd/marketbench, then marketbench -topologies 0,2 -requests " + strconv.Itoa(requests) + " boots each " +
			"topology over loopback (leader with a durable store; followers replicating with -max-lag 2 behind the " +
			"round-robin router), drives the weighted /v1 endpoint mix closed-loop, triggers a rebuild under load, " +
			"waits for follower catch-up, and writes this file whole. Numbers are machine-dependent — compare only " +
			"against a baseline whose goos/goarch/cpu/num_cpu match. Never edit by hand; re-record instead.",
		"-note", "closed-loop mixed /v1 workload per topology with a mid-run leader rebuild and follower catch-up; " +
			"client percentiles from the deterministic streaming histogram, cross-checked against each node's " +
			"/varz latency_counts export. error_budget.violated must be false in a committed baseline. " +
			"Per-node rows report alloc bytes and mallocs per served request (from /varz process counter deltas, " +
			"warmup and rebuild included) plus the zero-copy read split; per-endpoint bytes_per_op is mean " +
			"response-body size on the wire.",
	}
	fmt.Fprintf(w, "benchrecord: running marketbench (%d requests per topology)...\n", requests)
	cmd := exec.Command(filepath.Join(tmp, "marketbench"), args...)
	cmd.Dir = dir
	cmd.Stdout = w
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchrecord: marketbench: %w", err)
	}
	fmt.Fprintf(w, "benchrecord: wrote %s\n", filepath.Join(dir, "BENCH_cluster.json"))
	return nil
}

// record runs one suite and rewrites its baseline file.
func record(w io.Writer, dir string, s suiteDef) error {
	fmt.Fprintf(w, "benchrecord: running %s (-benchtime %s)...\n", s.Suite, s.Benchtime)
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+s.Suite+"$", "-benchmem", "-benchtime", s.Benchtime,
		benchPackage)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("benchrecord: %s: %w\n%s", s.Suite, err, out)
	}

	results, cpu, err := parseBenchOutput(s.Suite, string(out))
	if err != nil {
		return err
	}
	b := newBaseline(s, results, cpu, time.Now())
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchrecord: encode %s: %w", s.File, err)
	}
	path := filepath.Join(dir, s.File)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchrecord: %w", err)
	}
	fmt.Fprintf(w, "benchrecord: wrote %s (%d result rows, cpu %q)\n", path, len(results), cpu)
	return nil
}

// newBaseline assembles the baseline document for one suite run,
// stamping the recording machine's metadata alongside the numbers.
func newBaseline(s suiteDef, results []result, cpu string, now time.Time) baseline {
	return baseline{
		Suite:      s.Suite,
		Package:    benchPackage,
		Recorded:   now.UTC().Format("2006-01-02"),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchtime:  s.Benchtime,
		Procedure: "recorded by scripts/bench.sh (cmd/benchrecord): go test -run '^$' -bench '^" + s.Suite +
			"$' -benchmem -benchtime " + s.Benchtime + " " + benchPackage + ", output parsed and this file " +
			"rewritten whole. Numbers are machine-dependent — compare only against a baseline whose " +
			"goos/goarch/cpu/num_cpu match. Never edit by hand; re-record instead.",
		Note:    s.Note,
		Results: results,
	}
}

// benchLine matches one `go test -bench` result row:
//
//	BenchmarkSnapshotServe/table1-4  218061  11011 ns/op  9787 B/op  38 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// gomaxprocsSuffix is the -N the testing package appends to bench names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts the result rows for suite (subtest names
// normalized: suite prefix and GOMAXPROCS suffix stripped) and the
// "cpu:" banner go test prints.
func parseBenchOutput(suite, out string) ([]result, string, error) {
	var (
		results []result
		cpu     string
	)
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		name = strings.TrimPrefix(name, suite)
		name = strings.TrimPrefix(name, "/")
		if name == "" {
			name = suite
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("benchrecord: parse %q: %w", line, err)
		}
		r := result{Name: name, NsPerOp: int64(ns)}
		if m[3] != "" {
			if r.BPerOp, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, "", fmt.Errorf("benchrecord: parse %q: %w", line, err)
			}
		}
		if m[4] != "" {
			if r.AllocsOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, "", fmt.Errorf("benchrecord: parse %q: %w", line, err)
			}
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, "", fmt.Errorf("benchrecord: no %s result rows in go test output:\n%s", suite, out)
	}
	return results, cpu, nil
}
