// Command ipv4lint runs the repo's static-analysis suite (internal/lint)
// over Go packages and reports diagnostics with file:line:col positions
// and rule IDs. It exits 0 when clean, 1 when there are findings, and 2
// on usage or load errors.
//
// Usage:
//
//	ipv4lint [-rules floatcmp,timeeq,...] [-list] [-json] [-suppressions] [patterns...]
//
// A pattern is a directory, or a directory followed by /... to include
// its subtree (testdata, hidden, and _-prefixed directories are skipped,
// as with the go tool). The default pattern is ./... rooted at the
// enclosing module.
//
// -json switches both modes to machine-readable output: an array of
// {file, line, col, rule, message} objects for findings, or of
// {file, line, rule, reason, used} objects for the suppression audit.
//
// -suppressions audits every //lint:ignore directive instead of
// reporting findings: each is listed with its position, rule and reason,
// and the run fails if any directive is stale — it silenced nothing, so
// the exception it documents no longer exists. The audit always runs the
// full rule suite (-rules is ignored): under a subset, directives for
// unselected rules would be indistinguishable from stale ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ipv4market/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	audit := flag.Bool("suppressions", false, "audit //lint:ignore directives; fail on stale ones")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" && !*audit {
		selected, unknown := lint.ByName(strings.Split(*rules, ","))
		if selected == nil {
			fmt.Fprintf(os.Stderr, "ipv4lint: unknown rule %q (use -list)\n", unknown)
			return 2
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var pkgs []*lint.Package
	loaders := make(map[string]*lint.Loader) // one per module root
	for _, pat := range patterns {
		dir, recursive := pat, false
		if d, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, recursive = d, true
		} else if pat == "..." {
			dir, recursive = ".", true
		}
		loader, err := loaderFor(loaders, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
			return 2
		}
		if recursive {
			sub, err := loader.LoadSubtree(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, sub...)
		} else {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	res := lint.RunAll(pkgs, analyzers)
	if *audit {
		return reportSuppressions(res, *asJSON)
	}
	return reportFindings(res, len(pkgs), *asJSON)
}

type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func reportFindings(res lint.Result, npkgs int, asJSON bool) int {
	if asJSON {
		out := make([]jsonDiag, 0, len(res.Diagnostics))
		for _, d := range res.Diagnostics {
			out = append(out, jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Message: d.Message})
		}
		writeJSON(out)
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "ipv4lint: %d finding(s) in %d package(s)\n", len(res.Diagnostics), npkgs)
		return 1
	}
	return 0
}

type jsonSuppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

func reportSuppressions(res lint.Result, asJSON bool) int {
	if asJSON {
		out := make([]jsonSuppression, 0, len(res.Suppressions))
		for _, s := range res.Suppressions {
			out = append(out, jsonSuppression{File: s.Pos.Filename, Line: s.Pos.Line, Rule: s.Rule, Reason: s.Reason, Used: s.Used})
		}
		writeJSON(out)
	} else {
		for _, s := range res.Suppressions {
			state := "used"
			if !s.Used {
				state = "STALE"
			}
			fmt.Printf("%s:%d: %s [%s] — %s\n", s.Pos.Filename, s.Pos.Line, state, s.Rule, s.Reason)
		}
	}
	if stale := res.Stale(); len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "ipv4lint: %d stale suppression(s) of %d; remove the directives whose findings are gone\n", len(stale), len(res.Suppressions))
		return 1
	}
	fmt.Fprintf(os.Stderr, "ipv4lint: %d suppression(s), none stale\n", len(res.Suppressions))
	return 0
}

func writeJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
	}
}

// loaderFor returns a Loader rooted at dir's module, sharing one loader
// (and so one type-checked package graph) per module root.
func loaderFor(loaders map[string]*lint.Loader, dir string) (*lint.Loader, error) {
	probe, err := lint.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if existing, ok := loaders[probe.ModuleDir()]; ok {
		return existing, nil
	}
	loaders[probe.ModuleDir()] = probe
	return probe, nil
}
