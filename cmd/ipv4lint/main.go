// Command ipv4lint runs the repo's static-analysis suite (internal/lint)
// over Go packages and reports diagnostics with file:line:col positions
// and rule IDs. It exits 0 when clean, 1 when there are findings, and 2
// on usage or load errors.
//
// Usage:
//
//	ipv4lint [-rules floatcmp,timeeq,...] [-list] [patterns...]
//
// A pattern is a directory, or a directory followed by /... to include
// its subtree (testdata, hidden, and _-prefixed directories are skipped,
// as with the go tool). The default pattern is ./... rooted at the
// enclosing module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipv4market/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		selected, unknown := lint.ByName(strings.Split(*rules, ","))
		if selected == nil {
			fmt.Fprintf(os.Stderr, "ipv4lint: unknown rule %q (use -list)\n", unknown)
			return 2
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var pkgs []*lint.Package
	loaders := make(map[string]*lint.Loader) // one per module root
	for _, pat := range patterns {
		dir, recursive := pat, false
		if d, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, recursive = d, true
		} else if pat == "..." {
			dir, recursive = ".", true
		}
		loader, err := loaderFor(loaders, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
			return 2
		}
		if recursive {
			sub, err := loader.LoadSubtree(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, sub...)
		} else {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipv4lint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ipv4lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// loaderFor returns a Loader rooted at dir's module, sharing one loader
// (and so one type-checked package graph) per module root.
func loaderFor(loaders map[string]*lint.Loader, dir string) (*lint.Loader, error) {
	probe, err := lint.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if existing, ok := loaders[probe.ModuleDir()]; ok {
		return existing, nil
	}
	loaders[probe.ModuleDir()] = probe
	return probe, nil
}
