// Command delegations infers IPv4 address-space delegations from MRT RIB
// snapshots: the paper's extended algorithm by default, or the
// Krenc-Feldmann baseline with -baseline.
//
// Usage:
//
//	delegations [-baseline] [-visibility 0.5] [-as2org file -date 2020-06-01] rib1.mrt [rib2.mrt ...]
//	delegations -updates upd1.mrt,upd2.mrt rib.mrt
//
// Each input file must be a TABLE_DUMP_V2 snapshot (as produced by real
// collectors or by cmd/simgen). All files contribute monitors to one
// survey, so passing several collectors' snapshots reproduces the paper's
// multi-collector setup. With -updates, exactly one snapshot is expected;
// the BGP4MP update files are applied to it first (the paper's daily
// RIB-plus-updates workflow).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ipv4market/internal/asorg"
	"ipv4market/internal/bgp"
	"ipv4market/internal/delegation"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "delegations:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("delegations", flag.ContinueOnError)
	var (
		baseline   = fs.Bool("baseline", false, "use the Krenc-Feldmann baseline instead of the extended algorithm")
		visibility = fs.Float64("visibility", 0.5, "minimum monitor-visibility fraction (extension ii)")
		orgFile    = fs.String("as2org", "", "CAIDA as2org snapshot for same-organization filtering (extension iv)")
		dateStr    = fs.String("date", "", "observation date (YYYY-MM-DD) for the as2org lookup; default today")
		updates    = fs.String("updates", "", "comma-separated BGP4MP update files applied to the snapshot before inference")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no MRT files given")
	}

	date := time.Now().UTC()
	if *dateStr != "" {
		var err error
		date, err = time.Parse("2006-01-02", *dateStr)
		if err != nil {
			return fmt.Errorf("bad -date: %w", err)
		}
	}

	var orgs *asorg.Series
	if *orgFile != "" {
		f, err := os.Open(*orgFile)
		if err != nil {
			return err
		}
		snap, err := asorg.Parse(f, date)
		f.Close()
		if err != nil {
			return err
		}
		orgs = asorg.NewSeries(snap)
	}

	survey := bgp.NewOriginSurvey()
	var totalReport bgp.SanitizeReport
	addReport := func(rep bgp.SanitizeReport) {
		totalReport.Input += rep.Input
		totalReport.Kept += rep.Kept
		totalReport.SpecialSpace += rep.SpecialSpace
		totalReport.ReservedASN += rep.ReservedASN
		totalReport.PathLoop += rep.PathLoop
	}
	if *updates != "" {
		if len(files) != 1 {
			return fmt.Errorf("-updates requires exactly one snapshot, got %d", len(files))
		}
		f, err := os.Open(files[0])
		if err != nil {
			return err
		}
		peers, entries, err := bgp.ReadRIBSnapshot(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", files[0], err)
		}
		st := bgp.NewSnapshotState(peers, entries)
		applied := 0
		for _, upath := range strings.Split(*updates, ",") {
			uf, err := os.Open(upath)
			if err != nil {
				return err
			}
			n, err := st.ApplyStream(uf)
			uf.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", upath, err)
			}
			applied += n
		}
		name := filepath.Base(files[0])
		addReport(st.AddViewsTo(name, survey))
		fmt.Fprintf(w, "# %s: %d peers, %d updates applied\n", name, len(st.Peers), applied)
	} else {
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			peers, entries, err := bgp.ReadRIBSnapshot(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			name := filepath.Base(path)
			addReport(bgp.SurveyFromSnapshot(name, peers, entries, survey))
			fmt.Fprintf(w, "# %s: %d peers, %d prefixes\n", name, len(peers), len(entries))
		}
	}
	fmt.Fprintf(w, "# monitors: %d; routes: %d kept / %d input (removed: %d special, %d reserved-ASN, %d loops)\n",
		survey.NumMonitors(), totalReport.Kept, totalReport.Input,
		totalReport.SpecialSpace, totalReport.ReservedASN, totalReport.PathLoop)

	var ds []delegation.Delegation
	if *baseline {
		ds = delegation.Baseline(survey)
		fmt.Fprintln(w, "# algorithm: Krenc-Feldmann baseline")
	} else {
		inf := delegation.Inference{MinVisibility: *visibility, Orgs: orgs}
		ds = inf.FromSurvey(date, survey)
		fmt.Fprintf(w, "# algorithm: extended (visibility >= %.0f%%, as2org: %v)\n", *visibility*100, orgs != nil)
	}
	fmt.Fprintf(w, "# delegations: %d, delegated addresses: %d\n", len(ds), delegation.DelegatedAddrs(ds))
	fmt.Fprintln(w, "# child_prefix parent_prefix delegator_as delegatee_as")
	for _, d := range ds {
		fmt.Fprintf(w, "%s %s %d %d\n", d.Child, d.Parent, uint32(d.From), uint32(d.To))
	}
	return nil
}
