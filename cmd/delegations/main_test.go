package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipv4market/internal/asorg"
	"ipv4market/internal/bgp"
	"ipv4market/internal/netblock"
)

// writeTestSnapshot creates an MRT snapshot with a clear delegation:
// AS 5000 announces 185.0.0.0/16 and AS 6000 a /24 inside it, both seen
// by every monitor; a second /24 is visible at only one monitor.
func writeTestSnapshot(t *testing.T, dir string) string {
	t.Helper()
	peers := []bgp.PeerEntry{
		{BGPID: 1, IP: netblock.MustParseAddr("198.51.100.1"), AS: 21000},
		{BGPID: 2, IP: netblock.MustParseAddr("198.51.100.2"), AS: 21001},
	}
	mk := func(peer uint16, origin asorg.ASN) bgp.PeerRoute {
		return bgp.PeerRoute{
			PeerIndex:  peer,
			Originated: time.Now(),
			Path:       bgp.NewPath(21000+asorg.ASN(peer), 1299, origin),
			Origin:     bgp.OriginIGP,
		}
	}
	entries := []bgp.RIBEntry{
		{Prefix: netblock.MustParsePrefix("185.0.0.0/16"), Routes: []bgp.PeerRoute{mk(0, 5000), mk(1, 5000)}},
		{Prefix: netblock.MustParsePrefix("185.0.1.0/24"), Routes: []bgp.PeerRoute{mk(0, 6000), mk(1, 6000)}},
		{Prefix: netblock.MustParsePrefix("185.0.2.0/24"), Routes: []bgp.PeerRoute{mk(0, 7000)}}, // 50% visibility
	}
	path := filepath.Join(dir, "rib.test.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := bgp.WriteRIBSnapshot(f, time.Now(), 1, "test", peers, entries); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDelegationsExtended(t *testing.T) {
	path := writeTestSnapshot(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, []string{path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "185.0.1.0/24 185.0.0.0/16 5000 6000") {
		t.Errorf("missing delegation in output:\n%s", out)
	}
	if !strings.Contains(out, "delegations: 2") {
		// 185.0.2.0/24 is seen by exactly 1 of 2 monitors = 50%, which
		// meets the ≥ 0.5 default threshold, so it also yields one.
		t.Errorf("unexpected delegation count:\n%s", out)
	}
}

func TestDelegationsBaselineAndVisibility(t *testing.T) {
	path := writeTestSnapshot(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, []string{"-baseline", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Krenc-Feldmann baseline") {
		t.Error("baseline banner missing")
	}

	// Raising the visibility threshold drops the half-seen /24.
	buf.Reset()
	if err := run(&buf, []string{"-visibility", "0.9", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delegations: 1,") {
		t.Errorf("high-visibility run:\n%s", buf.String())
	}
}

func TestDelegationsWithAS2Org(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)
	// as2org mapping 5000 and 6000 into the same organization removes the
	// main delegation.
	snap := asorg.NewSnapshot(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC))
	snap.AddOrg(asorg.Org{ID: "ORG-X", Name: "X"})
	snap.AddAS(5000, "ORG-X")
	snap.AddAS(6000, "ORG-X")
	orgPath := filepath.Join(dir, "as2org.txt")
	f, err := os.Create(orgPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run(&buf, []string{"-as2org", orgPath, "-date", "2020-06-01", path}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "185.0.1.0/24 185.0.0.0/16") {
		t.Errorf("same-org delegation should be removed:\n%s", buf.String())
	}
}

func TestDelegationsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{}); err == nil {
		t.Error("no files should fail")
	}
	if err := run(&buf, []string{"/nonexistent.mrt"}); err == nil {
		t.Error("missing file should fail")
	}
	if err := run(&buf, []string{"-date", "bogus", "x.mrt"}); err == nil {
		t.Error("bad date should fail")
	}
	// Corrupt MRT.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mrt")
	if err := os.WriteFile(bad, []byte("this is not MRT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{bad}); err == nil {
		t.Error("corrupt MRT should fail")
	}
}

func TestDelegationsWithUpdates(t *testing.T) {
	dir := t.TempDir()
	path := writeTestSnapshot(t, dir)

	// An update stream that withdraws the half-seen /24 from peer 0 and
	// announces a new delegation child at both peers.
	upath := filepath.Join(dir, "updates.mrt")
	f, err := os.Create(upath)
	if err != nil {
		t.Fatal(err)
	}
	w := bgp.NewWriter(f)
	for _, u := range []bgp.UpdateRecord{
		{
			Timestamp: time.Now(), PeerAS: 21000, PeerIP: netblock.MustParseAddr("198.51.100.1"),
			Withdrawn: []netblock.Prefix{netblock.MustParsePrefix("185.0.2.0/24")},
		},
		{
			Timestamp: time.Now(), PeerAS: 21000, PeerIP: netblock.MustParseAddr("198.51.100.1"),
			Announced: []netblock.Prefix{netblock.MustParsePrefix("185.0.3.0/24")},
			Path:      bgp.NewPath(21000, 1299, 8000), Origin: bgp.OriginIGP,
		},
		{
			Timestamp: time.Now(), PeerAS: 21001, PeerIP: netblock.MustParseAddr("198.51.100.2"),
			Announced: []netblock.Prefix{netblock.MustParsePrefix("185.0.3.0/24")},
			Path:      bgp.NewPath(21001, 1299, 8000), Origin: bgp.OriginIGP,
		},
	} {
		if err := w.WriteUpdate(u, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	if err := run(&buf, []string{"-updates", upath, path}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 updates applied") {
		t.Errorf("update banner missing:\n%s", out)
	}
	if !strings.Contains(out, "185.0.3.0/24 185.0.0.0/16 5000 8000") {
		t.Errorf("new delegation missing:\n%s", out)
	}
	if strings.Contains(out, "185.0.2.0/24") {
		t.Errorf("withdrawn prefix should yield no delegation:\n%s", out)
	}

	// -updates with multiple snapshots is rejected.
	if err := run(&buf, []string{"-updates", upath, path, path}); err == nil {
		t.Error("-updates with two snapshots should fail")
	}
	// Corrupt update file.
	bad := filepath.Join(dir, "bad.mrt")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"-updates", bad, path}); err == nil {
		t.Error("corrupt updates should fail")
	}
}
