// Command simgen materializes the synthetic world as the public data
// formats the paper consumes, so the other tools (and any external MRT /
// WHOIS / transfer-log tooling) can be exercised offline:
//
//	out/
//	  rib.<collector>.<date>.mrt      TABLE_DUMP_V2 snapshots
//	  updates.<collector>.<date>.mrt  BGP4MP update streams (day -> day+1)
//	  transfers.<rir>.json            RIR transfer logs
//	  delegated-<rir>-extended.txt    NRO delegated-extended statistics
//	  ripe.db.inetnum                 WHOIS split snapshot
//	  as2org.txt                      CAIDA-style AS-to-organization map
//
// Usage:
//
//	simgen -out ./data -seed 1 -day 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ipv4market/internal/bgp"
	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("simgen", flag.ContinueOnError)
	var (
		out  = fs.String("out", "data", "output directory")
		seed = fs.Int64("seed", 1, "world seed")
		lirs = fs.Int("lirs", 40, "LIRs per major region")
		day  = fs.Int("day", 100, "routing-window day to snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := simulation.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumLIRs = *lirs
	if *day >= cfg.RoutingDays {
		return fmt.Errorf("-day %d outside routing window (%d days)", *day, cfg.RoutingDays)
	}

	world, err := simulation.Build(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	date := cfg.RoutingStart.AddDate(0, 0, *day)

	// MRT snapshots, one per collector, plus the next day's update stream.
	rs := simulation.NewRoutingSim(world)
	for i := 0; i < rs.NumCollectors(); i++ {
		c := rs.CollectorAt(*day, i)
		path := filepath.Join(*out, fmt.Sprintf("rib.%s.%s.mrt", c.Name, date.Format("20060102")))
		if err := writeFile(path, func(f io.Writer) error {
			return c.WriteSnapshot(f, date)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d peers)\n", path, c.NumPeers())

		if *day+1 >= cfg.RoutingDays {
			continue
		}
		ups := rs.UpdateStream(*day, *day+1, i)
		upath := filepath.Join(*out, fmt.Sprintf("updates.%s.%s.mrt", c.Name, date.AddDate(0, 0, 1).Format("20060102")))
		if err := writeFile(upath, func(f io.Writer) error {
			mw := bgp.NewWriter(f)
			for j := range ups {
				if err := mw.WriteUpdate(ups[j], 0, 0); err != nil {
					return err
				}
			}
			return mw.Flush()
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d updates)\n", upath, len(ups))
	}

	// Transfer logs and delegated-extended statistics per RIR.
	transfers := world.Registry.Transfers()
	for _, rir := range registry.AllRIRs() {
		tpath := filepath.Join(*out, fmt.Sprintf("transfers.%s.json", rir.StatsName()))
		if err := writeFile(tpath, func(f io.Writer) error {
			return registry.ExportTransferLog(f, rir, transfers)
		}); err != nil {
			return err
		}
		epath := filepath.Join(*out, fmt.Sprintf("delegated-%s-extended.txt", rir.StatsName()))
		if err := writeFile(epath, func(f io.Writer) error {
			return registry.ExportExtended(f, world.Registry, rir, date)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s, %s\n", tpath, epath)
	}

	// WHOIS snapshot.
	db := world.BuildWhoisDB()
	wpath := filepath.Join(*out, "ripe.db.inetnum")
	if err := writeFile(wpath, func(f io.Writer) error {
		_, err := db.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d objects)\n", wpath, db.Len())

	// as2org snapshot.
	apath := filepath.Join(*out, "as2org.txt")
	if err := writeFile(apath, func(f io.Writer) error {
		snap := world.OrgSeries.NextAfter(date)
		_, err := snap.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", apath)
	return nil
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
