package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ipv4market/internal/bgp"
	"ipv4market/internal/registry"
	"ipv4market/internal/whois"
)

func TestSimgenEmitsParseableArtifacts(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-out", dir, "-lirs", "12", "-day", "10"}); err != nil {
		t.Fatal(err)
	}

	// MRT snapshots decode and contain peers + prefixes.
	mrts, err := filepath.Glob(filepath.Join(dir, "rib.*.mrt"))
	if err != nil || len(mrts) == 0 {
		t.Fatalf("no MRT files: %v", err)
	}
	for _, path := range mrts {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		peers, entries, err := bgp.ReadRIBSnapshot(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(peers) == 0 || len(entries) == 0 {
			t.Errorf("%s: empty snapshot", path)
		}
	}

	// Transfer logs parse.
	for _, rir := range registry.AllRIRs() {
		f, err := os.Open(filepath.Join(dir, "transfers."+rir.StatsName()+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := registry.ParseTransferLog(f); err != nil {
			t.Errorf("%s transfers: %v", rir, err)
		}
		f.Close()

		ef, err := os.Open(filepath.Join(dir, "delegated-"+rir.StatsName()+"-extended.txt"))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := registry.ParseExtended(ef)
		ef.Close()
		if err != nil {
			t.Errorf("%s extended: %v", rir, err)
		}
		if rir == registry.RIPENCC && len(recs) == 0 {
			t.Error("RIPE extended stats empty")
		}
	}

	// WHOIS snapshot parses.
	wf, err := os.Open(filepath.Join(dir, "ripe.db.inetnum"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := whois.ParseSnapshot(wf)
	wf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Error("empty WHOIS snapshot")
	}
}

func TestSimgenBadDay(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-out", t.TempDir(), "-day", "99999"}); err == nil {
		t.Error("out-of-window day should fail")
	}
}
