package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipv4market/internal/rdap"
	"ipv4market/internal/whois"
)

func writeSnapshot(t *testing.T) string {
	t.Helper()
	db := whois.NewDB()
	db.Add(&whois.Inetnum{
		First: 0xB9000000, Last: 0xB900FFFF, // 185.0.0.0 - 185.0.255.255
		Netname: "TEST-LIR", Country: "DE", Org: "ORG-LIR",
		Status: whois.StatusAllocatedPA,
	})
	db.Add(&whois.Inetnum{
		First: 0xB9000000, Last: 0xB90000FF,
		Netname: "TEST-CUST", Country: "DE", Org: "ORG-CUST", AdminC: "AC1",
		Status: whois.StatusAssignedPA,
	})
	path := filepath.Join(t.TempDir(), "ripe.db.inetnum")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := db.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClientMode(t *testing.T) {
	path := writeSnapshot(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := whois.ParseSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rdap.NewServer(db))
	defer srv.Close()

	var buf bytes.Buffer
	if err := run(&buf, []string{"-query", srv.URL, "-prefix", "185.0.0.0/24"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TEST-CUST", "ASSIGNED PA", "parentHandle: 185.0.0.0 - 185.0.255.255", "registrant:   ORG-CUST", "admin-c:      AC1"} {
		if !strings.Contains(out, want) {
			t.Errorf("client output missing %q:\n%s", want, out)
		}
	}
}

func TestClientModeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-query", "http://127.0.0.1:0"}); err == nil {
		t.Error("missing -prefix should fail")
	}
	if err := run(&buf, []string{"-query", "http://127.0.0.1:0", "-prefix", "banana"}); err == nil {
		t.Error("bad prefix should fail")
	}
	if err := run(&buf, []string{"-query", "http://127.0.0.1:1", "-prefix", "185.0.0.0/24"}); err == nil {
		t.Error("unreachable server should fail")
	}
}

func TestServerModeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{}); err == nil {
		t.Error("no snapshot should fail")
	}
	if err := run(&buf, []string{"-snapshot", "/nonexistent"}); err == nil {
		t.Error("missing snapshot should fail")
	}
	// Corrupt snapshot.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("inetnum: x - y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"-snapshot", bad}); err == nil {
		t.Error("corrupt snapshot should fail")
	}
	// Bad listen address.
	good := writeSnapshot(t)
	if err := run(&buf, []string{"-snapshot", good, "-listen", "256.0.0.1:99999"}); err == nil {
		t.Error("bad listen address should fail")
	}
}
