package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipv4market/internal/rdap"
	"ipv4market/internal/whois"
)

func writeSnapshot(t *testing.T) string {
	t.Helper()
	db := whois.NewDB()
	db.Add(&whois.Inetnum{
		First: 0xB9000000, Last: 0xB900FFFF, // 185.0.0.0 - 185.0.255.255
		Netname: "TEST-LIR", Country: "DE", Org: "ORG-LIR",
		Status: whois.StatusAllocatedPA,
	})
	db.Add(&whois.Inetnum{
		First: 0xB9000000, Last: 0xB90000FF,
		Netname: "TEST-CUST", Country: "DE", Org: "ORG-CUST", AdminC: "AC1",
		Status: whois.StatusAssignedPA,
	})
	path := filepath.Join(t.TempDir(), "ripe.db.inetnum")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := db.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClientMode(t *testing.T) {
	path := writeSnapshot(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := whois.ParseSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rdap.NewServer(db))
	defer srv.Close()

	var buf bytes.Buffer
	if err := run(&buf, []string{"-query", srv.URL, "-prefix", "185.0.0.0/24"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TEST-CUST", "ASSIGNED PA", "parentHandle: 185.0.0.0 - 185.0.255.255", "registrant:   ORG-CUST", "admin-c:      AC1"} {
		if !strings.Contains(out, want) {
			t.Errorf("client output missing %q:\n%s", want, out)
		}
	}
}

// TestVarzSurface proves rdapd shares marketd's observability surface:
// /varz serves the counter document with per-route stats, and lookups
// through the instrumented mux are counted.
func TestVarzSurface(t *testing.T) {
	path := writeSnapshot(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := whois.ParseSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	db.Freeze()
	srv := httptest.NewServer(rdapHandler(db, 5*time.Second))
	defer srv.Close()

	for _, path := range []string{"/ip/185.0.0.1", "/ip/185.0.0.1", "/varz"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Routes        map[string]struct {
			Requests int64 `json:"requests"`
		} `json:"routes"`
		Snapshot json.RawMessage `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("varz document: %v", err)
	}
	if got := view.Routes["/ip/"].Requests; got != 2 {
		t.Errorf("/ip/ requests = %d, want 2", got)
	}
	if got := view.Routes["GET /varz"].Requests; got < 1 {
		t.Errorf("GET /varz requests = %d, want >= 1", got)
	}
	// rdapd has no snapshot section: the shared surface omits it rather
	// than serving empty snapshot fields.
	if view.Snapshot != nil {
		t.Errorf("rdapd varz has a snapshot section: %s", view.Snapshot)
	}
}

// TestSelfcheck runs the full -selfcheck cycle: boot on a loopback
// port, query every route, shut down clean.
func TestSelfcheck(t *testing.T) {
	path := writeSnapshot(t)
	var buf bytes.Buffer
	if err := run(&buf, []string{"-snapshot", path, "-selfcheck"}); err != nil {
		t.Fatalf("selfcheck failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"/ip/185.0.0.0", "/ip/185.0.0.0/32", "/varz", "selfcheck passed (3 endpoints)"} {
		if !strings.Contains(out, want) {
			t.Errorf("selfcheck output missing %q:\n%s", want, out)
		}
	}
}

// TestSelfcheckEmptySnapshot proves -selfcheck refuses a snapshot with
// nothing to look up instead of passing vacuously.
func TestSelfcheckEmptySnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, []string{"-snapshot", path, "-selfcheck"}); err == nil {
		t.Error("selfcheck over an empty snapshot should fail")
	}
}

func TestClientModeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-query", "http://127.0.0.1:0"}); err == nil {
		t.Error("missing -prefix should fail")
	}
	if err := run(&buf, []string{"-query", "http://127.0.0.1:0", "-prefix", "banana"}); err == nil {
		t.Error("bad prefix should fail")
	}
	if err := run(&buf, []string{"-query", "http://127.0.0.1:1", "-prefix", "185.0.0.0/24"}); err == nil {
		t.Error("unreachable server should fail")
	}
}

func TestServerModeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{}); err == nil {
		t.Error("no snapshot should fail")
	}
	if err := run(&buf, []string{"-snapshot", "/nonexistent"}); err == nil {
		t.Error("missing snapshot should fail")
	}
	// Corrupt snapshot.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("inetnum: x - y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, []string{"-snapshot", bad}); err == nil {
		t.Error("corrupt snapshot should fail")
	}
	// Bad listen address.
	good := writeSnapshot(t)
	if err := run(&buf, []string{"-snapshot", good, "-listen", "256.0.0.1:99999"}); err == nil {
		t.Error("bad listen address should fail")
	}
}
