// Command rdapd serves RFC 7483 RDAP ip-network lookups from a WHOIS
// split snapshot, or acts as a query client.
//
// Server:
//
//	rdapd -snapshot ripe.db.inetnum -listen 127.0.0.1:8080
//
// Client:
//
//	rdapd -query http://127.0.0.1:8080 -prefix 185.0.0.0/24
//
// -selfcheck boots the server on an ephemeral loopback port, queries
// every route (/ip/<addr>, /ip/<addr>/<len>, /varz) through a real HTTP
// client, and exits — the same smoke contract marketd -selfcheck has.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/rdap"
	"ipv4market/internal/serve"
	"ipv4market/internal/whois"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdapd:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("rdapd", flag.ContinueOnError)
	var (
		snapshot = fs.String("snapshot", "", "WHOIS split snapshot (RPSL inetnum objects)")
		listen   = fs.String("listen", "127.0.0.1:8080", "server listen address")
		query    = fs.String("query", "", "client mode: RDAP base URL to query")
		prefix   = fs.String("prefix", "", "client mode: prefix to look up (e.g. 185.0.0.0/24)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request handler timeout")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		selfcheck = fs.Bool("selfcheck", false, "boot on a loopback port, smoke-query every route, exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *query != "" {
		if *prefix == "" {
			return fmt.Errorf("client mode needs -prefix")
		}
		p, err := netblock.ParsePrefix(*prefix)
		if err != nil {
			return err
		}
		client := rdap.NewClient(*query, nil)
		obj, err := client.LookupPrefix(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "handle:       %s\n", obj.Handle)
		fmt.Fprintf(w, "range:        %s - %s\n", obj.StartAddress, obj.EndAddress)
		fmt.Fprintf(w, "name:         %s\n", obj.Name)
		fmt.Fprintf(w, "type:         %s\n", obj.Type)
		fmt.Fprintf(w, "country:      %s\n", obj.Country)
		fmt.Fprintf(w, "parentHandle: %s\n", obj.ParentHandle)
		if org, ok := obj.Registrant(); ok {
			fmt.Fprintf(w, "registrant:   %s\n", org)
		}
		if adm, ok := obj.Administrative(); ok {
			fmt.Fprintf(w, "admin-c:      %s\n", adm)
		}
		return nil
	}

	if *snapshot == "" {
		return fmt.Errorf("server mode needs -snapshot (or use -query for client mode)")
	}
	f, err := os.Open(*snapshot)
	if err != nil {
		return err
	}
	db, err := whois.ParseSnapshot(f)
	f.Close()
	if err != nil {
		return err
	}
	db.Freeze() // reads are concurrency-safe from here on

	if *selfcheck {
		return runSelfcheck(w, db, *timeout, *drain)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rdapd: serving %d inetnum objects on http://%s (GET /ip/<addr>[/<len>], /varz)\n", db.Len(), ln.Addr())

	// The same middleware stack and observability surface marketd uses
	// (internal/serve): recovery, per-request timeouts, per-route request
	// and latency counters on /varz, graceful shutdown on SIGINT/SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: rdapHandler(db, *timeout)}
	if err := serve.Serve(ctx, srv, ln, *drain); err != nil {
		return err
	}
	fmt.Fprintln(w, "rdapd: shut down cleanly")
	return nil
}

// runSelfcheck serves the database on an ephemeral loopback port,
// exercises every route — an address lookup, a prefix lookup, and /varz
// — through a real HTTP client, and reports pass/fail. The lookup
// targets come from the snapshot itself (its first object's start
// address), so any non-empty snapshot selfchecks without fixtures.
func runSelfcheck(w io.Writer, db *whois.DB, timeout, drain time.Duration) error {
	if db.Len() == 0 {
		return fmt.Errorf("rdapd: selfcheck: snapshot holds no inetnum objects")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("rdapd: selfcheck listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpSrv := &http.Server{Handler: rdapHandler(db, timeout)}
	done := make(chan error, 1)
	go func() { // coordinated: result drained below after cancel
		done <- serve.Serve(ctx, httpSrv, ln, drain)
	}()

	first := db.All()[0].First
	paths := []string{
		fmt.Sprintf("/ip/%s", first),
		fmt.Sprintf("/ip/%s/32", first),
		"/varz",
	}
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	var checkErr error
	for _, path := range paths {
		resp, err := client.Get(base + path)
		if err != nil {
			checkErr = fmt.Errorf("rdapd: selfcheck %s: %w", path, err)
			break
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			checkErr = fmt.Errorf("rdapd: selfcheck %s: read: %w", path, err)
			break
		}
		if resp.StatusCode != http.StatusOK {
			checkErr = fmt.Errorf("rdapd: selfcheck %s: status %d", path, resp.StatusCode)
			break
		}
		fmt.Fprintf(w, "rdapd: selfcheck %-24s %d (%d bytes)\n", path, resp.StatusCode, len(body))
	}

	cancel()
	if err := <-done; err != nil && checkErr == nil {
		checkErr = err
	}
	if checkErr != nil {
		return checkErr
	}
	fmt.Fprintf(w, "rdapd: selfcheck passed (%d endpoints)\n", len(paths))
	return nil
}

// rdapHandler assembles the server mux: RDAP lookups plus the shared
// /varz counter surface, every route instrumented through the same
// middleware stack marketd uses.
func rdapHandler(db *whois.DB, timeout time.Duration) http.Handler {
	metrics := serve.NewMetrics()
	mux := http.NewServeMux()
	mux.Handle("/ip/", serve.Wrap(rdap.NewServer(db), metrics, "/ip/", timeout))
	mux.Handle("GET /varz", serve.Wrap(metrics.VarzHandler(), metrics, "GET /varz", timeout))
	return mux
}
