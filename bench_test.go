package ipv4market_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ipv4market/internal/bgp"
	"ipv4market/internal/core"
	"ipv4market/internal/delegation"
	"ipv4market/internal/market"
	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
)

// The benchmarks below regenerate every table and figure of the paper
// (one benchmark per artifact), plus ablations of the design choices
// DESIGN.md calls out. They share one moderately sized world, built once.

var (
	studyOnce sync.Once
	study     *core.Study
	studyErr  error
)

func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		cfg := simulation.DefaultConfig()
		cfg.NumLIRs = 24
		cfg.RoutingDays = 180
		cfg.AdministrativeLeases = 400
		cfg.RoutedLeases = 150
		study, studyErr = core.NewStudy(cfg)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

func BenchmarkTable1ExhaustionTimeline(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.Table1(); len(rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure1PriceEvolution(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cells := s.Figure1(); len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkFigure2TransferCounts(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if counts := s.Figure2(); len(counts) == 0 {
			b.Fatal("no counts")
		}
	}
}

func BenchmarkFigure3InterRIR(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if flows := s.Figure3(); len(flows) == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkFigure4LeasingPrices(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if points := s.Figure4(); len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure5ConsistencyRule(b *testing.B) {
	s := benchStudy(b)
	ms := []int{2, 5, 10, 20, 40, 60, 80, 100}
	ns := []int{0, 1, 2, 3, 5, 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := s.Figure5(ms, ns)
		if err != nil || len(grid) != len(ms)*len(ns) {
			b.Fatalf("grid: %v", err)
		}
	}
}

func BenchmarkFigure6Delegations(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6(15)
		if err != nil || len(res.Points) == 0 {
			b.Fatalf("figure6: %v", err)
		}
	}
}

func BenchmarkStatBGPvsRDAP(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Coverage()
		if err != nil || res.RDAPDelegations == 0 {
			b.Fatalf("coverage: %v", err)
		}
	}
}

func BenchmarkStatHeadlinePricing(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Headline(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmortization(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rows := s.AmortizationTable(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---- ablations ----

// BenchmarkAblationVisibilityThreshold sweeps extension (ii)'s monitor
// threshold. The paper's footnote: anywhere in 10-90% the inferred
// delegations barely change. The per-threshold delegation count is
// reported as a metric.
func BenchmarkAblationVisibilityThreshold(b *testing.B) {
	s := benchStudy(b)
	survey := s.Routing.SurveyAt(90)
	date := s.Cfg.RoutingStart.AddDate(0, 0, 90)
	for _, threshold := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		b.Run(thresholdName(threshold), func(b *testing.B) {
			inf := delegation.Inference{MinVisibility: threshold, Orgs: s.World.OrgSeries}
			var n int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n = len(inf.FromSurvey(date, survey))
			}
			b.ReportMetric(float64(n), "delegations")
		})
	}
}

func thresholdName(t float64) string {
	switch t {
	case 0.1:
		return "vis=10%"
	case 0.3:
		return "vis=30%"
	case 0.5:
		return "vis=50%"
	case 0.7:
		return "vis=70%"
	case 0.9:
		return "vis=90%"
	}
	return "vis=?"
}

// BenchmarkAblationRuleWindow sweeps extension (v)'s gap-filling window
// around the paper's 10 days.
func BenchmarkAblationRuleWindow(b *testing.B) {
	s := benchStudy(b)
	h := s.World.BuildRPKIHistory(0.8, simulation.DefaultROADropProb)
	for _, m := range []int{5, 10, 20, 50} {
		name := map[int]string{5: "M=5", 10: "M=10", 20: "M=20", 50: "M=50"}[m]
		b.Run(name, func(b *testing.B) {
			var fail float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := h.EvaluateRule(m, 0)
				if err != nil {
					b.Fatal(err)
				}
				fail = r.FailRate()
			}
			b.ReportMetric(fail, "failrate")
		})
	}
}

// BenchmarkTrieVsScan compares the radix trie against a linear scan for
// the covering-prefix lookups the inference pipeline performs.
func BenchmarkTrieVsScan(b *testing.B) {
	s := benchStudy(b)
	clean := s.Routing.SurveyAt(90).CleanPairs(0.5)
	prefixes := make([]netblock.Prefix, 0, len(clean))
	trie := netblock.NewTrie[bool]()
	for p := range clean {
		prefixes = append(prefixes, p)
		trie.Insert(p, true)
	}
	queries := prefixes
	if len(queries) > 256 {
		queries = queries[:256]
	}

	b.Run("trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				trie.Covering(q)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				for _, p := range prefixes {
					if p.Covers(q) {
						_ = p
					}
				}
			}
		}
	})
}

// BenchmarkMRTDecode measures MRT snapshot decode throughput.
func BenchmarkMRTDecode(b *testing.B) {
	s := benchStudy(b)
	c := s.Routing.CollectorAt(90, 0)
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf, time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bgp.ReadRIBSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRTEncode measures MRT snapshot encode throughput.
func BenchmarkMRTEncode(b *testing.B) {
	s := benchStudy(b)
	c := s.Routing.CollectorAt(90, 0)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := c.WriteSnapshot(&buf, time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkTransferLogRoundTrip measures the transfer-statistics JSON
// encode/decode cycle over the full simulated history.
func BenchmarkTransferLogRoundTrip(b *testing.B) {
	s := benchStudy(b)
	transfers := s.World.Registry.Transfers()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := registry.ExportTransferLog(&buf, registry.ARIN, transfers); err != nil {
			b.Fatal(err)
		}
		if _, err := registry.ParseTransferLog(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurveyBuild measures one day of multi-collector survey
// construction — the inner loop of the Figure 6 pipeline.
func BenchmarkSurveyBuild(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Routing.SurveyAt(i%s.Cfg.RoutingDays).NumMonitors() == 0 {
			b.Fatal("empty survey")
		}
	}
}

// BenchmarkLeasingSnapshot measures the Figure 4 price-book summary.
func BenchmarkLeasingSnapshot(b *testing.B) {
	providers := market.PaperProviders()
	when := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := market.SnapshotAt(providers, when); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatWaitingLists(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if outs := s.WaitingLists(); len(outs) != 2 {
			b.Fatal("bad outcome")
		}
	}
}

func BenchmarkStatReputation(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := s.Reputation(); r.Listings == 0 {
			b.Fatal("no listings")
		}
	}
}

func BenchmarkStatMergerHeuristic(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ev := s.Mergers(); ev.Transfers == 0 {
			b.Fatal("no transfers")
		}
	}
}

func BenchmarkStatCombinedEstimate(b *testing.B) {
	s := benchStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := s.Combined()
		if err != nil || est.TruthIPs == 0 {
			b.Fatalf("combined: %v", err)
		}
	}
}

// BenchmarkWorldBuild measures full world generation at harness scale.
func BenchmarkWorldBuild(b *testing.B) {
	cfg := simulation.DefaultConfig()
	cfg.NumLIRs = 24
	cfg.RoutingDays = 120
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simulation.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSampleStride sweeps Figure 6's temporal sampling: the
// paper processes every day; coarser strides trade temporal resolution
// (and the fidelity of the 10-day rule) for compute. The reported metric
// is the final extended-delegation count.
func BenchmarkAblationSampleStride(b *testing.B) {
	s := benchStudy(b)
	for _, stride := range []int{1, 5, 15, 30} {
		name := map[int]string{1: "daily", 5: "5d", 15: "15d", 30: "30d"}[stride]
		b.Run(name, func(b *testing.B) {
			var last int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.Figure6(stride)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Points[len(res.Points)-1].ExtendedCount
			}
			b.ReportMetric(float64(last), "delegations")
		})
	}
}
