package market

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func TestServeAndFetchQuote(t *testing.T) {
	providers := PaperProviders()
	heficed := &providers[2] // Heficed, price change 2020-03
	if heficed.Name != "Heficed" {
		t.Fatal("provider order changed")
	}
	// Before the change.
	srv := httptest.NewServer(ServeQuote(heficed, fixedClock(date(2020, 1, 15))))
	defer srv.Close()
	q, err := FetchQuote(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if q.Provider != "Heficed" || q.PricePerIPMonth != 0.65 || !q.Bundled || q.PrefixSize != 24 {
		t.Errorf("quote = %+v", q)
	}
	// After the change.
	srv2 := httptest.NewServer(ServeQuote(heficed, fixedClock(date(2020, 4, 15))))
	defer srv2.Close()
	q2, err := FetchQuote(srv2.Client(), srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if q2.PricePerIPMonth != 0.40 {
		t.Errorf("post-change price = %v", q2.PricePerIPMonth)
	}
}

func TestServeQuoteErrors(t *testing.T) {
	providers := PaperProviders()
	srv := httptest.NewServer(ServeQuote(&providers[0], fixedClock(date(2018, 1, 1))))
	defer srv.Close()
	// Before the observation window: the page 404s.
	if _, err := FetchQuote(srv.Client(), srv.URL); err == nil {
		t.Error("pre-window quote should fail")
	}
	// Wrong path.
	resp, err := srv.Client().Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("wrong path status = %d", resp.StatusCode)
	}
}

func TestScrapeFullCampaign(t *testing.T) {
	// Spin up all 21 provider sites as of June 2020 and rebuild Figure
	// 4's snapshot purely from scraped quotes.
	providers := PaperProviders()
	at := date(2020, 6, 1)
	var urls []string
	for i := range providers {
		srv := httptest.NewServer(ServeQuote(&providers[i], fixedClock(at)))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	res := Scrape(nil, urls)
	if len(res.Errors) != 0 {
		t.Fatalf("errors = %v", res.Errors)
	}
	if len(res.Quotes) != 21 {
		t.Fatalf("quotes = %d", len(res.Quotes))
	}
	snap, err := SnapshotFromQuotes(res.Quotes, at)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree exactly with the curated price book.
	direct, err := SnapshotAt(providers, at)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Min != direct.Min || snap.Max != direct.Max || snap.Providers != direct.Providers {
		t.Errorf("scraped %+v vs direct %+v", snap, direct)
	}
	if snap.Min != 0.30 || snap.Max != 2.33 {
		t.Errorf("range = %v-%v", snap.Min, snap.Max)
	}
}

func TestScrapeToleratesFailures(t *testing.T) {
	providers := PaperProviders()
	at := date(2020, 6, 1)
	good := httptest.NewServer(ServeQuote(&providers[0], fixedClock(at)))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer garbage.Close()

	res := Scrape(nil, []string{good.URL, bad.URL, garbage.URL, "http://127.0.0.1:1"})
	if len(res.Quotes) != 1 || res.Quotes[0].Provider != providers[0].Name {
		t.Errorf("quotes = %+v", res.Quotes)
	}
	if len(res.Errors) != 3 {
		t.Errorf("errors = %d", len(res.Errors))
	}
}

func TestSnapshotFromQuotesEmpty(t *testing.T) {
	if _, err := SnapshotFromQuotes(nil, date(2020, 6, 1)); err != ErrNoPrices {
		t.Errorf("err = %v", err)
	}
}

func TestFetchQuoteValidation(t *testing.T) {
	// Syntactically valid JSON but missing fields.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"provider":"", "price_per_ip_month": 0}`))
	}))
	defer srv.Close()
	if _, err := FetchQuote(srv.Client(), srv.URL); err == nil {
		t.Error("empty quote should fail validation")
	}
}
