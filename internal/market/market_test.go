package market

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func pfx(s string) netblock.Prefix { return netblock.MustParsePrefix(s) }

func tr(from, to registry.RIR, typ registry.TransferType, p string, d time.Time) registry.Transfer {
	return registry.Transfer{
		Prefix: pfx(p), From: "s", To: "b",
		FromRIR: from, ToRIR: to, Type: typ, Date: d,
	}
}

func TestFilterMarketTransfers(t *testing.T) {
	in := []registry.Transfer{
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMarket, "185.0.0.0/24", date(2020, 1, 1)),
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMerger, "185.0.1.0/24", date(2020, 1, 2)),
		tr(registry.APNIC, registry.APNIC, registry.TypeMerger, "103.0.0.0/24", date(2020, 1, 3)),
	}
	out := FilterMarketTransfers(in)
	// RIPE labels M&A → removed; APNIC does not → kept.
	if len(out) != 2 {
		t.Fatalf("filtered = %v", out)
	}
	for _, x := range out {
		if x.FromRIR == registry.RIPENCC && x.Type == registry.TypeMerger {
			t.Error("labeled M&A survived the filter")
		}
	}
}

func TestQuarterlyCounts(t *testing.T) {
	in := []registry.Transfer{
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMarket, "185.0.0.0/24", date(2020, 1, 10)),
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMarket, "185.0.1.0/24", date(2020, 2, 10)),
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMarket, "185.0.2.0/24", date(2020, 5, 10)),
		tr(registry.ARIN, registry.RIPENCC, registry.TypeMarket, "23.0.0.0/24", date(2020, 1, 15)), // inter-RIR: excluded
	}
	got := QuarterlyCounts(in)
	ripe := got[registry.RIPENCC]
	if len(ripe) != 2 {
		t.Fatalf("ripe series = %v", ripe)
	}
	if ripe[0].Quarter != (stats.Quarter{Year: 2020, Q: 1}) || ripe[0].Count != 2 {
		t.Errorf("ripe[0] = %+v", ripe[0])
	}
	if ripe[1].Quarter != (stats.Quarter{Year: 2020, Q: 2}) || ripe[1].Count != 1 {
		t.Errorf("ripe[1] = %+v", ripe[1])
	}
	if _, ok := got[registry.ARIN]; ok {
		t.Error("inter-RIR transfer should not appear in Figure 2 counts")
	}
}

func TestInterRIRFlowsAndNetFlow(t *testing.T) {
	in := []registry.Transfer{
		tr(registry.ARIN, registry.RIPENCC, registry.TypeMarket, "23.0.0.0/16", date(2019, 3, 1)),
		tr(registry.ARIN, registry.APNIC, registry.TypeMarket, "23.1.0.0/20", date(2019, 6, 1)),
		tr(registry.ARIN, registry.RIPENCC, registry.TypeMarket, "23.2.0.0/22", date(2020, 2, 1)),
		tr(registry.RIPENCC, registry.RIPENCC, registry.TypeMarket, "185.0.0.0/24", date(2019, 4, 1)), // intra: excluded
	}
	flows := InterRIRFlows(in)
	if len(flows) != 3 {
		t.Fatalf("flows = %v", flows)
	}
	if flows[0].Year != 2019 || flows[0].From != registry.ARIN || flows[0].To != registry.APNIC {
		t.Errorf("flows[0] = %+v (sorted by year, from, to)", flows[0])
	}
	nf := NetFlow(in, date(2019, 1, 1), date(2021, 1, 1))
	wantARIN := -int64(1<<16 + 1<<12 + 1<<10)
	if nf[registry.ARIN] != wantARIN {
		t.Errorf("ARIN net flow = %d, want %d", nf[registry.ARIN], wantARIN)
	}
	if nf[registry.RIPENCC] != int64(1<<16+1<<10) {
		t.Errorf("RIPE net flow = %d", nf[registry.RIPENCC])
	}
	mbs := MeanBlockSizeByYear(in)
	if mbs[2019] != float64(1<<16+1<<12)/2 {
		t.Errorf("2019 mean block = %v", mbs[2019])
	}
	if mbs[2020] != 1<<10 {
		t.Errorf("2020 mean block = %v", mbs[2020])
	}
}

func genPrices(rng *rand.Rand) []PriceRecord {
	// Synthetic price trajectory: $10 in 2016 doubling to ~$22 by 2019,
	// flat afterwards; same distribution across regions.
	var recs []PriceRecord
	regions := []registry.RIR{registry.APNIC, registry.ARIN, registry.RIPENCC}
	for day := date(2016, 1, 1); day.Before(date(2020, 7, 1)); day = day.AddDate(0, 0, 3) {
		years := day.Sub(date(2016, 1, 1)).Hours() / 24 / 365
		level := 10 * math.Pow(2, math.Min(years/3.2, 1)) // doubles over ~3.2y then flat
		for i := 0; i < 2; i++ {
			recs = append(recs, PriceRecord{
				Date:         day,
				Region:       regions[rng.Intn(len(regions))],
				Bits:         17 + rng.Intn(8),
				PricePerAddr: level * (0.9 + 0.2*rng.Float64()),
			})
		}
	}
	return recs
}

func TestPriceBoxesGrouping(t *testing.T) {
	recs := []PriceRecord{
		{Date: date(2020, 1, 5), Region: registry.ARIN, Bits: 24, PricePerAddr: 20},
		{Date: date(2020, 2, 5), Region: registry.ARIN, Bits: 24, PricePerAddr: 24},
		{Date: date(2020, 1, 5), Region: registry.RIPENCC, Bits: 24, PricePerAddr: 22},
		{Date: date(2020, 4, 5), Region: registry.ARIN, Bits: 24, PricePerAddr: 30},
	}
	cells := PriceBoxes(recs)
	if len(cells) != 3 {
		t.Fatalf("cells = %+v", cells)
	}
	// First cell: 2020Q1 ARIN /24 with 2 samples.
	c := cells[0]
	if c.Quarter != (stats.Quarter{Year: 2020, Q: 1}) || c.Region != registry.ARIN || c.Box.N != 2 {
		t.Errorf("cells[0] = %+v", c)
	}
	if c.Box.Median != 22 {
		t.Errorf("median = %v", c.Box.Median)
	}
}

func TestHeadlinePriceStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := genPrices(rng)

	// Doubling since 2016.
	factor, err := GrowthFactor(recs,
		date(2016, 1, 1), date(2016, 7, 1),
		date(2020, 1, 1), date(2020, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if factor < 1.8 || factor > 2.2 {
		t.Errorf("growth factor = %v, want ≈2", factor)
	}

	// No region effect.
	re, err := RegionEffect(recs, date(2019, 1, 1), date(2020, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if re.Significant(0.01) {
		t.Errorf("regions should not differ: p = %v", re.PValue)
	}
	pw, err := PairwiseRegionEffect(recs, registry.ARIN, registry.RIPENCC, date(2019, 1, 1), date(2020, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if pw.Significant(0.01) {
		t.Errorf("pairwise regions should not differ: p = %v", pw.PValue)
	}

	// Consolidation detected somewhere in 2019 (level flattens then).
	cons, ok := DetectConsolidation(recs, 0.02, 4)
	if !ok {
		t.Fatal("no consolidation detected")
	}
	if cons.Since.Year < 2018 || cons.Since.Year > 2020 {
		t.Errorf("consolidation since %v", cons.Since)
	}
	if cons.MedianEnd < 15 {
		t.Errorf("end level = %v", cons.MedianEnd)
	}

	if _, err := MeanPrice(recs, date(2010, 1, 1), date(2011, 1, 1)); err != ErrNoRecords {
		t.Errorf("empty window err = %v", err)
	}
	med, err := MedianPrice(recs, date(2020, 1, 1), date(2020, 7, 1))
	if err != nil || med < 15 || med > 30 {
		t.Errorf("median 2020 = %v, %v", med, err)
	}
}

func TestSizeEffect(t *testing.T) {
	var recs []PriceRecord
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		// Small blocks cost ~25, large ~20.
		recs = append(recs, PriceRecord{
			Date: date(2020, 1, 1+i%150), Region: registry.ARIN, Bits: 24,
			PricePerAddr: 25 + rng.NormFloat64(),
		})
		recs = append(recs, PriceRecord{
			Date: date(2020, 1, 1+i%150), Region: registry.ARIN, Bits: 18,
			PricePerAddr: 20 + rng.NormFloat64(),
		})
	}
	premium, test, err := SizeEffect(recs, date(2020, 1, 1), date(2020, 7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if premium < 1.15 || premium > 1.35 {
		t.Errorf("premium = %v", premium)
	}
	if !test.Significant(0.001) {
		t.Errorf("size effect should be significant: p = %v", test.PValue)
	}
}

func TestQuarterlyMedians(t *testing.T) {
	recs := []PriceRecord{
		{Date: date(2020, 1, 5), PricePerAddr: 10},
		{Date: date(2020, 2, 5), PricePerAddr: 20},
		{Date: date(2020, 5, 5), PricePerAddr: 30},
	}
	med := QuarterlyMedians(recs)
	if len(med) != 2 || med[0].Median != 15 || med[0].N != 2 || med[1].Median != 30 {
		t.Errorf("medians = %+v", med)
	}
}

func TestLeasingPriceBook(t *testing.T) {
	providers := PaperProviders()
	if len(providers) != 21 {
		t.Fatalf("providers = %d, want 21", len(providers))
	}

	// Snapshot on 2019-11-01: only the 12 first-wave providers.
	early, err := SnapshotAt(providers, date(2019, 11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if early.Providers != 12 {
		t.Errorf("early providers = %d", early.Providers)
	}

	// Snapshot on 2020-06-01: all 21; range $0.30-$2.33 (§4).
	final, err := SnapshotAt(providers, date(2020, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if final.Providers != 21 {
		t.Errorf("final providers = %d", final.Providers)
	}
	if final.Min != 0.30 || final.Max != 2.33 {
		t.Errorf("range = $%.2f-$%.2f, want $0.30-$2.33", final.Min, final.Max)
	}
	// No structural difference between pure and bundled (within 2x).
	ratio := final.PureMean / final.BundledMean
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("pure/bundled ratio = %v", ratio)
	}

	// Exactly three providers changed prices; IP-AS peaked at $3.90.
	changed := ChangedProviders(providers)
	if len(changed) != 3 {
		t.Fatalf("changed = %v", changed)
	}
	want := map[string]bool{"Heficed": true, "IP-AS": true, "IPv4Mall": true}
	for _, n := range changed {
		if !want[n] {
			t.Errorf("unexpected changer %q", n)
		}
	}
	changes := PriceChanges(providers)
	var sawSpike bool
	for _, c := range changes {
		if c.Provider == "IP-AS" && c.To == 3.90 {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Error("IP-AS January $3.90 spike missing")
	}

	// January snapshot max must reflect the spike: >10x the minimum.
	jan, err := SnapshotAt(providers, date(2020, 1, 15))
	if err != nil {
		t.Fatal(err)
	}
	if jan.Max/jan.Min <= 10 {
		t.Errorf("January spike factor = %v, want > 10", jan.Max/jan.Min)
	}

	// Before observation: no prices.
	if _, err := SnapshotAt(providers, date(2019, 1, 1)); err != ErrNoPrices {
		t.Errorf("pre-observation err = %v", err)
	}
	// PriceAt before window.
	if _, ok := providers[0].PriceAt(date(2019, 1, 1)); ok {
		t.Error("PriceAt before observation should be false")
	}
}

func TestAmortization(t *testing.T) {
	// §6/§7: $22.50 per address, leasing $0.30-$2.33 → amortization from
	// under a year to multiple tens of years.
	fast := Amortization{BuyPricePerAddr: 22.5, BrokerCommission: 0.05, LeasePerAddrMonth: 2.33}
	m, err := fast.Months()
	if err != nil {
		t.Fatal(err)
	}
	if m < 9 || m > 11 {
		t.Errorf("fast amortization = %v months", m)
	}
	slow := Amortization{
		BuyPricePerAddr: 22.5, BrokerCommission: 0.05,
		MaintenancePerAddrYear: 3.0, // $0.25/month holding cost
		LeasePerAddrMonth:      0.30,
	}
	y, err := slow.Years()
	if err != nil {
		t.Fatal(err)
	}
	if y < 30 || y > 45 {
		t.Errorf("slow amortization = %v years (paper: up to 36)", y)
	}

	// Never amortizes: maintenance exceeds the lease rate.
	never := Amortization{BuyPricePerAddr: 22.5, MaintenancePerAddrYear: 6, LeasePerAddrMonth: 0.30}
	if _, err := never.Months(); err != ErrNeverAmortizes {
		t.Errorf("err = %v, want ErrNeverAmortizes", err)
	}
	// Invalid input.
	if _, err := (Amortization{}).Months(); err != ErrBadInput {
		t.Errorf("err = %v, want ErrBadInput", err)
	}

	grid := Grid(22.5, 0.05, 1.5, []float64{0.05, 0.30, 1.0, 2.33})
	if len(grid) != 4 {
		t.Fatal("grid size")
	}
	if grid[0].Amortizes {
		t.Error("$0.05/month should never amortize against $0.125 maintenance")
	}
	if !grid[3].Amortizes || grid[3].Months > grid[1].Months {
		t.Error("higher lease rates must amortize faster")
	}
	if !math.IsInf(grid[0].Months, 1) {
		t.Error("non-amortizing rows carry +Inf")
	}
}
