package market

import (
	"errors"
	"sort"
	"time"

	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// PriceRecord is one anonymized broker transaction: the paper's pricing
// data set tracks the region, prefix size, date and per-address price of
// each deal, never the prefix or the parties.
type PriceRecord struct {
	Date         time.Time
	Region       registry.RIR
	Bits         int // prefix length; the data covers /16 and more-specific
	PricePerAddr float64
}

// PriceCell is one box of Figure 1: the price distribution for a (prefix
// size, region, quarter) group.
type PriceCell struct {
	Bits    int
	Region  registry.RIR
	Quarter stats.Quarter
	Box     stats.BoxPlot
}

// PriceBoxes groups the records by prefix size, region and quarter and
// summarizes each group — the data behind Figure 1. Cells are sorted by
// quarter, then bits, then region.
func PriceBoxes(records []PriceRecord) []PriceCell {
	type key struct {
		bits   int
		region registry.RIR
		q      stats.Quarter
	}
	groups := make(map[key][]float64)
	for _, r := range records {
		k := key{r.Bits, r.Region, stats.QuarterOf(r.Date)}
		groups[k] = append(groups[k], r.PricePerAddr)
	}
	out := make([]PriceCell, 0, len(groups))
	for k, xs := range groups {
		box, err := stats.Summarize(xs)
		if err != nil {
			continue
		}
		out = append(out, PriceCell{Bits: k.bits, Region: k.region, Quarter: k.q, Box: box})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Quarter != b.Quarter {
			return a.Quarter.Before(b.Quarter)
		}
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		return a.Region < b.Region
	})
	return out
}

// ErrNoRecords reports an empty selection.
var ErrNoRecords = errors.New("market: no price records in selection")

func selectPrices(records []PriceRecord, from, to time.Time, filter func(PriceRecord) bool) []float64 {
	var xs []float64
	for _, r := range records {
		if r.Date.Before(from) || !r.Date.Before(to) {
			continue
		}
		if filter != nil && !filter(r) {
			continue
		}
		xs = append(xs, r.PricePerAddr)
	}
	return xs
}

// MeanPrice returns the mean per-address price over [from, to).
func MeanPrice(records []PriceRecord, from, to time.Time) (float64, error) {
	xs := selectPrices(records, from, to, nil)
	if len(xs) == 0 {
		return 0, ErrNoRecords
	}
	return stats.Mean(xs), nil
}

// MedianPrice returns the median per-address price over [from, to).
func MedianPrice(records []PriceRecord, from, to time.Time) (float64, error) {
	xs := selectPrices(records, from, to, nil)
	if len(xs) == 0 {
		return 0, ErrNoRecords
	}
	return stats.Median(xs)
}

// GrowthFactor returns mean(price in [laterFrom, laterTo)) divided by
// mean(price in [earlyFrom, earlyTo)). The paper reports a factor of ~2
// between 2016 and 2020.
func GrowthFactor(records []PriceRecord, earlyFrom, earlyTo, laterFrom, laterTo time.Time) (float64, error) {
	early, err := MeanPrice(records, earlyFrom, earlyTo)
	if err != nil {
		return 0, err
	}
	later, err := MeanPrice(records, laterFrom, laterTo)
	if err != nil {
		return 0, err
	}
	if early <= 0 {
		return 0, errors.New("market: zero early-period price")
	}
	return later / early, nil
}

// RegionEffect tests whether prices differ across the three active
// regions (APNIC, ARIN, RIPE NCC) over [from, to) with a Kruskal-Wallis
// test. The paper finds no statistically significant difference.
func RegionEffect(records []PriceRecord, from, to time.Time) (stats.RankTestResult, error) {
	var groups [][]float64
	for _, rir := range []registry.RIR{registry.APNIC, registry.ARIN, registry.RIPENCC} {
		rir := rir
		xs := selectPrices(records, from, to, func(r PriceRecord) bool { return r.Region == rir })
		if len(xs) < 2 {
			return stats.RankTestResult{}, ErrNoRecords
		}
		groups = append(groups, xs)
	}
	return stats.KruskalWallis(groups...)
}

// PairwiseRegionEffect runs Mann-Whitney U between two specific regions.
func PairwiseRegionEffect(records []PriceRecord, a, b registry.RIR, from, to time.Time) (stats.RankTestResult, error) {
	xa := selectPrices(records, from, to, func(r PriceRecord) bool { return r.Region == a })
	xb := selectPrices(records, from, to, func(r PriceRecord) bool { return r.Region == b })
	if len(xa) < 2 || len(xb) < 2 {
		return stats.RankTestResult{}, ErrNoRecords
	}
	return stats.MannWhitneyU(xa, xb)
}

// SizeEffect compares small-block (/24, /23) prices against larger blocks
// over [from, to); the paper reports a small-block premium.
func SizeEffect(records []PriceRecord, from, to time.Time) (premium float64, test stats.RankTestResult, err error) {
	small := selectPrices(records, from, to, func(r PriceRecord) bool { return r.Bits >= 23 })
	large := selectPrices(records, from, to, func(r PriceRecord) bool { return r.Bits < 23 })
	if len(small) < 2 || len(large) < 2 {
		return 0, stats.RankTestResult{}, ErrNoRecords
	}
	test, err = stats.MannWhitneyU(small, large)
	if err != nil {
		return 0, stats.RankTestResult{}, err
	}
	return stats.Mean(small) / stats.Mean(large), test, nil
}

// QuarterlyMedians returns the median price per quarter, sorted.
func QuarterlyMedians(records []PriceRecord) []struct {
	Quarter stats.Quarter
	Median  float64
	N       int
} {
	groups := make(map[stats.Quarter][]float64)
	for _, r := range records {
		q := stats.QuarterOf(r.Date)
		groups[q] = append(groups[q], r.PricePerAddr)
	}
	qs := make([]stats.Quarter, 0, len(groups))
	for q := range groups {
		qs = append(qs, q)
	}
	stats.SortQuarters(qs)
	out := make([]struct {
		Quarter stats.Quarter
		Median  float64
		N       int
	}, 0, len(qs))
	for _, q := range qs {
		m, _ := stats.Median(groups[q])
		out = append(out, struct {
			Quarter stats.Quarter
			Median  float64
			N       int
		}{q, m, len(groups[q])})
	}
	return out
}

// Consolidation describes a detected market consolidation phase: a
// trailing window of quarters whose median price barely moves.
type Consolidation struct {
	Since     stats.Quarter
	Quarters  int
	SlopePerQ float64 // fitted $/quarter over the phase
	MedianEnd float64 // median price in the last quarter
	RelSlope  float64 // |slope| / median
}

// DetectConsolidation finds the earliest quarter q such that the linear
// fit of quarterly medians from q to the end has a relative slope below
// tol (e.g. 0.02 = 2% of the price level per quarter) and the phase spans
// at least minQuarters. The paper identifies such a phase from Spring 2019.
func DetectConsolidation(records []PriceRecord, tol float64, minQuarters int) (Consolidation, bool) {
	med := QuarterlyMedians(records)
	if len(med) < minQuarters {
		return Consolidation{}, false
	}
	for start := 0; start+minQuarters <= len(med); start++ {
		var xs, ys []float64
		for i := start; i < len(med); i++ {
			xs = append(xs, float64(med[i].Quarter.Index()))
			ys = append(ys, med[i].Median)
		}
		fit, err := stats.LinearRegression(xs, ys)
		if err != nil {
			continue
		}
		level := med[len(med)-1].Median
		if level <= 0 {
			continue
		}
		rel := fit.Slope / level
		if rel < 0 {
			rel = -rel
		}
		if rel <= tol {
			return Consolidation{
				Since:     med[start].Quarter,
				Quarters:  len(med) - start,
				SlopePerQ: fit.Slope,
				MedianEnd: level,
				RelSlope:  rel,
			}, true
		}
	}
	return Consolidation{}, false
}
