package market

import (
	"testing"
	"time"

	"ipv4market/internal/registry"
)

func mtr(from, to registry.OrgID, typ registry.TransferType, p string, d time.Time) registry.Transfer {
	return registry.Transfer{
		Prefix: pfx(p), From: from, To: to,
		FromRIR: registry.APNIC, ToRIR: registry.APNIC, Type: typ, Date: d,
	}
}

func TestMergerHeuristicInfer(t *testing.T) {
	h := DefaultMergerHeuristic()
	transfers := []registry.Transfer{
		// A consolidation burst: four same-pair transfers within a week.
		mtr("acq", "parent", registry.TypeMerger, "103.0.0.0/22", date(2019, 3, 1)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.4.0/22", date(2019, 3, 2)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.8.0/22", date(2019, 3, 3)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.12.0/22", date(2019, 3, 4)),
		// A lone market sale.
		mtr("s1", "b1", registry.TypeMarket, "103.1.0.0/24", date(2019, 4, 1)),
		// A repeated pair, but spread over a year: not a burst.
		mtr("s2", "b2", registry.TypeMarket, "103.2.0.0/24", date(2019, 1, 1)),
		mtr("s2", "b2", registry.TypeMarket, "103.2.1.0/24", date(2019, 6, 1)),
		mtr("s2", "b2", registry.TypeMarket, "103.2.2.0/24", date(2019, 12, 1)),
	}
	flags := h.Infer(transfers)
	for i := 0; i < 4; i++ {
		if !flags[i] {
			t.Errorf("burst transfer %d not flagged", i)
		}
	}
	for i := 4; i < len(transfers); i++ {
		if flags[i] {
			t.Errorf("non-burst transfer %d flagged", i)
		}
	}
}

func TestMergerHeuristicUnsortedInput(t *testing.T) {
	h := DefaultMergerHeuristic()
	// Same burst, shuffled order: the sliding window must still find it.
	transfers := []registry.Transfer{
		mtr("acq", "parent", registry.TypeMerger, "103.0.8.0/22", date(2019, 3, 3)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.0.0/22", date(2019, 3, 1)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.12.0/22", date(2019, 3, 4)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.4.0/22", date(2019, 3, 2)),
	}
	flags := h.Infer(transfers)
	for i, f := range flags {
		if !f {
			t.Errorf("shuffled burst transfer %d not flagged", i)
		}
	}
}

func TestEvaluateMergerHeuristic(t *testing.T) {
	h := DefaultMergerHeuristic()
	transfers := []registry.Transfer{
		mtr("acq", "parent", registry.TypeMerger, "103.0.0.0/22", date(2019, 3, 1)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.4.0/22", date(2019, 3, 2)),
		mtr("acq", "parent", registry.TypeMerger, "103.0.8.0/22", date(2019, 3, 3)),
		mtr("s1", "b1", registry.TypeMarket, "103.1.0.0/24", date(2019, 4, 1)),
		mtr("s2", "b2", registry.TypeMerger, "103.3.0.0/22", date(2019, 5, 1)), // lone M&A: missed
	}
	ev := EvaluateMergerHeuristic(h, transfers)
	if ev.Transfers != 5 || ev.TrueMergers != 4 {
		t.Fatalf("eval = %+v", ev)
	}
	if ev.Flagged != 3 || ev.TruePositives != 3 {
		t.Errorf("eval = %+v", ev)
	}
	if ev.Precision != 1.0 {
		t.Errorf("precision = %v", ev.Precision)
	}
	if ev.Recall != 0.75 {
		t.Errorf("recall = %v", ev.Recall)
	}
}

func TestEvaluateMergerHeuristicEmpty(t *testing.T) {
	ev := EvaluateMergerHeuristic(DefaultMergerHeuristic(), nil)
	if ev.Precision != 0 || ev.Recall != 0 || ev.Flagged != 0 {
		t.Errorf("empty eval = %+v", ev)
	}
}
