package market

import (
	"errors"
	"math"
)

// Amortization models the §6 buy-vs-lease tradeoff: buying costs an
// upfront price per address (plus broker commission) and ongoing RIR
// maintenance fees, while leasing costs a monthly rate. The amortization
// time is when cumulative leasing costs would have exceeded the cost of
// ownership.
type Amortization struct {
	// BuyPricePerAddr is the market price per address (≈ $22.50 in 2020).
	BuyPricePerAddr float64
	// BrokerCommission is the broker's cut on the purchase (5-10%).
	BrokerCommission float64
	// MaintenancePerAddrYear is the RIR membership/maintenance fee
	// attributable to one address per year.
	MaintenancePerAddrYear float64
	// LeasePerAddrMonth is the advertised leasing rate.
	LeasePerAddrMonth float64
}

// Errors returned by Months.
var (
	ErrNeverAmortizes = errors.New("market: leasing is cheaper than holding costs; buying never amortizes")
	ErrBadInput       = errors.New("market: invalid amortization input")
)

// Months returns the amortization time in months: the point where renting
// the same space would have cost as much as buying it (including the
// commission) plus the maintenance paid while owning it.
func (a Amortization) Months() (float64, error) {
	if a.BuyPricePerAddr <= 0 || a.LeasePerAddrMonth <= 0 || a.BrokerCommission < 0 || a.MaintenancePerAddrYear < 0 {
		return 0, ErrBadInput
	}
	upfront := a.BuyPricePerAddr * (1 + a.BrokerCommission)
	net := a.LeasePerAddrMonth - a.MaintenancePerAddrYear/12
	if net <= 0 {
		return 0, ErrNeverAmortizes
	}
	return upfront / net, nil
}

// Years returns the amortization time in years.
func (a Amortization) Years() (float64, error) {
	m, err := a.Months()
	if err != nil {
		return 0, err
	}
	return m / 12, nil
}

// GridRow is one row of the amortization sensitivity grid.
type GridRow struct {
	LeasePerAddrMonth float64
	Months            float64
	Years             float64
	Amortizes         bool
}

// Grid evaluates the amortization time across a sweep of leasing rates,
// holding the purchase-side parameters fixed. Rates at which buying never
// pays off are flagged rather than dropped.
func Grid(buyPricePerAddr, commission, maintenancePerAddrYear float64, leaseRates []float64) []GridRow {
	out := make([]GridRow, 0, len(leaseRates))
	for _, rate := range leaseRates {
		a := Amortization{
			BuyPricePerAddr:        buyPricePerAddr,
			BrokerCommission:       commission,
			MaintenancePerAddrYear: maintenancePerAddrYear,
			LeasePerAddrMonth:      rate,
		}
		row := GridRow{LeasePerAddrMonth: rate}
		if m, err := a.Months(); err == nil {
			row.Months = m
			row.Years = m / 12
			row.Amortizes = true
		} else {
			row.Months = math.Inf(1)
			row.Years = math.Inf(1)
		}
		out = append(out, row)
	}
	return out
}
