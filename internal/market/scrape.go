package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// The paper built Figure 4 by periodically fetching advertised leasing
// prices from 21 provider websites. This file provides both halves of
// that loop: an HTTP handler that serves a provider's current advertised
// price (the "website"), and a scraper that polls a set of price pages
// and accumulates a price book.

// PriceQuote is the JSON document a provider's price page serves.
type PriceQuote struct {
	Provider        string  `json:"provider"`
	Bundled         bool    `json:"bundled_hosting"`
	PricePerIPMonth float64 `json:"price_per_ip_month"`
	PrefixSize      int     `json:"prefix_size"`
	Currency        string  `json:"currency"`
	AsOf            string  `json:"as_of"` // RFC 3339
}

// ServeQuote returns an HTTP handler exposing the provider's advertised
// /24 leasing price at GET /pricing. The clock injects the "current"
// date, so tests and simulations can replay history.
func ServeQuote(p *LeasingProvider, clock func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/pricing" {
			http.NotFound(w, r)
			return
		}
		now := clock()
		price, ok := p.PriceAt(now)
		if !ok {
			http.Error(w, "no advertised price", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PriceQuote{
			Provider:        p.Name,
			Bundled:         p.Bundled,
			PricePerIPMonth: price,
			PrefixSize:      24,
			Currency:        "USD",
			AsOf:            now.UTC().Format(time.RFC3339),
		})
	})
}

// ErrBadQuote reports a price page returning an unusable document.
var ErrBadQuote = errors.New("market: unusable price quote")

// FetchQuote retrieves one provider's quote.
func FetchQuote(client *http.Client, baseURL string) (PriceQuote, error) {
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	resp, err := client.Get(baseURL + "/pricing")
	if err != nil {
		return PriceQuote{}, fmt.Errorf("market: fetch %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return PriceQuote{}, fmt.Errorf("market: read %s: %w", baseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		return PriceQuote{}, fmt.Errorf("%w: status %d from %s", ErrBadQuote, resp.StatusCode, baseURL)
	}
	var q PriceQuote
	if err := json.Unmarshal(body, &q); err != nil {
		return PriceQuote{}, fmt.Errorf("%w: %w", ErrBadQuote, err)
	}
	if q.Provider == "" || q.PricePerIPMonth <= 0 {
		return PriceQuote{}, fmt.Errorf("%w: missing fields", ErrBadQuote)
	}
	return q, nil
}

// ScrapeResult is one polling round across all tracked price pages.
type ScrapeResult struct {
	Quotes []PriceQuote
	Errors []error // one per failed site; successful quotes are unaffected
}

// Scrape polls every URL; individual failures do not abort the round (a
// site being down must not lose the rest of the observation, as in any
// real scraping campaign). Quotes are sorted by provider name.
func Scrape(client *http.Client, urls []string) ScrapeResult {
	var res ScrapeResult
	for _, u := range urls {
		q, err := FetchQuote(client, u)
		if err != nil {
			res.Errors = append(res.Errors, err)
			continue
		}
		res.Quotes = append(res.Quotes, q)
	}
	sort.Slice(res.Quotes, func(i, j int) bool { return res.Quotes[i].Provider < res.Quotes[j].Provider })
	return res
}

// SnapshotFromQuotes converts a scrape round into the same summary
// statistics SnapshotAt computes from the curated price book.
func SnapshotFromQuotes(quotes []PriceQuote, at time.Time) (LeasingSnapshot, error) {
	snap := LeasingSnapshot{Date: at}
	var sum, pureSum, bundledSum float64
	var pureN, bundledN int
	for _, q := range quotes {
		if snap.Providers == 0 || q.PricePerIPMonth < snap.Min {
			snap.Min = q.PricePerIPMonth
		}
		if q.PricePerIPMonth > snap.Max {
			snap.Max = q.PricePerIPMonth
		}
		snap.Providers++
		sum += q.PricePerIPMonth
		if q.Bundled {
			bundledSum += q.PricePerIPMonth
			bundledN++
		} else {
			pureSum += q.PricePerIPMonth
			pureN++
		}
	}
	if snap.Providers == 0 {
		return snap, ErrNoPrices
	}
	snap.Mean = sum / float64(snap.Providers)
	if pureN > 0 {
		snap.PureMean = pureSum / float64(pureN)
	}
	if bundledN > 0 {
		snap.BundledMean = bundledSum / float64(bundledN)
	}
	return snap, nil
}
