package market

import (
	"errors"
	"sort"
	"time"
)

// Figure 4 of the paper tracks the advertised price of leasing a /24 for
// one month across 21 provider websites: 12 observed from 2019-10-26 and
// 9 more added on 2020-06-01. Only three providers changed their price
// during the window. This file transcribes that price book. Where the
// paper names a provider but not its exact price, the value is synthetic
// within the reported $0.30-$2.33 range (see DESIGN.md).

// LeasingProvider is one advertised-price series.
type LeasingProvider struct {
	Name string
	// Bundled marks IP leasing sold together with infrastructure hosting;
	// the paper finds no structural price difference vs. pure leasing.
	Bundled bool
	// ObservedFrom is when the paper started tracking the site.
	ObservedFrom time.Time
	// Prices is the step function of advertised $/IP/month values,
	// in effect from each entry's date until the next entry.
	Prices []PricePoint
}

// PricePoint is one step of an advertised-price series.
type PricePoint struct {
	Date  time.Time
	Price float64 // $ per IP per month for a /24
}

// PriceAt returns the advertised price in effect at time t, or false if
// the provider was not yet observed.
func (p *LeasingProvider) PriceAt(t time.Time) (float64, bool) {
	if t.Before(p.ObservedFrom) {
		return 0, false
	}
	price, ok := 0.0, false
	for _, pp := range p.Prices {
		if pp.Date.After(t) {
			break
		}
		price, ok = pp.Price, true
	}
	return price, ok
}

func leaseDate(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

var (
	firstWave  = leaseDate(2019, 10, 26)
	secondWave = leaseDate(2020, 6, 1)
)

// PaperProviders returns the 21-provider price book of Figure 4,
// including the three documented price changes: Heficed $0.65 → $0.40,
// IPv4Mall $0.35 → $0.56, and IP-AS $1.17 → $3.90 (January test) → $2.33.
func PaperProviders() []LeasingProvider {
	fixed := func(name string, bundled bool, from time.Time, price float64) LeasingProvider {
		return LeasingProvider{
			Name: name, Bundled: bundled, ObservedFrom: from,
			Prices: []PricePoint{{Date: from, Price: price}},
		}
	}
	return []LeasingProvider{
		// First wave: observed from 2019-10-26.
		fixed("DevelApp", false, firstWave, 0.80),
		fixed("GetIPAddresses", false, firstWave, 0.50),
		{
			Name: "Heficed", Bundled: true, ObservedFrom: firstWave,
			Prices: []PricePoint{
				{Date: firstWave, Price: 0.65},
				{Date: leaseDate(2020, 3, 1), Price: 0.40},
			},
		},
		fixed("HostHoney", true, firstWave, 0.45),
		{
			Name: "IP-AS", Bundled: false, ObservedFrom: firstWave,
			Prices: []PricePoint{
				{Date: firstWave, Price: 1.17},
				{Date: leaseDate(2020, 1, 1), Price: 3.90}, // January market test
				{Date: leaseDate(2020, 2, 1), Price: 2.33},
			},
		},
		fixed("IPRoyal", false, firstWave, 0.75),
		fixed("IPv4Broker", false, firstWave, 1.00),
		{
			Name: "IPv4Mall", Bundled: false, ObservedFrom: firstWave,
			Prices: []PricePoint{
				{Date: firstWave, Price: 0.35},
				{Date: leaseDate(2020, 4, 1), Price: 0.56},
			},
		},
		fixed("LogicWeb", true, firstWave, 1.25),
		fixed("Logosnet", true, firstWave, 0.60),
		fixed("Fork Networking", true, firstWave, 1.50),
		fixed("ProstoHost", true, firstWave, 0.55),
		// Second wave: added 2020-06-01.
		fixed("AnyIP", false, secondWave, 0.30),
		fixed("CH-CENTER", false, secondWave, 0.90),
		fixed("Deploymentcode", true, secondWave, 0.70),
		fixed("Hetzner", true, secondWave, 1.70),
		fixed("LIR.SERVICES", false, secondWave, 1.10),
		fixed("Prefix Broker", false, secondWave, 1.40),
		fixed("RapidDedi", true, secondWave, 0.65),
		fixed("RentIPv4", false, secondWave, 0.85),
		fixed("Hostio Solutions", true, secondWave, 2.00),
	}
}

// ErrNoPrices reports that no provider advertised a price at the time.
var ErrNoPrices = errors.New("market: no advertised leasing prices at this time")

// LeasingSnapshot summarizes the advertised prices at a point in time.
type LeasingSnapshot struct {
	Date      time.Time
	Providers int
	Min, Max  float64
	Mean      float64
	// PureMean and BundledMean split by business model; the paper finds
	// no structural difference.
	PureMean    float64
	BundledMean float64
}

// SnapshotAt summarizes the price book at time t.
func SnapshotAt(providers []LeasingProvider, t time.Time) (LeasingSnapshot, error) {
	snap := LeasingSnapshot{Date: t}
	var sum, pureSum, bundledSum float64
	var pureN, bundledN int
	for i := range providers {
		price, ok := providers[i].PriceAt(t)
		if !ok {
			continue
		}
		if snap.Providers == 0 || price < snap.Min {
			snap.Min = price
		}
		if price > snap.Max {
			snap.Max = price
		}
		snap.Providers++
		sum += price
		if providers[i].Bundled {
			bundledSum += price
			bundledN++
		} else {
			pureSum += price
			pureN++
		}
	}
	if snap.Providers == 0 {
		return snap, ErrNoPrices
	}
	snap.Mean = sum / float64(snap.Providers)
	if pureN > 0 {
		snap.PureMean = pureSum / float64(pureN)
	}
	if bundledN > 0 {
		snap.BundledMean = bundledSum / float64(bundledN)
	}
	return snap, nil
}

// PriceChange describes one observed advertised-price change.
type PriceChange struct {
	Provider string
	Date     time.Time
	From, To float64
}

// PriceChanges lists every advertised-price change in the book, sorted by
// date. The paper observes exactly three providers changing prices.
func PriceChanges(providers []LeasingProvider) []PriceChange {
	var out []PriceChange
	for i := range providers {
		p := &providers[i]
		for j := 1; j < len(p.Prices); j++ {
			out = append(out, PriceChange{
				Provider: p.Name,
				Date:     p.Prices[j].Date,
				From:     p.Prices[j-1].Price,
				To:       p.Prices[j].Price,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Date.Before(out[j].Date) })
	return out
}

// ChangedProviders returns the names of providers that ever changed their
// advertised price.
func ChangedProviders(providers []LeasingProvider) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range PriceChanges(providers) {
		if !seen[c.Provider] {
			seen[c.Provider] = true
			out = append(out, c.Provider)
		}
	}
	sort.Strings(out)
	return out
}
