package market_test

import (
	"fmt"
	"time"

	"ipv4market/internal/market"
)

// ExampleAmortization reproduces §6's tradeoff: at the 2020 market price,
// an expensive lease amortizes a purchase in under a year.
func ExampleAmortization() {
	a := market.Amortization{
		BuyPricePerAddr:   22.50,
		BrokerCommission:  0.075,
		LeasePerAddrMonth: 2.33,
	}
	months, _ := a.Months()
	fmt.Printf("%.0f months\n", months)
	// Output: 10 months
}

// ExampleSnapshotAt summarizes the advertised leasing prices the paper
// observed on 1 June 2020.
func ExampleSnapshotAt() {
	snap, _ := market.SnapshotAt(market.PaperProviders(), time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC))
	fmt.Printf("%d providers, $%.2f-$%.2f per IP per month\n", snap.Providers, snap.Min, snap.Max)
	// Output: 21 providers, $0.30-$2.33 per IP per month
}

// ExamplePriceChanges lists the three advertised-price changes of Figure 4.
func ExamplePriceChanges() {
	for _, c := range market.PriceChanges(market.PaperProviders()) {
		fmt.Printf("%s: $%.2f -> $%.2f\n", c.Provider, c.From, c.To)
	}
	// Output:
	// IP-AS: $1.17 -> $3.90
	// IP-AS: $3.90 -> $2.33
	// Heficed: $0.65 -> $0.40
	// IPv4Mall: $0.35 -> $0.56
}
