package market

import (
	"sort"
	"time"

	"ipv4market/internal/registry"
)

// Merger inference. APNIC and LACNIC do not label merger-and-acquisition
// transfers in their public logs (§3), so market analyses over those
// regions overcount. Giotsas, Livadariu and Gigis proposed heuristics to
// recover the labels; the paper declined to use them because neither an
// evaluation nor a sensitivity analysis existed. This file implements a
// heuristic in that spirit — and because the simulator knows the ground
// truth, EvaluateMergerHeuristic provides exactly the missing evaluation.

// MergerHeuristic configures the inference.
type MergerHeuristic struct {
	// MinPairTransfers flags an organization pair as consolidating when
	// at least this many transfers occur between them within Window —
	// acquisitions move whole holdings, market sales rarely repeat.
	MinPairTransfers int
	// Window bounds the burst.
	Window time.Duration
}

// DefaultMergerHeuristic returns the configuration used in the ablation.
func DefaultMergerHeuristic() MergerHeuristic {
	return MergerHeuristic{MinPairTransfers: 3, Window: 30 * 24 * time.Hour}
}

// Infer returns, per transfer index, whether the heuristic classifies the
// transfer as part of a merger/acquisition. Only the fields available in
// public logs are consulted (organizations, dates) — never the Type.
func (h MergerHeuristic) Infer(transfers []registry.Transfer) []bool {
	type pair struct{ from, to registry.OrgID }
	byPair := make(map[pair][]int)
	for i, t := range transfers {
		p := pair{t.From, t.To}
		byPair[p] = append(byPair[p], i)
	}
	out := make([]bool, len(transfers))
	for _, idxs := range byPair {
		if len(idxs) < h.MinPairTransfers {
			continue
		}
		sort.Slice(idxs, func(a, b int) bool {
			return transfers[idxs[a]].Date.Before(transfers[idxs[b]].Date)
		})
		// Sliding window over the pair's (already chronological within the
		// log) transfer dates.
		for i := range idxs {
			j := i
			for j+1 < len(idxs) &&
				transfers[idxs[j+1]].Date.Sub(transfers[idxs[i]].Date) <= h.Window {
				j++
			}
			if j-i+1 >= h.MinPairTransfers {
				for k := i; k <= j; k++ {
					out[idxs[k]] = true
				}
			}
		}
	}
	return out
}

// MergerEvaluation reports the heuristic's quality against ground truth.
type MergerEvaluation struct {
	Transfers     int
	TrueMergers   int
	Flagged       int
	TruePositives int
	Precision     float64
	Recall        float64
}

// EvaluateMergerHeuristic scores the heuristic against the true transfer
// types — the evaluation the paper found missing from prior work. Pass
// the unfiltered transfer list (types intact).
func EvaluateMergerHeuristic(h MergerHeuristic, transfers []registry.Transfer) MergerEvaluation {
	flags := h.Infer(transfers)
	ev := MergerEvaluation{Transfers: len(transfers)}
	for i, t := range transfers {
		isMerger := t.Type == registry.TypeMerger
		if isMerger {
			ev.TrueMergers++
		}
		if flags[i] {
			ev.Flagged++
			if isMerger {
				ev.TruePositives++
			}
		}
	}
	if ev.Flagged > 0 {
		ev.Precision = float64(ev.TruePositives) / float64(ev.Flagged)
	}
	if ev.TrueMergers > 0 {
		ev.Recall = float64(ev.TruePositives) / float64(ev.TrueMergers)
	}
	return ev
}
