// Package market implements the economic analyses of the paper: transfer
// volume over time (Figure 2), inter-RIR transfer flows (Figure 3), price
// evolution and the regional-difference test (Figure 1, §3), the leasing
// price book (Figure 4), and the buy-vs-lease amortization model (§6).
package market

import (
	"context"
	"sort"
	"time"

	"ipv4market/internal/parallel"
	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// FilterMarketTransfers removes merger-and-acquisition transfers for RIRs
// that label them (AFRINIC, ARIN, RIPE NCC). For APNIC and LACNIC the
// label is absent from the public logs, so M&A records pass through —
// exactly the bias §3 of the paper describes.
func FilterMarketTransfers(transfers []registry.Transfer) []registry.Transfer {
	out := make([]registry.Transfer, 0, len(transfers))
	for _, t := range transfers {
		if t.Type == registry.TypeMerger && registry.LabelsMA(t.FromRIR) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// QuarterCount is one point of the Figure 2 series.
type QuarterCount struct {
	Quarter stats.Quarter
	Count   int
}

// QuarterlyCounts aggregates intra-RIR transfer counts per region and
// quarter — the series Figure 2 plots. Inter-RIR transfers are excluded
// (they are Figure 3's subject); the region is the source RIR, i.e. the
// registry that maintained the block (footnote 1).
func QuarterlyCounts(transfers []registry.Transfer) map[registry.RIR][]QuarterCount {
	counts := make(map[registry.RIR]map[stats.Quarter]int)
	for _, t := range transfers {
		if t.IsInterRIR() {
			continue
		}
		q := stats.QuarterOf(t.Date)
		if counts[t.FromRIR] == nil {
			counts[t.FromRIR] = make(map[stats.Quarter]int)
		}
		counts[t.FromRIR][q]++
	}
	out := make(map[registry.RIR][]QuarterCount, len(counts))
	for rir, byQ := range counts {
		qs := make([]stats.Quarter, 0, len(byQ))
		for q := range byQ {
			qs = append(qs, q)
		}
		stats.SortQuarters(qs)
		series := make([]QuarterCount, 0, len(qs))
		for _, q := range qs {
			series = append(series, QuarterCount{Quarter: q, Count: byQ[q]})
		}
		out[rir] = series
	}
	return out
}

// QuarterlyCountsWorkers is QuarterlyCounts with the per-RIR aggregation
// fanned out across at most the given number of workers (<= 0: NumCPU):
// each RIR's quarterly series is counted by its own worker over the
// shared, read-only transfer slice, and the merge assigns results by RIR
// index, so the returned map is always equal to QuarterlyCounts'. The
// only possible error is a recovered worker panic.
func QuarterlyCountsWorkers(transfers []registry.Transfer, workers int) (map[registry.RIR][]QuarterCount, error) {
	rirs := registry.AllRIRs()
	series, err := parallel.Map(context.Background(), workers, len(rirs), func(_ context.Context, i int) ([]QuarterCount, error) {
		byQ := make(map[stats.Quarter]int)
		for _, t := range transfers {
			if t.IsInterRIR() || t.FromRIR != rirs[i] {
				continue
			}
			byQ[stats.QuarterOf(t.Date)]++
		}
		if len(byQ) == 0 {
			return nil, nil
		}
		qs := make([]stats.Quarter, 0, len(byQ))
		for q := range byQ {
			qs = append(qs, q)
		}
		stats.SortQuarters(qs)
		out := make([]QuarterCount, 0, len(qs))
		for _, q := range qs {
			out = append(out, QuarterCount{Quarter: q, Count: byQ[q]})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[registry.RIR][]QuarterCount, len(rirs))
	for i, rir := range rirs {
		if series[i] != nil {
			out[rir] = series[i]
		}
	}
	return out, nil
}

// InterRIRFlow is one cell of the Figure 3 matrix.
type InterRIRFlow struct {
	From, To  registry.RIR
	Year      int
	Count     int
	Addresses uint64
}

// InterRIRFlows aggregates inter-RIR transfers by (source, destination,
// year), with total address volume — the data behind Figure 3. Results
// are sorted by year, then source, then destination.
func InterRIRFlows(transfers []registry.Transfer) []InterRIRFlow {
	type key struct {
		from, to registry.RIR
		year     int
	}
	agg := make(map[key]*InterRIRFlow)
	for _, t := range transfers {
		if !t.IsInterRIR() {
			continue
		}
		k := key{t.FromRIR, t.ToRIR, t.Date.UTC().Year()}
		f := agg[k]
		if f == nil {
			f = &InterRIRFlow{From: t.FromRIR, To: t.ToRIR, Year: k.year}
			agg[k] = f
		}
		f.Count++
		f.Addresses += t.Prefix.NumAddrs()
	}
	out := make([]InterRIRFlow, 0, len(agg))
	for _, f := range agg {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// NetFlow returns, per RIR, the net address flow (received − sent) via
// inter-RIR transfers in [from, to). The paper observes that most
// transfers move space away from ARIN toward APNIC and RIPE.
func NetFlow(transfers []registry.Transfer, from, to time.Time) map[registry.RIR]int64 {
	out := make(map[registry.RIR]int64)
	for _, t := range transfers {
		if !t.IsInterRIR() || t.Date.Before(from) || !t.Date.Before(to) {
			continue
		}
		n := int64(t.Prefix.NumAddrs())
		out[t.FromRIR] -= n
		out[t.ToRIR] += n
	}
	return out
}

// MeanBlockSizeByYear returns the average inter-RIR transferred block size
// per year; the paper notes blocks get smaller over time.
func MeanBlockSizeByYear(transfers []registry.Transfer) map[int]float64 {
	sum := make(map[int]uint64)
	n := make(map[int]int)
	for _, t := range transfers {
		if !t.IsInterRIR() {
			continue
		}
		y := t.Date.UTC().Year()
		sum[y] += t.Prefix.NumAddrs()
		n[y]++
	}
	out := make(map[int]float64, len(sum))
	for y, s := range sum {
		out[y] = float64(s) / float64(n[y])
	}
	return out
}
