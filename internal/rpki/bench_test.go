package rpki

import (
	"math/rand"
	"testing"
	"time"
)

func benchHistory(keys, days int) *History {
	rng := rand.New(rand.NewSource(1))
	h := NewHistory(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC), days)
	for k := 0; k < keys; k++ {
		d := Delegation{
			Child: pfx("185.0.0.0/24"),
			From:  ASN(1000 + k),
			To:    ASN(2000 + k),
		}
		for day := 0; day < days; day++ {
			if rng.Float64() < 0.98 {
				h.Observe(day, d)
			}
		}
	}
	return h
}

func BenchmarkEvaluateRule(b *testing.B) {
	h := benchHistory(100, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.EvaluateRule(10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFillGaps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := benchHistory(100, 400)
		b.StartTimer()
		h.FillGaps(10)
	}
}
