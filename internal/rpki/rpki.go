// Package rpki models the Resource Public Key Infrastructure pieces the
// paper's appendix uses: ROA/VRP snapshots, route origin validation, the
// inference of delegations from ROA pairs, and the evaluation of
// consistency rules ("if a delegation is seen on day X and day X+M, it
// holds for all but N days in between") whose fail rates Figure 5 plots.
package rpki

import (
	"fmt"
	"sort"
	"time"

	"ipv4market/internal/asorg"
	"ipv4market/internal/netblock"
)

// ASN is an autonomous system number (shared with the as2org dataset).
type ASN = asorg.ASN

// ROA is a Route Origin Authorization: the holder of Prefix authorizes
// ASN to originate it (and more-specifics up to MaxLength).
type ROA struct {
	Prefix    netblock.Prefix
	MaxLength int
	ASN       ASN
}

// Validity is the RFC 6811 route-origin validation outcome.
type Validity int

// Validation states.
const (
	NotFound Validity = iota
	Valid
	Invalid
)

// String names the validity state.
func (v Validity) String() string {
	switch v {
	case NotFound:
		return "not-found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	}
	return fmt.Sprintf("Validity(%d)", int(v))
}

// Snapshot is one day's validated ROA payload (VRP set).
type Snapshot struct {
	Date time.Time
	trie *netblock.Trie[[]ROA]
	n    int
}

// NewSnapshot returns an empty snapshot for the date.
func NewSnapshot(date time.Time) *Snapshot {
	return &Snapshot{Date: date.UTC(), trie: netblock.NewTrie[[]ROA]()}
}

// Add registers a ROA. MaxLength values shorter than the prefix are
// normalized up to the prefix length, as validators do.
func (s *Snapshot) Add(r ROA) {
	if r.MaxLength < r.Prefix.Bits() {
		r.MaxLength = r.Prefix.Bits()
	}
	if r.MaxLength > 32 {
		r.MaxLength = 32
	}
	existing, _ := s.trie.Get(r.Prefix)
	s.trie.Insert(r.Prefix, append(existing, r))
	s.n++
}

// Len returns the number of ROAs.
func (s *Snapshot) Len() int { return s.n }

// Validate performs RFC 6811 origin validation of (prefix, origin).
func (s *Snapshot) Validate(p netblock.Prefix, origin ASN) Validity {
	covering := s.trie.Covering(p)
	if len(covering) == 0 {
		return NotFound
	}
	found := false
	for _, e := range covering {
		for _, roa := range e.Value {
			found = true
			if roa.ASN == origin && p.Bits() <= roa.MaxLength {
				return Valid
			}
		}
	}
	if !found {
		return NotFound
	}
	return Invalid
}

// Delegation is an inferred address-space delegation: From authorizes the
// covering prefix, To the more-specific child.
type Delegation struct {
	Parent netblock.Prefix
	Child  netblock.Prefix
	From   ASN
	To     ASN
}

// Delegations infers delegations from the snapshot: every ROA pair where
// one prefix strictly covers the other and the ASNs differ. For a child
// with several covering ROAs, the most specific covering prefix is used as
// the parent (the immediate delegator).
func (s *Snapshot) Delegations() []Delegation {
	var out []Delegation
	s.trie.Walk(func(child netblock.Prefix, childROAs []ROA) bool {
		covering := s.trie.Covering(child)
		// Find the most specific strictly-covering entry.
		var parent *netblock.CoveringEntry[[]ROA]
		for i := range covering {
			if covering[i].Prefix.Bits() < child.Bits() {
				if parent == nil || covering[i].Prefix.Bits() > parent.Prefix.Bits() {
					parent = &covering[i]
				}
			}
		}
		if parent == nil {
			return true
		}
		for _, pr := range parent.Value {
			for _, cr := range childROAs {
				if pr.ASN != cr.ASN {
					out = append(out, Delegation{
						Parent: parent.Prefix, Child: child,
						From: pr.ASN, To: cr.ASN,
					})
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Child.Compare(out[j].Child); c != 0 {
			return c < 0
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ValidateOrigin adapts Validate to the bgp.OriginValidator interface
// without creating an import cycle: 0 = not found, 1 = valid, 2 = invalid.
func (s *Snapshot) ValidateOrigin(p netblock.Prefix, origin uint32) int {
	return int(s.Validate(p, ASN(origin)))
}
