package rpki

import (
	"testing"
	"time"

	"ipv4market/internal/netblock"
)

func pfx(s string) netblock.Prefix { return netblock.MustParsePrefix(s) }

func day0() time.Time { return time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestValidate(t *testing.T) {
	s := NewSnapshot(day0())
	s.Add(ROA{Prefix: pfx("185.0.0.0/16"), MaxLength: 24, ASN: 64500})
	s.Add(ROA{Prefix: pfx("8.8.0.0/16"), MaxLength: 16, ASN: 15169})

	cases := []struct {
		p      string
		origin ASN
		want   Validity
	}{
		{"185.0.0.0/16", 64500, Valid},
		{"185.0.1.0/24", 64500, Valid},     // within maxLength
		{"185.0.1.128/25", 64500, Invalid}, // beyond maxLength
		{"185.0.1.0/24", 64501, Invalid},   // wrong origin
		{"9.9.9.0/24", 64500, NotFound},
		{"8.8.8.0/24", 15169, Invalid}, // maxLength 16 < 24
		{"8.8.0.0/16", 15169, Valid},
	}
	for _, c := range cases {
		if got := s.Validate(pfx(c.p), c.origin); got != c.want {
			t.Errorf("Validate(%s, %d) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestValidateMultipleROAsSamePrefix(t *testing.T) {
	s := NewSnapshot(day0())
	s.Add(ROA{Prefix: pfx("185.0.0.0/16"), MaxLength: 16, ASN: 64500})
	s.Add(ROA{Prefix: pfx("185.0.0.0/16"), MaxLength: 16, ASN: 64501})
	if got := s.Validate(pfx("185.0.0.0/16"), 64501); got != Valid {
		t.Errorf("second ROA should validate, got %v", got)
	}
	if got := s.Validate(pfx("185.0.0.0/16"), 64502); got != Invalid {
		t.Errorf("unauthorized origin = %v", got)
	}
}

func TestMaxLengthNormalization(t *testing.T) {
	s := NewSnapshot(day0())
	s.Add(ROA{Prefix: pfx("185.0.0.0/16"), MaxLength: 8, ASN: 64500}) // < bits
	s.Add(ROA{Prefix: pfx("9.0.0.0/8"), MaxLength: 99, ASN: 64501})   // > 32
	if got := s.Validate(pfx("185.0.0.0/16"), 64500); got != Valid {
		t.Errorf("normalized maxLength should validate the exact prefix, got %v", got)
	}
	if got := s.Validate(pfx("9.1.2.3/32"), 64501); got != Valid {
		t.Errorf("maxLength clamped to 32 should validate /32, got %v", got)
	}
}

func TestValidityString(t *testing.T) {
	if NotFound.String() != "not-found" || Valid.String() != "valid" || Invalid.String() != "invalid" {
		t.Error("validity names")
	}
}

func TestDelegationsFromROAs(t *testing.T) {
	s := NewSnapshot(day0())
	s.Add(ROA{Prefix: pfx("185.0.0.0/16"), MaxLength: 24, ASN: 64500})
	s.Add(ROA{Prefix: pfx("185.0.0.0/22"), MaxLength: 24, ASN: 64501})   // delegation 64500→64501
	s.Add(ROA{Prefix: pfx("185.0.0.0/24"), MaxLength: 24, ASN: 64502})   // delegation 64501→64502 (immediate parent is the /22)
	s.Add(ROA{Prefix: pfx("185.0.128.0/24"), MaxLength: 24, ASN: 64500}) // same AS: not a delegation
	s.Add(ROA{Prefix: pfx("9.0.0.0/8"), MaxLength: 8, ASN: 64999})       // unrelated

	ds := s.Delegations()
	if len(ds) != 2 {
		t.Fatalf("Delegations = %v", ds)
	}
	if ds[0].Child != pfx("185.0.0.0/22") || ds[0].From != 64500 || ds[0].To != 64501 {
		t.Errorf("ds[0] = %+v", ds[0])
	}
	if ds[1].Child != pfx("185.0.0.0/24") || ds[1].From != 64501 || ds[1].To != 64502 || ds[1].Parent != pfx("185.0.0.0/22") {
		t.Errorf("ds[1] = %+v", ds[1])
	}
}

func dtest(child string, from, to ASN) Delegation {
	return Delegation{Child: pfx(child), From: from, To: to}
}

func TestHistoryObserveAndPresence(t *testing.T) {
	h := NewHistory(day0(), 10)
	d := dtest("185.0.0.0/24", 1, 2)
	h.Observe(0, d)
	h.Observe(3, d)
	h.Observe(-1, d) // ignored
	h.Observe(10, d) // ignored
	if !h.ObservedOn(0, d) || h.ObservedOn(1, d) || !h.ObservedOn(3, d) {
		t.Error("observation bitmap wrong")
	}
	if h.NumDelegations() != 1 {
		t.Errorf("NumDelegations = %d", h.NumDelegations())
	}
	if h.DayOf(day0().Add(72*time.Hour)) != 3 {
		t.Error("DayOf wrong")
	}
	counts := h.PresenceCount()
	if counts[0] != 1 || counts[1] != 0 || counts[3] != 1 {
		t.Errorf("PresenceCount = %v", counts)
	}
	if h.Days() != 10 || !h.Start().Equal(day0()) {
		t.Error("metadata")
	}
}

func TestEvaluateRule(t *testing.T) {
	h := NewHistory(day0(), 20)
	d := dtest("185.0.0.0/24", 1, 2)
	// Present on days 0..10 except 5: one gap.
	for i := 0; i <= 10; i++ {
		if i != 5 {
			h.Observe(i, d)
		}
	}
	// Rule M=10, N=0: premise holds for (0,10): missing day 5 → failure.
	r, err := h.EvaluateRule(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Premises == 0 {
		t.Fatal("expected premises")
	}
	// For X=0, M=10: 1 missing day > 0 → fail. Other windows like (1..4)
	// etc. also counted. Check specific: M=10 has exactly one X (0) with
	// both endpoints in range 0..10 → plus none beyond day 10.
	if r.Premises != 1 || r.Failures != 1 {
		t.Errorf("M=10,N=0: %+v", r)
	}
	// N=1 tolerates the gap.
	r, _ = h.EvaluateRule(10, 1)
	if r.Failures != 0 {
		t.Errorf("M=10,N=1: %+v", r)
	}
	// M=1: adjacent days, no in-between, never fails.
	r, _ = h.EvaluateRule(1, 0)
	if r.Failures != 0 || r.Premises == 0 {
		t.Errorf("M=1,N=0: %+v", r)
	}
	if _, err := h.EvaluateRule(0, 0); err == nil {
		t.Error("M=0 should be rejected")
	}
	if _, err := h.EvaluateRule(5, -1); err == nil {
		t.Error("negative N should be rejected")
	}
	if r.FailRate() != 0 {
		t.Error("FailRate of zero failures")
	}
	if (RuleResult{}).FailRate() != 0 {
		t.Error("FailRate with no premises must be 0")
	}
}

func TestEvaluateRuleConflictRemovesPremise(t *testing.T) {
	h := NewHistory(day0(), 10)
	d := dtest("185.0.0.0/24", 1, 2)
	conflict := dtest("185.0.0.0/24", 1, 3) // same child, different delegatee
	h.Observe(0, d)
	h.Observe(4, d)
	h.Observe(2, conflict)
	r, err := h.EvaluateRule(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The only candidate window (0,4) has a conflicting delegation on day 2.
	if r.Premises != 0 {
		t.Errorf("conflict should void the premise: %+v", r)
	}
	// A delegation back to the same delegatee is not a conflict.
	h2 := NewHistory(day0(), 10)
	h2.Observe(0, d)
	h2.Observe(4, d)
	h2.Observe(2, dtest("185.0.0.0/24", 9, 2)) // same delegatee, different delegator
	r2, _ := h2.EvaluateRule(4, 0)
	if r2.Premises != 1 {
		t.Errorf("same-delegatee observation must not be a conflict: %+v", r2)
	}
}

func TestEvaluateGrid(t *testing.T) {
	h := NewHistory(day0(), 30)
	d := dtest("185.0.0.0/24", 1, 2)
	for i := 0; i < 30; i += 2 { // on-off pattern
		h.Observe(i, d)
	}
	grid, err := h.EvaluateGrid([]int{2, 4, 10}, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 9 {
		t.Fatalf("grid size = %d", len(grid))
	}
	// With every other day missing, N=0 fails everywhere (M≥2), while
	// large N tolerates.
	for _, r := range grid {
		if r.N == 0 && r.M >= 2 && r.Premises > 0 && r.Failures != r.Premises {
			t.Errorf("M=%d,N=0 should always fail: %+v", r.M, r)
		}
		if r.N == 3 && r.M <= 4 && r.Failures != 0 {
			t.Errorf("M=%d,N=3 should never fail: %+v", r.M, r)
		}
	}
}

func TestFillGaps(t *testing.T) {
	h := NewHistory(day0(), 20)
	d := dtest("185.0.0.0/24", 1, 2)
	h.Observe(0, d)
	h.Observe(5, d)  // gap of 4 days: fill (m=10)
	h.Observe(18, d) // gap of 12 days: too wide for m=10
	filled := h.FillGaps(10)
	if filled != 4 {
		t.Errorf("filled = %d, want 4", filled)
	}
	for i := 1; i <= 4; i++ {
		if !h.ObservedOn(i, d) {
			t.Errorf("day %d should be filled", i)
		}
	}
	if h.ObservedOn(10, d) {
		t.Error("wide gap must not be filled")
	}
}

func TestFillGapsRespectsConflicts(t *testing.T) {
	h := NewHistory(day0(), 20)
	d := dtest("185.0.0.0/24", 1, 2)
	h.Observe(0, d)
	h.Observe(5, d)
	h.Observe(2, dtest("185.0.0.0/24", 1, 3)) // conflicting delegatee
	filled := h.FillGaps(10)
	if filled != 0 {
		t.Errorf("conflicted gap must not be filled, filled = %d", filled)
	}
}

func TestDaysetCountRange(t *testing.T) {
	ds := newDayset(200)
	for _, i := range []int{0, 63, 64, 65, 127, 128, 199} {
		ds.set(i)
	}
	if got := ds.countRange(0, 200); got != 7 {
		t.Errorf("countRange full = %d", got)
	}
	if got := ds.countRange(64, 128); got != 3 {
		t.Errorf("countRange [64,128) = %d", got)
	}
	if got := ds.countRange(100, 100); got != 0 {
		t.Errorf("empty range = %d", got)
	}
	if !ds.anyInRange(60, 70) || ds.anyInRange(1, 63) {
		t.Error("anyInRange wrong")
	}
}
