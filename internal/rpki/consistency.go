package rpki

import (
	"errors"
	"math/bits"
	"time"
)

// History records, day by day, which delegations were observable. It is
// the input to the consistency-rule evaluation of the paper's appendix:
// rules of the form "if a delegation is seen on day X and day X+M (with no
// conflicting delegation in between), it also existed for all but at most
// N of the days in between".
type History struct {
	start time.Time
	days  int
	// presence per delegation key.
	keys map[delegKey]*dayset
	// byChild groups keys by child prefix for conflict detection.
	byChild map[childKey][]delegKey
}

type delegKey struct {
	child childKey
	from  ASN
	to    ASN
}

type childKey struct {
	addr uint32
	bits uint8
}

// dayset is a fixed-size bitset over day indexes.
type dayset struct {
	w []uint64
}

func newDayset(days int) *dayset { return &dayset{w: make([]uint64, (days+63)/64)} }

func (d *dayset) set(i int)      { d.w[i/64] |= 1 << uint(i%64) }
func (d *dayset) get(i int) bool { return d.w[i/64]&(1<<uint(i%64)) != 0 }

// countRange counts set bits in [lo, hi).
func (d *dayset) countRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	n := 0
	for i := lo; i < hi; {
		if i%64 == 0 && i+64 <= hi {
			n += bits.OnesCount64(d.w[i/64])
			i += 64
			continue
		}
		if d.get(i) {
			n++
		}
		i++
	}
	return n
}

// anyInRange reports whether any bit in [lo, hi) is set.
func (d *dayset) anyInRange(lo, hi int) bool {
	for i := lo; i < hi; {
		if i%64 == 0 && i+64 <= hi {
			if d.w[i/64] != 0 {
				return true
			}
			i += 64
			continue
		}
		if d.get(i) {
			return true
		}
		i++
	}
	return false
}

// NewHistory creates a history covering `days` consecutive days starting
// at start (UTC midnight).
func NewHistory(start time.Time, days int) *History {
	return &History{
		start:   start.UTC(),
		days:    days,
		keys:    make(map[delegKey]*dayset),
		byChild: make(map[childKey][]delegKey),
	}
}

// Days returns the number of days covered.
func (h *History) Days() int { return h.days }

// Start returns the first day.
func (h *History) Start() time.Time { return h.start }

// DayOf converts a timestamp to a day index (negative or >= Days() if out
// of range).
func (h *History) DayOf(t time.Time) int {
	return int(t.UTC().Sub(h.start) / (24 * time.Hour))
}

// Observe records that the delegation was visible on the given day.
// Out-of-range days are ignored.
func (h *History) Observe(day int, d Delegation) {
	if day < 0 || day >= h.days {
		return
	}
	ck := childKey{uint32(d.Child.Addr()), uint8(d.Child.Bits())}
	k := delegKey{child: ck, from: d.From, to: d.To}
	ds := h.keys[k]
	if ds == nil {
		ds = newDayset(h.days)
		h.keys[k] = ds
		h.byChild[ck] = append(h.byChild[ck], k)
	}
	ds.set(day)
}

// NumDelegations returns the number of distinct delegation keys observed.
func (h *History) NumDelegations() int { return len(h.keys) }

// ObservedOn reports whether the delegation was seen on the day.
func (h *History) ObservedOn(day int, d Delegation) bool {
	ck := childKey{uint32(d.Child.Addr()), uint8(d.Child.Bits())}
	ds := h.keys[delegKey{child: ck, from: d.From, to: d.To}]
	return ds != nil && day >= 0 && day < h.days && ds.get(day)
}

// conflictIn reports whether, strictly between days lo and hi, the child
// prefix was delegated to a *different* delegatee than k.to.
func (h *History) conflictIn(k delegKey, lo, hi int) bool {
	for _, other := range h.byChild[k.child] {
		if other.to == k.to {
			continue
		}
		if h.keys[other].anyInRange(lo+1, hi) {
			return true
		}
	}
	return false
}

// RuleResult is the outcome of evaluating one (M, N) consistency rule.
type RuleResult struct {
	M        int // window length in days
	N        int // tolerated missing days
	Premises int // cases where the premise held
	Failures int // premises whose conclusion was violated
}

// FailRate returns Failures/Premises (0 if no premises).
func (r RuleResult) FailRate() float64 {
	if r.Premises == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Premises)
}

// ErrBadRule reports invalid rule parameters.
var ErrBadRule = errors.New("rpki: invalid consistency-rule parameters")

// EvaluateRule computes the fail rate of the (M, N) rule over the history:
// for every delegation key and every day X with the key present on X and
// X+M and no conflicting delegation strictly in between (the premise), the
// conclusion holds iff at most N of the M-1 days strictly in between lack
// the delegation.
func (h *History) EvaluateRule(m, n int) (RuleResult, error) {
	if m < 1 || n < 0 {
		return RuleResult{}, ErrBadRule
	}
	res := RuleResult{M: m, N: n}
	for k, ds := range h.keys {
		for x := 0; x+m < h.days; x++ {
			if !ds.get(x) || !ds.get(x+m) {
				continue
			}
			if h.conflictIn(k, x, x+m) {
				continue
			}
			res.Premises++
			present := ds.countRange(x+1, x+m)
			missing := (m - 1) - present
			if missing > n {
				res.Failures++
			}
		}
	}
	return res, nil
}

// EvaluateGrid evaluates the rule for every combination of the given M and
// N values — the data behind Figure 5. Results are ordered by N then M.
func (h *History) EvaluateGrid(ms, ns []int) ([]RuleResult, error) {
	out := make([]RuleResult, 0, len(ms)*len(ns))
	for _, n := range ns {
		for _, m := range ms {
			r, err := h.EvaluateRule(m, n)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// FillGaps applies the paper's chosen consistency rule to a presence
// bitmap: when the same delegation is seen on days X and X+M' for any
// M' ≤ m with no conflicting delegation in between, the days in between
// are marked present. It returns the per-key number of filled days, and
// mutates the history's presence sets. The paper uses m = 10.
func (h *History) FillGaps(m int) int {
	filled := 0
	for k, ds := range h.keys {
		last := -1
		for x := 0; x < h.days; x++ {
			if !ds.get(x) {
				continue
			}
			if last >= 0 && x-last > 1 && x-last <= m && !h.conflictIn(k, last, x) {
				for i := last + 1; i < x; i++ {
					if !ds.get(i) {
						ds.set(i)
						filled++
					}
				}
			}
			last = x
		}
	}
	return filled
}

// PresenceCount returns, for each day, the number of delegations present
// (after any gap filling).
func (h *History) PresenceCount() []int {
	out := make([]int, h.days)
	for _, ds := range h.keys {
		for x := 0; x < h.days; x++ {
			if ds.get(x) {
				out[x]++
			}
		}
	}
	return out
}

// DailyChurn returns, for each day, the number of presence transitions:
// delegations appearing (absent the day before, present today) plus
// delegations disappearing (present the day before, absent today). Day
// 0 counts first appearances. Churn storms show up as spikes in this
// series — the observability signal the scenario adversarial worlds
// are built to produce.
func (h *History) DailyChurn() []int {
	out := make([]int, h.days)
	for _, ds := range h.keys {
		prev := false
		for x := 0; x < h.days; x++ {
			cur := ds.get(x)
			if cur != prev {
				out[x]++
			}
			prev = cur
		}
	}
	return out
}
