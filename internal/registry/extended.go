package registry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"ipv4market/internal/netblock"
)

// This file implements the NRO delegated-extended statistics format, the
// pipe-delimited daily snapshot each RIR publishes:
//
//	registry|cc|type|start|value|date|status[|opaque-id]
//
// preceded by a version line and per-type summary lines. Only ipv4 records
// are modeled; the parser skips asn/ipv6 records rather than failing so
// that real files remain ingestible.

// ExtendedRecord is one ipv4 row of a delegated-extended file.
type ExtendedRecord struct {
	Registry RIR
	Country  string
	Start    netblock.Addr
	Count    uint64 // number of addresses (need not be a CIDR block)
	Date     time.Time
	Status   AllocationStatus
	OpaqueID string // registry-unique org handle
}

// Prefixes decomposes the record's range into minimal CIDR blocks.
func (e ExtendedRecord) Prefixes() []netblock.Prefix {
	s := netblock.NewSet()
	s.AddRange(e.Start, e.Start+netblock.Addr(e.Count-1))
	return s.Prefixes()
}

// ExportExtended writes a delegated-extended snapshot for the RIR, listing
// each of its live allocations plus an "available" summary derived from
// the free pool size. Records are sorted by start address.
func ExportExtended(w io.Writer, r *Registry, rir RIR, asOf time.Time) error {
	bw := bufio.NewWriter(w)
	allocs := r.Allocations()
	var rows []*Allocation
	for _, a := range allocs {
		if a.RIR == rir {
			rows = append(rows, a)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Prefix.Compare(rows[j].Prefix) < 0 })

	serial := asOf.Format("20060102")
	fmt.Fprintf(bw, "2|%s|%s|%d|%d|19830101|%s|+0000\n",
		rir.StatsName(), serial, len(rows), len(rows), serial)
	fmt.Fprintf(bw, "%s|*|ipv4|*|%d|summary\n", rir.StatsName(), len(rows))
	for _, a := range rows {
		fmt.Fprintf(bw, "%s|%s|ipv4|%s|%d|%s|%s|%s\n",
			rir.StatsName(), a.Country, a.Prefix.First(), a.Prefix.NumAddrs(),
			a.Date.Format("20060102"), a.Status, a.Org)
	}
	return bw.Flush()
}

// ParseExtended reads the ipv4 records of a delegated-extended file.
// Header, summary, asn and ipv6 lines are skipped.
func ParseExtended(rd io.Reader) ([]ExtendedRecord, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []ExtendedRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 7 {
			continue // version or summary line
		}
		if fields[2] != "ipv4" || fields[3] == "*" {
			continue
		}
		reg, err := ParseRIR(fields[0])
		if err != nil {
			return nil, fmt.Errorf("registry: extended line %d: %w", lineNo, err)
		}
		start, err := netblock.ParseAddr(fields[3])
		if err != nil {
			return nil, fmt.Errorf("registry: extended line %d: %w", lineNo, err)
		}
		count, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil || count == 0 {
			return nil, fmt.Errorf("registry: extended line %d: bad count %q", lineNo, fields[4])
		}
		var date time.Time
		if fields[5] != "" {
			date, err = time.Parse("20060102", fields[5])
			if err != nil {
				return nil, fmt.Errorf("registry: extended line %d: bad date %q", lineNo, fields[5])
			}
		}
		rec := ExtendedRecord{
			Registry: reg,
			Country:  fields[1],
			Start:    start,
			Count:    count,
			Date:     date,
			Status:   AllocationStatus(fields[6]),
		}
		if len(fields) > 7 {
			rec.OpaqueID = fields[7]
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("registry: extended: %w", err)
	}
	return out, nil
}
