package registry_test

import (
	"fmt"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
)

// ExampleRegistry shows the exhaustion-era lifecycle: a pre-exhaustion
// member gets its requested block, a post-run-out request queues on the
// waiting list, and recovered space serves it after quarantine.
func ExampleRegistry() {
	r := registry.NewRegistry()
	r.SeedPool(registry.RIPENCC, netblock.MustParsePrefix("185.0.0.0/12"))

	r.RegisterLIR("veteran", registry.RIPENCC, "DE", time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC))
	a, _ := r.Allocate(registry.RIPENCC, "veteran", 16, time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC))
	fmt.Println("2005:", a.Prefix)

	// RIPE ran out on 2019-11-25; drain what remains and request again.
	sinkDate := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	r.RegisterLIR("sink", registry.RIPENCC, "NL", sinkDate)
	for bits := 12; bits <= 24; bits++ {
		for {
			if _, err := r.Allocate(registry.RIPENCC, "sink", bits, sinkDate); err != nil {
				break
			}
		}
	}
	r.RegisterLIR("newcomer", registry.RIPENCC, "FR", time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	_, err := r.Allocate(registry.RIPENCC, "newcomer", 24, time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC))
	fmt.Println("2020:", err)

	// The veteran closes; its space is recovered, matures, and serves the list.
	r.Recover(a.Prefix, time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC))
	served := r.ProcessQuarantine(registry.RIPENCC, time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC))
	fmt.Println("served:", served[0].Org, "with a /"+fmt.Sprint(served[0].Prefix.Bits()))
	// Output:
	// 2005: 185.0.0.0/16
	// 2020: registry: request queued on waiting list
	// served: newcomer with a /24
}

// ExamplePhaseAt reads Table 1's timeline from the policy engine.
func ExamplePhaseAt() {
	for _, when := range []string{"2012-09-13", "2012-09-14", "2019-11-25"} {
		t, _ := time.Parse("2006-01-02", when)
		fmt.Println(when, registry.PhaseAt(registry.RIPENCC, t))
	}
	// Output:
	// 2012-09-13 normal
	// 2012-09-14 soft-landing
	// 2019-11-25 depleted
}
