// Package registry simulates the Regional Internet Registry system: the
// five RIRs with their IPv4 pools, the exhaustion-era allocation policies
// (normal → soft landing → depleted/recovery), waiting lists, recovered-
// space quarantine, and the intra- and inter-RIR transfer machinery. It
// also emits and parses the two public data formats the paper's analyses
// consume: NRO delegated-extended statistics and the RIR transfer-log JSON
// (`transfers_latest.json`).
package registry

import (
	"fmt"
	"time"
)

// RIR identifies one of the five Regional Internet Registries.
type RIR int

// The five RIRs, in alphabetical order.
const (
	AFRINIC RIR = iota
	APNIC
	ARIN
	LACNIC
	RIPENCC
	numRIRs
)

// AllRIRs lists every RIR in a stable order.
func AllRIRs() []RIR { return []RIR{AFRINIC, APNIC, ARIN, LACNIC, RIPENCC} }

// String returns the RIR's usual short name.
func (r RIR) String() string {
	switch r {
	case AFRINIC:
		return "AFRINIC"
	case APNIC:
		return "APNIC"
	case ARIN:
		return "ARIN"
	case LACNIC:
		return "LACNIC"
	case RIPENCC:
		return "RIPE NCC"
	}
	return fmt.Sprintf("RIR(%d)", int(r))
}

// StatsName returns the registry token used in delegated-extended files.
func (r RIR) StatsName() string {
	switch r {
	case AFRINIC:
		return "afrinic"
	case APNIC:
		return "apnic"
	case ARIN:
		return "arin"
	case LACNIC:
		return "lacnic"
	case RIPENCC:
		return "ripencc"
	}
	return "unknown"
}

// ParseRIR resolves both display names ("RIPE NCC") and stats tokens
// ("ripencc") to a RIR.
func ParseRIR(s string) (RIR, error) {
	switch s {
	case "AFRINIC", "afrinic":
		return AFRINIC, nil
	case "APNIC", "apnic":
		return APNIC, nil
	case "ARIN", "arin":
		return ARIN, nil
	case "LACNIC", "lacnic":
		return LACNIC, nil
	case "RIPE NCC", "RIPE", "ripencc", "ripe":
		return RIPENCC, nil
	}
	return 0, fmt.Errorf("registry: unknown RIR %q", s)
}

// Phase is an RIR's position in the IPv4 exhaustion lifecycle.
type Phase int

const (
	// PhaseNormal: the pre-exhaustion regime; requests of justified size
	// are granted from the free pool.
	PhaseNormal Phase = iota
	// PhaseSoftLanding: the RIR has reached its final /8 (or /11) and
	// applies restricted assignment sizes.
	PhaseSoftLanding
	// PhaseDepleted: the free pool is (effectively) empty; requests join a
	// waiting list served from recovered address space.
	PhaseDepleted
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseNormal:
		return "normal"
	case PhaseSoftLanding:
		return "soft-landing"
	case PhaseDepleted:
		return "depleted"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Milestones captures an RIR's exhaustion timeline: Table 1 of the paper.
type Milestones struct {
	// DownToLastBlock is when the RIR reached its final /8 (AFRINIC: /11)
	// and entered soft landing.
	DownToLastBlock time.Time
	// Depleted is when the free pool ran dry and recovery-only service
	// began. Zero for RIRs that had not depleted by mid-2020.
	Depleted time.Time
}

// milestones per Table 1. AFRINIC entered exhaustion phase 2 (last /11) on
// 2020-01-13 and had not depleted; APNIC reached its last /8 on 2011-04-15
// and started recovery-based allocation on 2014-07-27 but still had part of
// a /10 in 2020, so it is modeled as soft landing throughout.
var rirMilestones = map[RIR]Milestones{
	AFRINIC: {DownToLastBlock: date(2017, time.March, 31)},
	APNIC:   {DownToLastBlock: date(2011, time.April, 15)},
	ARIN:    {DownToLastBlock: date(2014, time.April, 23), Depleted: date(2015, time.September, 24)},
	LACNIC:  {DownToLastBlock: date(2017, time.February, 15), Depleted: date(2020, time.August, 19)},
	RIPENCC: {DownToLastBlock: date(2012, time.September, 14), Depleted: date(2019, time.November, 25)},
}

// MilestonesOf returns the exhaustion milestones for an RIR.
func MilestonesOf(r RIR) Milestones { return rirMilestones[r] }

// PhaseAt returns the RIR's lifecycle phase at time t according to the
// Table 1 timeline.
func PhaseAt(r RIR, t time.Time) Phase {
	m := rirMilestones[r]
	if !m.Depleted.IsZero() && !t.Before(m.Depleted) {
		return PhaseDepleted
	}
	if !t.Before(m.DownToLastBlock) {
		return PhaseSoftLanding
	}
	return PhaseNormal
}

// MaxAssignmentBits returns the most-specific prefix length an organization
// may receive from the RIR at time t (larger value = smaller block), along
// with whether new assignments are possible at all under the regime.
//
// Values for 2020 follow §2 of the paper: AFRINIC, ARIN and LACNIC limit
// assignments to a /22, APNIC to a /23, and the RIPE NCC to a /24. During
// earlier soft-landing years APNIC and RIPE NCC handed out one final /22
// per LIR.
func MaxAssignmentBits(r RIR, t time.Time) int {
	switch PhaseAt(r, t) {
	case PhaseNormal:
		return 8 // effectively unconstrained for our simulation sizes
	case PhaseSoftLanding, PhaseDepleted:
		switch r {
		case AFRINIC, ARIN, LACNIC:
			return 22
		case APNIC:
			// prop-127 halved the maximum delegation to a /23 in 2019,
			// when the waiting list was abolished (2019-07-02).
			if t.Before(date(2019, time.July, 2)) {
				return 22
			}
			return 23
		case RIPENCC:
			// Final-/8 policy: one /22 per LIR; /24 via the waiting list
			// after run-out on 2019-11-25.
			if t.Before(date(2019, time.November, 25)) {
				return 22
			}
			return 24
		}
	}
	return 24
}

// TransferMarketOpen reports whether the RIR had an active transfer policy
// (and hence a transfer market) at time t. Markets open once the RIR is
// down to its last block; per the paper, transfers in the AFRINIC and
// LACNIC regions were negligible but technically possible after their
// soft-landing starts.
func TransferMarketOpen(r RIR, t time.Time) bool {
	return PhaseAt(r, t) != PhaseNormal
}

// InterRIRAllowed reports whether address space may be transferred between
// the two RIRs. Only APNIC, ARIN and the RIPE NCC agreed on compatible
// inter-RIR transfer policies.
func InterRIRAllowed(from, to RIR) bool {
	ok := func(r RIR) bool { return r == APNIC || r == ARIN || r == RIPENCC }
	return from != to && ok(from) && ok(to)
}

// QuarantinePeriod is how long recovered address space rests before being
// redistributed (most RIRs use six months).
const QuarantinePeriod = 182 * 24 * time.Hour

// WaitingListLimit returns the maximum count of approved-but-unfulfilled
// requests the RIR's waiting list held per the paper (§2): ARIN 202,
// LACNIC 275, RIPE NCC 110. Zero means the RIR runs no waiting list.
func WaitingListLimit(r RIR) int {
	switch r {
	case ARIN:
		return 202
	case LACNIC:
		return 275
	case RIPENCC:
		return 110
	}
	return 0
}
