package registry

import (
	"testing"
	"time"
)

func TestRIRStringAndParse(t *testing.T) {
	for _, r := range AllRIRs() {
		got, err := ParseRIR(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRIR(%q) = %v, %v", r.String(), got, err)
		}
		got, err = ParseRIR(r.StatsName())
		if err != nil || got != r {
			t.Errorf("ParseRIR(%q) = %v, %v", r.StatsName(), got, err)
		}
	}
	if _, err := ParseRIR("nope"); err == nil {
		t.Error("unknown RIR should fail")
	}
	if RIR(99).String() == "" || RIR(99).StatsName() != "unknown" {
		t.Error("out-of-range RIR rendering")
	}
}

// TestTable1Timeline pins the exhaustion milestones to the dates of
// Table 1 in the paper.
func TestTable1Timeline(t *testing.T) {
	cases := []struct {
		rir      RIR
		lastTick time.Time
		depleted time.Time // zero if not depleted
	}{
		{AFRINIC, date(2017, time.March, 31), time.Time{}},
		{APNIC, date(2011, time.April, 15), time.Time{}},
		{ARIN, date(2014, time.April, 23), date(2015, time.September, 24)},
		{LACNIC, date(2017, time.February, 15), date(2020, time.August, 19)},
		{RIPENCC, date(2012, time.September, 14), date(2019, time.November, 25)},
	}
	for _, c := range cases {
		m := MilestonesOf(c.rir)
		if !m.DownToLastBlock.Equal(c.lastTick) {
			t.Errorf("%s DownToLastBlock = %v, want %v", c.rir, m.DownToLastBlock, c.lastTick)
		}
		if !m.Depleted.Equal(c.depleted) {
			t.Errorf("%s Depleted = %v, want %v", c.rir, m.Depleted, c.depleted)
		}
	}
}

func TestPhaseAt(t *testing.T) {
	cases := []struct {
		rir  RIR
		at   time.Time
		want Phase
	}{
		{RIPENCC, date(2010, time.January, 1), PhaseNormal},
		{RIPENCC, date(2012, time.September, 14), PhaseSoftLanding},
		{RIPENCC, date(2019, time.November, 24), PhaseSoftLanding},
		{RIPENCC, date(2019, time.November, 25), PhaseDepleted},
		{RIPENCC, date(2020, time.June, 1), PhaseDepleted},
		{ARIN, date(2015, time.September, 24), PhaseDepleted},
		{APNIC, date(2020, time.June, 1), PhaseSoftLanding}, // still has /10
		{AFRINIC, date(2020, time.June, 1), PhaseSoftLanding},
		{LACNIC, date(2020, time.June, 1), PhaseSoftLanding},
		{LACNIC, date(2020, time.August, 19), PhaseDepleted},
	}
	for _, c := range cases {
		if got := PhaseAt(c.rir, c.at); got != c.want {
			t.Errorf("PhaseAt(%s, %s) = %v, want %v", c.rir, c.at.Format("2006-01-02"), got, c.want)
		}
	}
}

func TestMaxAssignmentBits2020(t *testing.T) {
	// §2: AFRINIC, ARIN, LACNIC limit to /22; APNIC /23; RIPE /24.
	mid2020 := date(2020, time.June, 1)
	want := map[RIR]int{AFRINIC: 22, ARIN: 22, LACNIC: 22, APNIC: 23, RIPENCC: 24}
	for rir, bits := range want {
		if got := MaxAssignmentBits(rir, mid2020); got != bits {
			t.Errorf("MaxAssignmentBits(%s, 2020) = %d, want %d", rir, got, bits)
		}
	}
	// Earlier regimes.
	if got := MaxAssignmentBits(RIPENCC, date(2015, time.January, 1)); got != 22 {
		t.Errorf("RIPE final-/8 policy should be /22, got /%d", got)
	}
	if got := MaxAssignmentBits(APNIC, date(2015, time.January, 1)); got != 22 {
		t.Errorf("APNIC pre-2019 policy should be /22, got /%d", got)
	}
	if got := MaxAssignmentBits(RIPENCC, date(2010, time.January, 1)); got != 8 {
		t.Errorf("normal phase should be unconstrained, got /%d", got)
	}
}

func TestTransferMarketOpen(t *testing.T) {
	// §3: markets start once the RIR is down to its last /8.
	if TransferMarketOpen(RIPENCC, date(2012, time.September, 13)) {
		t.Error("RIPE market should be closed before last /8")
	}
	if !TransferMarketOpen(RIPENCC, date(2012, time.September, 14)) {
		t.Error("RIPE market should open at last /8")
	}
	if !TransferMarketOpen(APNIC, date(2011, time.May, 1)) {
		t.Error("APNIC market should open after 2011-04-15")
	}
}

func TestInterRIRAllowed(t *testing.T) {
	if !InterRIRAllowed(ARIN, APNIC) || !InterRIRAllowed(APNIC, RIPENCC) || !InterRIRAllowed(RIPENCC, ARIN) {
		t.Error("APNIC/ARIN/RIPE pairs must be allowed")
	}
	if InterRIRAllowed(ARIN, ARIN) {
		t.Error("same-RIR is not inter-RIR")
	}
	if InterRIRAllowed(AFRINIC, ARIN) || InterRIRAllowed(ARIN, LACNIC) {
		t.Error("AFRINIC/LACNIC have no inter-RIR policy")
	}
}

func TestWaitingListLimits(t *testing.T) {
	// §2: ARIN 202, LACNIC 275, RIPE 110.
	if WaitingListLimit(ARIN) != 202 || WaitingListLimit(LACNIC) != 275 || WaitingListLimit(RIPENCC) != 110 {
		t.Error("waiting list limits diverge from paper")
	}
	if WaitingListLimit(APNIC) != 0 || WaitingListLimit(AFRINIC) != 0 {
		t.Error("APNIC/AFRINIC run no waiting list in 2020")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseNormal.String() != "normal" || PhaseSoftLanding.String() != "soft-landing" || PhaseDepleted.String() != "depleted" {
		t.Error("phase names")
	}
}
