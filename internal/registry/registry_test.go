package registry

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ipv4market/internal/netblock"
)

func pfx(s string) netblock.Prefix { return netblock.MustParsePrefix(s) }

func newTestRegistry() *Registry {
	r := NewRegistry()
	r.SeedPool(RIPENCC, pfx("185.0.0.0/8"))
	r.SeedPool(ARIN, pfx("23.0.0.0/8"))
	r.SeedPool(APNIC, pfx("103.0.0.0/8"))
	return r
}

func TestAllocateNormalPhase(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("acme", RIPENCC, "DE", date(2005, 1, 1))
	a, err := r.Allocate(RIPENCC, "acme", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Prefix.Bits() != 16 {
		t.Errorf("normal-phase allocation should honor requested size, got %v", a.Prefix)
	}
	if a.Org != "acme" || a.RIR != RIPENCC || a.Status != StatusAllocated || a.Country != "DE" {
		t.Errorf("allocation record = %+v", a)
	}
	if got, ok := r.Holder(a.Prefix); !ok || got != a {
		t.Error("Holder lookup failed")
	}
	if r.PoolSize(RIPENCC) != (1<<24)-(1<<16) {
		t.Errorf("pool size = %d", r.PoolSize(RIPENCC))
	}
}

func TestAllocateRequiresMembership(t *testing.T) {
	r := newTestRegistry()
	_, err := r.Allocate(RIPENCC, "ghost", 24, date(2005, 1, 1))
	if !errors.Is(err, ErrNotMember) {
		t.Errorf("err = %v, want ErrNotMember", err)
	}
}

func TestAllocateSoftLandingClampsAndLimits(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("acme", RIPENCC, "DE", date(2013, 1, 1))
	// 2015: RIPE final-/8 regime, max one /22 per LIR.
	a, err := r.Allocate(RIPENCC, "acme", 16, date(2015, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Prefix.Bits() != 22 {
		t.Errorf("soft-landing allocation should clamp /16 to /22, got %v", a.Prefix)
	}
	// Second request must be refused: final block already granted.
	if _, err := r.Allocate(RIPENCC, "acme", 22, date(2016, 1, 1)); !errors.Is(err, ErrPolicy) {
		t.Errorf("second soft-landing request err = %v, want ErrPolicy", err)
	}
}

func TestAllocateDepletedGoesToWaitingList(t *testing.T) {
	r := NewRegistry() // empty RIPE pool
	r.RegisterLIR("acme", RIPENCC, "DE", date(2020, 1, 1))
	_, err := r.Allocate(RIPENCC, "acme", 24, date(2020, 2, 1))
	if !errors.Is(err, ErrWaitingList) {
		t.Fatalf("err = %v, want ErrWaitingList", err)
	}
	if r.WaitingListLen(RIPENCC) != 1 {
		t.Errorf("waiting list len = %d", r.WaitingListLen(RIPENCC))
	}
}

func TestWaitingListCapacity(t *testing.T) {
	r := NewRegistry()
	limit := WaitingListLimit(RIPENCC)
	for i := 0; i < limit; i++ {
		org := OrgID(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		r.RegisterLIR(org, RIPENCC, "NL", date(2020, 1, 1))
		if _, err := r.Allocate(RIPENCC, org, 24, date(2020, 2, 1)); !errors.Is(err, ErrWaitingList) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	r.RegisterLIR("late", RIPENCC, "NL", date(2020, 1, 1))
	if _, err := r.Allocate(RIPENCC, "late", 24, date(2020, 2, 1)); !errors.Is(err, ErrWaitingListFull) {
		t.Errorf("over-limit request err = %v, want ErrWaitingListFull", err)
	}
}

func TestRecoveryQuarantineAndWaitingListService(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("old", RIPENCC, "DE", date(2005, 1, 1))
	a, err := r.Allocate(RIPENCC, "old", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Drain the pool so the depleted phase has nothing to give.
	r.rirs[RIPENCC].pool = netblock.NewSet()

	r.RegisterLIR("new", RIPENCC, "FR", date(2020, 1, 1))
	if _, err := r.Allocate(RIPENCC, "new", 24, date(2020, 1, 15)); !errors.Is(err, ErrWaitingList) {
		t.Fatal(err)
	}

	// Old member closes; its /16 is recovered into quarantine.
	if err := r.Recover(a.Prefix, date(2020, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Holder(a.Prefix); ok {
		t.Error("recovered allocation should be gone")
	}
	if r.QuarantineSize(RIPENCC) != 1<<16 {
		t.Errorf("quarantine size = %d", r.QuarantineSize(RIPENCC))
	}

	// Before the quarantine matures nothing is served.
	if made := r.ProcessQuarantine(RIPENCC, date(2020, 3, 1)); len(made) != 0 {
		t.Errorf("premature service: %v", made)
	}
	// After six months the block is released and the waiting list served.
	made := r.ProcessQuarantine(RIPENCC, date(2020, 9, 1))
	if len(made) != 1 {
		t.Fatalf("made = %v", made)
	}
	if made[0].Org != "new" || made[0].Prefix.Bits() != 24 {
		t.Errorf("served allocation = %+v", made[0])
	}
	if r.WaitingListLen(RIPENCC) != 0 {
		t.Error("waiting list should be drained")
	}
	if r.QuarantineSize(RIPENCC) != 0 {
		t.Error("quarantine should be empty")
	}
}

func TestRecoverUnknownPrefix(t *testing.T) {
	r := newTestRegistry()
	if err := r.Recover(pfx("198.41.0.0/24"), date(2020, 1, 1)); !errors.Is(err, ErrNotHolder) {
		t.Errorf("err = %v, want ErrNotHolder", err)
	}
}

func TestExecuteTransferIntraRIR(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("seller", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("buyer", RIPENCC, "SE", date(2014, 1, 1))
	a, err := r.Allocate(RIPENCC, "seller", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.ExecuteTransfer(a.Prefix, "seller", "buyer", RIPENCC, TypeMarket, 20.0, date(2019, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.IsInterRIR() {
		t.Error("intra-RIR transfer mislabeled")
	}
	got, ok := r.Holder(a.Prefix)
	if !ok || got.Org != "buyer" || got.Country != "SE" {
		t.Errorf("post-transfer holder = %+v", got)
	}
	if len(r.Transfers()) != 1 {
		t.Error("transfer not recorded")
	}
}

func TestExecuteTransferSplitsAllocation(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("seller", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("buyer", RIPENCC, "SE", date(2014, 1, 1))
	a, err := r.Allocate(RIPENCC, "seller", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Transfer only a /24 slice of the /16.
	sub := netblock.MustPrefix(a.Prefix.Addr(), 24)
	if _, err := r.ExecuteTransfer(sub, "seller", "buyer", RIPENCC, TypeMarket, 22.5, date(2019, 6, 1)); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Holder(sub)
	if !ok || got.Org != "buyer" {
		t.Errorf("sub-block holder = %+v, %v", got, ok)
	}
	// The seller keeps the rest: total held addresses = /16 - /24.
	var sellerAddrs uint64
	for _, al := range r.AllocationsOf(RIPENCC, "seller") {
		sellerAddrs += al.Prefix.NumAddrs()
	}
	if sellerAddrs != (1<<16)-(1<<8) {
		t.Errorf("seller retains %d addresses", sellerAddrs)
	}
}

func TestExecuteTransferPolicyChecks(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("seller", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("buyer", RIPENCC, "SE", date(2014, 1, 1))
	a, _ := r.Allocate(RIPENCC, "seller", 16, date(2005, 6, 1))

	// Market transfer before the RIPE market opened (2012-09-14).
	if _, err := r.ExecuteTransfer(a.Prefix, "seller", "buyer", RIPENCC, TypeMarket, 5, date(2011, 1, 1)); !errors.Is(err, ErrMarketClosed) {
		t.Errorf("pre-market err = %v, want ErrMarketClosed", err)
	}
	// M&A transfers are allowed even pre-market.
	if _, err := r.ExecuteTransfer(a.Prefix, "seller", "buyer", RIPENCC, TypeMerger, 0, date(2011, 1, 1)); err != nil {
		t.Errorf("M&A transfer err = %v", err)
	}
	// Wrong seller.
	if _, err := r.ExecuteTransfer(a.Prefix, "seller", "buyer", RIPENCC, TypeMarket, 5, date(2019, 1, 1)); !errors.Is(err, ErrNotHolder) {
		t.Errorf("wrong-seller err = %v, want ErrNotHolder", err)
	}
	// Recipient not a member.
	if _, err := r.ExecuteTransfer(a.Prefix, "buyer", "ghost", RIPENCC, TypeMarket, 5, date(2019, 1, 1)); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member err = %v, want ErrNotMember", err)
	}
}

func TestExecuteTransferInterRIR(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("seller", ARIN, "US", date(2005, 1, 1))
	r.RegisterLIR("buyer", RIPENCC, "DE", date(2014, 1, 1))
	r.RegisterLIR("afbuyer", AFRINIC, "ZA", date(2014, 1, 1))
	a, err := r.Allocate(ARIN, "seller", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	// ARIN → AFRINIC is not permitted.
	if _, err := r.ExecuteTransfer(a.Prefix, "seller", "afbuyer", AFRINIC, TypeMarket, 20, date(2019, 1, 1)); !errors.Is(err, ErrPolicy) {
		t.Errorf("ARIN→AFRINIC err = %v, want ErrPolicy", err)
	}
	// ARIN → RIPE is permitted; region follows the block (footnote 1).
	tr, err := r.ExecuteTransfer(a.Prefix, "seller", "buyer", RIPENCC, TypeMarket, 20, date(2019, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsInterRIR() || tr.FromRIR != ARIN || tr.ToRIR != RIPENCC {
		t.Errorf("transfer = %+v", tr)
	}
	got, _ := r.Holder(a.Prefix)
	if got.RIR != RIPENCC {
		t.Errorf("block region should move to RIPE, got %s", got.RIR)
	}
}

func TestTransfersIn(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("s", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("b", RIPENCC, "SE", date(2014, 1, 1))
	a, _ := r.Allocate(RIPENCC, "s", 16, date(2005, 6, 1))
	subs, _ := a.Prefix.Split(24)
	dates := []time.Time{date(2018, 3, 1), date(2019, 3, 1), date(2020, 3, 1)}
	for i, d := range dates {
		if _, err := r.ExecuteTransfer(subs[i], "s", "b", RIPENCC, TypeMarket, 20, d); err != nil {
			t.Fatal(err)
		}
	}
	got := r.TransfersIn(date(2019, 1, 1), date(2020, 1, 1))
	if len(got) != 1 || !got[0].Date.Equal(dates[1]) {
		t.Errorf("TransfersIn = %v", got)
	}
}

func TestHolderOfLongestMatch(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("acme", RIPENCC, "DE", date(2005, 1, 1))
	a, _ := r.Allocate(RIPENCC, "acme", 16, date(2005, 6, 1))
	sub := netblock.MustPrefix(a.Prefix.Addr(), 24)
	got, ok := r.HolderOf(sub)
	if !ok || got != a {
		t.Errorf("HolderOf(%v) = %+v, %v", sub, got, ok)
	}
}

func TestRegisterLIRIdempotent(t *testing.T) {
	r := newTestRegistry()
	m1 := r.RegisterLIR("acme", RIPENCC, "DE", date(2005, 1, 1))
	m2 := r.RegisterLIR("acme", RIPENCC, "XX", date(2010, 1, 1))
	if m1 != m2 || m2.Country != "DE" {
		t.Error("re-registration should return the existing record")
	}
	if r.NumMembers(RIPENCC) != 1 {
		t.Errorf("NumMembers = %d", r.NumMembers(RIPENCC))
	}
}

func TestRegisterLegacy(t *testing.T) {
	r := newTestRegistry()
	legacy := pfx("44.0.0.0/16") // not in any pool
	a, err := r.RegisterLegacy(ARIN, "amprnet", legacy, "US", date(1981, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusLegacy || a.Org != "amprnet" {
		t.Errorf("legacy allocation = %+v", a)
	}
	if got, ok := r.Holder(legacy); !ok || got != a {
		t.Error("legacy block not registered")
	}

	// Overlap with existing allocations is rejected.
	r.RegisterLIR("acme", RIPENCC, "DE", date(2005, 1, 1))
	alloc, err := r.Allocate(RIPENCC, "acme", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RegisterLegacy(RIPENCC, "x", netblock.MustPrefix(alloc.Prefix.Addr(), 24), "DE", date(1981, 1, 1)); !errors.Is(err, ErrPolicy) {
		t.Errorf("overlap err = %v", err)
	}
	if _, err := r.RegisterLegacy(ARIN, "x", pfx("44.0.0.0/8"), "US", date(1981, 1, 1)); !errors.Is(err, ErrPolicy) {
		t.Errorf("covering err = %v", err)
	}
	// Overlap with a free pool is rejected.
	if _, err := r.RegisterLegacy(ARIN, "x", pfx("23.5.0.0/16"), "US", date(1981, 1, 1)); !errors.Is(err, ErrPolicy) {
		t.Errorf("pool overlap err = %v", err)
	}

	// Legacy rows appear in delegated-extended output with legacy status.
	var buf bytes.Buffer
	if err := ExportExtended(&buf, r, ARIN, date(2020, 6, 1)); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseExtended(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sawLegacy bool
	for _, rec := range recs {
		if rec.Status == StatusLegacy {
			sawLegacy = true
		}
	}
	if !sawLegacy {
		t.Error("legacy row missing from extended stats")
	}
}
