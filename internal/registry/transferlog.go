package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ipv4market/internal/netblock"
)

// This file implements the public transfer-statistics JSON the RIRs
// publish daily (the `transfers_latest.json` files the paper downloads
// from each RIR's FTP site). The schema follows the RIR implementation of
// the NRO transfer-log format: each record carries the address ranges, the
// organizations, the source and recipient RIRs, a type, and a date.
//
// A deliberate modeling detail: AFRINIC, ARIN and the RIPE NCC label
// merger-and-acquisition transfers, while APNIC and LACNIC do not (§3 of
// the paper). ExportTransferLog therefore erases the M&A label for those
// two RIRs, reproducing the data gap the paper works around.

// transferLogJSON is the top-level document.
type transferLogJSON struct {
	Version   string            `json:"version"`
	Transfers []transferRecJSON `json:"transfers"`
}

type transferRecJSON struct {
	IP4Nets      *ip4NetsJSON `json:"ip4nets,omitempty"`
	Type         string       `json:"type"`
	SourceOrg    orgJSON      `json:"source_organization"`
	RecipientOrg orgJSON      `json:"recipient_organization"`
	SourceRIR    string       `json:"source_rir"`
	RecipientRIR string       `json:"recipient_rir"`
	Date         string       `json:"transfer_date"`
}

type ip4NetsJSON struct {
	TransferSet []netRangeJSON `json:"transfer_set"`
}

type netRangeJSON struct {
	Start string `json:"start_address"`
	End   string `json:"end_address"`
}

type orgJSON struct {
	Name string `json:"name"`
}

// LabelsMA reports whether the RIR labels merger-and-acquisition
// transfers in its public logs. AFRINIC, ARIN and the RIPE NCC do; APNIC
// and LACNIC do not (§3), so M&A transfers cannot be filtered from their
// statistics.
func LabelsMA(r RIR) bool {
	return r == AFRINIC || r == ARIN || r == RIPENCC
}

// ExportTransferLog writes the transfers maintained by the given RIR (i.e.
// whose source RIR is r) as a transfers_latest.json document. For APNIC
// and LACNIC the M&A label is erased (both types appear as
// RESOURCE_TRANSFER), reproducing those RIRs' real logs.
func ExportTransferLog(w io.Writer, r RIR, transfers []Transfer) error {
	doc := transferLogJSON{Version: "4.0"}
	for _, t := range transfers {
		if t.FromRIR != r {
			continue
		}
		typ := string(t.Type)
		if !LabelsMA(r) {
			typ = string(TypeMarket)
		}
		doc.Transfers = append(doc.Transfers, transferRecJSON{
			IP4Nets: &ip4NetsJSON{TransferSet: []netRangeJSON{{
				Start: t.Prefix.First().String(),
				End:   t.Prefix.Last().String(),
			}}},
			Type:         typ,
			SourceOrg:    orgJSON{Name: string(t.From)},
			RecipientOrg: orgJSON{Name: string(t.To)},
			SourceRIR:    t.FromRIR.String(),
			RecipientRIR: t.ToRIR.String(),
			Date:         t.Date.UTC().Format(time.RFC3339),
		})
	}
	sort.Slice(doc.Transfers, func(i, j int) bool { return doc.Transfers[i].Date < doc.Transfers[j].Date })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ParseTransferLog reads a transfers_latest.json document. Ranges that do
// not align to a single CIDR block are decomposed into minimal prefixes,
// producing one Transfer per prefix (real logs contain such ranges).
func ParseTransferLog(rd io.Reader) ([]Transfer, error) {
	var doc transferLogJSON
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("registry: parse transfer log: %w", err)
	}
	var out []Transfer
	for i, rec := range doc.Transfers {
		fromRIR, err := ParseRIR(rec.SourceRIR)
		if err != nil {
			return nil, fmt.Errorf("registry: transfer %d: %w", i, err)
		}
		toRIR, err := ParseRIR(rec.RecipientRIR)
		if err != nil {
			return nil, fmt.Errorf("registry: transfer %d: %w", i, err)
		}
		date, err := time.Parse(time.RFC3339, rec.Date)
		if err != nil {
			return nil, fmt.Errorf("registry: transfer %d: bad date %q: %w", i, rec.Date, err)
		}
		var typ TransferType
		switch rec.Type {
		case string(TypeMarket), "IPv4": // some logs use a bare resource tag
			typ = TypeMarket
		case string(TypeMerger):
			typ = TypeMerger
		default:
			return nil, fmt.Errorf("registry: transfer %d: unknown type %q", i, rec.Type)
		}
		if rec.IP4Nets == nil {
			continue // IPv6 or ASN-only record
		}
		for _, nr := range rec.IP4Nets.TransferSet {
			start, err := netblock.ParseAddr(nr.Start)
			if err != nil {
				return nil, fmt.Errorf("registry: transfer %d: %w", i, err)
			}
			end, err := netblock.ParseAddr(nr.End)
			if err != nil {
				return nil, fmt.Errorf("registry: transfer %d: %w", i, err)
			}
			set := netblock.NewSet()
			set.AddRange(start, end)
			for _, p := range set.Prefixes() {
				out = append(out, Transfer{
					Prefix:  p,
					From:    OrgID(rec.SourceOrg.Name),
					To:      OrgID(rec.RecipientOrg.Name),
					FromRIR: fromRIR,
					ToRIR:   toRIR,
					Type:    typ,
					Date:    date,
				})
			}
		}
	}
	return out, nil
}
