package registry

import (
	"bytes"
	"strings"
	"testing"

	"ipv4market/internal/netblock"
)

func buildTransfers(t *testing.T) (*Registry, []Transfer) {
	t.Helper()
	r := newTestRegistry()
	r.RegisterLIR("seller-ripe", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("buyer-ripe", RIPENCC, "SE", date(2014, 1, 1))
	r.RegisterLIR("seller-apnic", APNIC, "JP", date(2005, 1, 1))
	r.RegisterLIR("buyer-apnic", APNIC, "AU", date(2014, 1, 1))

	a1, err := r.Allocate(RIPENCC, "seller-ripe", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Allocate(APNIC, "seller-apnic", 16, date(2005, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	sub1, _ := a1.Prefix.Split(24)
	sub2, _ := a2.Prefix.Split(24)

	if _, err := r.ExecuteTransfer(sub1[0], "seller-ripe", "buyer-ripe", RIPENCC, TypeMarket, 21, date(2020, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteTransfer(sub1[1], "seller-ripe", "buyer-ripe", RIPENCC, TypeMerger, 0, date(2020, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteTransfer(sub2[0], "seller-apnic", "buyer-apnic", APNIC, TypeMerger, 0, date(2020, 3, 10)); err != nil {
		t.Fatal(err)
	}
	return r, r.Transfers()
}

func TestTransferLogRoundTrip(t *testing.T) {
	_, transfers := buildTransfers(t)
	var buf bytes.Buffer
	if err := ExportTransferLog(&buf, RIPENCC, transfers); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTransferLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d transfers, want 2 (RIPE only)", len(got))
	}
	// RIPE labels M&A, so the merger type survives the round trip.
	var sawMerger bool
	for _, tr := range got {
		if tr.Type == TypeMerger {
			sawMerger = true
		}
		if tr.FromRIR != RIPENCC {
			t.Errorf("unexpected source RIR %s", tr.FromRIR)
		}
	}
	if !sawMerger {
		t.Error("RIPE log should preserve the M&A label")
	}
}

func TestTransferLogErasesMALabelForAPNIC(t *testing.T) {
	// §3: APNIC and LACNIC do not label M&A transfers.
	_, transfers := buildTransfers(t)
	var buf bytes.Buffer
	if err := ExportTransferLog(&buf, APNIC, transfers); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTransferLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d transfers, want 1", len(got))
	}
	if got[0].Type != TypeMarket {
		t.Errorf("APNIC log should erase the M&A label, got %s", got[0].Type)
	}
}

func TestParseTransferLogRangeDecomposition(t *testing.T) {
	// A 256-address range offset so it is not one CIDR block must
	// decompose into minimal prefixes (two /25s).
	doc := `{
	  "version": "4.0",
	  "transfers": [{
	    "ip4nets": {"transfer_set": [
	      {"start_address": "185.0.0.128", "end_address": "185.0.1.127"}
	    ]},
	    "type": "RESOURCE_TRANSFER",
	    "source_organization": {"name": "s"},
	    "recipient_organization": {"name": "b"},
	    "source_rir": "RIPE NCC",
	    "recipient_rir": "RIPE NCC",
	    "transfer_date": "2020-01-10T00:00:00Z"
	  }]
	}`
	got, err := ParseTransferLog(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decomposed into %d prefixes, want 2 (/25 + /25)", len(got))
	}
	var total uint64
	for _, tr := range got {
		total += tr.Prefix.NumAddrs()
	}
	if total != 256 {
		t.Errorf("total addresses = %d, want 256", total)
	}
}

func TestParseTransferLogErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"bad json", `{`},
		{"bad rir", `{"transfers":[{"type":"RESOURCE_TRANSFER","source_organization":{"name":"s"},"recipient_organization":{"name":"b"},"source_rir":"MARS","recipient_rir":"ARIN","transfer_date":"2020-01-10T00:00:00Z"}]}`},
		{"bad date", `{"transfers":[{"type":"RESOURCE_TRANSFER","source_organization":{"name":"s"},"recipient_organization":{"name":"b"},"source_rir":"ARIN","recipient_rir":"ARIN","transfer_date":"not-a-date"}]}`},
		{"bad type", `{"transfers":[{"type":"GIFT","source_organization":{"name":"s"},"recipient_organization":{"name":"b"},"source_rir":"ARIN","recipient_rir":"ARIN","transfer_date":"2020-01-10T00:00:00Z"}]}`},
		{"bad addr", `{"transfers":[{"ip4nets":{"transfer_set":[{"start_address":"x","end_address":"y"}]},"type":"RESOURCE_TRANSFER","source_organization":{"name":"s"},"recipient_organization":{"name":"b"},"source_rir":"ARIN","recipient_rir":"ARIN","transfer_date":"2020-01-10T00:00:00Z"}]}`},
	}
	for _, c := range cases {
		if _, err := ParseTransferLog(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseTransferLogSkipsNonIPv4(t *testing.T) {
	doc := `{"transfers":[{"type":"RESOURCE_TRANSFER","source_organization":{"name":"s"},"recipient_organization":{"name":"b"},"source_rir":"ARIN","recipient_rir":"ARIN","transfer_date":"2020-01-10T00:00:00Z"}]}`
	got, err := ParseTransferLog(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("ASN-only record should yield no transfers, got %v", got)
	}
}

func TestExtendedRoundTrip(t *testing.T) {
	r := newTestRegistry()
	r.RegisterLIR("acme", RIPENCC, "DE", date(2005, 1, 1))
	r.RegisterLIR("beta", RIPENCC, "FR", date(2006, 1, 1))
	if _, err := r.Allocate(RIPENCC, "acme", 16, date(2005, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Allocate(RIPENCC, "beta", 19, date(2006, 6, 1)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ExportExtended(&buf, r, RIPENCC, date(2020, 6, 1)); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseExtended(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2; file:\n%s", len(recs), buf.String())
	}
	var total uint64
	for _, rec := range recs {
		if rec.Registry != RIPENCC || rec.Status != StatusAllocated {
			t.Errorf("record = %+v", rec)
		}
		total += rec.Count
	}
	if total != (1<<16)+(1<<13) {
		t.Errorf("total = %d", total)
	}
}

func TestExtendedRecordPrefixes(t *testing.T) {
	rec := ExtendedRecord{Start: netblock.MustParseAddr("185.0.0.0"), Count: 768}
	ps := rec.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("768-address range should be /23+/24, got %v", ps)
	}
}

func TestParseExtendedSkipsAndErrors(t *testing.T) {
	good := `2|ripencc|20200601|1|1|19830101|20200601|+0000
ripencc|*|ipv4|*|1|summary
ripencc|*|asn|*|5|summary
ripencc|DE|asn|64500|1|20050601|allocated|acme
ripencc|DE|ipv6|2001:db8::|32|20050601|allocated|acme
ripencc|DE|ipv4|185.0.0.0|65536|20050601|allocated|acme
`
	recs, err := ParseExtended(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].OpaqueID != "acme" {
		t.Fatalf("recs = %+v", recs)
	}

	bad := []string{
		"mars|DE|ipv4|185.0.0.0|256|20050601|allocated|x\n",
		"ripencc|DE|ipv4|nope|256|20050601|allocated|x\n",
		"ripencc|DE|ipv4|185.0.0.0|zero|20050601|allocated|x\n",
		"ripencc|DE|ipv4|185.0.0.0|0|20050601|allocated|x\n",
		"ripencc|DE|ipv4|185.0.0.0|256|2005|allocated|x\n",
	}
	for i, b := range bad {
		if _, err := ParseExtended(strings.NewReader(b)); err == nil {
			t.Errorf("bad[%d]: expected error", i)
		}
	}
}
