package registry

import (
	"errors"
	"math/rand"
	"testing"

	"ipv4market/internal/netblock"
)

// Property test: under random sequences of allocations, transfers,
// recoveries and quarantine processing, the registry preserves its
// conservation and disjointness invariants:
//
//  1. live allocations never overlap;
//  2. pool + quarantine + allocated space exactly equals the seeded space;
//  3. every allocation's holder is a registered member of its RIR.
func TestRegistryInvariantsUnderRandomOps(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		r := NewRegistry()
		seeded := netblock.MustParsePrefix("60.0.0.0/8")
		r.SeedPool(ARIN, seeded)

		orgs := make([]OrgID, 12)
		for i := range orgs {
			orgs[i] = OrgID(string(rune('a' + i)))
			r.RegisterLIR(orgs[i], ARIN, "US", date(2005, 1, 1))
		}

		when := date(2006, 1, 1)
		for op := 0; op < 200; op++ {
			when = when.AddDate(0, 0, 1+rng.Intn(20))
			org := orgs[rng.Intn(len(orgs))]
			switch rng.Intn(4) {
			case 0: // allocate
				_, err := r.Allocate(ARIN, org, 16+rng.Intn(9), when)
				if err != nil && !errors.Is(err, ErrPoolEmpty) && !errors.Is(err, ErrPolicy) &&
					!errors.Is(err, ErrWaitingList) && !errors.Is(err, ErrWaitingListFull) {
					t.Fatalf("trial %d op %d: allocate: %v", trial, op, err)
				}
			case 1: // transfer a random (sub-)block
				allocs := r.AllocationsOf(ARIN, org)
				if len(allocs) == 0 {
					continue
				}
				a := allocs[rng.Intn(len(allocs))]
				bits := a.Prefix.Bits() + rng.Intn(3)
				if bits > 24 {
					bits = a.Prefix.Bits()
				}
				sub := netblock.MustPrefix(a.Prefix.Addr(), bits)
				buyer := orgs[rng.Intn(len(orgs))]
				if buyer == org {
					continue
				}
				_, err := r.ExecuteTransfer(sub, org, buyer, ARIN, TypeMarket, 20, when)
				if err != nil && !errors.Is(err, ErrMarketClosed) && !errors.Is(err, ErrNotHolder) {
					t.Fatalf("trial %d op %d: transfer: %v", trial, op, err)
				}
			case 2: // recover
				allocs := r.AllocationsOf(ARIN, org)
				if len(allocs) == 0 {
					continue
				}
				a := allocs[rng.Intn(len(allocs))]
				if err := r.Recover(a.Prefix, when); err != nil {
					t.Fatalf("trial %d op %d: recover: %v", trial, op, err)
				}
			case 3: // mature quarantine + serve waiting list
				r.ProcessQuarantine(ARIN, when)
			}
		}

		// Invariant 1: allocations are pairwise disjoint. Walk in prefix
		// order: each next allocation must start after the previous ends.
		allocs := r.Allocations()
		coverage := netblock.NewSet()
		var allocated uint64
		for _, a := range allocs {
			if coverage.OverlapsPrefix(a.Prefix) {
				t.Fatalf("trial %d: overlapping allocation %v", trial, a.Prefix)
			}
			coverage.AddPrefix(a.Prefix)
			allocated += a.Prefix.NumAddrs()

			// Invariant 3: the holder is a member.
			if _, ok := r.Member(a.RIR, a.Org); !ok {
				t.Fatalf("trial %d: allocation %v held by non-member %s", trial, a.Prefix, a.Org)
			}
		}

		// Invariant 2: conservation of address space.
		total := r.PoolSize(ARIN) + r.QuarantineSize(ARIN) + allocated
		if total != seeded.NumAddrs() {
			t.Fatalf("trial %d: conservation broken: pool %d + quarantine %d + allocated %d != %d",
				trial, r.PoolSize(ARIN), r.QuarantineSize(ARIN), allocated, seeded.NumAddrs())
		}
	}
}
