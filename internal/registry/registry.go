package registry

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ipv4market/internal/netblock"
)

// OrgID identifies an organization (LIR or end user) across the system.
type OrgID string

// Sentinel errors callers branch on.
var (
	ErrPoolEmpty       = errors.New("registry: free pool cannot satisfy request")
	ErrWaitingList     = errors.New("registry: request queued on waiting list")
	ErrWaitingListFull = errors.New("registry: waiting list full")
	ErrNotMember       = errors.New("registry: organization is not a member of this RIR")
	ErrNotHolder       = errors.New("registry: organization does not hold this prefix")
	ErrMarketClosed    = errors.New("registry: transfer market not open in this region")
	ErrPolicy          = errors.New("registry: policy violation")
)

// AllocationStatus mirrors the status column of delegated-extended files.
type AllocationStatus string

// Allocation statuses.
const (
	StatusAllocated AllocationStatus = "allocated"
	StatusAssigned  AllocationStatus = "assigned"
	StatusLegacy    AllocationStatus = "legacy"
	StatusReserved  AllocationStatus = "reserved"
)

// Allocation is a block of address space delegated by an RIR to an
// organization.
type Allocation struct {
	Prefix  netblock.Prefix
	RIR     RIR // the RIR currently maintaining the block (footnote 1)
	Org     OrgID
	Country string
	Date    time.Time // date of (re-)delegation
	Status  AllocationStatus
}

// LIR is an RIR member record.
type LIR struct {
	Org     OrgID
	RIR     RIR
	Country string
	Joined  time.Time
	// FinalBlockGranted marks that the LIR already received its one
	// soft-landing block (e.g. RIPE's one-/22-per-LIR rule).
	FinalBlockGranted bool
}

// WaitingRequest is an approved but unfulfilled request.
type WaitingRequest struct {
	Org       OrgID
	Bits      int
	Requested time.Time
}

type quarantined struct {
	prefix  netblock.Prefix
	release time.Time
}

type rirState struct {
	pool       *netblock.Set
	quarantine []quarantined
	waiting    []WaitingRequest
	members    map[OrgID]*LIR
}

// Registry is the full five-RIR system. It is not safe for concurrent use.
type Registry struct {
	rirs   map[RIR]*rirState
	allocs *netblock.Trie[*Allocation]

	transfers []Transfer
}

// NewRegistry returns a registry with empty pools and no members.
func NewRegistry() *Registry {
	r := &Registry{
		rirs:   make(map[RIR]*rirState, numRIRs),
		allocs: netblock.NewTrie[*Allocation](),
	}
	for _, rir := range AllRIRs() {
		r.rirs[rir] = &rirState{
			pool:    netblock.NewSet(),
			members: make(map[OrgID]*LIR),
		}
	}
	return r
}

// SeedPool adds unallocated address space to an RIR's free pool (modeling
// the historical IANA allocations).
func (r *Registry) SeedPool(rir RIR, p netblock.Prefix) {
	r.rirs[rir].pool.AddPrefix(p)
}

// PoolSize returns the number of addresses in the RIR's free pool.
func (r *Registry) PoolSize(rir RIR) uint64 { return r.rirs[rir].pool.Size() }

// RegisterLIR makes org a member of the RIR. Registering twice is a no-op
// returning the existing record.
func (r *Registry) RegisterLIR(org OrgID, rir RIR, country string, joined time.Time) *LIR {
	st := r.rirs[rir]
	if m, ok := st.members[org]; ok {
		return m
	}
	m := &LIR{Org: org, RIR: rir, Country: country, Joined: joined}
	st.members[org] = m
	return m
}

// Member returns the LIR record for org at the RIR.
func (r *Registry) Member(rir RIR, org OrgID) (*LIR, bool) {
	m, ok := r.rirs[rir].members[org]
	return m, ok
}

// NumMembers returns the RIR's membership count.
func (r *Registry) NumMembers(rir RIR) int { return len(r.rirs[rir].members) }

// takeBlock carves a block of exactly the given prefix length out of the
// set, preferring the lowest-addressed fit. It reports failure if no block
// of that size is free.
func takeBlock(pool *netblock.Set, bits int) (netblock.Prefix, bool) {
	for _, p := range pool.Prefixes() {
		if p.Bits() <= bits {
			// Carve the lowest /bits out of p.
			block := netblock.MustPrefix(p.Addr(), bits)
			pool.RemovePrefix(block)
			return block, true
		}
	}
	return netblock.Prefix{}, false
}

// Allocate requests a block of the given prefix length for org from the
// RIR at time t, applying the phase policy:
//
//   - normal: the request is granted at the requested size if the pool can
//     satisfy it;
//   - soft landing: the size is clamped to MaxAssignmentBits, and each LIR
//     receives at most one final block;
//   - depleted: the request is clamped and joins the waiting list unless
//     recovered space is already available.
//
// On waiting-list admission the returned error is ErrWaitingList (the
// request is queued; a later ProcessQuarantine may fulfill it).
func (r *Registry) Allocate(rir RIR, org OrgID, bits int, t time.Time) (*Allocation, error) {
	st := r.rirs[rir]
	m, ok := st.members[org]
	if !ok {
		return nil, fmt.Errorf("%w: %s at %s", ErrNotMember, org, rir)
	}
	phase := PhaseAt(rir, t)
	maxBits := MaxAssignmentBits(rir, t)
	if bits < maxBits {
		bits = maxBits // clamp to the largest size policy allows
	}
	if bits > 24 && phase != PhaseNormal {
		bits = 24 // RIRs do not allocate smaller than /24
	}

	switch phase {
	case PhaseNormal:
		return r.grant(rir, org, bits, t)
	case PhaseSoftLanding:
		if m.FinalBlockGranted {
			return nil, fmt.Errorf("%w: %s already received its final soft-landing block", ErrPolicy, org)
		}
		a, err := r.grant(rir, org, bits, t)
		if err == nil {
			m.FinalBlockGranted = true
		}
		return a, err
	default: // PhaseDepleted
		if a, err := r.grant(rir, org, bits, t); err == nil {
			return a, nil
		}
		limit := WaitingListLimit(rir)
		if limit == 0 || len(st.waiting) >= limit {
			return nil, ErrWaitingListFull
		}
		st.waiting = append(st.waiting, WaitingRequest{Org: org, Bits: bits, Requested: t})
		return nil, ErrWaitingList
	}
}

func (r *Registry) grant(rir RIR, org OrgID, bits int, t time.Time) (*Allocation, error) {
	st := r.rirs[rir]
	block, ok := takeBlock(st.pool, bits)
	if !ok {
		return nil, ErrPoolEmpty
	}
	m := st.members[org]
	a := &Allocation{
		Prefix:  block,
		RIR:     rir,
		Org:     org,
		Country: m.Country,
		Date:    t,
		Status:  StatusAllocated,
	}
	r.allocs.Insert(block, a)
	return a, nil
}

// RegisterLegacy records a pre-RIR ("legacy") assignment: address space
// Jon Postel handed out before the registry framework existed. The block
// is booked under the maintaining RIR's statistics with legacy status,
// but the holder need not be a member and no pool space is consumed (the
// space was never in an RIR pool). It fails if the block overlaps
// existing allocations or pool space.
func (r *Registry) RegisterLegacy(rir RIR, org OrgID, p netblock.Prefix, country string, t time.Time) (*Allocation, error) {
	if _, a, ok := r.allocs.LongestMatch(p); ok {
		return nil, fmt.Errorf("%w: %v overlaps allocation %v", ErrPolicy, p, a.Prefix)
	}
	if sub := r.allocs.CoveredBy(p); len(sub) > 0 {
		return nil, fmt.Errorf("%w: %v covers allocation %v", ErrPolicy, p, sub[0].Prefix)
	}
	if r.rirs[rir].pool.OverlapsPrefix(p) {
		return nil, fmt.Errorf("%w: %v overlaps the %s free pool", ErrPolicy, p, rir)
	}
	a := &Allocation{
		Prefix:  p,
		RIR:     rir,
		Org:     org,
		Country: country,
		Date:    t,
		Status:  StatusLegacy,
	}
	r.allocs.Insert(p, a)
	return a, nil
}

// Holder returns the allocation exactly covering prefix p, if any.
func (r *Registry) Holder(p netblock.Prefix) (*Allocation, bool) {
	return r.allocs.Get(p)
}

// HolderOf returns the most specific allocation covering p.
func (r *Registry) HolderOf(p netblock.Prefix) (*Allocation, bool) {
	_, a, ok := r.allocs.LongestMatch(p)
	return a, ok
}

// Allocations returns every live allocation, in prefix order.
func (r *Registry) Allocations() []*Allocation {
	var out []*Allocation
	r.allocs.Walk(func(_ netblock.Prefix, a *Allocation) bool {
		out = append(out, a)
		return true
	})
	return out
}

// AllocationsOf returns org's live allocations at the given RIR.
func (r *Registry) AllocationsOf(rir RIR, org OrgID) []*Allocation {
	var out []*Allocation
	r.allocs.Walk(func(_ netblock.Prefix, a *Allocation) bool {
		if a.RIR == rir && a.Org == org {
			out = append(out, a)
		}
		return true
	})
	return out
}

// Recover reclaims an allocated block (member closed down or assignment
// criteria no longer hold) and places it in quarantine until t +
// QuarantinePeriod.
func (r *Registry) Recover(p netblock.Prefix, t time.Time) error {
	a, ok := r.allocs.Get(p)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotHolder, p)
	}
	r.allocs.Delete(p)
	st := r.rirs[a.RIR]
	st.quarantine = append(st.quarantine, quarantined{prefix: p, release: t.Add(QuarantinePeriod)})
	return nil
}

// QuarantineSize returns the number of addresses resting in the RIR's
// quarantine.
func (r *Registry) QuarantineSize(rir RIR) uint64 {
	var n uint64
	for _, q := range r.rirs[rir].quarantine {
		n += q.prefix.NumAddrs()
	}
	return n
}

// WaitingListLen returns the number of queued requests at the RIR.
func (r *Registry) WaitingListLen(rir RIR) int { return len(r.rirs[rir].waiting) }

// ProcessQuarantine releases matured quarantine blocks into the free pool
// and then serves the waiting list first-come-first-served. It returns the
// allocations made while draining the list.
func (r *Registry) ProcessQuarantine(rir RIR, t time.Time) []*Allocation {
	st := r.rirs[rir]
	var rest []quarantined
	for _, q := range st.quarantine {
		if q.release.After(t) {
			rest = append(rest, q)
			continue
		}
		st.pool.AddPrefix(q.prefix)
	}
	st.quarantine = rest

	var made []*Allocation
	var unfulfilled []WaitingRequest
	for _, req := range st.waiting {
		a, err := r.grant(rir, req.Org, req.Bits, t)
		if err != nil {
			unfulfilled = append(unfulfilled, req)
			continue
		}
		made = append(made, a)
	}
	st.waiting = unfulfilled
	return made
}

// TransferType distinguishes market transfers from company consolidation.
type TransferType string

// Transfer types, matching the RIR transfer-log vocabulary.
const (
	TypeMarket TransferType = "RESOURCE_TRANSFER"
	TypeMerger TransferType = "MERGER_ACQUISITION"
)

// Transfer is one completed resource transfer.
type Transfer struct {
	Prefix  netblock.Prefix
	From    OrgID
	To      OrgID
	FromRIR RIR
	ToRIR   RIR
	Type    TransferType
	Date    time.Time
	// PricePerAddr is the agreed USD price per address; zero for M&A
	// transfers and unknown deals. This field never appears in the public
	// logs — it models the brokers' private books.
	PricePerAddr float64
}

// IsInterRIR reports whether the transfer crossed registry boundaries.
func (t Transfer) IsInterRIR() bool { return t.FromRIR != t.ToRIR }

// ExecuteTransfer moves prefix p (or a sub-block of an allocation: the
// allocation is split automatically) from one organization to another. For
// inter-RIR transfers the receiving RIR takes over maintenance of the
// block, per the common APNIC/ARIN/RIPE policy; other RIR pairs are
// rejected. The recipient must already be a member of toRIR.
func (r *Registry) ExecuteTransfer(p netblock.Prefix, from, to OrgID, toRIR RIR, typ TransferType, pricePerAddr float64, t time.Time) (*Transfer, error) {
	a, ok := r.allocs.Get(p)
	if !ok {
		// The transferred block may be a sub-block of a larger allocation.
		_, parent, found := r.allocs.LongestMatch(p)
		if !found || parent.Org != from {
			return nil, fmt.Errorf("%w: %s does not hold %v", ErrNotHolder, from, p)
		}
		if err := r.splitAllocation(parent, p); err != nil {
			return nil, err
		}
		a, _ = r.allocs.Get(p)
	}
	if a.Org != from {
		return nil, fmt.Errorf("%w: %s does not hold %v", ErrNotHolder, from, p)
	}
	fromRIR := a.RIR
	if !TransferMarketOpen(fromRIR, t) && typ == TypeMarket {
		return nil, fmt.Errorf("%w: %s market closed at %s", ErrMarketClosed, fromRIR, t.Format("2006-01-02"))
	}
	if fromRIR != toRIR && !InterRIRAllowed(fromRIR, toRIR) {
		return nil, fmt.Errorf("%w: inter-RIR transfer %s → %s not permitted", ErrPolicy, fromRIR, toRIR)
	}
	if _, ok := r.rirs[toRIR].members[to]; !ok {
		return nil, fmt.Errorf("%w: recipient %s at %s", ErrNotMember, to, toRIR)
	}

	a.Org = to
	a.RIR = toRIR
	a.Country = r.rirs[toRIR].members[to].Country
	a.Date = t
	tr := Transfer{
		Prefix: p, From: from, To: to,
		FromRIR: fromRIR, ToRIR: toRIR,
		Type: typ, Date: t, PricePerAddr: pricePerAddr,
	}
	r.transfers = append(r.transfers, tr)
	return &tr, nil
}

// splitAllocation replaces parent's allocation with allocations for the
// minimal set of blocks covering parent minus target, plus target itself.
func (r *Registry) splitAllocation(parent *Allocation, target netblock.Prefix) error {
	if !parent.Prefix.Covers(target) {
		return fmt.Errorf("%w: %v does not cover %v", ErrPolicy, parent.Prefix, target)
	}
	r.allocs.Delete(parent.Prefix)
	rem := netblock.NewSet(parent.Prefix)
	rem.RemovePrefix(target)
	for _, q := range rem.Prefixes() {
		cp := *parent
		cp.Prefix = q
		r.allocs.Insert(q, &cp)
	}
	tgt := *parent
	tgt.Prefix = target
	r.allocs.Insert(target, &tgt)
	return nil
}

// Transfers returns all completed transfers in execution order.
func (r *Registry) Transfers() []Transfer {
	return append([]Transfer(nil), r.transfers...)
}

// TransfersIn returns transfers dated within [from, to), sorted by date.
func (r *Registry) TransfersIn(from, to time.Time) []Transfer {
	var out []Transfer
	for _, tr := range r.transfers {
		if !tr.Date.Before(from) && tr.Date.Before(to) {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Date.Before(out[j].Date) })
	return out
}
