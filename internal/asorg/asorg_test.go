package asorg

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot(date(2020, 1, 1))
	s.AddOrg(Org{ID: "ORG-A", Name: "Acme", Country: "DE", Source: "RIPE"})
	s.AddAS(64500, "ORG-A")
	s.AddAS(64501, "ORG-A")
	s.AddAS(64502, "ORG-B")

	if id, ok := s.OrgOf(64500); !ok || id != "ORG-A" {
		t.Errorf("OrgOf = %q, %v", id, ok)
	}
	if _, ok := s.OrgOf(1); ok {
		t.Error("unknown ASN should miss")
	}
	if o, ok := s.Org("ORG-A"); !ok || o.Name != "Acme" {
		t.Errorf("Org = %+v, %v", o, ok)
	}
	if !s.SameOrg(64500, 64501) {
		t.Error("64500 and 64501 share ORG-A")
	}
	if s.SameOrg(64500, 64502) {
		t.Error("different orgs")
	}
	if s.SameOrg(64500, 99) || s.SameOrg(99, 98) {
		t.Error("unknown ASNs must never be same-org")
	}
	if s.NumASes() != 3 || s.NumOrgs() != 1 {
		t.Errorf("counts = %d ASes, %d orgs", s.NumASes(), s.NumOrgs())
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	s := NewSnapshot(date(2020, 4, 1))
	s.AddOrg(Org{ID: "ORG-A", Name: "Acme Corp", Country: "DE", Source: "RIPE"})
	s.AddOrg(Org{ID: "ORG-B", Name: "Bolt LLC", Country: "US", Source: "ARIN"})
	s.AddAS(64500, "ORG-A")
	s.AddAS(64501, "ORG-B")
	s.AddAS(65000, "ORG-B")

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf, date(2020, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumASes() != 3 || got.NumOrgs() != 2 {
		t.Fatalf("round trip counts: %d ASes, %d orgs", got.NumASes(), got.NumOrgs())
	}
	if !got.SameOrg(64501, 65000) || got.SameOrg(64500, 64501) {
		t.Error("round trip lost org structure")
	}
	if o, _ := got.Org("ORG-A"); o.Name != "Acme Corp" || o.Country != "DE" {
		t.Errorf("org record lost: %+v", o)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"data before header", "123|x|y|z||s\n"},
		{"short org record", "# format: org_id|changed|org_name|country|source\nORG|x\n"},
		{"short as record", "# format: aut|changed|aut_name|org_id|opaque_id|source\n1|x\n"},
		{"bad asn", "# format: aut|changed|aut_name|org_id|opaque_id|source\nnope|d|n|O||s\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.in), date(2020, 1, 1)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseSkipsBlanksAndComments(t *testing.T) {
	in := `# file generated 20200101
# format: org_id|changed|org_name|country|source

ORG-A|20200101|Acme|DE|RIPE
# format: aut|changed|aut_name|org_id|opaque_id|source

64500|20200101|AS64500|ORG-A||ARIN
`
	s, err := Parse(strings.NewReader(in), date(2020, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumASes() != 1 || s.NumOrgs() != 1 {
		t.Errorf("counts = %d, %d", s.NumASes(), s.NumOrgs())
	}
}

func TestSeriesNextAfter(t *testing.T) {
	s1 := NewSnapshot(date(2020, 1, 1))
	s2 := NewSnapshot(date(2020, 4, 1))
	s3 := NewSnapshot(date(2020, 7, 1))
	ser := NewSeries(s3, s1, s2) // deliberately unsorted

	if ser.Len() != 3 {
		t.Fatalf("Len = %d", ser.Len())
	}
	if got := ser.NextAfter(date(2020, 2, 15)); got != s2 {
		t.Errorf("NextAfter(feb) = %v", got.Date)
	}
	if got := ser.NextAfter(date(2020, 4, 1)); got != s2 {
		t.Errorf("NextAfter(apr 1) = %v", got.Date)
	}
	if got := ser.NextAfter(date(2021, 1, 1)); got != s3 {
		t.Errorf("NextAfter(past end) should fall back to latest, got %v", got.Date)
	}
	if got := ser.NextAfter(date(2019, 1, 1)); got != s1 {
		t.Errorf("NextAfter(before start) = %v", got.Date)
	}

	empty := NewSeries()
	if empty.NextAfter(date(2020, 1, 1)) != nil {
		t.Error("empty series should return nil")
	}
	if empty.SameOrgAt(date(2020, 1, 1), 1, 2) {
		t.Error("empty series SameOrgAt must be false")
	}
}

func TestSeriesSameOrgAt(t *testing.T) {
	s1 := NewSnapshot(date(2020, 1, 1))
	s1.AddAS(64500, "ORG-A")
	s1.AddAS(64501, "ORG-A")
	s2 := NewSnapshot(date(2020, 4, 1))
	s2.AddAS(64500, "ORG-A")
	s2.AddAS(64501, "ORG-B") // org split between snapshots
	ser := NewSeries(s1, s2)

	if !ser.SameOrgAt(date(2019, 12, 1), 64500, 64501) {
		t.Error("before split, next snapshot is s1 → same org")
	}
	if ser.SameOrgAt(date(2020, 2, 1), 64500, 64501) {
		t.Error("after split, next snapshot is s2 → different org")
	}
}

func TestSeriesAddKeepsSorted(t *testing.T) {
	ser := NewSeries()
	ser.Add(NewSnapshot(date(2020, 7, 1)))
	ser.Add(NewSnapshot(date(2020, 1, 1)))
	if got := ser.NextAfter(date(2019, 1, 1)); !got.Date.Equal(date(2020, 1, 1)) {
		t.Errorf("series not sorted after Add: %v", got.Date)
	}
}

func TestASNString(t *testing.T) {
	if ASN(64500).String() != "AS64500" {
		t.Errorf("ASN String = %s", ASN(64500).String())
	}
}
