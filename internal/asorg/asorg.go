// Package asorg models the CAIDA AS-to-Organization dataset used by
// extension (iv) of the paper's delegation-inference algorithm: delegations
// between ASes belonging to the same organization are not leasing and are
// removed.
//
// The dataset's text format (jsonl was introduced later; we implement the
// classic pipe-delimited format) interleaves two record types:
//
//	# format: org_id|changed|org_name|country|source
//	# format: aut|changed|aut_name|org_id|opaque_id|source
//
// Snapshots are dated; the paper removes same-org delegations "within the
// next available snapshot", which Dataset.Series models.
package asorg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the canonical "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Org is an organization record.
type Org struct {
	ID      string // e.g. "LPL-141-ARIN"
	Name    string
	Country string
	Source  string // registry the record came from
}

// Snapshot is one dated AS→Org mapping.
type Snapshot struct {
	Date  time.Time // snapshot date (UTC midnight)
	orgs  map[string]Org
	asOrg map[ASN]string // ASN → org ID
}

// NewSnapshot returns an empty snapshot for the given date.
func NewSnapshot(date time.Time) *Snapshot {
	return &Snapshot{
		Date:  date.UTC().Truncate(24 * time.Hour),
		orgs:  make(map[string]Org),
		asOrg: make(map[ASN]string),
	}
}

// AddOrg registers an organization.
func (s *Snapshot) AddOrg(o Org) { s.orgs[o.ID] = o }

// AddAS maps an ASN to an organization ID.
func (s *Snapshot) AddAS(asn ASN, orgID string) { s.asOrg[asn] = orgID }

// OrgOf returns the organization ID for the ASN, if known.
func (s *Snapshot) OrgOf(asn ASN) (string, bool) {
	id, ok := s.asOrg[asn]
	return id, ok
}

// Org returns the organization record for an org ID.
func (s *Snapshot) Org(id string) (Org, bool) {
	o, ok := s.orgs[id]
	return o, ok
}

// SameOrg reports whether both ASNs map to the same known organization.
// Unknown ASNs are never considered same-org: when in doubt the inference
// keeps the delegation, mirroring the paper's conservative extension.
func (s *Snapshot) SameOrg(a, b ASN) bool {
	oa, oka := s.asOrg[a]
	ob, okb := s.asOrg[b]
	return oka && okb && oa == ob
}

// NumASes returns the number of mapped ASNs.
func (s *Snapshot) NumASes() int { return len(s.asOrg) }

// NumOrgs returns the number of organizations.
func (s *Snapshot) NumOrgs() int { return len(s.orgs) }

// WriteTo serializes the snapshot in the CAIDA pipe-delimited format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	date := s.Date.Format("20060102")
	if err := count(fmt.Fprintf(bw, "# file generated %s\n# format: org_id|changed|org_name|country|source\n", date)); err != nil {
		return n, err
	}
	ids := make([]string, 0, len(s.orgs))
	for id := range s.orgs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		o := s.orgs[id]
		if err := count(fmt.Fprintf(bw, "%s|%s|%s|%s|%s\n", o.ID, date, o.Name, o.Country, o.Source)); err != nil {
			return n, err
		}
	}
	if err := count(fmt.Fprintf(bw, "# format: aut|changed|aut_name|org_id|opaque_id|source\n")); err != nil {
		return n, err
	}
	asns := make([]ASN, 0, len(s.asOrg))
	for a := range s.asOrg {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		if err := count(fmt.Fprintf(bw, "%d|%s|%s|%s||%s\n", uint32(a), date, a, s.asOrg[a], "ARIN")); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Parse reads a snapshot in the CAIDA pipe-delimited format. The snapshot
// date must be supplied by the caller (CAIDA encodes it in the file name).
func Parse(r io.Reader, date time.Time) (*Snapshot, error) {
	s := NewSnapshot(date)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	mode := "" // "org" or "as"
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case strings.Contains(line, "org_id|changed|org_name"):
				mode = "org"
			case strings.Contains(line, "aut|changed|aut_name"):
				mode = "as"
			}
			continue
		}
		fields := strings.Split(line, "|")
		switch mode {
		case "org":
			if len(fields) < 5 {
				return nil, fmt.Errorf("asorg: line %d: org record has %d fields", lineNo, len(fields))
			}
			s.AddOrg(Org{ID: fields[0], Name: fields[2], Country: fields[3], Source: fields[4]})
		case "as":
			if len(fields) < 6 {
				return nil, fmt.Errorf("asorg: line %d: as record has %d fields", lineNo, len(fields))
			}
			v, err := strconv.ParseUint(fields[0], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("asorg: line %d: bad ASN %q: %w", lineNo, fields[0], err)
			}
			s.AddAS(ASN(v), fields[3])
		default:
			return nil, fmt.Errorf("asorg: line %d: data before format header", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asorg: read: %w", err)
	}
	return s, nil
}

// Series is a chronologically sorted sequence of snapshots. The paper's
// extension (iv) consults "the next available snapshot" after a delegation
// observation.
type Series struct {
	snaps []*Snapshot // sorted by date ascending
}

// NewSeries builds a series; snapshots are sorted by date.
func NewSeries(snaps ...*Snapshot) *Series {
	s := &Series{snaps: append([]*Snapshot(nil), snaps...)}
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i].Date.Before(s.snaps[j].Date) })
	return s
}

// Add inserts a snapshot, keeping the series sorted.
func (s *Series) Add(snap *Snapshot) {
	s.snaps = append(s.snaps, snap)
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i].Date.Before(s.snaps[j].Date) })
}

// Len returns the number of snapshots.
func (s *Series) Len() int { return len(s.snaps) }

// NextAfter returns the first snapshot dated on or after t; if none exists
// it returns the latest snapshot (the paper's pipeline always has a usable
// mapping). It returns nil only for an empty series.
func (s *Series) NextAfter(t time.Time) *Snapshot {
	if len(s.snaps) == 0 {
		return nil
	}
	i := sort.Search(len(s.snaps), func(i int) bool { return !s.snaps[i].Date.Before(t) })
	if i == len(s.snaps) {
		return s.snaps[len(s.snaps)-1]
	}
	return s.snaps[i]
}

// SameOrgAt reports whether a and b belong to the same organization in the
// next snapshot on or after t.
func (s *Series) SameOrgAt(t time.Time, a, b ASN) bool {
	snap := s.NextAfter(t)
	return snap != nil && snap.SameOrg(a, b)
}
