package replicate_test

// The end-to-end contract of replication: a follower synced from a live
// leader answers every artifact endpoint with byte- and ETag-identical
// bodies (304 continuity included), refuses local rebuilds, keeps
// serving through a leader outage, and catches up (lag 0) after the
// leader builds a new generation.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ipv4market/internal/replicate"
	"ipv4market/internal/serve"
	"ipv4market/internal/simulation"
	"ipv4market/internal/store"
)

// e2eConfig keeps the simulation small so two builds stay fast.
func e2eConfig() simulation.Config {
	cfg := simulation.DefaultConfig()
	cfg.NumLIRs = 14
	cfg.RoutingDays = 40
	cfg.AdministrativeLeases = 120
	cfg.RoutedLeases = 50
	cfg.MonitorsPerCollector = 4
	cfg.SmallAssignmentsPerLIR = 10
	return cfg
}

// artifactPaths is every artifact endpoint whose bytes must replicate
// exactly — static artifacts and cache-rendered filtered queries alike.
var artifactPaths = []string{
	"/v1/table1",
	"/v1/table1?format=csv",
	"/v1/figures/1",
	"/v1/figures/2",
	"/v1/figures/3",
	"/v1/figures/4",
	"/v1/prices",
	"/v1/prices?size=24",
	"/v1/transfers",
	"/v1/delegations",
	"/v1/leasing",
	"/v1/headline",
}

func get(t *testing.T, base, path string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, body, resp.Header.Get("ETag")
}

func TestLeaderFollowerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("two snapshot builds in -short mode")
	}
	cfg := e2eConfig()

	// Leader: a store-backed serving stack with the replication
	// endpoints mounted, exactly as cmd/marketd wires it.
	leaderStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	leader := replicate.NewLeader(leaderStore)
	leaderSrv, err := serve.New(cfg, serve.Options{
		Store:           leaderStore,
		StoreKeep:       5,
		EnableAdmin:     true,
		ReplicationVarz: leader.Varz,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv.Mount("GET /v1/replication/generations", leader.Generations(), time.Second)
	leaderSrv.Mount("GET /v1/replication/segment/{gen}", leader.Segment(), 0)
	leaderTS := httptest.NewServer(leaderSrv.Handler())
	defer leaderTS.Close()

	// Follower: sync one generation, then boot a serving stack in
	// follower mode over the replicated store.
	followerStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	repl, err := replicate.New(replicate.Options{
		LeaderURL: leaderTS.URL,
		Store:     followerStore,
		Interval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := repl.SyncOnce(t.Context()); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	followerSrv, err := serve.New(cfg, serve.Options{
		Store:           followerStore,
		Follower:        true,
		EnableAdmin:     true,
		ReplicationVarz: repl.Varz,
	})
	if err != nil {
		t.Fatalf("follower boot: %v", err)
	}
	if !followerSrv.WarmStarted() {
		t.Fatal("follower did not boot from its replicated store")
	}
	repl.SetApply(func(m store.Meta) error { return followerSrv.AdoptGeneration(m.Gen) })
	followerTS := httptest.NewServer(followerSrv.Handler())
	defer followerTS.Close()

	// Byte and ETag identity across every artifact endpoint.
	leaderBodies := make(map[string][]byte)
	leaderETags := make(map[string]string)
	for _, path := range artifactPaths {
		code, body, etag := get(t, leaderTS.URL, path)
		if code != http.StatusOK {
			t.Fatalf("leader GET %s: status %d", path, code)
		}
		leaderBodies[path], leaderETags[path] = body, etag
		fcode, fbody, fetag := get(t, followerTS.URL, path)
		if fcode != http.StatusOK {
			t.Fatalf("follower GET %s: status %d", path, fcode)
		}
		if !bytes.Equal(fbody, body) {
			t.Errorf("%s: follower body differs from leader (%d vs %d bytes)", path, len(fbody), len(body))
		}
		if fetag != etag {
			t.Errorf("%s: follower ETag %s, leader %s", path, fetag, etag)
		}
	}

	// 304 continuity: a client that cached against the leader revalidates
	// successfully against the follower.
	req, err := http.NewRequest(http.MethodGet, followerTS.URL+"/v1/table1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", leaderETags["/v1/table1"])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("follower conditional GET with leader ETag: status %d, want 304", resp.StatusCode)
	}

	// Followers refuse local rebuilds.
	resp, err = http.Post(followerTS.URL+"/admin/rebuild", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("follower POST /admin/rebuild: status %d, want 409", resp.StatusCode)
	}

	// /varz: roles, lag, import counters, and the process section.
	checkVarz := func(base, wantRole string) map[string]any {
		t.Helper()
		code, body, _ := get(t, base, "/varz")
		if code != http.StatusOK {
			t.Fatalf("GET /varz: status %d", code)
		}
		var v map[string]any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("varz: %v", err)
		}
		repl, _ := v["replication"].(map[string]any)
		if repl == nil {
			t.Fatalf("%s varz has no replication section", wantRole)
		}
		if got := repl["role"]; got != wantRole {
			t.Errorf("varz replication.role = %v, want %q", got, wantRole)
		}
		proc, _ := v["process"].(map[string]any)
		if proc == nil || proc["go_version"] == "" || proc["goroutines"] == nil {
			t.Errorf("%s varz process section = %v", wantRole, proc)
		}
		return v
	}
	checkVarz(leaderTS.URL, "leader")
	fv := checkVarz(followerTS.URL, "follower")
	frepl := fv["replication"].(map[string]any)
	if lag, _ := frepl["lag_generations"].(float64); lag != 0 {
		t.Errorf("follower lag_generations = %v, want 0", lag)
	}
	fstore, _ := fv["store"].(map[string]any)
	if n, _ := fstore["imported_segments"].(float64); n != 1 {
		t.Errorf("follower store.imported_segments = %v, want 1", n)
	}

	// The leader rebuilds with a new seed; the follower catches up and
	// serves the new generation's bytes.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	if !leaderSrv.RebuildAsync(cfg2) {
		t.Fatal("leader rebuild did not start")
	}
	leaderSrv.Wait()
	leaderGen := leaderSrv.Snapshot().Gen
	if leaderGen < 2 {
		t.Fatalf("leader generation after rebuild = %d, want >= 2", leaderGen)
	}
	if err := repl.SyncOnce(t.Context()); err != nil {
		t.Fatalf("catch-up sync: %v", err)
	}
	if got := followerSrv.Snapshot().Gen; got != leaderGen {
		t.Fatalf("follower serves generation %d after catch-up, want %d", got, leaderGen)
	}
	if st := repl.Status(); st.LagGenerations != 0 || st.AppliedGen != leaderGen {
		t.Errorf("follower status after catch-up = %+v", st)
	}
	for _, path := range []string{"/v1/table1", "/v1/prices?size=24"} {
		_, lbody, letag := get(t, leaderTS.URL, path)
		_, fbody, fetag := get(t, followerTS.URL, path)
		if !bytes.Equal(fbody, lbody) || fetag != letag {
			t.Errorf("%s: follower diverges from leader after catch-up", path)
		}
	}
	// table1 is seed-invariant (it is the paper's historical timeline),
	// but prices are simulated: the reseeded generation must have moved
	// them, or catch-up proved nothing.
	if _, fbody, _ := get(t, followerTS.URL, "/v1/prices?size=24"); bytes.Equal(fbody, leaderBodies["/v1/prices?size=24"]) {
		t.Error("/v1/prices?size=24: reseeded rebuild produced identical bytes; catch-up proves nothing")
	}

	// Leader outage: the follower keeps serving its last good generation
	// and reports the failure, nothing more.
	leaderTS.Close()
	if err := repl.SyncOnce(t.Context()); err == nil {
		t.Error("sync against a closed leader succeeded")
	}
	if st := repl.Status(); st.ConsecutiveFailures == 0 {
		t.Error("outage not reflected in follower status")
	}
	code, body, etag := get(t, followerTS.URL, "/v1/table1")
	if code != http.StatusOK {
		t.Fatalf("follower GET /v1/table1 during outage: status %d", code)
	}
	_, lbody, letag := code, body, etag // follower's own last-good answer
	if !bytes.Equal(lbody, body) || letag != etag {
		t.Error("follower answer changed during outage")
	}
	if got := followerSrv.Snapshot().Gen; got != leaderGen {
		t.Errorf("follower serves generation %d during outage, want %d (last good)", got, leaderGen)
	}
}

// TestFollowerNeverBuilds pins the follower-mode boot contract: an empty
// store is an error (a follower must sync first, never cold-build), and
// RebuildAsync declines.
func TestFollowerNeverBuilds(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = serve.New(e2eConfig(), serve.Options{Store: st, Follower: true})
	if err == nil {
		t.Fatal("follower over an empty store booted (must refuse, not cold-build)")
	}
	if got := st.Stats().Persists; got != 0 {
		t.Errorf("follower boot persisted %d generations", got)
	}
}

// TestFollowerAdoptMissingGeneration pins AdoptGeneration's error path:
// a generation the store does not hold is an error, and the served
// snapshot is unchanged.
func TestFollowerAdoptMissingGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot build in -short mode")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(e2eConfig(), serve.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Snapshot()
	if err := srv.AdoptGeneration(before.Gen + 7); err == nil {
		t.Fatal("adopting a missing generation succeeded")
	}
	if srv.Snapshot() != before {
		t.Error("failed adopt swapped the snapshot")
	}
}
