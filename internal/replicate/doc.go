// Package replicate implements leader/follower snapshot replication
// over the durable segment store (internal/store), so read serving
// scales horizontally: one leader builds snapshots, any number of
// followers pull its sealed segments and serve byte-identical responses.
//
// The unit of replication is the generation segment — the immutable,
// checksummed gen-<id>.seg file the store writes for every successful
// snapshot build. Because segments are sealed (per-frame CRC32s plus a
// whole-file footer checksum) and generation IDs are monotonic and never
// reused, the protocol needs no diffing, no versions-in-flight, and no
// coordination beyond "fetch the IDs you do not have":
//
//	Leader                              Follower
//	  GET /v1/replication/generations --> list of {gen, bytes, crc32, etag}
//	  GET /v1/replication/segment/{gen} --> raw segment bytes (ETag, Range)
//	                                     verify CRC32 + full frame check
//	                                     store.ImportSegment (atomic)
//	                                     serve.Server.AdoptGeneration (swap)
//
// The leader side (Leader) is two read-only HTTP handlers over a
// *store.Store; any process with a store can be a leader, including a
// follower (chained replication). The follower side (Replicator) is a
// poll loop: list, download missing generations newest-last, verify,
// import, apply retention, and hand the newest generation to the serving
// layer for a hot swap. All follower requests are context-aware with
// per-request timeouts.
//
// Robustness rules:
//
//   - A download that fails verification (transport CRC mismatch, frame
//     corruption, generation-ID mismatch) is quarantined under
//     <store-dir>/quarantine/ and never installed; the sync fails and is
//     retried with backoff. Partially transferred bytes are kept and
//     resumed with a Range request when the leader's ETag still matches,
//     and discarded otherwise.
//   - Sync failures back off exponentially with jitter, capped; a
//     success resets the backoff to the configured poll interval.
//   - A follower keeps serving its last good generation while the
//     leader is down; replication only ever adds newer generations.
//   - A leader restart is safe by construction: the store's ID ratchet
//     persists in the manifest and is rebuilt from segment (and
//     quarantine) file names, so a restarted leader continues with
//     higher generation IDs and followers simply catch up.
//
// Package replicate depends only on the standard library and
// internal/store. The serving layer plugs in through the Apply callback
// (cmd/marketd wires it to serve.Server.AdoptGeneration) and exports
// replication state on /varz through Status/Varz.
package replicate
