package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ipv4market/internal/store"
)

// decodeJSONBody decodes a bounded JSON document; the listing is small,
// so 8 MiB is a generous ceiling that still stops a runaway body.
func decodeJSONBody(r io.Reader, v any) error {
	return json.NewDecoder(io.LimitReader(r, 8<<20)).Decode(v)
}

// Options configures a follower Replicator.
type Options struct {
	// LeaderURL is the leader's base URL, e.g. "http://leader:8080".
	LeaderURL string
	// Store is the follower's local segment store. Required.
	Store *store.Store
	// Interval is the steady-state poll period (default 5s).
	Interval time.Duration
	// Timeout bounds each HTTP request, listing or segment (default 30s).
	Timeout time.Duration
	// MaxBackoff caps the failure backoff (default 30s).
	MaxBackoff time.Duration
	// Keep, when positive, applies retention after each sync so the
	// follower's store tracks the leader's compaction policy.
	Keep int
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives one line per notable event (sync results,
	// quarantines, backoff transitions).
	Logf func(format string, args ...any)
}

// Apply is the hook a Replicator calls after installing new generations:
// it hands the newest local generation to the serving layer for a hot
// swap. An Apply error fails the sync (the segment stays imported and
// apply is retried next round).
type Apply func(store.Meta) error

// FollowerStatus is the follower's replication state as exported on
// /varz and asserted by the e2e tests.
type FollowerStatus struct {
	Role      string `json:"role"`
	LeaderURL string `json:"leader_url"`

	LastSync    string `json:"last_sync,omitempty"`    // last attempt, RFC3339
	LastSuccess string `json:"last_success,omitempty"` // last full sync, RFC3339
	LastError   string `json:"last_error,omitempty"`   // "" after a success

	// LagGenerations is how many of the leader's listed generations the
	// follower had not yet imported at the last poll; 0 when in sync.
	LagGenerations int `json:"lag_generations"`
	// AppliedGen is the generation the serving layer last adopted.
	AppliedGen uint64 `json:"applied_gen"`

	Polls               int64 `json:"polls"`
	SegmentsFetched     int64 `json:"segments_fetched"`
	BytesFetched        int64 `json:"bytes_fetched"`
	FetchErrors         int64 `json:"fetch_errors"`
	CorruptQuarantined  int64 `json:"corrupt_quarantined"`
	ConsecutiveFailures int   `json:"consecutive_failures"`
	// BackoffSeconds is the delay before the next retry when the last
	// sync failed, 0 when healthy.
	BackoffSeconds float64 `json:"backoff_seconds"`
}

// Replicator is the follower side: a poll loop that mirrors a leader's
// sealed segments into the local store and hands new generations to the
// serving layer.
type Replicator struct {
	opts   Options
	client *http.Client

	mu     sync.Mutex
	apply  Apply
	status FollowerStatus
	jitter xorshift64
	// lastSuccessAt is the monotonic-clock twin of status.LastSuccess:
	// readiness math needs a time.Time to subtract, not an RFC3339
	// string. Zero until the first full sync.
	lastSuccessAt time.Time

	// partial download state: bytes already received for a generation
	// whose transfer broke mid-stream, resumable while the leader's ETag
	// for that segment is unchanged.
	partial     []byte
	partialGen  uint64
	partialETag string
}

// New returns a follower Replicator for opts. It does not start the
// loop; call Run (or SyncOnce for a single pass).
func New(opts Options) (*Replicator, error) {
	if opts.LeaderURL == "" {
		return nil, errors.New("replicate: Options.LeaderURL is required")
	}
	if opts.Store == nil {
		return nil, errors.New("replicate: Options.Store is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	r := &Replicator{opts: opts, client: client}
	r.jitter.seed(uint64(time.Now().UnixNano()))
	r.status.Role = "follower"
	r.status.LeaderURL = opts.LeaderURL
	return r, nil
}

// SetApply installs the serving-layer hook. Safe to call before Run.
func (r *Replicator) SetApply(fn Apply) {
	r.mu.Lock()
	r.apply = fn
	r.mu.Unlock()
}

// Status returns a point-in-time copy of the follower's state.
func (r *Replicator) Status() FollowerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Varz adapts Status for serve.Options.ReplicationVarz.
func (r *Replicator) Varz() any { return r.Status() }

// Lag reports how far this follower trails the leader: the number of
// listed-but-unimported generations at the last poll, and how long ago
// the last fully successful sync finished (0 if none has succeeded
// yet — the ok result distinguishes "never synced" from "just synced").
func (r *Replicator) Lag() (generations int, sinceSuccess time.Duration, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastSuccessAt.IsZero() {
		return r.status.LagGenerations, 0, false
	}
	return r.status.LagGenerations, time.Since(r.lastSuccessAt), true
}

// ReadyCheck returns a readiness gate for serve.Options.ReadyCheck: it
// fails while the follower has never completed a sync, while its
// generation lag exceeds maxGens (ignored when negative), or while its
// last successful sync is older than maxAge (ignored when zero or
// negative). A router polling /readyz then drains a stale follower
// until it catches up — the follower keeps serving its last adopted
// snapshot to direct clients either way.
func (r *Replicator) ReadyCheck(maxGens int, maxAge time.Duration) func() error {
	return func() error {
		gens, since, ok := r.Lag()
		if !ok {
			return errors.New("replication: no successful sync yet")
		}
		if maxGens >= 0 && gens > maxGens {
			return fmt.Errorf("replication lag %d generation(s) exceeds max %d", gens, maxGens)
		}
		if maxAge > 0 && since > maxAge {
			return fmt.Errorf("last successful sync %s ago exceeds max %s",
				since.Round(time.Second), maxAge)
		}
		return nil
	}
}

func (r *Replicator) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Run polls the leader until ctx is cancelled: Interval between
// successful syncs, exponential backoff with jitter after failures.
func (r *Replicator) Run(ctx context.Context) {
	timer := time.NewTimer(0) // first sync immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		err := r.SyncOnce(ctx)
		delay := r.opts.Interval
		if err != nil && ctx.Err() == nil {
			r.mu.Lock()
			failures := r.status.ConsecutiveFailures
			r.mu.Unlock()
			delay = r.backoffDelay(failures)
			r.mu.Lock()
			r.status.BackoffSeconds = delay.Seconds()
			r.mu.Unlock()
			r.logf("replicate: sync failed (attempt %d, retry in %s): %v", failures, delay.Round(time.Millisecond), err)
		}
		timer.Reset(delay)
	}
}

// backoffDelay computes the retry delay after `failures` consecutive
// failed syncs: Interval doubled per failure, capped at MaxBackoff,
// with ±25% jitter so a follower fleet does not stampede a recovering
// leader.
func (r *Replicator) backoffDelay(failures int) time.Duration {
	d := r.opts.Interval
	if d < 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	for i := 1; i < failures && d < r.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	// jitter in [0.75d, 1.25d)
	r.mu.Lock()
	j := r.jitter.next()
	r.mu.Unlock()
	spread := d / 2
	if spread > 0 {
		d = d - spread/2 + time.Duration(j%uint64(spread))
	}
	return d
}

// SyncOnce performs one replication pass: list the leader's generations,
// download and install the ones the local store is missing (ascending),
// apply retention, and hand the newest generation to the serving layer.
// It returns nil only when the follower is fully caught up and applied.
func (r *Replicator) SyncOnce(ctx context.Context) error {
	r.mu.Lock()
	r.status.Polls++
	r.status.LastSync = time.Now().UTC().Format(time.RFC3339)
	r.mu.Unlock()

	err := r.syncOnce(ctx)

	r.mu.Lock()
	if err != nil {
		r.status.ConsecutiveFailures++
		r.status.LastError = err.Error()
	} else {
		now := time.Now()
		r.status.ConsecutiveFailures = 0
		r.status.BackoffSeconds = 0
		r.status.LastError = ""
		r.status.LastSuccess = now.UTC().Format(time.RFC3339)
		r.lastSuccessAt = now
	}
	r.mu.Unlock()
	return err
}

func (r *Replicator) syncOnce(ctx context.Context) error {
	listing, err := r.fetchListing(ctx)
	if err != nil {
		return err
	}

	localMax := uint64(0)
	if latest, ok := r.opts.Store.Latest(); ok {
		localMax = latest.Gen
	}

	// Only generations newer than everything we have: older listed gens
	// we lack were dropped locally by retention, not lost.
	var missing []GenEntry
	for _, e := range listing.Generations {
		if e.Gen > localMax {
			missing = append(missing, e)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Gen < missing[j].Gen })

	r.mu.Lock()
	r.status.LagGenerations = len(missing)
	r.mu.Unlock()

	for _, e := range missing {
		if err := r.fetchAndInstall(ctx, e); err != nil {
			return err
		}
		r.mu.Lock()
		r.status.LagGenerations--
		r.mu.Unlock()
	}

	if r.opts.Keep > 0 {
		if _, err := r.opts.Store.CompactTo(r.opts.Keep); err != nil {
			return fmt.Errorf("replicate: retention: %w", err)
		}
	}

	// Apply the newest local generation if the serving layer has not
	// adopted it yet (covers both fresh imports and a previously failed
	// apply).
	r.mu.Lock()
	apply := r.apply
	applied := r.status.AppliedGen
	r.mu.Unlock()
	if apply != nil {
		if latest, ok := r.opts.Store.Latest(); ok && latest.Gen > applied {
			if err := apply(latest.Meta); err != nil {
				return fmt.Errorf("replicate: apply generation %d: %w", latest.Gen, err)
			}
			r.mu.Lock()
			r.status.AppliedGen = latest.Gen
			r.mu.Unlock()
			r.logf("replicate: serving generation %d", latest.Gen)
		}
	}
	return nil
}

// fetchListing GETs and decodes the leader's generation listing.
func (r *Replicator) fetchListing(ctx context.Context) (*Listing, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.LeaderURL+"/v1/replication/generations", nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: build listing request: %w", err)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.countFetchError()
		return nil, fmt.Errorf("replicate: list generations: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.countFetchError()
		return nil, fmt.Errorf("replicate: list generations: leader answered %s", resp.Status)
	}
	var listing Listing
	if err := decodeJSONBody(resp.Body, &listing); err != nil {
		r.countFetchError()
		return nil, fmt.Errorf("replicate: decode listing: %w", err)
	}
	return &listing, nil
}

// fetchAndInstall downloads one generation, verifies it end to end, and
// installs it into the local store. Partial transfers are kept and
// resumed with a Range request while the leader's ETag is unchanged;
// bytes that fail verification are quarantined, never installed.
func (r *Replicator) fetchAndInstall(ctx context.Context, e GenEntry) error {
	data, err := r.download(ctx, e)
	if err != nil {
		return err
	}

	// Transport-level integrity first: the listing's whole-file CRC.
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)); got != e.CRC32 {
		r.quarantine(e.Gen, data, fmt.Sprintf("crc32 %s, leader listed %s", got, e.CRC32))
		return fmt.Errorf("replicate: generation %d: download checksum mismatch (got %s, want %s)", e.Gen, got, e.CRC32)
	}

	// Structural integrity + install: ImportSegment re-verifies every
	// frame CRC and the footer before the atomic rename.
	if _, err := r.opts.Store.ImportSegment(e.Gen, data); err != nil {
		if store.IsCorrupt(err) {
			r.quarantine(e.Gen, data, err.Error())
		}
		return fmt.Errorf("replicate: install generation %d: %w", e.Gen, err)
	}

	r.mu.Lock()
	r.status.SegmentsFetched++
	r.status.BytesFetched += int64(len(data))
	r.mu.Unlock()
	r.logf("replicate: installed generation %d (%d bytes)", e.Gen, len(data))
	return nil
}

// download returns the full segment body for e, resuming a prior
// partial transfer when possible. On a mid-stream failure the received
// prefix is kept for the next attempt.
func (r *Replicator) download(ctx context.Context, e GenEntry) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()

	r.mu.Lock()
	resume := r.partialGen == e.Gen && r.partialETag == e.ETag &&
		int64(len(r.partial)) > 0 && int64(len(r.partial)) < e.Bytes
	if !resume {
		r.partial, r.partialGen, r.partialETag = nil, 0, ""
	}
	offset := int64(len(r.partial))
	r.mu.Unlock()

	url := fmt.Sprintf("%s/v1/replication/segment/%d", r.opts.LeaderURL, e.Gen)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("replicate: build segment request: %w", err)
	}
	if resume {
		// If-Range makes the resume safe: a leader whose segment bytes
		// changed (impossible for a sealed gen, but belts and braces)
		// answers 200 with the full body instead of a mismatched tail.
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
		req.Header.Set("If-Range", e.ETag)
	}

	resp, err := r.client.Do(req)
	if err != nil {
		r.countFetchError()
		return nil, fmt.Errorf("replicate: fetch generation %d: %w", e.Gen, err)
	}
	defer resp.Body.Close()

	var buf []byte
	switch {
	case resp.StatusCode == http.StatusOK:
		buf = nil // full body: any partial state is superseded
	case resp.StatusCode == http.StatusPartialContent && resume:
		r.mu.Lock()
		buf = r.partial
		r.mu.Unlock()
		r.logf("replicate: resuming generation %d at byte %d", e.Gen, offset)
	case resp.StatusCode == http.StatusRequestedRangeNotSatisfiable:
		// Our partial state disagrees with the leader; start over clean.
		r.dropPartial()
		r.countFetchError()
		return nil, fmt.Errorf("replicate: fetch generation %d: leader rejected resume range", e.Gen)
	default:
		r.countFetchError()
		return nil, fmt.Errorf("replicate: fetch generation %d: leader answered %s", e.Gen, resp.Status)
	}

	// Bound the read by the listed size: a body larger than advertised
	// can never verify, so don't buffer it.
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, e.Bytes-int64(len(buf))+1))
	buf = append(buf, body...)

	if readErr != nil {
		// Truncated mid-stream: keep the prefix for a Range resume.
		r.saveDroppedPartial(e, buf)
		r.countFetchError()
		return nil, fmt.Errorf("replicate: fetch generation %d: transfer broke after %d/%d bytes: %w",
			e.Gen, len(buf), e.Bytes, readErr)
	}
	if int64(len(buf)) != e.Bytes {
		if int64(len(buf)) < e.Bytes {
			// Short body with a clean EOF (leader hung up early): also
			// resumable.
			r.saveDroppedPartial(e, buf)
			r.countFetchError()
			return nil, fmt.Errorf("replicate: fetch generation %d: short transfer (%d/%d bytes)",
				e.Gen, len(buf), e.Bytes)
		}
		r.dropPartial()
		r.countFetchError()
		return nil, fmt.Errorf("replicate: fetch generation %d: body exceeds listed %d bytes", e.Gen, e.Bytes)
	}

	r.dropPartial()
	return buf, nil
}

// saveDroppedPartial records a transfer prefix for a later Range resume.
func (r *Replicator) saveDroppedPartial(e GenEntry, prefix []byte) {
	r.mu.Lock()
	r.partial, r.partialGen, r.partialETag = prefix, e.Gen, e.ETag
	r.mu.Unlock()
}

// dropPartial clears any resume state.
func (r *Replicator) dropPartial() {
	r.mu.Lock()
	r.partial, r.partialGen, r.partialETag = nil, 0, ""
	r.mu.Unlock()
}

func (r *Replicator) countFetchError() {
	r.mu.Lock()
	r.status.FetchErrors++
	r.mu.Unlock()
}

// quarantine preserves bytes that failed verification under
// <store-dir>/quarantine/ for operator inspection. Quarantined files are
// never read back by the store (Open skips subdirectories); failure to
// write one is logged but does not mask the verification error.
func (r *Replicator) quarantine(gen uint64, data []byte, reason string) {
	r.mu.Lock()
	r.status.CorruptQuarantined++
	// A corrupt download must not seed a resume.
	r.partial, r.partialGen, r.partialETag = nil, 0, ""
	r.mu.Unlock()

	dir := filepath.Join(r.opts.Store.Dir(), "quarantine")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		r.logf("replicate: quarantine dir: %v", err)
		return
	}
	name := fmt.Sprintf("gen-%d.%d.corrupt", gen, time.Now().UnixNano())
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		r.logf("replicate: quarantine write: %v", err)
		return
	}
	r.logf("replicate: quarantined generation %d download (%s): %s", gen, name, reason)
}

// xorshift64 is a tiny jitter source; replication backoff needs spread,
// not statistical quality, and this keeps math/rand out of library code.
type xorshift64 struct{ state uint64 }

func (x *xorshift64) seed(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	x.state = s
}

func (x *xorshift64) next() uint64 {
	x.state ^= x.state << 13
	x.state ^= x.state >> 7
	x.state ^= x.state << 17
	return x.state
}
