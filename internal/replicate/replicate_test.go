package replicate

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ipv4market/internal/store"
)

// newLeaderStore returns a store with n synthetic generations appended.
func newLeaderStore(t *testing.T, n int) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		appendGen(t, st, i)
	}
	return st
}

// appendGen appends one synthetic generation; i varies the bodies so
// every generation's bytes differ.
func appendGen(t *testing.T, st *store.Store, i int) store.Meta {
	t.Helper()
	meta := store.Meta{
		Created: time.Date(2020, 1, 1+i, 0, 0, 0, 0, time.UTC),
		Seed:    int64(100 + i),
		NumLIRs: 5, RoutingDays: 7,
	}
	arts := []store.Artifact{
		{Key: "table1", ContentType: "application/json", ETag: fmt.Sprintf(`"t%d"`, i),
			Body: []byte(fmt.Sprintf(`{"table":%d}`, i))},
		{Key: "prices", ContentType: "application/json", ETag: fmt.Sprintf(`"p%d"`, i),
			Body: []byte(fmt.Sprintf(`{"prices":%d}`, i))},
	}
	meta, err := st.Append(meta, arts)
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

// leaderServer mounts the Leader handlers on an httptest server, with an
// optional middleware wrapping the segment handler for fault injection.
func leaderServer(t *testing.T, st *store.Store, segmentWrap func(http.Handler) http.Handler) (*httptest.Server, *Leader) {
	t.Helper()
	l := NewLeader(st)
	seg := http.Handler(l.Segment())
	if segmentWrap != nil {
		seg = segmentWrap(seg)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replication/generations", l.Generations())
	mux.Handle("GET /v1/replication/segment/{gen}", seg)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, l
}

// newFollower returns a Replicator over a fresh store in its own temp
// dir, with an apply hook that records adopted metas.
func newFollower(t *testing.T, leaderURL string) (*Replicator, *store.Store, *[]store.Meta) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Options{LeaderURL: leaderURL, Store: st, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	applied := &[]store.Meta{}
	r.SetApply(func(m store.Meta) error {
		mu.Lock()
		defer mu.Unlock()
		*applied = append(*applied, m)
		return nil
	})
	return r, st, applied
}

func TestLeaderFollowerSync(t *testing.T) {
	leaderSt := newLeaderStore(t, 3)
	ts, l := leaderServer(t, leaderSt, nil)
	r, followerSt, applied := newFollower(t, ts.URL)

	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("first sync: %v", err)
	}

	gens := followerSt.Generations()
	if len(gens) != 3 {
		t.Fatalf("follower has %d generations, want 3", len(gens))
	}
	// Byte identity: every generation verifies and loads to the leader's
	// artifacts.
	for _, g := range gens {
		if err := followerSt.Verify(g.Gen); err != nil {
			t.Errorf("follower generation %d: %v", g.Gen, err)
		}
		_, wantArts, err := leaderSt.Load(g.Gen)
		if err != nil {
			t.Fatal(err)
		}
		_, gotArts, err := followerSt.Load(g.Gen)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotArts) != len(wantArts) {
			t.Fatalf("generation %d: %d artifacts, want %d", g.Gen, len(gotArts), len(wantArts))
		}
		for i := range wantArts {
			if string(gotArts[i].Body) != string(wantArts[i].Body) || gotArts[i].ETag != wantArts[i].ETag {
				t.Errorf("generation %d artifact %q differs after replication", g.Gen, wantArts[i].Key)
			}
		}
	}
	if len(*applied) != 1 || (*applied)[0].Gen != 3 {
		t.Fatalf("applied = %+v, want exactly the newest generation (3)", *applied)
	}

	st := r.Status()
	if st.Role != "follower" || st.LagGenerations != 0 || st.SegmentsFetched != 3 ||
		st.ConsecutiveFailures != 0 || st.LastError != "" || st.AppliedGen != 3 {
		t.Errorf("status after sync = %+v", st)
	}
	if st.BytesFetched == 0 {
		t.Error("BytesFetched = 0 after fetching three segments")
	}

	// A second sync is a no-op: nothing new to fetch, nothing re-applied.
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("idle sync: %v", err)
	}
	if got := r.Status().SegmentsFetched; got != 3 {
		t.Errorf("idle sync fetched segments: total %d, want 3", got)
	}
	if len(*applied) != 1 {
		t.Errorf("idle sync re-applied: %d applies, want 1", len(*applied))
	}

	// The leader moves on; the follower catches up and applies the new
	// generation.
	appendGen(t, leaderSt, 3)
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("catch-up sync: %v", err)
	}
	if latest, _ := followerSt.Latest(); latest.Gen != 4 {
		t.Errorf("follower latest = %d, want 4", latest.Gen)
	}
	if len(*applied) != 2 || (*applied)[1].Gen != 4 {
		t.Errorf("applied = %+v, want generations 3 then 4", *applied)
	}
	if followerSt.Stats().ImportedSegments != 4 {
		t.Errorf("ImportedSegments = %d, want 4", followerSt.Stats().ImportedSegments)
	}

	// Leader-side counters saw the traffic.
	ls := l.Status()
	if ls.Role != "leader" || ls.Listings < 3 || ls.SegmentsServed != 4 || ls.BytesShipped == 0 {
		t.Errorf("leader status = %+v", ls)
	}
}

func TestFollowerRetention(t *testing.T) {
	leaderSt := newLeaderStore(t, 4)
	ts, _ := leaderServer(t, leaderSt, nil)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Options{LeaderURL: ts.URL, Store: st, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	gens := st.Generations()
	if len(gens) != 2 || gens[0].Gen != 3 || gens[1].Gen != 4 {
		t.Fatalf("after retention: %+v, want generations 3 and 4", gens)
	}
	// Compacted-away generations must not be re-fetched: they are older
	// than the follower's newest, not missing.
	before := r.Status().SegmentsFetched
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := r.Status().SegmentsFetched; got != before {
		t.Errorf("re-sync fetched %d more segments after retention", got-before)
	}
}

func TestFlippedBytesQuarantined(t *testing.T) {
	leaderSt := newLeaderStore(t, 1)
	var corrupt sync.Mutex
	flip := true
	ts, _ := leaderServer(t, leaderSt, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			corrupt.Lock()
			doFlip := flip
			corrupt.Unlock()
			if !doFlip {
				next.ServeHTTP(w, req)
				return
			}
			path, _ := leaderSt.SegmentPath(1)
			data, err := os.ReadFile(path)
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			data[len(data)/2] ^= 0x40 // flip one bit mid-file
			w.Write(data)
		})
	})
	r, followerSt, applied := newFollower(t, ts.URL)

	err := r.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("sync over a corrupting transport succeeded")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("error = %v, want a checksum mismatch", err)
	}
	if _, ok := followerSt.Latest(); ok {
		t.Fatal("corrupt download was installed")
	}
	if len(*applied) != 0 {
		t.Fatal("corrupt download was applied to the serving layer")
	}
	st := r.Status()
	if st.CorruptQuarantined != 1 || st.ConsecutiveFailures != 1 || st.LastError == "" {
		t.Errorf("status after corrupt download = %+v", st)
	}

	// The bytes are preserved for inspection under quarantine/ ...
	qdir := filepath.Join(followerSt.Dir(), "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("quarantine dir: entries=%v err=%v, want exactly one file", entries, err)
	}
	if !strings.HasPrefix(entries[0].Name(), "gen-1.") || !strings.HasSuffix(entries[0].Name(), ".corrupt") {
		t.Errorf("quarantine file name %q", entries[0].Name())
	}
	// ... and a store reopened over the follower dir ignores them.
	reopened, err := store.Open(followerSt.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Stats().Segments; got != 0 {
		t.Errorf("reopened follower store has %d segments, want 0", got)
	}

	// Transport heals; the retry succeeds and serves.
	corrupt.Lock()
	flip = false
	corrupt.Unlock()
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if latest, ok := followerSt.Latest(); !ok || latest.Gen != 1 {
		t.Fatalf("follower did not recover: latest=%v ok=%v", latest, ok)
	}
	if len(*applied) != 1 {
		t.Errorf("applied %d generations after recovery, want 1", len(*applied))
	}
}

// truncateWriter cuts the response body after allow bytes; the mismatch
// with the already-sent Content-Length makes the server close the
// connection mid-body, which the client sees as an unexpected EOF.
type truncateWriter struct {
	http.ResponseWriter
	allow int
}

func (t *truncateWriter) Write(p []byte) (int, error) {
	if t.allow <= 0 {
		return 0, errors.New("injected truncation")
	}
	if len(p) > t.allow {
		p = p[:t.allow]
	}
	n, err := t.ResponseWriter.Write(p)
	t.allow -= n
	if err == nil && t.allow <= 0 {
		err = errors.New("injected truncation")
	}
	return n, err
}

func TestTruncatedStreamResumed(t *testing.T) {
	leaderSt := newLeaderStore(t, 1)
	info, _ := leaderSt.Generation(1)
	cut := int(info.Bytes) / 2

	var mu sync.Mutex
	truncateNext := true
	var sawRange []string
	var statuses []int
	ts, _ := leaderServer(t, leaderSt, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			mu.Lock()
			doCut := truncateNext
			truncateNext = false
			sawRange = append(sawRange, req.Header.Get("Range"))
			mu.Unlock()
			rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
			if doCut {
				next.ServeHTTP(&truncateWriter{ResponseWriter: rec, allow: cut}, req)
			} else {
				next.ServeHTTP(rec, req)
			}
			mu.Lock()
			statuses = append(statuses, rec.code)
			mu.Unlock()
		})
	})
	r, followerSt, _ := newFollower(t, ts.URL)

	err := r.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("sync over a truncating transport succeeded")
	}
	if !strings.Contains(err.Error(), "transfer broke") && !strings.Contains(err.Error(), "short transfer") {
		t.Errorf("error = %v, want a truncation failure", err)
	}
	if _, ok := followerSt.Latest(); ok {
		t.Fatal("truncated download was installed")
	}
	if got := len(r.partial); got == 0 || got >= int(info.Bytes) {
		t.Fatalf("partial state holds %d bytes, want a strict prefix of %d", got, info.Bytes)
	}

	// The retry resumes with a Range request and completes the segment.
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("resume sync: %v", err)
	}
	if err := followerSt.Verify(1); err != nil {
		t.Fatalf("resumed segment does not verify: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sawRange) != 2 || sawRange[0] != "" || !strings.HasPrefix(sawRange[1], "bytes=") {
		t.Errorf("Range headers across attempts = %q, want none then bytes=...", sawRange)
	}
	if len(statuses) != 2 || statuses[1] != http.StatusPartialContent {
		t.Errorf("segment response statuses = %v, want the resume answered 206", statuses)
	}
}

// statusRecorder captures the status code written through it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

func TestLeaderErrorsBackOff(t *testing.T) {
	leaderSt := newLeaderStore(t, 2)
	ts, _ := leaderServer(t, leaderSt, nil)
	r, followerSt, _ := newFollower(t, ts.URL)
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The leader starts failing; the follower records failures but keeps
	// its generations.
	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer fail.Close()
	r.opts.LeaderURL = fail.URL

	for i := 1; i <= 3; i++ {
		if err := r.SyncOnce(context.Background()); err == nil {
			t.Fatalf("sync %d against a 500ing leader succeeded", i)
		}
		if got := r.Status().ConsecutiveFailures; got != i {
			t.Errorf("after failure %d: ConsecutiveFailures = %d", i, got)
		}
	}
	if latest, ok := followerSt.Latest(); !ok || latest.Gen != 2 {
		t.Errorf("follower lost its generations during the outage: %v %v", latest, ok)
	}
	if got := r.Status().FetchErrors; got != 3 {
		t.Errorf("FetchErrors = %d, want 3", got)
	}

	// The leader recovers; one sync resets the failure state.
	r.opts.LeaderURL = ts.URL
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.ConsecutiveFailures != 0 || st.BackoffSeconds != 0 || st.LastError != "" {
		t.Errorf("status after recovery = %+v", st)
	}
}

func TestLeaderRestartWithHigherGens(t *testing.T) {
	dir := t.TempDir()
	leaderSt, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendGen(t, leaderSt, 0)
	appendGen(t, leaderSt, 1)
	ts, _ := leaderServer(t, leaderSt, nil)
	r, followerSt, applied := newFollower(t, ts.URL)
	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// The leader restarts over the same directory: its ID ratchet
	// continues above every shipped generation.
	leaderSt2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendGen(t, leaderSt2, 2)
	ts2, _ := leaderServer(t, leaderSt2, nil)
	r.opts.LeaderURL = ts2.URL

	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("sync after leader restart: %v", err)
	}
	if latest, _ := followerSt.Latest(); latest.Gen != 3 {
		t.Errorf("follower latest = %d, want 3 (post-restart generation)", latest.Gen)
	}
	if n := len(*applied); n != 2 || (*applied)[n-1].Gen != 3 {
		t.Errorf("applied = %+v, want generation 2 then 3", *applied)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	r, err := New(Options{
		LeaderURL:  "http://unused.test",
		Store:      mustOpen(t),
		Interval:   time.Second,
		MaxBackoff: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for failures := 1; failures <= 10; failures++ {
		for trial := 0; trial < 50; trial++ {
			d := r.backoffDelay(failures)
			if d < 750*time.Millisecond {
				t.Fatalf("failures=%d: delay %v below jittered minimum", failures, d)
			}
			if d > 10*time.Second {
				t.Fatalf("failures=%d: delay %v above jittered cap", failures, d)
			}
		}
	}
	// Backoff must actually grow with consecutive failures (modulo
	// jitter): the un-jittered base doubles until the cap.
	if d1, d4 := r.backoffDelay(1), r.backoffDelay(6); d4 < d1 {
		// Jitter is ±25%, growth is 2^5: d4 must exceed d1 at these
		// failure counts whatever the jitter draws.
		t.Errorf("backoff did not grow: failures=1 → %v, failures=6 → %v", d1, d4)
	}
}

func mustOpen(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Store: mustOpen(t)}); err == nil {
		t.Error("missing LeaderURL accepted")
	}
	if _, err := New(Options{LeaderURL: "http://x.test"}); err == nil {
		t.Error("missing Store accepted")
	}
}

func TestSyncCancelled(t *testing.T) {
	// A follower whose context is cancelled fails promptly instead of
	// hanging on a dead leader.
	ln := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-req.Context().Done()
	}))
	defer ln.Close()
	r, _, _ := newFollower(t, ln.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.SyncOnce(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled sync reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled sync did not return")
	}
}

// TestReadyCheckLagGate pins the follower readiness contract cmd/marketd
// wires behind -max-lag: unready before the first successful sync, ready
// once caught up, unready again when generation lag exceeds the bound,
// and unready when the last success is older than the staleness bound.
func TestReadyCheckLagGate(t *testing.T) {
	leaderSt := newLeaderStore(t, 2)
	ts, _ := leaderServer(t, leaderSt, nil)
	r, _, _ := newFollower(t, ts.URL)

	genCheck := r.ReadyCheck(0, 0)
	if err := genCheck(); err == nil {
		t.Error("never-synced follower reported ready")
	} else if !strings.Contains(err.Error(), "no successful sync") {
		t.Errorf("never-synced reason = %v", err)
	}

	if err := r.SyncOnce(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if gens, since, ok := r.Lag(); !ok || gens != 0 || since < 0 {
		t.Errorf("Lag() after full sync = (%d, %v, %v), want (0, >=0, true)", gens, since, ok)
	}
	if err := genCheck(); err != nil {
		t.Errorf("caught-up follower unready: %v", err)
	}

	// Simulate observed-but-unimported generations (what syncOnce records
	// after listing and before each install).
	r.mu.Lock()
	r.status.LagGenerations = 3
	r.mu.Unlock()
	if err := genCheck(); err == nil {
		t.Error("lagging follower (3 > max 0) reported ready")
	} else if !strings.Contains(err.Error(), "3 generation(s)") {
		t.Errorf("lag reason = %v", err)
	}
	if err := r.ReadyCheck(3, 0)(); err != nil {
		t.Errorf("lag 3 within max 3 reported unready: %v", err)
	}
	if err := r.ReadyCheck(-1, 0)(); err != nil {
		t.Errorf("negative maxGens must disable the generation bound: %v", err)
	}

	// Staleness: age the last success past the bound.
	r.mu.Lock()
	r.status.LagGenerations = 0
	r.lastSuccessAt = time.Now().Add(-time.Hour)
	r.mu.Unlock()
	if err := r.ReadyCheck(-1, time.Minute)(); err == nil {
		t.Error("stale follower (1h > max 1m) reported ready")
	} else if !strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("staleness reason = %v", err)
	}
	if err := r.ReadyCheck(-1, 2*time.Hour)(); err != nil {
		t.Errorf("staleness within bound reported unready: %v", err)
	}
}
