package replicate

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"ipv4market/internal/store"
)

// Wire types shared by the leader handlers and the follower client.

// GenEntry is one generation in the replication listing: everything a
// follower needs to decide whether to fetch it and to verify the bytes
// it gets.
type GenEntry struct {
	Gen     uint64 `json:"gen"`
	Bytes   int64  `json:"bytes"`
	CRC32   string `json:"crc32"` // IEEE CRC32 of the whole segment file, 8 hex digits
	ETag    string `json:"etag"`  // strong ETag of the segment endpoint
	Created string `json:"created"`
	Seed    int64  `json:"seed"`
}

// Route patterns for the two leader endpoints, in net/http ServeMux
// syntax. Callers mount Generations and Segment under exactly these
// patterns (cmd/marketd does) so followers, documentation, and the
// docs-drift test all agree on the replication surface.
const (
	// PatternGenerations serves the sealed-segment catalog (Listing).
	PatternGenerations = "GET /v1/replication/generations"
	// PatternSegment streams one generation's raw segment bytes.
	PatternSegment = "GET /v1/replication/segment/{gen}"
)

// Listing is the GET /v1/replication/generations document.
type Listing struct {
	// NextGen is the leader store's ID ratchet; it exceeds every listed
	// generation and lets a follower detect a leader that moved on even
	// when retention already dropped the intermediate segments.
	NextGen     uint64     `json:"next_gen"`
	Generations []GenEntry `json:"generations"`
}

// Leader serves a store's sealed segments to replication followers. It
// is read-only over the store: two handlers, no state of its own beyond
// counters and a CRC cache (segments are immutable, so a CRC computed
// once is valid for the segment's lifetime).
type Leader struct {
	st *store.Store

	mu   sync.Mutex
	crcs map[uint64]uint32

	listings  int64
	shipped   int64
	bytesOut  int64
	errorsOut int64
}

// NewLeader returns a Leader over st.
func NewLeader(st *store.Store) *Leader {
	return &Leader{st: st, crcs: make(map[uint64]uint32)}
}

// segmentETag derives the strong ETag for a generation's segment bytes.
func segmentETag(crc uint32, size int64) string {
	return fmt.Sprintf("%q", fmt.Sprintf("%08x-%d", crc, size))
}

// crcFor returns the cached whole-file CRC32 for gen, computing it on
// first use. The cache is pruned to the live generation set as a side
// effect of Generations, so compaction cannot grow it without bound.
func (l *Leader) crcFor(g store.GenInfo) (uint32, error) {
	l.mu.Lock()
	crc, ok := l.crcs[g.Gen]
	l.mu.Unlock()
	if ok {
		return crc, nil
	}
	path, ok := l.st.SegmentPath(g.Gen)
	if !ok {
		return 0, fmt.Errorf("replicate: generation %d gone from store", g.Gen)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("replicate: open segment: %w", err)
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("replicate: checksum segment: %w", err)
	}
	crc = h.Sum32()
	l.mu.Lock()
	l.crcs[g.Gen] = crc
	l.mu.Unlock()
	return crc, nil
}

// pruneCRCs drops cache entries for generations no longer live.
func (l *Leader) pruneCRCs(live []store.GenInfo) {
	alive := make(map[uint64]bool, len(live))
	for _, g := range live {
		alive[g.Gen] = true
	}
	l.mu.Lock()
	for gen := range l.crcs {
		if !alive[gen] {
			delete(l.crcs, gen)
		}
	}
	l.mu.Unlock()
}

// Generations is the GET /v1/replication/generations handler: the live
// generation list with sizes, checksums, and segment ETags.
func (l *Leader) Generations() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		atomicAdd(&l.mu, &l.listings, 1)
		gens := l.st.Generations()
		l.pruneCRCs(gens)
		listing := Listing{NextGen: l.st.Stats().NextGen}
		for _, g := range gens {
			crc, err := l.crcFor(g)
			if err != nil {
				// A segment compacted between the list and the checksum;
				// the follower will pick it up (or not) next poll.
				continue
			}
			listing.Generations = append(listing.Generations, GenEntry{
				Gen:     g.Gen,
				Bytes:   g.Bytes,
				CRC32:   fmt.Sprintf("%08x", crc),
				ETag:    segmentETag(crc, g.Bytes),
				Created: g.Created.UTC().Format(time.RFC3339),
				Seed:    g.Seed,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(listing, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
}

// Segment is the GET /v1/replication/segment/{gen} handler: the raw
// sealed segment file, streamed with a strong ETag, Content-Length, and
// full Range/If-Range support (http.ServeContent), so followers can
// resume partial downloads.
func (l *Leader) Segment() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gen, err := strconv.ParseUint(r.PathValue("gen"), 10, 64)
		if err != nil || gen == 0 {
			atomicAdd(&l.mu, &l.errorsOut, 1)
			http.Error(w, "want a positive generation ID", http.StatusBadRequest)
			return
		}
		info, ok := l.st.Generation(gen)
		if !ok {
			atomicAdd(&l.mu, &l.errorsOut, 1)
			http.Error(w, fmt.Sprintf("generation %d not in store", gen), http.StatusNotFound)
			return
		}
		crc, err := l.crcFor(info)
		if err != nil {
			atomicAdd(&l.mu, &l.errorsOut, 1)
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		path, ok := l.st.SegmentPath(gen)
		if !ok {
			atomicAdd(&l.mu, &l.errorsOut, 1)
			http.Error(w, fmt.Sprintf("generation %d not in store", gen), http.StatusNotFound)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			atomicAdd(&l.mu, &l.errorsOut, 1)
			status := http.StatusInternalServerError
			if errors.Is(err, os.ErrNotExist) {
				status = http.StatusNotFound // compacted between lookup and open
			}
			http.Error(w, err.Error(), status)
			return
		}
		defer f.Close()
		w.Header().Set("ETag", segmentETag(crc, info.Bytes))
		w.Header().Set("Content-Type", "application/octet-stream")
		// ServeContent handles Range, If-Range, If-None-Match, and sets
		// Content-Length; the modtime is the build time, which is stable
		// for an immutable segment.
		http.ServeContent(w, r, info.File, info.Created, f)
		l.mu.Lock()
		l.shipped++
		l.bytesOut += info.Bytes // upper bound; range responses ship less
		l.mu.Unlock()
	})
}

// LeaderStatus is the leader's replication state as exported on /varz.
type LeaderStatus struct {
	Role           string `json:"role"`
	Segments       int    `json:"segments"`
	NextGen        uint64 `json:"next_gen"`
	Listings       int64  `json:"listings"`
	SegmentsServed int64  `json:"segments_served"`
	BytesShipped   int64  `json:"bytes_shipped"`
	FetchErrors    int64  `json:"fetch_errors"`
}

// Status returns a point-in-time snapshot of the leader's counters.
func (l *Leader) Status() LeaderStatus {
	stats := l.st.Stats()
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaderStatus{
		Role:           "leader",
		Segments:       stats.Segments,
		NextGen:        stats.NextGen,
		Listings:       l.listings,
		SegmentsServed: l.shipped,
		BytesShipped:   l.bytesOut,
		FetchErrors:    l.errorsOut,
	}
}

// Varz adapts Status for serve.Options.ReplicationVarz.
func (l *Leader) Varz() any { return l.Status() }

// atomicAdd bumps a counter under the shared mutex. The leader's
// counters are too cold for per-counter atomics to matter.
func atomicAdd(mu *sync.Mutex, counter *int64, delta int64) {
	mu.Lock()
	*counter += delta
	mu.Unlock()
}
