package core
