package core

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"
	"time"

	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
)

func testStudy(t testing.TB) *Study {
	t.Helper()
	cfg := simulation.DefaultConfig()
	cfg.NumLIRs = 18
	cfg.RoutingDays = 80
	cfg.AdministrativeLeases = 150
	cfg.RoutedLeases = 60
	cfg.MonitorsPerCollector = 4
	cfg.SmallAssignmentsPerLIR = 12
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable1MatchesPaper(t *testing.T) {
	s := testStudy(t)
	rows := s.Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byRIR := map[registry.RIR]Table1Row{}
	for _, r := range rows {
		byRIR[r.RIR] = r
	}
	ripe := byRIR[registry.RIPENCC]
	if !ripe.Depleted.Equal(time.Date(2019, 11, 25, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("RIPE depletion = %v", ripe.Depleted)
	}
	if ripe.MaxAssignment != 24 || byRIR[registry.APNIC].MaxAssignment != 23 || byRIR[registry.ARIN].MaxAssignment != 22 {
		t.Error("2020 max assignments diverge from paper")
	}
	if byRIR[registry.ARIN].WaitingList != 202 || byRIR[registry.LACNIC].WaitingList != 275 {
		t.Error("waiting-list capacities diverge from paper")
	}
}

func TestFigureDataShapes(t *testing.T) {
	s := testStudy(t)

	if cells := s.Figure1(); len(cells) == 0 {
		t.Error("Figure1 empty")
	}
	f2 := s.Figure2()
	if len(f2[registry.ARIN]) == 0 {
		t.Error("Figure2 has no ARIN series")
	}
	if flows := s.Figure3(); len(flows) == 0 {
		t.Error("Figure3 empty")
	}
	f4 := s.Figure4()
	if len(f4) == 0 {
		t.Error("Figure4 empty")
	}
	// Second-wave providers must only appear from June 2020.
	for _, p := range f4 {
		if p.Provider == "AnyIP" && p.Date.Before(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("second-wave provider observed early: %+v", p)
		}
	}

	grid, err := s.Figure5([]int{2, 10, 30}, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 9 {
		t.Errorf("Figure5 grid = %d", len(grid))
	}
	// Fail rate must not increase with N at fixed M.
	for _, m := range []int{2, 10, 30} {
		var prev float64 = -1
		for _, n := range []int{0, 1, 3} {
			for _, r := range grid {
				if r.M == m && r.N == n {
					if prev >= 0 && r.FailRate() > prev+1e-9 {
						t.Errorf("fail rate increased with N at M=%d", m)
					}
					prev = r.FailRate()
				}
			}
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	s := testStudy(t)
	res, err := s.Figure6(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != s.Cfg.RoutingDays/5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Extended must never exceed baseline on any sampled day before gap
	// filling; after gap filling small excursions are possible, so check
	// the weaker invariant that both series are populated and baseline
	// carries hijack noise (count ≥ extended on average).
	var baseSum, extSum int
	for _, p := range res.Points {
		if p.BaselineCount == 0 || p.ExtendedCount == 0 {
			t.Fatalf("empty day: %+v", p)
		}
		baseSum += p.BaselineCount
		extSum += p.ExtendedCount
	}
	if baseSum < extSum {
		t.Errorf("baseline (%d) should carry more noise than extended (%d)", baseSum, extSum)
	}
	// The baseline's extra inferences (hijacks, MOAS combinations) put it
	// at or above the extended series on nearly every sampled day; the
	// extensions only remove. Gap filling can lift isolated extended days
	// above the baseline, so require dominance on a large majority.
	dominated := 0
	for _, p := range res.Points {
		if p.BaselineCount >= p.ExtendedCount {
			dominated++
		}
	}
	if frac := float64(dominated) / float64(len(res.Points)); frac < 0.7 {
		t.Errorf("baseline ≥ extended on only %.0f%% of days", 100*frac)
	}
	if _, err := s.Figure6(0); err == nil {
		t.Error("sampleEvery=0 must fail")
	}
}

func TestCoverageShape(t *testing.T) {
	s := testStudy(t)
	res, err := s.Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if res.RDAPDelegations == 0 || res.BGPDelegations == 0 {
		t.Fatalf("coverage = %+v", res)
	}
	// The paper's central observation: the RDAP view is far larger in
	// addresses than the BGP view.
	if res.BGPCoverOfRDAP > 0.15 {
		t.Errorf("BGP covers %.1f%% of RDAP IPs; expected a small fraction", 100*res.BGPCoverOfRDAP)
	}
	// And RDAP covers a majority-but-not-all of BGP-delegated IPs.
	if res.RDAPCoverOfBGP < 0.35 || res.RDAPCoverOfBGP > 0.95 {
		t.Errorf("RDAP covers %.1f%% of BGP IPs; expected roughly two thirds", 100*res.RDAPCoverOfBGP)
	}
	if res.RDAPSkippedSmall == 0 {
		t.Error("sub-/24 blocks should be skipped")
	}
}

func TestCensusShape(t *testing.T) {
	s := testStudy(t)
	c := s.Census()
	if c.FracAssignedSub24 < 0.5 {
		t.Errorf("FracAssignedSub24 = %v", c.FracAssignedSub24)
	}
	if c.SubAllocatedBlocks == 0 {
		t.Error("no SUB-ALLOCATED PA blocks")
	}
}

func TestHeadlineShape(t *testing.T) {
	s := testStudy(t)
	h, err := s.Headline()
	if err != nil {
		t.Fatal(err)
	}
	if h.MeanPrice2020 < 20 || h.MeanPrice2020 > 26 {
		t.Errorf("mean 2020 price = %v", h.MeanPrice2020)
	}
	if h.GrowthFactor < 1.6 || h.GrowthFactor > 2.6 {
		t.Errorf("growth = %v", h.GrowthFactor)
	}
	if h.RegionDiffers {
		t.Error("regions should not differ")
	}
	if !h.Consolidated {
		t.Error("consolidation should be detected")
	}
	if h.SizePremium <= 1.0 {
		t.Errorf("size premium = %v, expected small-block premium", h.SizePremium)
	}
}

func TestAmortizationTable(t *testing.T) {
	s := testStudy(t)
	rows := s.AmortizationTable()
	if len(rows) == 0 {
		t.Fatal("empty table")
	}
	// Fastest rate ≈ 10 months; the slowest that amortizes measures in
	// decades.
	last := rows[len(rows)-1]
	if !last.Amortizes || last.Months < 8 || last.Months > 12 {
		t.Errorf("fast amortization = %+v", last)
	}
	first := rows[0]
	if first.Amortizes && first.Years < 10 {
		t.Errorf("slow amortization = %+v", first)
	}
}

func TestRenderAll(t *testing.T) {
	s := testStudy(t)
	checks := []struct {
		name   string
		render func(*bytes.Buffer) error
		want   string
	}{
		{"table1", func(b *bytes.Buffer) error { return s.RenderTable1(b) }, "RIPE NCC"},
		{"fig1", func(b *bytes.Buffer) error { return s.RenderFigure1(b) }, "Median"},
		{"fig2", func(b *bytes.Buffer) error { return s.RenderFigure2(b) }, "Quarter"},
		{"fig3", func(b *bytes.Buffer) error { return s.RenderFigure3(b) }, "ARIN"},
		{"fig4", func(b *bytes.Buffer) error { return s.RenderFigure4(b) }, "Heficed"},
		{"fig5", func(b *bytes.Buffer) error { return s.RenderFigure5(b, []int{2, 10}, []int{0, 3}) }, "Fail rate"},
		{"fig6", func(b *bytes.Buffer) error { return s.RenderFigure6(b, 10) }, "Extended"},
		{"coverage", func(b *bytes.Buffer) error { return s.RenderCoverage(b) }, "BGP covers"},
		{"census", func(b *bytes.Buffer) error { return s.RenderCensus(b) }, "ASSIGNED PA"},
		{"headline", func(b *bytes.Buffer) error { return s.RenderHeadline(b) }, "mean 2020 price"},
		{"amortization", func(b *bytes.Buffer) error { return s.RenderAmortization(b) }, "Amortization"},
	}
	for _, c := range checks {
		var buf bytes.Buffer
		if err := c.render(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.want, buf.String())
		}
	}
}

func TestWaitingLists(t *testing.T) {
	s := testStudy(t)
	outs := s.WaitingLists()
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	arin, ripe := outs[0], outs[1]
	if arin.Scenario.RIR != registry.ARIN || ripe.Scenario.RIR != registry.RIPENCC {
		t.Fatal("scenario order")
	}
	// §2: ARIN waits of up to 130+ days with a persistent queue; RIPE
	// clears its list instantly from banked recovered space.
	if arin.MaxWaitDays < 60 || arin.Pending == 0 {
		t.Errorf("ARIN outcome = %+v", arin)
	}
	if float64(ripe.Fulfilled)/float64(ripe.Requests) < 0.9 || ripe.PoolLeft == 0 {
		t.Errorf("RIPE outcome = %+v", ripe)
	}
	// RIPE's remaining pool is in the paper's ~340k ballpark.
	if ripe.PoolLeft < 150_000 || ripe.PoolLeft > 600_000 {
		t.Errorf("RIPE pool left = %d, want ≈340k", ripe.PoolLeft)
	}
}

func TestReputationStats(t *testing.T) {
	s := testStudy(t)
	r := s.Reputation()
	if r.Listings == 0 {
		t.Fatal("no listings simulated")
	}
	if r.LeasesListed+r.LeasesTainted == 0 {
		t.Error("some leased blocks must be listed or tainted")
	}
	if r.LeasesClean == 0 {
		t.Error("most leased blocks should stay clean")
	}
	if r.LeasesClean < r.LeasesListed+r.LeasesTainted {
		t.Error("clean blocks should dominate")
	}
	// The SWIP shield must protect a majority of providers whose leased
	// children were abused (most leases are WHOIS-registered).
	if r.ParentsAtRisk == 0 {
		t.Fatal("no at-risk parents")
	}
	if frac := float64(r.ParentsShielded) / float64(r.ParentsAtRisk); frac < 0.5 {
		t.Errorf("shield efficacy = %.2f, want majority", frac)
	}
	if r.MeanPriceFactor <= 0.5 || r.MeanPriceFactor > 1.0 {
		t.Errorf("mean price factor = %v", r.MeanPriceFactor)
	}
}

func TestRenderWaitingListsAndReputation(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.RenderWaitingLists(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Max wait") {
		t.Errorf("waiting-list render:\n%s", buf.String())
	}
	buf.Reset()
	if err := s.RenderReputation(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SWIP") && !strings.Contains(buf.String(), "shielded") {
		t.Errorf("reputation render:\n%s", buf.String())
	}
}

func TestMergersEvaluation(t *testing.T) {
	s := testStudy(t)
	ev := s.Mergers()
	if ev.Transfers == 0 || ev.TrueMergers == 0 {
		t.Fatalf("eval = %+v", ev)
	}
	// Multi-block consolidations make the heuristic precise and sensitive.
	if ev.Precision < 0.8 {
		t.Errorf("precision = %.2f", ev.Precision)
	}
	if ev.Recall < 0.5 {
		t.Errorf("recall = %.2f", ev.Recall)
	}
}

func TestCombinedEstimate(t *testing.T) {
	s := testStudy(t)
	est, err := s.Combined()
	if err != nil {
		t.Fatal(err)
	}
	if est.TruthIPs == 0 {
		t.Fatal("no ground-truth market")
	}
	// §7: no single source captures the market; the union beats each.
	if est.UnionRecall < est.BGPRecall || est.UnionRecall < est.RDAPRecall || est.UnionRecall < est.RPKIRecall {
		t.Errorf("union must dominate: %+v", est)
	}
	if est.UnionRecall < 0.9 {
		t.Errorf("union recall = %.2f", est.UnionRecall)
	}
	if est.BGPRecall >= est.RDAPRecall {
		t.Errorf("BGP (%.2f) should see far less than RDAP (%.2f) by addresses", est.BGPRecall, est.RDAPRecall)
	}
	// RPKI gives an order of magnitude fewer delegated IPs than RDAP.
	if est.RPKIIPs >= est.RDAPIPs {
		t.Errorf("RPKI IPs (%d) should be far below RDAP (%d)", est.RPKIIPs, est.RDAPIPs)
	}
}

func TestRenderMergersAndCombined(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := s.RenderMergers(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "precision") {
		t.Errorf("mergers render:\n%s", buf.String())
	}
	buf.Reset()
	if err := s.RenderCombined(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "union") {
		t.Errorf("combined render:\n%s", buf.String())
	}
}

func TestExportCSV(t *testing.T) {
	s := testStudy(t)
	files := map[string]*bytes.Buffer{}
	names, err := s.ExportCSV(10, func(name string) (io.WriteCloser, error) {
		buf := &bytes.Buffer{}
		files[name] = buf
		return nopCloser{buf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for name, buf := range files {
		r := csv.NewReader(bytes.NewReader(buf.Bytes()))
		rows, err := r.ReadAll()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", name, len(rows))
		}
	}
	// Figure 1 is restricted to the paper's pricing window.
	for _, c := range s.Figure1() {
		if c.Quarter.Year < 2016 {
			t.Errorf("Figure1 contains pre-2016 cell %v", c.Quarter)
		}
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
