// Package core assembles the full reproduction of "When Wells Run Dry:
// The 2020 IPv4 Address Market" (CoNEXT 2020): it builds the synthetic
// world, runs every analysis pipeline, and exposes one method per table,
// figure and headline statistic of the paper.
package core

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"ipv4market/internal/bgp"
	"ipv4market/internal/delegation"
	"ipv4market/internal/market"
	"ipv4market/internal/netblock"
	"ipv4market/internal/rdap"
	"ipv4market/internal/registry"
	"ipv4market/internal/reputation"
	"ipv4market/internal/rpki"
	"ipv4market/internal/simulation"
	"ipv4market/internal/stats"
	"ipv4market/internal/whois"
)

// Study holds the generated world and the measurement pipelines.
//
// A Study is read-only after NewStudy returns: every accessor (Table1,
// Figure1-6, Headline, Coverage, Census, ...) derives its result from the
// constructed world without mutating shared state — randomized analyses
// draw from their own seed-derived RNGs, never from a shared stream.
// Repeated calls with the same receiver therefore return equal results,
// and any number of goroutines may call any accessors concurrently (the
// serving layer in internal/serve depends on this; TestStudyReadOnly
// enforces it under the race detector).
type Study struct {
	Cfg     simulation.Config
	World   *simulation.World
	Routing *simulation.RoutingSim
}

// NewStudy builds the world and prepares the routing simulation.
func NewStudy(cfg simulation.Config) (*Study, error) {
	w, err := simulation.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Study{Cfg: cfg, World: w, Routing: simulation.NewRoutingSim(w)}, nil
}

// ---- Table 1 ----

// Table1Row is one line of the exhaustion timeline.
type Table1Row struct {
	RIR             registry.RIR
	DownToLastBlock time.Time
	Depleted        time.Time // zero: not depleted by mid-2020
	Phase2020       registry.Phase
	MaxAssignment   int // prefix length assignable in June 2020
	WaitingList     int // waiting-list capacity (0 = none)
}

// Table1 reproduces the exhaustion timeline, straight from the policy
// engine's milestone data.
func (s *Study) Table1() []Table1Row {
	ref := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	var rows []Table1Row
	for _, r := range registry.AllRIRs() {
		m := registry.MilestonesOf(r)
		rows = append(rows, Table1Row{
			RIR:             r,
			DownToLastBlock: m.DownToLastBlock,
			Depleted:        m.Depleted,
			Phase2020:       registry.PhaseAt(r, ref),
			MaxAssignment:   registry.MaxAssignmentBits(r, ref),
			WaitingList:     registry.WaitingListLimit(r),
		})
	}
	return rows
}

// ---- Figures 1-4 ----

// Figure1 returns the price box plots by prefix size, region and quarter,
// restricted to the paper's pricing window (2016-01-01 to 2020-06-25).
func (s *Study) Figure1() []market.PriceCell {
	from := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2020, 6, 26, 0, 0, 0, 0, time.UTC)
	var in []market.PriceRecord
	for _, r := range s.World.Prices {
		if !r.Date.Before(from) && r.Date.Before(to) {
			in = append(in, r)
		}
	}
	return market.PriceBoxes(in)
}

// Figure2 returns quarterly market-transfer counts per region, with M&A
// filtered out where the RIR labels it.
func (s *Study) Figure2() map[registry.RIR][]market.QuarterCount {
	return market.QuarterlyCounts(market.FilterMarketTransfers(s.World.Registry.Transfers()))
}

// Figure2Workers is Figure2 with the per-RIR aggregation fanned out
// across at most the given number of workers (<= 0: NumCPU). The result
// is always equal to Figure2's — per-RIR series are merged by RIR index,
// not completion order.
func (s *Study) Figure2Workers(workers int) (map[registry.RIR][]market.QuarterCount, error) {
	return market.QuarterlyCountsWorkers(market.FilterMarketTransfers(s.World.Registry.Transfers()), workers)
}

// Figure3 returns the inter-RIR transfer flows by year.
func (s *Study) Figure3() []market.InterRIRFlow {
	return market.InterRIRFlows(s.World.Registry.Transfers())
}

// Figure4Point is one provider's advertised price at one sample date.
type Figure4Point struct {
	Provider string
	Bundled  bool
	Date     time.Time
	Price    float64
}

// Figure4 samples every provider's advertised /24 leasing price monthly
// between the paper's observation dates.
func (s *Study) Figure4() []Figure4Point {
	providers := market.PaperProviders()
	var out []Figure4Point
	for t := time.Date(2019, 10, 26, 0, 0, 0, 0, time.UTC); !t.After(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)); t = t.AddDate(0, 1, 0) {
		for i := range providers {
			price, ok := providers[i].PriceAt(t)
			if !ok {
				continue
			}
			out = append(out, Figure4Point{
				Provider: providers[i].Name,
				Bundled:  providers[i].Bundled,
				Date:     t,
				Price:    price,
			})
		}
	}
	return out
}

// ---- Figure 5 ----

// Figure5 evaluates the consistency-rule fail rates on the RPKI history:
// N ∈ ns, M ∈ ms (the paper sweeps M to 100 for several N).
func (s *Study) Figure5(ms, ns []int) ([]rpki.RuleResult, error) {
	h := s.World.BuildRPKIHistory(0.8, simulation.DefaultROADropProb)
	return h.EvaluateGrid(ms, ns)
}

// ---- Figure 6 ----

// Figure6Point is one sampled day of the delegation time series.
type Figure6Point struct {
	Date          time.Time
	BaselineCount int
	BaselineIPs   uint64
	ExtendedCount int
	ExtendedIPs   uint64
}

// Figure6Result carries the series plus summary statistics.
type Figure6Result struct {
	Points []Figure6Point
	// GrowthExtended is last/first extended delegation count (paper: ~1.07).
	GrowthExtended float64
	// Share24First/Last and Share20First/Last are the /24 and /20
	// delegation shares in the first and last quarter of the window.
	Share24First, Share24Last float64
	Share20First, Share20Last float64
}

// Figure6 runs both inference algorithms over the routing window, sampling
// every sampleEvery days (1 = daily, as in the paper; larger strides trade
// temporal resolution for speed). The extended pipeline applies the 10-day
// consistency rule, scaled to the stride. The per-date inference fans out
// across NumCPU workers; Figure6Workers exposes the knob.
func (s *Study) Figure6(sampleEvery int) (Figure6Result, error) {
	return s.Figure6Workers(sampleEvery, 0)
}

// Figure6Workers is Figure6 with an explicit worker count (<= 0: NumCPU)
// for the per-date survey construction and delegation inference — the
// study's dominant cost, and embarrassingly parallel because each day's
// survey is an independent pure function of the world. Day results are
// merged into the timelines in day order regardless of completion order,
// so the result is byte-identical at any worker count (enforced by
// TestFigure6WorkersDeterministic).
func (s *Study) Figure6Workers(sampleEvery, workers int) (Figure6Result, error) {
	if sampleEvery < 1 {
		return Figure6Result{}, fmt.Errorf("core: sampleEvery must be ≥ 1")
	}
	days := s.Cfg.RoutingDays / sampleEvery
	if days == 0 {
		return Figure6Result{}, fmt.Errorf("core: empty sampling window")
	}
	baseTL := delegation.NewTimeline(s.Cfg.RoutingStart, days)
	extTL := delegation.NewTimeline(s.Cfg.RoutingStart, days)
	inf := delegation.DefaultInference(s.World.OrgSeries)

	// Fan out per sampled day: SurveyAt is a pure derivation of the
	// read-only world (safe concurrently), and each day's inference
	// touches nothing shared. The timelines are filled serially below,
	// in day order, because Timeline mutation is not concurrency-safe.
	daySurveys := make([]delegation.DaySurvey, days)
	for i := 0; i < days; i++ {
		day := i * sampleEvery
		daySurveys[i] = delegation.DaySurvey{
			Date:   s.Cfg.RoutingStart.AddDate(0, 0, day),
			Survey: func() *bgp.OriginSurvey { return s.Routing.SurveyAt(day) },
		}
	}
	inferred, err := inf.InferDays(workers, daySurveys)
	if err != nil {
		return Figure6Result{}, fmt.Errorf("core: per-date inference: %w", err)
	}
	for i, di := range inferred {
		baseTL.AddDay(i, di.Baseline)
		extTL.AddDay(i, di.Extended)
	}
	// Extension (v): the 10-day rule, in sample units.
	window := 10 / sampleEvery
	if window < 1 {
		window = 1
	}
	extTL.FillGaps(window)

	baseStats := baseTL.DailyStats()
	extStats := extTL.DailyStats()
	res := Figure6Result{}
	for i := 0; i < days; i++ {
		res.Points = append(res.Points, Figure6Point{
			Date:          s.Cfg.RoutingStart.AddDate(0, 0, i*sampleEvery),
			BaselineCount: baseStats[i].Delegations,
			BaselineIPs:   baseStats[i].DelegatedIPs,
			ExtendedCount: extStats[i].Delegations,
			ExtendedIPs:   extStats[i].DelegatedIPs,
		})
	}
	// Growth from the mean of the first and last few samples, which is
	// robust to single-day announcement noise.
	k := days / 8
	if k < 1 {
		k = 1
	}
	var first, last float64
	for i := 0; i < k; i++ {
		first += float64(extStats[i].Delegations)
		last += float64(extStats[days-1-i].Delegations)
	}
	if first > 0 {
		res.GrowthExtended = last / first
	}
	qtr := days / 4
	if qtr < 1 {
		qtr = 1
	}
	sharesFirst := extTL.SizeShares(0, qtr, 24, 20)
	sharesLast := extTL.SizeShares(days-qtr, days, 24, 20)
	res.Share24First, res.Share20First = sharesFirst[24], sharesFirst[20]
	res.Share24Last, res.Share20Last = sharesLast[24], sharesLast[20]
	return res, nil
}

// ---- §4 coverage (S1) and census (S2) ----

// CoverageResult compares the BGP and RDAP views of the leasing market on
// the final day of the window.
type CoverageResult struct {
	BGPDelegations   int
	BGPIPs           uint64
	RDAPDelegations  int
	RDAPIPs          uint64
	IntersectionIPs  uint64
	BGPCoverOfRDAP   float64 // |BGP ∩ RDAP| / |RDAP| — paper: ~1.85%
	RDAPCoverOfBGP   float64 // |BGP ∩ RDAP| / |BGP| — paper: ~65.7%
	RDAPQueries      int
	RDAPSkippedSmall int
	RDAPIntraOrg     int
}

// Coverage runs the full §4 comparison: it serves the WHOIS snapshot over
// a loopback RDAP server, walks it with the RDAP client, infers the BGP
// delegations for the last day, and intersects the address sets.
func (s *Study) Coverage() (CoverageResult, error) {
	db := s.World.BuildWhoisDB()

	// RDAP side: loopback HTTP server over the snapshot.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return CoverageResult{}, fmt.Errorf("core: rdap listener: %w", err)
	}
	srv := &http.Server{Handler: rdap.NewServer(db)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // returns on Close
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	client := rdap.NewClient("http://"+ln.Addr().String(), nil)
	surveyRes, err := client.Survey(db, rdap.DefaultSurveyOptions())
	if err != nil {
		return CoverageResult{}, err
	}
	rdapSet := netblock.NewSet()
	for _, d := range surveyRes.Delegations {
		first, err1 := netblock.ParseAddr(d.Child.StartAddress)
		last, err2 := netblock.ParseAddr(d.Child.EndAddress)
		if err1 == nil && err2 == nil {
			rdapSet.AddRange(first, last)
		}
	}

	// BGP side: extended inference on the final day.
	day := s.Cfg.RoutingDays - 1
	survey := s.Routing.SurveyAt(day)
	inf := delegation.DefaultInference(s.World.OrgSeries)
	ds := inf.FromSurvey(s.Cfg.RoutingStart.AddDate(0, 0, day), survey)
	bgpSet := netblock.NewSet()
	for _, d := range ds {
		bgpSet.AddPrefix(d.Child)
	}

	res := CoverageResult{
		BGPDelegations:   len(ds),
		BGPIPs:           bgpSet.Size(),
		RDAPDelegations:  len(surveyRes.Delegations),
		RDAPIPs:          rdapSet.Size(),
		IntersectionIPs:  bgpSet.IntersectionSize(rdapSet),
		RDAPQueries:      surveyRes.Queried,
		RDAPSkippedSmall: surveyRes.Skipped,
		RDAPIntraOrg:     surveyRes.IntraOrg,
	}
	if res.RDAPIPs > 0 {
		res.BGPCoverOfRDAP = float64(res.IntersectionIPs) / float64(res.RDAPIPs)
	}
	if res.BGPIPs > 0 {
		res.RDAPCoverOfBGP = float64(res.IntersectionIPs) / float64(res.BGPIPs)
	}
	return res, nil
}

// Census returns the WHOIS input-space statistics of §4.
func (s *Study) Census() whois.Census {
	return s.World.BuildWhoisDB().TakeCensus()
}

// ---- §3 headline statistics (S3) ----

// HeadlineStats carries the paper's §3 summary numbers.
type HeadlineStats struct {
	MeanPrice2020 float64        // paper: ≈ $22.50
	MeanPriceCI   stats.Interval // bootstrap 95% CI around the 2020 mean
	GrowthFactor  float64        // paper: ≈ 2 since 2016
	RegionTest    stats.RankTestResult
	RegionDiffers bool // paper: false
	SizePremium   float64
	Consolidation market.Consolidation
	Consolidated  bool // paper: true, from Spring 2019
	PricedRecords int
}

// Headline computes the §3 statistics from the price records.
func (s *Study) Headline() (HeadlineStats, error) {
	prices := s.World.Prices
	d := func(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }
	var out HeadlineStats
	out.PricedRecords = len(prices)
	var err error
	if out.MeanPrice2020, err = market.MeanPrice(prices, d(2020, 1), d(2020, 7)); err != nil {
		return out, err
	}
	var xs2020 []float64
	for _, r := range prices {
		if !r.Date.Before(d(2020, 1)) && r.Date.Before(d(2020, 7)) {
			xs2020 = append(xs2020, r.PricePerAddr)
		}
	}
	if ci, err := stats.BootstrapMeanCI(rand.New(rand.NewSource(s.Cfg.Seed)), xs2020, 1000, 0.95); err == nil {
		out.MeanPriceCI = ci
	}
	if out.GrowthFactor, err = market.GrowthFactor(prices, d(2016, 1), d(2017, 1), d(2019, 7), d(2020, 7)); err != nil {
		return out, err
	}
	if out.RegionTest, err = market.RegionEffect(prices, d(2018, 1), d(2020, 7)); err != nil {
		return out, err
	}
	out.RegionDiffers = out.RegionTest.Significant(0.05)
	if premium, _, err := market.SizeEffect(prices, d(2019, 1), d(2020, 7)); err == nil {
		out.SizePremium = premium
	}
	out.Consolidation, out.Consolidated = market.DetectConsolidation(prices, 0.01, 4)
	return out, nil
}

// ---- §6 amortization (S4) ----

// AmortizationTable sweeps the §6 buy-vs-lease grid across the advertised
// leasing range, using the 2020 mean price, a mid-range broker commission,
// and the RIR fees a small holder pays per address (a RIPE-sized annual
// membership fee spread over one /24 is a few dollars per address; larger
// holders amortize faster). This reproduces the paper's span from under a
// year to several tens of years.
func (s *Study) AmortizationTable() []market.GridRow {
	rates := []float64{0.30, 0.40, 0.56, 0.75, 1.00, 1.50, 2.00, 2.33, 2.40}
	return market.Grid(22.50, 0.075, 2.9, rates)
}

// ---- §2 waiting-list dynamics (S6) ----

// WaitingLists simulates the post-depletion request regimes of ARIN and
// the RIPE NCC through the registry policy engine (§2: ARIN waits of up
// to 130+ days; RIPE clearing its list from recovered space).
func (s *Study) WaitingLists() []simulation.WaitingListOutcome {
	return []simulation.WaitingListOutcome{
		simulation.SimulateWaitingList(simulation.ARIN2020Scenario()),
		simulation.SimulateWaitingList(simulation.RIPE2019Scenario()),
	}
}

// ---- §2 reputation (S7) ----

// ReputationStats summarizes the blacklist ecosystem at the end of the
// routing window.
type ReputationStats struct {
	Listings      int
	LeasesListed  int
	LeasesTainted int
	LeasesClean   int
	// Shield efficacy over provider blocks whose leased children were
	// listed: how many parents stay clean thanks to the WHOIS record
	// (SWIP shield), vs. how many are hit.
	ParentsAtRisk   int
	ParentsShielded int
	// MeanPriceFactor is the average reputation discount a buyer would
	// apply across all leased children.
	MeanPriceFactor float64
}

// Reputation evaluates the §2 "not all IP addresses are equal" ecosystem:
// the blacklist derived from spammer/VPN leases, the clean/tainted/listed
// split, and the SWIP-shield efficacy for providers.
func (s *Study) Reputation() ReputationStats {
	bl := s.World.BuildBlacklist()
	db := s.World.BuildWhoisDB()
	at := s.Cfg.RoutingStart.AddDate(0, 0, s.Cfg.RoutingDays)

	var out ReputationStats
	out.Listings = bl.Len()
	var factorSum float64
	seenParents := make(map[string]bool)
	for _, l := range s.World.Leases {
		st := bl.StatusAt(l.Child, at)
		switch st {
		case reputation.Listed:
			out.LeasesListed++
		case reputation.Tainted:
			out.LeasesTainted++
		default:
			out.LeasesClean++
		}
		factorSum += reputation.PriceFactor(st)

		if st == reputation.Clean {
			continue
		}
		// The provider's covering block: does the WHOIS record shield it?
		key := l.Parent.String() + "|" + string(l.Provider.ID)
		if seenParents[key] {
			continue
		}
		seenParents[key] = true
		out.ParentsAtRisk++
		if bl.ShieldedStatusAt(l.Parent, at, db, string(l.Provider.ID)) == reputation.Clean {
			out.ParentsShielded++
		}
	}
	if n := len(s.World.Leases); n > 0 {
		out.MeanPriceFactor = factorSum / float64(n)
	}
	return out
}

// ---- §3 merger inference (S8) ----

// Mergers evaluates the Giotsas-style M&A heuristic against the
// simulation's ground-truth transfer types — the evaluation the paper
// found missing from prior work. It scores the heuristic only over the
// regions whose logs lack the M&A label (APNIC, LACNIC), where it would
// actually be applied.
func (s *Study) Mergers() market.MergerEvaluation {
	var unlabeled []registry.Transfer
	for _, t := range s.World.Registry.Transfers() {
		if !registry.LabelsMA(t.FromRIR) {
			unlabeled = append(unlabeled, t)
		}
	}
	return market.EvaluateMergerHeuristic(market.DefaultMergerHeuristic(), unlabeled)
}

// ---- §7 combined estimate (S9) ----

// CombinedEstimate compares the three delegation vantage points — BGP
// (usage), RDAP (administration), RPKI (authorization) — against the
// simulation's ground-truth leasing market, and measures how much of the
// market each source and their union recovers. §7 argues future work
// "should combine routing information, RPKI data, as well as the RDAP
// databases"; this experiment quantifies the gain.
type CombinedEstimate struct {
	TruthIPs    uint64 // addresses under active leases at window end
	BGPIPs      uint64
	RDAPIPs     uint64
	RPKIIPs     uint64
	UnionIPs    uint64
	BGPRecall   float64 // |BGP ∩ truth| / |truth|
	RDAPRecall  float64
	RPKIRecall  float64
	UnionRecall float64
}

// Combined runs the three pipelines on the final day and intersects each
// view with the ground truth.
func (s *Study) Combined() (CombinedEstimate, error) {
	day := s.Cfg.RoutingDays - 1
	at := s.Cfg.RoutingStart.AddDate(0, 0, day)

	truth := netblock.NewSet()
	for _, l := range s.World.Leases {
		if l.ActiveOn(day) {
			truth.AddPrefix(l.Child)
		}
	}

	// BGP view.
	inf := delegation.DefaultInference(s.World.OrgSeries)
	bgpSet := netblock.NewSet()
	for _, d := range inf.FromSurvey(at, s.Routing.SurveyAt(day)) {
		bgpSet.AddPrefix(d.Child)
	}

	// RDAP view (reuse the Coverage machinery's building blocks).
	db := s.World.BuildWhoisDB()
	rdapSet := netblock.NewSet()
	for _, in := range db.All() {
		if in.Status != whois.StatusAssignedPA && in.Status != whois.StatusSubAllocatedPA {
			continue
		}
		if in.NumAddrs() < 256 {
			continue
		}
		rdapSet.AddRange(in.First, in.Last)
	}

	// RPKI view.
	rpkiSet := netblock.NewSet()
	for _, d := range s.World.BuildRPKISnapshot(day, 0.8).Delegations() {
		rpkiSet.AddPrefix(d.Child)
	}

	union := bgpSet.Clone()
	union.Union(rdapSet)
	union.Union(rpkiSet)

	est := CombinedEstimate{
		TruthIPs: truth.Size(),
		BGPIPs:   bgpSet.Size(),
		RDAPIPs:  rdapSet.Size(),
		RPKIIPs:  rpkiSet.Size(),
		UnionIPs: union.Size(),
	}
	if est.TruthIPs > 0 {
		t := float64(est.TruthIPs)
		est.BGPRecall = float64(bgpSet.IntersectionSize(truth)) / t
		est.RDAPRecall = float64(rdapSet.IntersectionSize(truth)) / t
		est.RPKIRecall = float64(rpkiSet.IntersectionSize(truth)) / t
		est.UnionRecall = float64(union.IntersectionSize(truth)) / t
	}
	return est, nil
}
