package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ipv4market/internal/registry"
)

// CSV emitters: one per plottable figure, so the series can be fed to any
// external plotting tool to redraw the paper's figures.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Figure1CSV writes the per-(quarter, prefix, region) box-plot summaries.
func (s *Study) Figure1CSV(w io.Writer) error {
	var rows [][]string
	for _, c := range s.Figure1() {
		rows = append(rows, []string{
			c.Quarter.String(), strconv.Itoa(c.Bits), c.Region.String(),
			strconv.Itoa(c.Box.N), f2(c.Box.Min), f2(c.Box.Q1), f2(c.Box.Median),
			f2(c.Box.Q3), f2(c.Box.Max), f2(c.Box.Mean),
		})
	}
	return writeCSV(w, []string{"quarter", "prefix_bits", "region", "n", "min", "q1", "median", "q3", "max", "mean"}, rows)
}

// Figure2CSV writes the quarterly transfer counts per region.
func (s *Study) Figure2CSV(w io.Writer) error {
	counts := s.Figure2()
	var rows [][]string
	for _, rir := range registry.AllRIRs() {
		for _, qc := range counts[rir] {
			rows = append(rows, []string{qc.Quarter.String(), rir.String(), strconv.Itoa(qc.Count)})
		}
	}
	return writeCSV(w, []string{"quarter", "region", "transfers"}, rows)
}

// Figure3CSV writes the inter-RIR flows.
func (s *Study) Figure3CSV(w io.Writer) error {
	var rows [][]string
	for _, f := range s.Figure3() {
		rows = append(rows, []string{
			strconv.Itoa(f.Year), f.From.String(), f.To.String(),
			strconv.Itoa(f.Count), strconv.FormatUint(f.Addresses, 10),
		})
	}
	return writeCSV(w, []string{"year", "from", "to", "transfers", "addresses"}, rows)
}

// Figure4CSV writes the monthly advertised-price samples per provider.
func (s *Study) Figure4CSV(w io.Writer) error {
	var rows [][]string
	for _, p := range s.Figure4() {
		rows = append(rows, []string{
			p.Date.Format("2006-01-02"), p.Provider,
			strconv.FormatBool(p.Bundled), f2(p.Price),
		})
	}
	return writeCSV(w, []string{"date", "provider", "bundled", "price_per_ip_month"}, rows)
}

// Figure5CSV writes the consistency-rule fail-rate grid.
func (s *Study) Figure5CSV(w io.Writer, ms, ns []int) error {
	grid, err := s.Figure5(ms, ns)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range grid {
		rows = append(rows, []string{
			strconv.Itoa(r.N), strconv.Itoa(r.M),
			strconv.Itoa(r.Premises), strconv.Itoa(r.Failures), f4(r.FailRate()),
		})
	}
	return writeCSV(w, []string{"n", "m", "premises", "failures", "fail_rate"}, rows)
}

// Figure6CSV writes the delegation time series.
func (s *Study) Figure6CSV(w io.Writer, sampleEvery int) error {
	res, err := s.Figure6(sampleEvery)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, p := range res.Points {
		rows = append(rows, []string{
			p.Date.Format("2006-01-02"),
			strconv.Itoa(p.BaselineCount), strconv.FormatUint(p.BaselineIPs, 10),
			strconv.Itoa(p.ExtendedCount), strconv.FormatUint(p.ExtendedIPs, 10),
		})
	}
	return writeCSV(w, []string{"date", "baseline_delegations", "baseline_ips", "extended_delegations", "extended_ips"}, rows)
}

// csvTargets enumerates the exportable series for the harness.
func (s *Study) csvTargets(sampleEvery int) []struct {
	Name  string
	Write func(io.Writer) error
} {
	return []struct {
		Name  string
		Write func(io.Writer) error
	}{
		{"fig1_prices.csv", s.Figure1CSV},
		{"fig2_transfers.csv", s.Figure2CSV},
		{"fig3_interrir.csv", s.Figure3CSV},
		{"fig4_leasing.csv", s.Figure4CSV},
		{"fig5_consistency.csv", func(w io.Writer) error {
			return s.Figure5CSV(w, []int{2, 5, 10, 20, 40, 60, 80, 100}, []int{0, 1, 2, 3, 5, 10})
		}},
		{"fig6_delegations.csv", func(w io.Writer) error { return s.Figure6CSV(w, sampleEvery) }},
	}
}

// ExportCSV writes every figure's data series through the provided opener
// (typically os.Create wrapped by the caller). It returns the file names
// written.
func (s *Study) ExportCSV(sampleEvery int, create func(name string) (io.WriteCloser, error)) ([]string, error) {
	var written []string
	for _, target := range s.csvTargets(sampleEvery) {
		f, err := create(target.Name)
		if err != nil {
			return written, err
		}
		if err := target.Write(f); err != nil {
			f.Close()
			return written, fmt.Errorf("%s: %w", target.Name, err)
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, target.Name)
	}
	return written, nil
}
