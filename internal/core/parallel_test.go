package core

import (
	"reflect"
	"testing"
)

// TestFigure6WorkersDeterministic pins the deterministic-merge contract
// of the fanned-out per-date inference: any worker count produces a
// result deeply equal to the serial (1-worker) run. scripts/check.sh
// runs this under -race, which also shakes out sharing between per-day
// workers.
func TestFigure6WorkersDeterministic(t *testing.T) {
	s := testStudy(t)
	const sample = 7
	serial, err := s.Figure6Workers(sample, 1)
	if err != nil {
		t.Fatalf("serial Figure6: %v", err)
	}
	if len(serial.Points) == 0 {
		t.Fatal("serial Figure6 produced no points")
	}
	for _, workers := range []int{2, 8} {
		par, err := s.Figure6Workers(sample, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: Figure6 result differs from serial run", workers)
		}
	}
	// The default accessor must be the same computation.
	def, err := s.Figure6(sample)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if !reflect.DeepEqual(serial, def) {
		t.Error("Figure6 differs from Figure6Workers(sample, 1)")
	}
}

// TestFigure2WorkersMatchesSerial pins the per-RIR parallel aggregation
// against the serial reference for every worker count.
func TestFigure2WorkersMatchesSerial(t *testing.T) {
	s := testStudy(t)
	want := s.Figure2()
	for _, workers := range []int{1, 2, 8} {
		got, err := s.Figure2Workers(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: Figure2Workers differs from Figure2", workers)
		}
	}
}
