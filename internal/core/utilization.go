package core

import (
	"context"
	"fmt"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/parallel"
	"ipv4market/internal/rpki"
	"ipv4market/internal/simulation"
)

// UtilizationPoint compares, for one quarter of the routing window, the
// three address-count vantage points of the utilization-inference
// literature: space the registries handed out (allocated), space visible
// in BGP at the quarter's sample day (routed), and the estimated count
// of addresses actually active inside the routed space.
type UtilizationPoint struct {
	Quarter   string    // "2018Q1"
	Date      time.Time // sampled day (last window day of the quarter)
	Allocated uint64
	Routed    uint64
	Active    uint64
}

// utilizationMinVisibility keeps only origins seen by at least half the
// monitors, discarding the low-visibility hijack and leak noise before
// counting routed space.
const utilizationMinVisibility = 0.5

// Utilization samples the allocated/routed/active address counts on the
// last window day of each quarter the routing window touches.
func (s *Study) Utilization() ([]UtilizationPoint, error) {
	return s.UtilizationWorkers(0)
}

// UtilizationWorkers is Utilization with an explicit worker count (<= 0:
// NumCPU) for the per-quarter survey sampling. Each quarter derives from
// the read-only world independently and results merge in quarter order,
// so the output is identical at any worker count.
func (s *Study) UtilizationWorkers(workers int) ([]UtilizationPoint, error) {
	windowEnd := s.Cfg.RoutingStart.AddDate(0, 0, s.Cfg.RoutingDays)
	var sampleDays []int
	q := quarterStart(s.Cfg.RoutingStart)
	for q.Before(windowEnd) {
		next := q.AddDate(0, 3, 0)
		sample := next.AddDate(0, 0, -1)
		if !sample.Before(windowEnd) {
			sample = windowEnd.AddDate(0, 0, -1)
		}
		day := int(sample.Sub(s.Cfg.RoutingStart).Hours() / 24)
		if day >= 0 {
			sampleDays = append(sampleDays, day)
		}
		q = next
	}
	points, err := parallel.Map(context.Background(), workers, len(sampleDays),
		func(_ context.Context, i int) (UtilizationPoint, error) {
			return s.utilizationAt(sampleDays[i]), nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: utilization sampling: %w", err)
	}
	return points, nil
}

// utilizationAt computes one quarter's point. Pure derivation of the
// read-only world: safe for concurrent calls on distinct days.
func (s *Study) utilizationAt(day int) UtilizationPoint {
	at := s.Cfg.RoutingStart.AddDate(0, 0, day)

	allocated := netblock.NewSet()
	for _, a := range s.World.Registry.Allocations() {
		if a.Date.After(at) {
			continue
		}
		allocated.AddPrefix(a.Prefix)
	}

	survey := s.Routing.SurveyAt(day)
	total := survey.NumMonitors()
	routed := netblock.NewSet()
	for _, po := range survey.Pairs() {
		if po.ASSet {
			continue
		}
		if po.Visibility(total) < utilizationMinVisibility {
			continue
		}
		routed.AddPrefix(po.Prefix)
	}

	// Active addresses: the activity fraction applied per canonical
	// disjoint prefix of the routed set (disjointness prevents leased
	// more-specifics from being counted under their parent again).
	var active uint64
	for _, p := range routed.Prefixes() {
		active += uint64(s.World.ActivityFraction(p)*float64(p.NumAddrs()) + 0.5)
	}

	return UtilizationPoint{
		Quarter:   fmt.Sprintf("%dQ%d", at.Year(), (int(at.Month())-1)/3+1),
		Date:      at,
		Allocated: allocated.Size(),
		Routed:    routed.Size(),
		Active:    active,
	}
}

// quarterStart returns the first day of t's calendar quarter.
func quarterStart(t time.Time) time.Time {
	m := time.Month((int(t.Month())-1)/3*3 + 1)
	return time.Date(t.Year(), m, 1, 0, 0, 0, 0, time.UTC)
}

// RPKIBucket aggregates the ROA-delegation history over one 30-day
// stretch of the routing window.
type RPKIBucket struct {
	Date         time.Time // first day of the bucket
	Days         int       // days covered (the last bucket may be short)
	MeanPresent  float64   // mean delegations visible per day
	MaxPresent   int       // peak single-day visibility
	Churn        int       // presence transitions summed over the bucket
	MeanChurnDay float64   // Churn / Days
}

// RPKISeriesResult is the RPKI observability artifact: the bucketed
// presence/churn series plus consistency-rule fail rates. Churn storms
// configured on the world surface as churn spikes and elevated fail
// rates in the storm's buckets.
type RPKISeriesResult struct {
	Delegations int
	Buckets     []RPKIBucket
	Rules       []rpki.RuleResult
}

// rpkiBucketDays is the aggregation stride of RPKISeries.
const rpkiBucketDays = 30

// RPKISeries builds the RPKI observability series from the same history
// Figure 5 evaluates (80% adoption, default drop probability), without
// gap filling so churn stays visible.
func (s *Study) RPKISeries() (RPKISeriesResult, error) {
	h := s.World.BuildRPKIHistory(0.8, simulation.DefaultROADropProb)
	present := h.PresenceCount()
	churn := h.DailyChurn()

	res := RPKISeriesResult{Delegations: h.NumDelegations()}
	for lo := 0; lo < h.Days(); lo += rpkiBucketDays {
		hi := lo + rpkiBucketDays
		if hi > h.Days() {
			hi = h.Days()
		}
		b := RPKIBucket{Date: h.Start().AddDate(0, 0, lo), Days: hi - lo}
		sum := 0
		for d := lo; d < hi; d++ {
			sum += present[d]
			if present[d] > b.MaxPresent {
				b.MaxPresent = present[d]
			}
			b.Churn += churn[d]
		}
		b.MeanPresent = float64(sum) / float64(b.Days)
		b.MeanChurnDay = float64(b.Churn) / float64(b.Days)
		res.Buckets = append(res.Buckets, b)
	}

	rules, err := h.EvaluateGrid([]int{5, 10, 30}, []int{0, 3})
	if err != nil {
		return RPKISeriesResult{}, fmt.Errorf("core: rpki rule grid: %w", err)
	}
	res.Rules = rules
	return res, nil
}
