package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// This file renders each experiment as the row/series text the paper's
// tables and figures report, for the cmd/ipv4market harness and
// EXPERIMENTS.md.

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// RenderTable1 prints the exhaustion timeline.
func (s *Study) RenderTable1(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "RIR\tDown to last /8\tDepleted\tPhase (2020-06)\tMax assignment\tWaiting list")
	for _, r := range s.Table1() {
		depleted := "-"
		if !r.Depleted.IsZero() {
			depleted = r.Depleted.Format("2006-01-02")
		}
		wl := "-"
		if r.WaitingList > 0 {
			wl = fmt.Sprintf("%d slots", r.WaitingList)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t/%d\t%s\n",
			r.RIR, r.DownToLastBlock.Format("2006-01-02"), depleted, r.Phase2020, r.MaxAssignment, wl)
	}
	return tw.Flush()
}

// RenderFigure1 prints the quarterly price box plots. To keep the output
// readable it aggregates prefix sizes into the paper's columns.
func (s *Study) RenderFigure1(w io.Writer) error {
	cells := s.Figure1()
	tw := newTab(w)
	fmt.Fprintln(tw, "Quarter\tPrefix\tRegion\tN\tQ1\tMedian\tQ3\tMean")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t/%d\t%s\t%d\t$%.2f\t$%.2f\t$%.2f\t$%.2f\n",
			c.Quarter, c.Bits, c.Region, c.Box.N, c.Box.Q1, c.Box.Median, c.Box.Q3, c.Box.Mean)
	}
	return tw.Flush()
}

// RenderFigure2 prints quarterly transfer counts per region.
func (s *Study) RenderFigure2(w io.Writer) error {
	counts := s.Figure2()
	// Collect the union of quarters.
	qset := map[stats.Quarter]bool{}
	for _, series := range counts {
		for _, qc := range series {
			qset[qc.Quarter] = true
		}
	}
	qs := make([]stats.Quarter, 0, len(qset))
	for q := range qset {
		qs = append(qs, q)
	}
	stats.SortQuarters(qs)
	byRIR := map[registry.RIR]map[stats.Quarter]int{}
	for rir, series := range counts {
		m := map[stats.Quarter]int{}
		for _, qc := range series {
			m[qc.Quarter] = qc.Count
		}
		byRIR[rir] = m
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Quarter\tAFRINIC\tAPNIC\tARIN\tLACNIC\tRIPE NCC")
	for _, q := range qs {
		fmt.Fprintf(tw, "%s", q)
		for _, rir := range registry.AllRIRs() {
			fmt.Fprintf(tw, "\t%d", byRIR[rir][q])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderFigure3 prints the inter-RIR transfer flows.
func (s *Study) RenderFigure3(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Year\tFrom\tTo\tTransfers\tAddresses")
	for _, f := range s.Figure3() {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\n", f.Year, f.From, f.To, f.Count, f.Addresses)
	}
	return tw.Flush()
}

// RenderFigure4 prints the advertised leasing prices at the window's
// first and last observation plus any price changes.
func (s *Study) RenderFigure4(w io.Writer) error {
	points := s.Figure4()
	// Group by provider; show first and last price.
	type span struct {
		bundled     bool
		first, last float64
	}
	spans := map[string]*span{}
	var order []string
	for _, p := range points {
		sp := spans[p.Provider]
		if sp == nil {
			sp = &span{bundled: p.Bundled, first: p.Price}
			spans[p.Provider] = sp
			order = append(order, p.Provider)
		}
		sp.last = p.Price
	}
	sort.Strings(order)
	tw := newTab(w)
	fmt.Fprintln(tw, "Provider\tModel\tFirst obs. $/IP/mo\tFinal $/IP/mo")
	for _, name := range order {
		sp := spans[name]
		model := "pure leasing"
		if sp.bundled {
			model = "bundled hosting"
		}
		fmt.Fprintf(tw, "%s\t%s\t$%.2f\t$%.2f\n", name, model, sp.first, sp.last)
	}
	return tw.Flush()
}

// RenderFigure5 prints the consistency-rule fail-rate grid.
func (s *Study) RenderFigure5(w io.Writer, ms, ns []int) error {
	grid, err := s.Figure5(ms, ns)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "N\tM\tPremises\tFailures\tFail rate")
	for _, r := range grid {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\n", r.N, r.M, r.Premises, r.Failures, r.FailRate())
	}
	return tw.Flush()
}

// RenderFigure6 prints the delegation time series and the summary stats.
func (s *Study) RenderFigure6(w io.Writer, sampleEvery int) error {
	return s.RenderFigure6Workers(w, sampleEvery, 0)
}

// RenderFigure6Workers is RenderFigure6 with an explicit worker count for
// the per-date inference fan-out (<= 0: NumCPU). Output is identical at
// any worker count.
func (s *Study) RenderFigure6Workers(w io.Writer, sampleEvery, workers int) error {
	res, err := s.Figure6Workers(sampleEvery, workers)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Date\tBaseline #deleg\tBaseline IPs\tExtended #deleg\tExtended IPs")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n",
			p.Date.Format("2006-01-02"), p.BaselineCount, p.BaselineIPs, p.ExtendedCount, p.ExtendedIPs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nextended delegation growth over window: %.2fx (paper: ~1.07x)\n", res.GrowthExtended)
	fmt.Fprintf(w, "/24 share: %.1f%% -> %.1f%% (paper: ~66%% -> ~72%%)\n", 100*res.Share24First, 100*res.Share24Last)
	fmt.Fprintf(w, "/20 share: %.1f%% -> %.1f%% (paper: ~7%% -> ~3%%)\n", 100*res.Share20First, 100*res.Share20Last)
	return nil
}

// RenderCoverage prints the §4 BGP-vs-RDAP comparison.
func (s *Study) RenderCoverage(w io.Writer) error {
	res, err := s.Coverage()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "RDAP delegations: %d (%d IPs); queries: %d, skipped < /24: %d, intra-org removed: %d\n",
		res.RDAPDelegations, res.RDAPIPs, res.RDAPQueries, res.RDAPSkippedSmall, res.RDAPIntraOrg)
	fmt.Fprintf(w, "BGP delegations:  %d (%d IPs)\n", res.BGPDelegations, res.BGPIPs)
	fmt.Fprintf(w, "BGP covers %.2f%% of RDAP-delegated IPs (paper: ~1.85%%)\n", 100*res.BGPCoverOfRDAP)
	fmt.Fprintf(w, "RDAP covers %.1f%% of BGP-delegated IPs (paper: ~65.7%%)\n", 100*res.RDAPCoverOfBGP)
	return nil
}

// RenderCensus prints the §4 WHOIS input-space statistics.
func (s *Study) RenderCensus(w io.Writer) error {
	c := s.Census()
	fmt.Fprintf(w, "inetnum objects: %d\n", c.Total)
	fmt.Fprintf(w, "SUB-ALLOCATED PA: %d (paper: ~4.5k)\n", c.SubAllocatedBlocks)
	fmt.Fprintf(w, "ASSIGNED PA: %d, of which < /24: %d (%.1f%%; paper: 91.4%%)\n",
		c.ByStatus["ASSIGNED PA"], c.AssignedPASub24, 100*c.FracAssignedSub24)
	return nil
}

// RenderHeadline prints the §3 summary statistics.
func (s *Study) RenderHeadline(w io.Writer) error {
	h, err := s.Headline()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "priced transactions: %d (paper: 2.9k)\n", h.PricedRecords)
	fmt.Fprintf(w, "mean 2020 price: $%.2f per address, 95%% CI [$%.2f, $%.2f] (paper: ~$22.50 \"with little variance\")\n",
		h.MeanPrice2020, h.MeanPriceCI.Lo, h.MeanPriceCI.Hi)
	fmt.Fprintf(w, "growth since 2016: %.2fx (paper: ~2x)\n", h.GrowthFactor)
	fmt.Fprintf(w, "regional difference: p = %.3f -> significant: %v (paper: not significant)\n",
		h.RegionTest.PValue, h.RegionDiffers)
	fmt.Fprintf(w, "small-block (/24,/23) premium: %.2fx\n", h.SizePremium)
	if h.Consolidated {
		fmt.Fprintf(w, "consolidation since %s at $%.2f (paper: Spring 2019)\n",
			h.Consolidation.Since, h.Consolidation.MedianEnd)
	} else {
		fmt.Fprintln(w, "no consolidation phase detected")
	}
	return nil
}

// RenderAmortization prints the §6 buy-vs-lease grid.
func (s *Study) RenderAmortization(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Lease $/IP/mo\tAmortization (months)\tAmortization (years)")
	for _, row := range s.AmortizationTable() {
		if !row.Amortizes || math.IsInf(row.Months, 1) {
			fmt.Fprintf(tw, "$%.2f\tnever\tnever\n", row.LeasePerAddrMonth)
			continue
		}
		fmt.Fprintf(tw, "$%.2f\t%.0f\t%.1f\n", row.LeasePerAddrMonth, row.Months, row.Years)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\npaper: amortization ranges from ~10 months to ~36 years; brokers report 2-3 years typical")
	return nil
}

// RenderWaitingLists prints the §2 waiting-list regimes.
func (s *Study) RenderWaitingLists(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "RIR\tRequests\tFulfilled\tPending\tMax wait\tMean wait\tPool left")
	for _, o := range s.WaitingLists() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d days\t%.0f days\t%d addrs\n",
			o.Scenario.RIR, o.Requests, o.Fulfilled, o.Pending, o.MaxWaitDays, o.MeanWait, o.PoolLeft)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\npaper: ARIN waits up to 130+ days; RIPE cleared its list from recovered space, ~340k addresses banked")
	return nil
}

// RenderReputation prints the §2 reputation-ecosystem statistics.
func (s *Study) RenderReputation(w io.Writer) error {
	r := s.Reputation()
	fmt.Fprintf(w, "blacklist listings: %d\n", r.Listings)
	fmt.Fprintf(w, "leased blocks at window end: %d listed, %d tainted, %d clean\n",
		r.LeasesListed, r.LeasesTainted, r.LeasesClean)
	fmt.Fprintf(w, "provider blocks with abused children: %d; shielded by WHOIS registration: %d (%.0f%%)\n",
		r.ParentsAtRisk, r.ParentsShielded, shieldPct(r))
	fmt.Fprintf(w, "mean buyer price factor across leased blocks: %.2f (clean = 1.00)\n", r.MeanPriceFactor)
	fmt.Fprintln(w, "paper (§2): tainted blocks are hard to clean; providers install registry records to protect their remaining space")
	return nil
}

func shieldPct(r ReputationStats) float64 {
	if r.ParentsAtRisk == 0 {
		return 0
	}
	return 100 * float64(r.ParentsShielded) / float64(r.ParentsAtRisk)
}

// RenderMergers prints the merger-heuristic evaluation.
func (s *Study) RenderMergers(w io.Writer) error {
	ev := s.Mergers()
	fmt.Fprintf(w, "unlabeled-region transfers (APNIC+LACNIC): %d, of which true M&A: %d\n", ev.Transfers, ev.TrueMergers)
	fmt.Fprintf(w, "heuristic flags: %d; true positives: %d\n", ev.Flagged, ev.TruePositives)
	fmt.Fprintf(w, "precision: %.2f, recall: %.2f\n", ev.Precision, ev.Recall)
	fmt.Fprintln(w, "paper (§3): declined the heuristic for lack of evaluation — the simulator's ground truth provides one")
	return nil
}

// RenderCombined prints the three-source market estimate.
func (s *Study) RenderCombined(w io.Writer) error {
	est, err := s.Combined()
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Source\tDelegated IPs\tRecall of true market")
	fmt.Fprintf(tw, "BGP (usage)\t%d\t%.1f%%\n", est.BGPIPs, 100*est.BGPRecall)
	fmt.Fprintf(tw, "RDAP (administration)\t%d\t%.1f%%\n", est.RDAPIPs, 100*est.RDAPRecall)
	fmt.Fprintf(tw, "RPKI (authorization)\t%d\t%.1f%%\n", est.RPKIIPs, 100*est.RPKIRecall)
	fmt.Fprintf(tw, "union\t%d\t%.1f%%\n", est.UnionIPs, 100*est.UnionRecall)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nground-truth leased addresses: %d\n", est.TruthIPs)
	fmt.Fprintln(w, "paper (§7): no single source captures the leasing market; combining them is essential")
	return nil
}
