package core

import (
	"bytes"
	"sync"
	"testing"
)

// TestStudyReadOnly enforces the Study contract: after NewStudy, every
// accessor is a pure derivation — no shared mutable state, no hidden
// lazy initialization, no draws from a shared RNG stream. The test runs
// the full accessor surface from many goroutines at once; the race
// detector (scripts/check.sh runs the suite with -race) turns any
// violation into a failure.
func TestStudyReadOnly(t *testing.T) {
	s := testStudy(t)
	// Take the pre-concurrency baselines single-threaded.
	wantTable1 := len(s.Table1())
	wantCells := len(s.Figure1())

	accessors := []func(){
		func() { s.Table1() },
		func() { s.Figure1() },
		func() { s.Figure2() },
		func() { s.Figure3() },
		func() { s.Figure4() },
		func() {
			if _, err := s.Headline(); err != nil {
				t.Error(err)
			}
		},
		func() { s.Census() },
		func() { s.World.BuildWhoisDB() },
		func() { s.Routing.SurveyAt(s.Cfg.RoutingDays - 1) },
		func() { s.AmortizationTable() },
		func() { s.Mergers() },
	}

	var wg sync.WaitGroup
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for _, fn := range accessors {
			wg.Add(1)
			go func(fn func()) { // coordinated: wg.Done below, wg.Wait at end
				defer wg.Done()
				fn()
			}(fn)
		}
	}
	wg.Wait()

	// The concurrent pass must not have perturbed later results.
	if got := len(s.Table1()); got != wantTable1 {
		t.Errorf("Table1 rows after concurrent access = %d, want %d", got, wantTable1)
	}
	if got := len(s.Figure1()); got != wantCells {
		t.Errorf("Figure1 cells after concurrent access = %d, want %d", got, wantCells)
	}
}

// TestBuildWhoisDBDeterministic pins the repeatability half of the
// contract: BuildWhoisDB draws only from its own seed-derived RNG, so
// repeated calls on one world — even interleaved with other accessors —
// produce byte-identical databases.
func TestBuildWhoisDBDeterministic(t *testing.T) {
	s := testStudy(t)
	dump := func() []byte {
		var buf bytes.Buffer
		if _, err := s.World.BuildWhoisDB().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := dump()
	s.Figure1() // interleave unrelated pipeline work
	s.Table1()
	second := dump()
	if !bytes.Equal(first, second) {
		t.Fatalf("BuildWhoisDB not deterministic: dumps differ (%d vs %d bytes)", len(first), len(second))
	}
	if len(first) == 0 {
		t.Fatal("BuildWhoisDB dump empty")
	}
}
