package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupAllSucceed(t *testing.T) {
	g, _ := NewGroup(context.Background())
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		g.Go(func() error {
			sum.Add(int64(i))
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d, want 55", sum.Load())
	}
}

func TestGroupFirstErrorWinsAndCancels(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("sibling was not canceled")
		}
	})
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if ctx.Err() == nil {
		t.Fatal("group context not canceled after Wait")
	}
}

func TestGroupRecoversPanic(t *testing.T) {
	g, _ := NewGroup(context.Background())
	g.Go(func() error { panic("kaboom") })
	err := g.Wait()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Wait = %v, want task panic error", err)
	}
}

func TestGroupLimitBoundsConcurrency(t *testing.T) {
	g, _ := NewGroup(context.Background())
	g.SetLimit(3)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent tasks, limit 3", p)
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		n := 100
		seen := make([]atomic.Int64, n)
		err := ForEach(context.Background(), w, n, func(_ context.Context, i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, seen[i].Load())
			}
		}
	}
}

func TestForEachStopsAfterError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c := calls.Load(); c == 1000 {
		t.Fatal("all 1000 indexes ran despite an early error")
	}
}

func TestForEachSerialRespectsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 1, 10, func(context.Context, int) error {
		t.Fatal("fn ran under a canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package's core contract:
// results land by index, so any worker count yields the same slice.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	n := 200
	want, err := Map(context.Background(), 1, n, func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("item-%03d", i*i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, err := Map(context.Background(), w, n, func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("item-%03d", i*i), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 4, 50, func(_ context.Context, i int) (int, error) {
		if i == 17 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if out != nil {
		t.Fatal("Map returned results alongside an error")
	}
}

func TestWorkersNormalization(t *testing.T) {
	cases := []struct{ req, items, min, max int }{
		{0, 100, 1, 1 << 20}, // NumCPU, whatever it is
		{8, 3, 3, 3},         // capped at item count
		{-5, 2, 1, 2},
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		got := workers(c.req, c.items)
		if got < c.min || got > c.max {
			t.Errorf("workers(%d, %d) = %d, want in [%d, %d]", c.req, c.items, got, c.min, c.max)
		}
	}
}
