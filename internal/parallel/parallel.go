package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// A Group supervises a set of goroutines working on subtasks of a common
// task. The zero value is unusable; construct with NewGroup.
//
// Unlike a bare WaitGroup, a Group propagates failure: the first task to
// return a non-nil error (or panic) cancels the group's context, and
// Wait returns that first error after every task has finished. Tasks
// should watch the context and return early when it is done.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc

	wg  sync.WaitGroup
	sem chan struct{} // nil: no concurrency limit

	errOnce sync.Once
	err     error
}

// NewGroup returns a Group and the derived context its tasks should
// honor. The context is canceled when a task fails or when Wait returns,
// whichever comes first.
func NewGroup(ctx context.Context) (*Group, context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	return &Group{ctx: gctx, cancel: cancel}, gctx
}

// SetLimit caps the number of tasks running concurrently at n (n <= 0
// means NumCPU). It must be called before the first Go.
func (g *Group) SetLimit(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	g.sem = make(chan struct{}, n)
}

// Go launches fn as a supervised task. If a concurrency limit is set, Go
// blocks until a worker slot frees up — backpressure, not unbounded
// queueing. A panicking fn is recovered into an error carrying the panic
// value, so one broken stage fails the group instead of the process.
func (g *Group) Go(fn func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if err := g.protect(fn); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// protect runs fn, converting a panic into an error.
func (g *Group) protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			err = fmt.Errorf("parallel: task panic: %v\n%s", r, buf)
		}
	}()
	return fn()
}

// Wait blocks until every task launched with Go has returned, cancels
// the group's context, and returns the first error (or recovered panic)
// observed.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// Err returns the group's first error without waiting. It is safe to
// call only after Wait has returned (before that it races with tasks).
func (g *Group) Err() error { return g.err }

// workers normalizes a worker-count knob: <= 0 means NumCPU, and the
// count never exceeds the number of items (spawning idle workers is
// pure overhead).
func workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) across at most the given
// number of workers. Indexes are dispatched in order; after the first
// failure the remaining indexes are skipped (workers drain), the context
// is canceled, and the first error is returned. With workers <= 1 (or
// n <= 1) it degenerates to a plain serial loop.
func ForEach(ctx context.Context, workerCount, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := workers(workerCount, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	g, gctx := NewGroup(ctx)
	idx := make(chan int)
	for k := 0; k < w; k++ {
		g.Go(func() error {
			for i := range idx {
				if err := gctx.Err(); err != nil {
					return err
				}
				if err := fn(gctx, i); err != nil {
					return err
				}
			}
			return nil
		})
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-gctx.Done():
			break feed // a worker failed; stop dispatching
		}
	}
	close(idx)
	return g.Wait()
}

// Map runs fn for every index in [0, n) across at most the given number
// of workers and collects the results by index: out[i] is fn's result
// for i, whatever order the workers finished in. This is the package's
// determinism primitive — merging out in index order is equivalent to a
// serial loop. On error the first failure is returned and the results
// are discarded.
func Map[T any](ctx context.Context, workerCount, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, workerCount, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
