// Package parallel provides the repo's only concurrency-orchestration
// primitives: a supervised Group in the style of x/sync/errgroup (the
// module takes no dependencies, so it is reimplemented here on the
// standard library) and index-deterministic fan-out helpers (ForEach,
// Map) built on it.
//
// The package exists to keep two invariants that ad-hoc goroutines break
// easily:
//
//   - Supervision. Every goroutine launched through a Group is tracked:
//     Wait blocks until all of them return, the first error cancels the
//     group's context so siblings can stop early, and a panic inside a
//     task is recovered into an error instead of killing the process —
//     a build failure in a background snapshot rebuild must surface as a
//     diagnosable error, never as a crash. The ipv4lint nakedgo analyzer
//     recognizes Group-launched work as coordinated for the same reason.
//
//   - Determinism. ForEach and Map dispatch work by index and collect
//     results by index, never by completion order. Callers that merge
//     Map results in index order therefore produce byte-identical output
//     regardless of worker count or scheduling — the contract the
//     parallel snapshot build (internal/serve) and the per-date
//     delegation inference (internal/core) are tested against.
//
// Worker counts of 0 (or below) mean runtime.NumCPU(); a count of 1
// degenerates to a serial loop with no goroutines at all, which keeps
// the 1-worker reference path trivially comparable to the fanned-out
// one.
package parallel
