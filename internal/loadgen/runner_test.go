package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testMix is a two-endpoint mix against the paths testServer mounts.
func testMix(t *testing.T) *Mix {
	t.Helper()
	m, err := NewMix(
		Endpoint{Name: "ok", Route: "GET /ok", Weight: 3, Path: func(*RNG) string { return "/ok" }, Validate: ValidateJSON},
		Endpoint{Name: "also_ok", Route: "GET /also", Weight: 1, Path: func(*RNG) string { return "/also" }, Validate: ValidateJSON},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	json := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}
	mux.HandleFunc("/ok", json)
	mux.HandleFunc("/also", json)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestClosedLoopAccounting drives a fixed request count and checks the
// books: warmup excluded, per-endpoint requests summing to the measured
// total, zero errors, zero in-flight after Run.
func TestClosedLoopAccounting(t *testing.T) {
	ts := testServer(t)
	r, err := NewRunner(Spec{
		BaseURL:        ts.URL,
		Mix:            testMix(t),
		Seed:           42,
		Concurrency:    4,
		WarmupRequests: 20,
		Requests:       200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmup != 20 {
		t.Errorf("warmup = %d, want 20", res.Warmup)
	}
	if res.Completed != 200 {
		t.Errorf("completed = %d, want 200", res.Completed)
	}
	if res.Issued != 220 {
		t.Errorf("issued = %d, want 220", res.Issued)
	}
	if got := r.InFlight(); got != 0 {
		t.Errorf("in-flight after Run = %d, want 0", got)
	}
	var sum int64
	for _, es := range res.Endpoints {
		sum += es.Requests
		if es.Errors() != 0 {
			t.Errorf("endpoint %s: %d errors", es.Name, es.Errors())
		}
		if es.Hist.Count() != es.Requests {
			t.Errorf("endpoint %s: %d samples for %d requests", es.Name, es.Hist.Count(), es.Requests)
		}
	}
	if sum != res.Completed {
		t.Errorf("endpoint requests sum to %d, completed %d", sum, res.Completed)
	}
	if res.Aggregate.Hist.Count() != res.Completed {
		t.Errorf("aggregate samples %d, completed %d", res.Aggregate.Hist.Count(), res.Completed)
	}
	if res.ErrorFraction() > 0 || res.BudgetViolated(0) {
		t.Errorf("unexpected errors: fraction %v", res.ErrorFraction())
	}
	// 3:1 weights over 200 requests: the split must lean heavily toward
	// "ok" without requiring an exact ratio.
	if ok := res.Endpoint("ok"); ok == nil || ok.Requests < 100 {
		t.Errorf("weighted mix: 'ok' got %+v, want the majority of 200", ok)
	}
}

// TestClosedLoopCancellation cancels mid-run against a slow server and
// checks the in-flight accounting drains to zero: Run joins all
// workers, every issued request is accounted, and the partial result is
// still coherent.
func TestClosedLoopCancellation(t *testing.T) {
	release := make(chan struct{})
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{}`)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	m, err := NewMix(Endpoint{Name: "slow", Weight: 1, Path: func(*RNG) string { return "/" }, Validate: ValidateJSON})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Spec{
		BaseURL:     ts.URL,
		Mix:         m,
		Seed:        1,
		Concurrency: 8,
		Requests:    10_000, // far more than can complete before cancel
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() { // coordinated: closes done, joined below
		defer close(done)
		res, runErr = r.Run(ctx)
	}()

	// Wait until the workers are actually blocked in requests, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := r.InFlight(); got != 8 {
		t.Errorf("in-flight while saturated = %d, want 8", got)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	if runErr == nil {
		t.Error("cancelled Run returned nil error")
	}
	if res == nil {
		t.Fatal("cancelled Run returned nil result")
	}
	if got := r.InFlight(); got != 0 {
		t.Errorf("in-flight after cancelled Run = %d, want 0", got)
	}
	// Every issued request is accounted exactly once: as a warmup
	// completion or in an endpoint's Requests (cancelled transport
	// attempts land in TransportErrors, still inside Requests).
	var accounted int64
	for _, es := range res.Endpoints {
		accounted += es.Requests
	}
	if accounted+res.Warmup != res.Issued {
		t.Errorf("accounting leak: issued %d, accounted %d (+%d warmup)", res.Issued, accounted, res.Warmup)
	}
}

// TestRunnerValidation covers spec validation and the error split:
// non-2xx answers count as HTTP errors, bad bodies as validation
// failures, both inside the error budget.
func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Spec{Mix: testMix(t), Requests: 1}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := NewRunner(Spec{BaseURL: "http://x", Requests: 1}); err == nil {
		t.Error("missing Mix accepted")
	}
	if _, err := NewRunner(Spec{BaseURL: "http://x", Mix: testMix(t)}); err == nil {
		t.Error("unbounded spec accepted")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/missing", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	mux.HandleFunc("/garbage", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, "not json at all")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	m, err := NewMix(
		Endpoint{Name: "missing", Weight: 1, Path: func(*RNG) string { return "/missing" }, Validate: ValidateJSON},
		Endpoint{Name: "garbage", Weight: 1, Path: func(*RNG) string { return "/garbage" }, Validate: ValidateJSON},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Spec{BaseURL: ts.URL, Mix: m, Seed: 3, Concurrency: 2, Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	missing, garbage := res.Endpoint("missing"), res.Endpoint("garbage")
	if missing == nil || missing.HTTPErrors != missing.Requests {
		t.Errorf("missing: %+v, want every request an HTTP error", missing)
	}
	if garbage == nil || garbage.ValidationFailures != garbage.Requests {
		t.Errorf("garbage: %+v, want every request a validation failure", garbage)
	}
	if !res.BudgetViolated(0.5) {
		t.Error("100% errors does not violate a 50% budget?")
	}
	if got, want := res.Aggregate.Errors(), res.Completed; got != want {
		t.Errorf("aggregate errors %d, want %d", got, want)
	}
}

// TestOpenLoopSheds runs open-loop against a stalled server with a tiny
// in-flight cap and checks arrivals beyond the cap are shed (counted,
// not blocked) — the open-loop model must never let the server pace the
// generator.
func TestOpenLoopSheds(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	m, err := NewMix(Endpoint{Name: "stall", Weight: 1, Path: func(*RNG) string { return "/" }})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Spec{
		BaseURL:     ts.URL,
		Mix:         m,
		Seed:        5,
		Mode:        OpenLoop,
		RatePerSec:  2000,
		MaxInFlight: 4,
		Duration:    300 * time.Millisecond,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("no arrivals shed at a 4-deep cap against a stalled server")
	}
	if got := r.InFlight(); got != 0 {
		t.Errorf("in-flight after Run = %d, want 0", got)
	}
	if res.Mode != "open" {
		t.Errorf("mode %q, want open", res.Mode)
	}
}

// TestMixDeterminism pins the seeded request mix: same seed, same
// per-worker path sequence.
func TestMixDeterminism(t *testing.T) {
	mix := DefaultMix()
	draw := func(seed uint64, n int) []string {
		rng := Derive(seed, 0)
		out := make([]string, n)
		for i := range out {
			ep := mix.Pick(rng)
			out[i] = ep.Name + " " + ep.Path(rng)
		}
		return out
	}
	a, b := draw(42, 500), draw(42, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identically seeded draws: %q vs %q", i, a[i], b[i])
		}
	}
	c := draw(43, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical request sequences")
	}
}

// TestDefaultMix sanity-checks the static table: weights sum to 100 and
// every generated path parses as path+query.
func TestDefaultMix(t *testing.T) {
	mix := DefaultMix()
	total := 0
	rng := NewRNG(7)
	for _, e := range mix.Endpoints() {
		total += e.Weight
		for i := 0; i < 50; i++ {
			p := e.Path(rng)
			if p == "" || p[0] != '/' {
				t.Errorf("endpoint %s: path %q does not start with /", e.Name, p)
			}
		}
		if e.Route == "" {
			t.Errorf("endpoint %s: no server route label", e.Name)
		}
	}
	if total != 100 {
		t.Errorf("default mix weights sum to %d, want 100", total)
	}
}
