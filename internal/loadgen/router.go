package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"
)

// Backend is one routed-to server and its per-backend accounting.
type Backend struct {
	name string
	url  *url.URL

	healthy   atomic.Bool
	forwarded atomic.Int64
	checks    atomic.Int64
	drains    atomic.Int64 // healthy→unhealthy transitions observed
}

// Name returns the backend's label (its base URL unless named).
func (b *Backend) Name() string { return b.name }

// Forwarded returns how many requests the router sent this backend.
func (b *Backend) Forwarded() int64 { return b.forwarded.Load() }

// Healthy reports the backend's last observed readiness. Backends start
// healthy; only a failed health check drains one.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Router is a round-robin HTTP reverse proxy over a fixed backend set —
// the loopback stand-in for the load balancer in front of a replica
// fleet. Backends that fail their /readyz check are drained (skipped by
// the rotation) until a later check passes; with every backend drained
// the router fails open and rotates over all of them, because serving
// stale data beats serving nothing.
type Router struct {
	backends []*Backend
	next     atomic.Uint64
	proxy    *httputil.ReverseProxy
	client   *http.Client
	errors   atomic.Int64
}

// NewRouter returns a router over the given base URLs (e.g.
// "http://127.0.0.1:34001"). Names default to the URL; use
// NewNamedRouter for friendlier report labels.
func NewRouter(targets []string) (*Router, error) {
	names := make(map[string]string, len(targets))
	for _, t := range targets {
		names[t] = t
	}
	return newRouter(targets, names)
}

// NewNamedRouter is NewRouter with a name per target URL for reports
// ("leader", "follower1", ...). Every target must have a name.
func NewNamedRouter(targets []string, names map[string]string) (*Router, error) {
	return newRouter(targets, names)
}

func newRouter(targets []string, names map[string]string) (*Router, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("loadgen: router needs at least one backend")
	}
	rt := &Router{client: &http.Client{Timeout: 5 * time.Second}}
	for _, t := range targets {
		u, err := url.Parse(t)
		if err != nil {
			return nil, fmt.Errorf("loadgen: router backend %q: %w", t, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("loadgen: router backend %q: want an absolute base URL", t)
		}
		name := names[t]
		if name == "" {
			name = t
		}
		b := &Backend{name: name, url: u}
		b.healthy.Store(true)
		rt.backends = append(rt.backends, b)
	}
	rt.proxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			b := rt.pick()
			b.forwarded.Add(1)
			// Backend URLs are bare scheme://host:port bases, so SetURL
			// keeps the inbound path and query intact.
			pr.SetURL(b.url)
		},
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
			rt.errors.Add(1)
			http.Error(w, fmt.Sprintf(`{"error":"router: %v"}`, err), http.StatusBadGateway)
		},
	}
	return rt, nil
}

// ServeHTTP proxies one request to the next healthy backend.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.proxy.ServeHTTP(w, r)
}

// pick returns the next backend in rotation, skipping drained ones.
// When everything is drained it fails open and ignores health.
func (rt *Router) pick() *Backend {
	n := len(rt.backends)
	start := rt.next.Add(1)
	for i := 0; i < n; i++ {
		b := rt.backends[(int(start)+i)%n]
		if b.healthy.Load() {
			return b
		}
	}
	return rt.backends[int(start)%n]
}

// Backends returns the router's backends in declaration order.
func (rt *Router) Backends() []*Backend { return rt.backends }

// ProxyErrors returns how many requests failed at the proxy layer
// (backend unreachable, connection reset mid-response).
func (rt *Router) ProxyErrors() int64 { return rt.errors.Load() }

// CheckHealth probes every backend's /readyz once: 200 keeps (or
// restores) the backend in rotation, anything else — including a
// follower answering 503 because its replication lag exceeds -max-lag —
// drains it. Returns the number of healthy backends.
func (rt *Router) CheckHealth(ctx context.Context) int {
	healthy := 0
	for _, b := range rt.backends {
		ok := rt.probe(ctx, b)
		was := b.healthy.Swap(ok)
		b.checks.Add(1)
		if was && !ok {
			b.drains.Add(1)
		}
		if ok {
			healthy++
		}
	}
	return healthy
}

// HealthLoop runs CheckHealth every interval until ctx is cancelled.
// Run it on its own goroutine alongside the router's listener.
func (rt *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.CheckHealth(ctx)
		}
	}
}

// probe is one backend's readiness check.
func (rt *Router) probe(ctx context.Context, b *Backend) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url.String()+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
