package loadgen

// RNG is a splitmix64 stream: tiny, fast, and a pure function of its
// seed, which is what the deterministic request mix needs. Each load
// worker gets its own derived stream (Derive), so per-worker request
// sequences are reproducible regardless of goroutine interleaving.
// math/rand would work too, but a 16-line generator keeps the workload
// spec free of shared-state questions entirely. Not safe for concurrent
// use; never share one stream across workers.
type RNG struct{ state uint64 }

// NewRNG returns the stream for seed. Equal seeds yield equal streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Derive returns an independent child stream for the given index,
// deterministically: Derive(seed, i) is stable across runs and distinct
// streams do not overlap in practice (splitmix64 is a bijection over
// its seed space).
func Derive(seed, index uint64) *RNG {
	// Decorrelate the child seed from the parent's sequence by running
	// the index through one splitmix round keyed by the parent seed.
	r := NewRNG(seed + (index+1)*0x9e3779b97f4a7c15)
	return NewRNG(r.Uint64())
}

// Uint64 returns the next value of the stream (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Intn returns a value in [0,n). n must be positive; n <= 0 returns 0
// so a buggy weight table degrades to a constant choice instead of a
// panic inside a load worker.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}
