package loadgen

import (
	"math"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the reference implementation: the ceil(q*n)-th
// smallest observation.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// sampleMS draws n latencies (in milliseconds) from a seeded stream,
// shaped roughly like serving latency: a log-uniform body from ~10µs to
// ~1s with a heavy tail.
func sampleMS(t *testing.T, seed uint64, n int) []float64 {
	t.Helper()
	rng := NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		// log-uniform over [0.01, 1000] ms
		u := float64(rng.Uint64()%1_000_000) / 1_000_000
		out[i] = 0.01 * math.Pow(10, 5*u)
	}
	return out
}

// TestHistogramQuantileMatchesExact pins the streamed estimator against
// the exact quantile on seeded distributions: the estimate must land
// within one bucket's relative growth (plus exact clamping at the
// extremes).
func TestHistogramQuantileMatchesExact(t *testing.T) {
	for _, seed := range []uint64{1, 42, 9001} {
		samples := sampleMS(t, seed, 20_000)
		h := NewHistogram()
		for _, ms := range samples {
			h.Record(time.Duration(ms * float64(time.Millisecond)))
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)

		if h.Count() != int64(len(samples)) {
			t.Fatalf("seed %d: count %d, want %d", seed, h.Count(), len(samples))
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
			got := h.Quantile(q)
			want := exactQuantile(sorted, q)
			// One bucket of relative error: bounds grow by histGrowth, and
			// recording quantizes a duration to ~1ns, so allow growth + a
			// hair.
			lo, hi := want/histGrowth-0.001, want*histGrowth+0.001
			if got < lo || got > hi {
				t.Errorf("seed %d q=%v: streamed %.6f, exact %.6f (allowed [%.6f, %.6f])", seed, q, got, want, lo, hi)
			}
		}
		// The extremes are exact, not bucket-approximated.
		if got, want := h.Quantile(0), sorted[0]; math.Abs(got-want) > 0.001 {
			t.Errorf("seed %d: Quantile(0) = %v, want exact min %v", seed, got, want)
		}
		if got, want := h.Quantile(1), sorted[len(sorted)-1]; math.Abs(got-want) > 0.001 {
			t.Errorf("seed %d: Quantile(1) = %v, want exact max %v", seed, got, want)
		}
	}
}

// TestHistogramMergeAssociativity pins the merge contract: any grouping
// of merges yields identical counts and quantiles, and merging equals
// recording everything into one histogram.
func TestHistogramMergeAssociativity(t *testing.T) {
	parts := [][]float64{
		sampleMS(t, 7, 5000),
		sampleMS(t, 8, 3000),
		sampleMS(t, 9, 7000),
	}
	record := func(chunks ...[]float64) *Histogram {
		h := NewHistogram()
		for _, chunk := range chunks {
			for _, ms := range chunk {
				h.Record(time.Duration(ms * float64(time.Millisecond)))
			}
		}
		return h
	}
	hists := func() []*Histogram {
		out := make([]*Histogram, len(parts))
		for i, p := range parts {
			out[i] = record(p)
		}
		return out
	}

	// (A⊕B)⊕C
	left := hists()
	left[0].Merge(left[1])
	left[0].Merge(left[2])
	// A⊕(B⊕C)
	right := hists()
	right[1].Merge(right[2])
	right[0].Merge(right[1])
	// everything recorded directly
	direct := record(parts...)

	for name, h := range map[string]*Histogram{"right-assoc": right[0], "direct": direct} {
		if got, want := h.Counts(), left[0].Counts(); len(got) != len(want) {
			t.Fatalf("%s: bucket count mismatch", name)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: bucket %d: %d, want %d", name, i, got[i], want[i])
				}
			}
		}
		if h.Count() != left[0].Count() {
			t.Errorf("%s: count %d, want %d", name, h.Count(), left[0].Count())
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got, want := h.Quantile(q), left[0].Quantile(q); math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: Quantile(%v) = %v, want %v", name, q, got, want)
			}
		}
	}
	if got, want := left[0].MaxMS(), direct.MaxMS(); math.Abs(got-want) > 1e-12 {
		t.Errorf("merged max %v, direct max %v", got, want)
	}
	if got, want := left[0].MinMS(), direct.MinMS(); math.Abs(got-want) > 1e-12 {
		t.Errorf("merged min %v, direct min %v", got, want)
	}
}

// TestHistogramEmpty keeps the zero states well-defined.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) > 0 || h.MeanMS() > 0 || h.MaxMS() > 0 {
		t.Errorf("empty histogram is not zero: count=%d p50=%v mean=%v max=%v", h.Count(), h.Quantile(0.5), h.MeanMS(), h.MaxMS())
	}
	h.Merge(NewHistogram()) // merging empties must not disturb anything
	if h.Count() != 0 {
		t.Errorf("merge of empties: count %d", h.Count())
	}
}

// TestQuantileFromBuckets covers the cross-check entry point used
// against /varz exports, including its error cases.
func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 10, 100}
	counts := []int64{50, 30, 15, 5} // 100 samples, 5 in overflow
	p50, err := QuantileFromBuckets(bounds, counts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p50 <= 0 || p50 > 1 {
		t.Errorf("p50 = %v, want in (0, 1] (rank 50 is the last sample of the first bucket)", p50)
	}
	p99, err := QuantileFromBuckets(bounds, counts, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 99 lands in the unbounded overflow bucket; with no upper
	// bound the estimator answers the bucket's lower edge.
	if p99 < 100 {
		t.Errorf("p99 = %v, want >= 100 (rank 99 is in the overflow bucket)", p99)
	}

	if _, err := QuantileFromBuckets(bounds, []int64{1, 2}, 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := QuantileFromBuckets(bounds, []int64{0, 0, 0, 0}, 0.5); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := QuantileFromBuckets(bounds, []int64{1, -1, 1, 1}, 0.5); err == nil {
		t.Error("negative count accepted")
	}
}

// TestBucketBoundsDeterministic pins the layout: ascending, starting at
// the documented first bound, and identical across calls (the merge and
// cross-check contracts both ride on this).
func TestBucketBoundsDeterministic(t *testing.T) {
	a, b := BucketBoundsMS(), BucketBoundsMS()
	if len(a) != histBuckets || len(b) != histBuckets {
		t.Fatalf("bounds length %d/%d, want %d", len(a), len(b), histBuckets)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			t.Fatalf("bounds differ at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("bounds not ascending at %d: %v then %v", i, a[i-1], a[i])
		}
	}
	if math.Abs(a[0]-histFirstBoundMS) > 1e-12 {
		t.Errorf("first bound %v, want %v", a[0], histFirstBoundMS)
	}
}
