package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fleetNode is one fake backend: counts hits, answers /readyz according
// to its ready flag, echoes its own id on /who.
type fleetNode struct {
	id    string
	ready atomic.Bool
	hits  atomic.Int64
	ts    *httptest.Server
}

func newFleetNode(t *testing.T, id string) *fleetNode {
	t.Helper()
	n := &fleetNode{id: id}
	n.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !n.ready.Load() {
			http.Error(w, `{"status":"unready"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/who", func(w http.ResponseWriter, _ *http.Request) {
		n.hits.Add(1)
		fmt.Fprint(w, n.id)
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

// TestRouterRoundRobin checks requests spread evenly over healthy
// backends.
func TestRouterRoundRobin(t *testing.T) {
	a, b, c := newFleetNode(t, "a"), newFleetNode(t, "b"), newFleetNode(t, "c")
	rt, err := NewRouter([]string{a.ts.URL, b.ts.URL, c.ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	const n = 90
	for i := 0; i < n; i++ {
		resp, err := http.Get(front.URL + "/who")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for _, node := range []*fleetNode{a, b, c} {
		if got := node.hits.Load(); got != n/3 {
			t.Errorf("backend %s: %d hits, want %d", node.id, got, n/3)
		}
	}
	var forwarded int64
	for _, be := range rt.Backends() {
		forwarded += be.Forwarded()
	}
	if forwarded != n {
		t.Errorf("router accounted %d forwards, want %d", forwarded, n)
	}
}

// TestRouterDrainsUnready checks the health loop takes a 503-answering
// backend out of rotation and restores it when it recovers — the
// router-side half of the follower -max-lag contract.
func TestRouterDrainsUnready(t *testing.T) {
	a, b := newFleetNode(t, "a"), newFleetNode(t, "b")
	rt, err := NewNamedRouter([]string{a.ts.URL, b.ts.URL},
		map[string]string{a.ts.URL: "a", b.ts.URL: "b"})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	hit := func() {
		resp, err := http.Get(front.URL + "/who")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Drain b and re-check health synchronously (the loop calls the same
	// CheckHealth; driving it directly keeps the test clock-free).
	b.ready.Store(false)
	if healthy := rt.CheckHealth(context.Background()); healthy != 1 {
		t.Fatalf("healthy = %d, want 1", healthy)
	}
	aBefore, bBefore := a.hits.Load(), b.hits.Load()
	for i := 0; i < 20; i++ {
		hit()
	}
	if got := b.hits.Load() - bBefore; got != 0 {
		t.Errorf("drained backend b served %d requests", got)
	}
	if got := a.hits.Load() - aBefore; got != 20 {
		t.Errorf("backend a served %d of 20", got)
	}

	// Recover b: it rejoins the rotation.
	b.ready.Store(true)
	if healthy := rt.CheckHealth(context.Background()); healthy != 2 {
		t.Fatalf("healthy after recovery = %d, want 2", healthy)
	}
	bBefore = b.hits.Load()
	for i := 0; i < 20; i++ {
		hit()
	}
	if got := b.hits.Load() - bBefore; got != 10 {
		t.Errorf("recovered backend b served %d of 20, want 10", got)
	}

	// All backends drained: fail open rather than serve nothing.
	a.ready.Store(false)
	b.ready.Store(false)
	if healthy := rt.CheckHealth(context.Background()); healthy != 0 {
		t.Fatalf("healthy = %d, want 0", healthy)
	}
	total := a.hits.Load() + b.hits.Load()
	hit()
	if a.hits.Load()+b.hits.Load() != total+1 {
		t.Error("fully drained router did not fail open")
	}
}

// TestRouterRejectsBadBackends covers constructor validation.
func TestRouterRejectsBadBackends(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRouter([]string{"not-a-url"}); err == nil {
		t.Error("relative backend URL accepted")
	}
}
