package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchClusterJSONParses keeps the committed BENCH_cluster.json
// well-formed: it must decode through the same ClusterBaseline schema
// cmd/marketbench writes, validate structurally, cover both recorded
// topologies (leader-only and leader+2 followers), and record zero
// error-budget violations — the acceptance bar scripts/bench.sh
// re-records against. scripts/check.sh runs it explicitly alongside the
// other baseline schema tests.
func TestBenchClusterJSONParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_cluster.json"))
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b ClusterBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("BENCH_cluster.json is not valid JSON: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("BENCH_cluster.json is malformed: %v", err)
	}

	have := make(map[string]TopologyReport, len(b.Topologies))
	for _, tp := range b.Topologies {
		have[tp.Name] = tp
	}
	leader, ok := have["leader"]
	if !ok {
		t.Fatal("baseline lacks the leader-only topology")
	}
	if leader.Followers != 0 {
		t.Errorf("leader topology records %d followers, want 0", leader.Followers)
	}
	fleet, ok := have["leader+2"]
	if !ok {
		t.Fatal("baseline lacks the leader+2 topology")
	}
	if fleet.Followers != 2 {
		t.Errorf("leader+2 topology records %d followers, want 2", fleet.Followers)
	}
	if !fleet.Router {
		t.Error("leader+2 topology was not driven through the router")
	}

	for _, tp := range b.Topologies {
		if tp.ErrorBudget.Violated {
			t.Errorf("topology %q: recorded with a violated error budget", tp.Name)
		}
		if len(tp.Server) == 0 {
			t.Errorf("topology %q: no server-side /varz cross-check rows", tp.Name)
		}
		for _, e := range tp.Events {
			if e.Name == "" || e.AtSeconds < 0 {
				t.Errorf("topology %q: malformed event %+v", tp.Name, e)
			}
		}
	}
}
