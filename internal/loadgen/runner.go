package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the runner's load model.
type Mode int

const (
	// ClosedLoop runs Concurrency workers that each issue the next
	// request as soon as the previous one finishes: offered load adapts
	// to the server, which is the right model for capacity questions
	// ("how fast can N clients be served").
	ClosedLoop Mode = iota
	// OpenLoop issues requests at a fixed arrival rate regardless of
	// completions (bounded by MaxInFlight, beyond which arrivals are
	// shed and counted): the right model for latency-under-offered-load
	// questions, because it does not let a slow server throttle its own
	// measurement (coordinated omission).
	OpenLoop
)

// String returns the mode's report label.
func (m Mode) String() string {
	if m == OpenLoop {
		return "open"
	}
	return "closed"
}

// Spec describes one load run. BaseURL, Mix, and a request bound
// (Requests and/or Duration) are required; the rest defaults.
type Spec struct {
	// BaseURL is the target, e.g. "http://127.0.0.1:8090". Paths from
	// the mix are appended verbatim.
	BaseURL string
	// Mix is the weighted endpoint workload.
	Mix *Mix
	// Seed determines the request mix exactly: worker i draws from
	// Derive(Seed, i), so equal seeds yield equal per-worker request
	// sequences.
	Seed uint64
	// Mode selects closed-loop (default) or open-loop load.
	Mode Mode
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int
	// RatePerSec is the open-loop arrival rate (default 100).
	RatePerSec float64
	// MaxInFlight caps open-loop outstanding requests; arrivals beyond
	// it are shed and counted as Dropped (default 4×Concurrency's
	// default, 256). Ignored in closed loop, where Concurrency is the
	// in-flight bound by construction.
	MaxInFlight int
	// WarmupRequests are issued and validated before measurement starts;
	// their latencies never enter the histograms (default 0).
	WarmupRequests int
	// Requests bounds the measured request count. 0 means unbounded —
	// then Duration (or the caller's context) must stop the run.
	Requests int
	// Duration, when positive, stops the run that long after Run starts,
	// whether or not Requests have completed.
	Duration time.Duration
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// Client is the HTTP client (default: a dedicated client with
	// pooling sized to the concurrency).
	Client *http.Client
}

func (s Spec) withDefaults() (Spec, error) {
	if s.BaseURL == "" {
		return s, fmt.Errorf("loadgen: Spec.BaseURL is required")
	}
	if s.Mix == nil {
		return s, fmt.Errorf("loadgen: Spec.Mix is required")
	}
	if s.Requests <= 0 && s.Duration <= 0 {
		return s, fmt.Errorf("loadgen: Spec needs a bound: Requests or Duration")
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.RatePerSec <= 0 {
		s.RatePerSec = 100
	}
	if s.MaxInFlight <= 0 {
		s.MaxInFlight = 256
	}
	if s.Timeout <= 0 {
		s.Timeout = 10 * time.Second
	}
	if s.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        s.Concurrency + s.MaxInFlight,
			MaxIdleConnsPerHost: s.Concurrency + s.MaxInFlight,
		}
		s.Client = &http.Client{Transport: tr}
	}
	return s, nil
}

// EndpointStats aggregates one endpoint's measured outcomes. Errors are
// split by layer: transport (the request never completed), HTTP (a
// completed non-2xx answer), validation (a 2xx answer the endpoint's
// validator rejected). Requests counts completed request attempts,
// including errored ones.
type EndpointStats struct {
	Name               string
	Route              string
	Requests           int64
	TransportErrors    int64
	HTTPErrors         int64
	ValidationFailures int64
	Bytes              int64
	Hist               *Histogram
}

// Errors returns the endpoint's total error count across all layers.
func (e *EndpointStats) Errors() int64 {
	return e.TransportErrors + e.HTTPErrors + e.ValidationFailures
}

// merge folds o into e (same endpoint, different worker).
func (e *EndpointStats) merge(o *EndpointStats) {
	e.Requests += o.Requests
	e.TransportErrors += o.TransportErrors
	e.HTTPErrors += o.HTTPErrors
	e.ValidationFailures += o.ValidationFailures
	e.Bytes += o.Bytes
	e.Hist.Merge(o.Hist)
}

// Result is one load run's outcome. Endpoints are sorted by name;
// Aggregate folds all endpoints together (histograms merge exactly, so
// aggregate percentiles are as good as per-endpoint ones).
type Result struct {
	Mode        string
	Seed        uint64
	Concurrency int

	Issued    int64 // requests started, warmup included
	Warmup    int64 // warmup completions (excluded from stats)
	Completed int64 // measured completions (= Aggregate.Requests)
	Dropped   int64 // open-loop arrivals shed at MaxInFlight

	// MeasuredSeconds is the wall-clock span of the measured phase
	// (first post-warmup issue to last completion); ThroughputRPS is
	// Completed over that span.
	MeasuredSeconds float64
	ThroughputRPS   float64

	Aggregate *EndpointStats
	Endpoints []*EndpointStats
}

// Endpoint returns the named endpoint's stats, nil when absent.
func (r *Result) Endpoint(name string) *EndpointStats {
	for _, e := range r.Endpoints {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// ErrorFraction is total errors over measured completions (0 when no
// requests completed).
func (r *Result) ErrorFraction() float64 {
	if r.Aggregate.Requests == 0 {
		return 0
	}
	return float64(r.Aggregate.Errors()) / float64(r.Aggregate.Requests)
}

// BudgetViolated reports whether the run's error fraction exceeds the
// allowed budget. The comparison is on counts (errors > budget×requests)
// so a zero budget means "any error violates" with no float equality in
// sight.
func (r *Result) BudgetViolated(budget float64) bool {
	return float64(r.Aggregate.Errors()) > budget*float64(r.Aggregate.Requests)
}

// Runner executes one Spec. A Runner is single-use: construct, Run once,
// read the Result.
type Runner struct {
	spec Spec

	inFlight atomic.Int64
	issued   atomic.Int64
	dropped  atomic.Int64

	// measuredStart is the wall-clock time the first measured (post-
	// warmup) request was issued, recorded once.
	measuredStartOnce sync.Once
	measuredStart     time.Time
}

// NewRunner validates the spec and returns a runner for it.
func NewRunner(spec Spec) (*Runner, error) {
	s, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Runner{spec: s}, nil
}

// InFlight returns the number of requests currently outstanding. It is
// 0 before Run, bounded by Concurrency (closed loop) or MaxInFlight
// (open loop) during it, and 0 again after Run returns — Run joins
// every worker before returning, even on cancellation.
func (r *Runner) InFlight() int64 { return r.inFlight.Load() }

// Issued returns the number of requests started so far, warmup included.
// Safe to poll concurrently with Run (cmd/marketbench uses it to time
// the rebuild-under-load event).
func (r *Runner) Issued() int64 { return r.issued.Load() }

// workerStats is one worker's private accounting, merged after join.
type workerStats struct {
	endpoints map[string]*EndpointStats
	warmup    int64
}

func newWorkerStats() *workerStats {
	return &workerStats{endpoints: make(map[string]*EndpointStats)}
}

func (ws *workerStats) endpoint(e *Endpoint) *EndpointStats {
	es, ok := ws.endpoints[e.Name]
	if !ok {
		es = &EndpointStats{Name: e.Name, Route: e.Route, Hist: NewHistogram()}
		ws.endpoints[e.Name] = es
	}
	return es
}

// Run drives the load until the spec's bound is reached or ctx is
// cancelled, then joins every worker and returns the merged result.
// A cancelled run returns the partial result plus ctx's error, with
// the accounting invariant intact either way: InFlight() == 0 and
// Issued() == warmup + measured completions + transport errors in
// flight at cancellation (every issued request is accounted exactly
// once).
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	if r.spec.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.spec.Duration)
		defer cancel()
	}

	var stats []*workerStats
	switch r.spec.Mode {
	case OpenLoop:
		stats = r.runOpen(ctx)
	default:
		stats = r.runClosed(ctx)
	}

	end := time.Now()
	res := r.mergeStats(stats, end)
	if err := ctx.Err(); err != nil && r.spec.Duration <= 0 {
		// A Duration-bounded run ending by its own deadline is a normal
		// completion; an external cancellation is reported to the caller.
		return res, err
	}
	return res, nil
}

// runClosed runs Concurrency workers off a shared ticket counter. The
// ticket is the request's global index, which makes the warmup boundary
// exact: tickets 1..WarmupRequests are warmup, the rest measured.
func (r *Runner) runClosed(ctx context.Context) []*workerStats {
	total := int64(0)
	if r.spec.Requests > 0 {
		total = int64(r.spec.WarmupRequests + r.spec.Requests)
	}
	var (
		ticket atomic.Int64
		wg     sync.WaitGroup
	)
	stats := make([]*workerStats, r.spec.Concurrency)
	for i := 0; i < r.spec.Concurrency; i++ {
		stats[i] = newWorkerStats()
		wg.Add(1)
		go func(ws *workerStats, rng *RNG) {
			defer wg.Done()
			for ctx.Err() == nil {
				t := ticket.Add(1)
				if total > 0 && t > total {
					return
				}
				r.one(ctx, ws, rng, t <= int64(r.spec.WarmupRequests))
			}
		}(stats[i], Derive(r.spec.Seed, uint64(i)))
	}
	wg.Wait()
	return stats
}

// runOpen paces arrivals at RatePerSec; each arrival runs on its own
// goroutine with its own derived RNG stream (index-derived, so the mix
// stays deterministic even though dispatch order is not). Arrivals that
// would exceed MaxInFlight are shed and counted.
func (r *Runner) runOpen(ctx context.Context) []*workerStats {
	interval := time.Duration(float64(time.Second) / r.spec.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	total := int64(0)
	if r.spec.Requests > 0 {
		total = int64(r.spec.WarmupRequests + r.spec.Requests)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		stats   []*workerStats
		arrival int64
	)
	for ctx.Err() == nil && (total == 0 || arrival < total) {
		select {
		case <-ctx.Done():
		case <-ticker.C:
			if r.inFlight.Load() >= int64(r.spec.MaxInFlight) {
				r.dropped.Add(1)
				continue
			}
			arrival++
			idx := arrival
			ws := newWorkerStats()
			mu.Lock()
			stats = append(stats, ws)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.one(ctx, ws, Derive(r.spec.Seed, uint64(idx)), idx <= int64(r.spec.WarmupRequests))
			}()
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return stats
}

// one issues a single request drawn from the mix and accounts it.
func (r *Runner) one(ctx context.Context, ws *workerStats, rng *RNG, warmup bool) {
	ep := r.spec.Mix.Pick(rng)
	path := ep.Path(rng)

	if !warmup {
		r.measuredStartOnce.Do(func() { r.measuredStart = time.Now() })
	}
	r.issued.Add(1)
	r.inFlight.Add(1)
	defer r.inFlight.Add(-1)

	rctx, cancel := context.WithTimeout(ctx, r.spec.Timeout)
	defer cancel()

	begin := time.Now()
	status, header, body, err := doRequest(rctx, r.spec.Client, r.spec.BaseURL+path)
	elapsed := time.Since(begin)

	if warmup {
		ws.warmup++
		return
	}
	es := ws.endpoint(ep)
	es.Requests++
	es.Bytes += int64(len(body))
	switch {
	case err != nil:
		es.TransportErrors++
		return // no latency sample for a request that never completed
	case status < 200 || status > 299:
		es.HTTPErrors++
	case ep.Validate != nil:
		if verr := ep.Validate(status, header, body); verr != nil {
			es.ValidationFailures++
		}
	}
	es.Hist.Record(elapsed)
}

// doRequest performs one GET and drains the body (bounded — a body the
// validator would accept is far below the cap; draining keeps the
// connection reusable).
func doRequest(ctx context.Context, client *http.Client, url string) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("loadgen: build request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, resp.Header, body, fmt.Errorf("loadgen: read body: %w", err)
	}
	return resp.StatusCode, resp.Header, body, nil
}

// mergeStats joins the per-worker stats into the Result. Endpoint merge
// order is sorted by name, so the merged histograms and counters are
// identical regardless of worker scheduling (histogram merge is
// associative and commutative; TestHistogramMergeAssociativity pins it).
func (r *Runner) mergeStats(stats []*workerStats, end time.Time) *Result {
	merged := make(map[string]*EndpointStats)
	var warmup int64
	for _, ws := range stats {
		warmup += ws.warmup
		names := make([]string, 0, len(ws.endpoints))
		for name := range ws.endpoints {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			es := ws.endpoints[name]
			if have, ok := merged[name]; ok {
				have.merge(es)
			} else {
				cp := &EndpointStats{Name: es.Name, Route: es.Route, Hist: NewHistogram()}
				cp.merge(es)
				merged[name] = cp
			}
		}
	}

	res := &Result{
		Mode:        r.spec.Mode.String(),
		Seed:        r.spec.Seed,
		Concurrency: r.spec.Concurrency,
		Issued:      r.issued.Load(),
		Warmup:      warmup,
		Dropped:     r.dropped.Load(),
		Aggregate:   &EndpointStats{Name: "aggregate", Hist: NewHistogram()},
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		es := merged[name]
		res.Endpoints = append(res.Endpoints, es)
		res.Aggregate.merge(es)
	}
	res.Completed = res.Aggregate.Requests

	if !r.measuredStart.IsZero() && end.After(r.measuredStart) {
		res.MeasuredSeconds = end.Sub(r.measuredStart).Seconds()
		if res.MeasuredSeconds > 0 {
			res.ThroughputRPS = float64(res.Completed) / res.MeasuredSeconds
		}
	}
	return res
}
