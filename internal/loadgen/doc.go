// Package loadgen is the cluster load-generation subsystem: workload
// specifications over the serving layer's /v1 endpoint mix, an open- and
// closed-loop HTTP load runner with warmup and per-endpoint latency
// accounting, a round-robin loopback router with readiness-based
// draining, and the BENCH_cluster.json report schema.
//
// Everything is stdlib-only and deterministic where it can be: the
// request mix is a pure function of an explicit seed (splitmix64, one
// derived stream per worker), the latency histogram has a fixed
// geometric bucket layout so two runs — or a client-side and a
// server-side recording — are always comparable bucket by bucket, and
// tests assert on seeded request counts, never on wall-clock time.
//
// The pieces compose in two ways. cmd/marketbench drives a single
// target ("point the runner at a URL") or orchestrates a full topology:
// leader + K follower marketd processes, a Router over all of them, a
// Runner driving mixed traffic through the router while the leader
// rebuilds and the followers catch up. scripts/check.sh runs the same
// stack at smoke scale as the load gate.
//
// Layering: loadgen knows the serving layer's HTTP surface (paths,
// response shapes, the /varz bucket export) but imports none of the
// serving packages — it is a client, and stays honest by speaking only
// HTTP.
package loadgen
