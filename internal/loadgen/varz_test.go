package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestScrapeVarz parses a serve-shaped /varz document and recomputes a
// server-side quantile from its bucket export — the cross-check
// marketbench runs after every topology.
func TestScrapeVarz(t *testing.T) {
	doc := `{
  "uptime_seconds": 12.5,
  "latency_buckets_ms": [0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000],
  "routes": {
    "GET /v1/table1": {
      "requests": 100,
      "by_status_class": {"2xx": 100},
      "mean_latency_ms": 0.8,
      "latency_counts": [60, 25, 10, 3, 2, 0, 0, 0, 0, 0, 0]
    },
    "GET /healthz": {"requests": 0}
  }
}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/varz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, doc)
	}))
	t.Cleanup(ts.Close)

	v, err := ScrapeVarz(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.LatencyBucketsMS) != 10 {
		t.Fatalf("bucket bounds: %d, want 10", len(v.LatencyBucketsMS))
	}

	p50, ok := v.RouteQuantile("GET /v1/table1", 0.5)
	if !ok {
		t.Fatal("no p50 for a route with 100 samples")
	}
	// Rank 50 of 100 falls in the first bucket (60 samples ≤ 0.5ms).
	if p50 <= 0 || p50 > 0.5 {
		t.Errorf("p50 = %v, want in (0, 0.5]", p50)
	}
	p99, ok := v.RouteQuantile("GET /v1/table1", 0.99)
	if !ok {
		t.Fatal("no p99")
	}
	// Rank 99 is the 99th sample: 60+25+10+3 = 98 ≤ 5ms, so it lands in
	// the (5,10] bucket.
	if p99 <= 5 || p99 > 10 {
		t.Errorf("p99 = %v, want in (5, 10]", p99)
	}

	if _, ok := v.RouteQuantile("GET /healthz", 0.5); ok {
		t.Error("quantile for a sample-free route")
	}
	if _, ok := v.RouteQuantile("GET /missing", 0.5); ok {
		t.Error("quantile for an absent route")
	}

	names := v.RouteNames()
	if len(names) != 2 || names[0] != "GET /healthz" {
		t.Errorf("route names %v, want sorted pair", names)
	}
}

// TestScrapeVarzErrors covers transport and status failures.
func TestScrapeVarzErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	if _, err := ScrapeVarz(context.Background(), nil, ts.URL); err == nil {
		t.Error("503 varz accepted")
	}
	if _, err := ScrapeVarz(context.Background(), nil, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable varz accepted")
	}
}
