package loadgen

import (
	"fmt"
	"net/http"
	"strings"
)

// Endpoint is one entry in a workload mix: a name for reporting, the
// server-side route pattern it exercises (matching the /varz route
// labels, so client- and server-side stats can be joined), a weight,
// a path generator, and a response validator.
type Endpoint struct {
	// Name labels this endpoint in results and reports.
	Name string
	// Route is the server's route pattern for the endpoint (the /varz
	// key), e.g. "GET /v1/prices". Several mix entries may share one
	// route (filtered and unfiltered prices both land on GET /v1/prices).
	Route string
	// Weight is the endpoint's relative share of the mix. Must be > 0.
	Weight int
	// Path renders one concrete request path (with query string) from
	// the worker's RNG stream.
	Path func(rng *RNG) string
	// Validate checks one response beyond its transport success. A nil
	// Validate accepts everything; ValidateJSON is the usual choice.
	Validate func(status int, header http.Header, body []byte) error
}

// Mix is a weighted endpoint set with cumulative-weight lookup. Build
// it once with NewMix; Pick is read-only and safe for concurrent use
// (each caller supplies its own RNG stream).
type Mix struct {
	endpoints []Endpoint
	cum       []int // cumulative weights, aligned with endpoints
	total     int
}

// NewMix validates the endpoints (unique names, positive weights) and
// returns the mix.
func NewMix(endpoints ...Endpoint) (*Mix, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("loadgen: mix needs at least one endpoint")
	}
	m := &Mix{endpoints: endpoints, cum: make([]int, len(endpoints))}
	seen := make(map[string]bool, len(endpoints))
	for i, e := range endpoints {
		if e.Name == "" || e.Path == nil {
			return nil, fmt.Errorf("loadgen: mix endpoint %d: Name and Path are required", i)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix endpoint %q: weight %d, want > 0", e.Name, e.Weight)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("loadgen: mix endpoint %q appears twice", e.Name)
		}
		seen[e.Name] = true
		m.total += e.Weight
		m.cum[i] = m.total
	}
	return m, nil
}

// Pick draws one endpoint according to the weights.
func (m *Mix) Pick(rng *RNG) *Endpoint {
	n := rng.Intn(m.total)
	for i, c := range m.cum {
		if n < c {
			return &m.endpoints[i]
		}
	}
	return &m.endpoints[len(m.endpoints)-1]
}

// Endpoints returns the mix entries in declaration order.
func (m *Mix) Endpoints() []Endpoint { return m.endpoints }

// MustMix is NewMix for known-valid static mix tables; it panics on a
// construction error (the regexp.MustCompile convention).
func MustMix(endpoints ...Endpoint) *Mix {
	m, err := NewMix(endpoints...)
	if err != nil {
		panic(err)
	}
	return m
}

// ForScenario rebases every endpoint of the mix onto one scenario's
// /v1/{name}/... prefix. Names gain an "@{name}" suffix so per-endpoint
// report rows stay distinguishable in a merged multi-scenario mix;
// Route labels are unchanged because the scenario router strips the
// prefix before the server's mux (and its /varz route labels) see the
// request.
func (m *Mix) ForScenario(name string) *Mix {
	endpoints := make([]Endpoint, len(m.endpoints))
	for i, e := range m.endpoints {
		path := e.Path // capture per endpoint, not the loop variable's last value
		e.Name = e.Name + "@" + name
		e.Path = func(rng *RNG) string {
			return "/v1/" + name + path(rng)
		}
		endpoints[i] = e
	}
	return MustMix(endpoints...)
}

// MergeMixes concatenates mixes into one weighted mix. Endpoint names
// must stay unique across the inputs (ForScenario's @name suffix
// guarantees that for per-scenario variants of the same base mix).
func MergeMixes(mixes ...*Mix) (*Mix, error) {
	var endpoints []Endpoint
	for _, m := range mixes {
		endpoints = append(endpoints, m.endpoints...)
	}
	return NewMix(endpoints...)
}

// ScenarioMix spreads base evenly across the named scenarios: each
// scenario gets the full base mix rebased onto its /v1/{name}/...
// prefix, with equal aggregate weight per scenario.
func ScenarioMix(base *Mix, names ...string) (*Mix, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("loadgen: ScenarioMix needs at least one scenario name")
	}
	mixes := make([]*Mix, len(names))
	for i, name := range names {
		mixes[i] = base.ForScenario(name)
	}
	return MergeMixes(mixes...)
}

// ValidateJSON is the standard validator: 200 OK, a JSON content type,
// and a body that starts like a JSON document. It reads no semantics —
// byte-level correctness across replicas is the replication gate's job;
// the load gate only needs to notice a server answering garbage under
// pressure.
func ValidateJSON(status int, header http.Header, body []byte) error {
	if status != http.StatusOK {
		return fmt.Errorf("status %d, want 200", status)
	}
	if ct := header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		return fmt.Errorf("content type %q, want application/json", ct)
	}
	trimmed := strings.TrimLeft(string(body), " \t\r\n")
	if len(trimmed) == 0 || (trimmed[0] != '{' && trimmed[0] != '[') {
		return fmt.Errorf("body does not look like JSON (%d bytes)", len(body))
	}
	return nil
}

// ValidateCSV accepts 200 OK with a CSV content type and a non-empty
// body.
func ValidateCSV(status int, header http.Header, body []byte) error {
	if status != http.StatusOK {
		return fmt.Errorf("status %d, want 200", status)
	}
	if ct := header.Get("Content-Type"); !strings.Contains(ct, "text/csv") {
		return fmt.Errorf("content type %q, want text/csv", ct)
	}
	if len(body) == 0 {
		return fmt.Errorf("empty CSV body")
	}
	return nil
}

// mixSizes and mixRegions parameterize the filtered /v1/prices queries;
// both are valid server-side vocabularies (registry.ParseRIR accepts
// the region spellings).
var (
	mixSizes   = []string{"/8", "/16", "/24"}
	mixRegions = []string{"ARIN", "RIPE", "APNIC", "LACNIC", "AFRINIC"}
)

// DefaultMix is the standard serving workload: every /v1 read endpoint,
// weighted toward the hot paths (prices and delegation lookups), with a
// CSV encoding and parameterized filters in the mix. The weights sum to
// 100 so a weight reads as a percentage.
func DefaultMix() *Mix {
	constPath := func(p string) func(*RNG) string {
		return func(*RNG) string { return p }
	}
	return MustMix(
		Endpoint{
			Name: "table1", Route: "GET /v1/table1", Weight: 8,
			Path: constPath("/v1/table1"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "table1_csv", Route: "GET /v1/table1", Weight: 5,
			Path: constPath("/v1/table1?format=csv"), Validate: ValidateCSV,
		},
		Endpoint{
			Name: "figures", Route: "GET /v1/figures/{id}", Weight: 8,
			Path: func(rng *RNG) string {
				return fmt.Sprintf("/v1/figures/%d", 1+rng.Intn(4))
			},
			Validate: ValidateJSON,
		},
		Endpoint{
			Name: "prices_full", Route: "GET /v1/prices", Weight: 12,
			Path: constPath("/v1/prices"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "prices_filtered", Route: "GET /v1/prices", Weight: 13,
			Path: func(rng *RNG) string {
				size := mixSizes[rng.Intn(len(mixSizes))]
				if rng.Intn(2) == 0 {
					return "/v1/prices?size=" + size
				}
				return "/v1/prices?size=" + size + "&region=" + mixRegions[rng.Intn(len(mixRegions))]
			},
			Validate: ValidateJSON,
		},
		Endpoint{
			Name: "transfers", Route: "GET /v1/transfers", Weight: 7,
			Path: constPath("/v1/transfers"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "delegations", Route: "GET /v1/delegations", Weight: 5,
			Path: constPath("/v1/delegations"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "delegations_lookup", Route: "GET /v1/delegations", Weight: 10,
			Path: func(rng *RNG) string {
				// Random /8-/24 prefixes across the unicast space; misses
				// are fine (an empty lookup is still a 200), hits exercise
				// the trie walk.
				octet := func() int { return rng.Intn(224) }
				bits := 8 * (1 + rng.Intn(3))
				switch bits {
				case 8:
					return fmt.Sprintf("/v1/delegations?prefix=%d.0.0.0/8", octet())
				case 16:
					return fmt.Sprintf("/v1/delegations?prefix=%d.%d.0.0/16", octet(), rng.Intn(256))
				default:
					return fmt.Sprintf("/v1/delegations?prefix=%d.%d.%d.0/24", octet(), rng.Intn(256), rng.Intn(256))
				}
			},
			Validate: ValidateJSON,
		},
		Endpoint{
			Name: "leasing", Route: "GET /v1/leasing", Weight: 5,
			Path: constPath("/v1/leasing"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "headline", Route: "GET /v1/headline", Weight: 5,
			Path: constPath("/v1/headline"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "utilization", Route: "GET /v1/utilization", Weight: 4,
			Path: constPath("/v1/utilization"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "rpki", Route: "GET /v1/rpki", Weight: 3,
			Path: constPath("/v1/rpki"), Validate: ValidateJSON,
		},
		Endpoint{
			Name: "asof_point", Route: "GET /v1/asof", Weight: 8,
			Path: func(rng *RNG) string {
				return "/v1/asof?date=" + mixDate(rng) + "&prefix=" + mixPrefix(rng)
			},
			Validate: ValidateJSON,
		},
		Endpoint{
			Name: "asof_timeline", Route: "GET /v1/asof/timeline", Weight: 4,
			Path: func(rng *RNG) string {
				return "/v1/asof/timeline?prefix=" + mixPrefix(rng)
			},
			Validate: ValidateJSON,
		},
		Endpoint{
			Name: "asof_diff", Route: "GET /v1/asof/diff", Weight: 3,
			Path: func(rng *RNG) string {
				// A window of up to one year; both ends stay inside the
				// indexed epoch and from < to because the years differ.
				y, m, d := 2006+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(28)
				return fmt.Sprintf("/v1/asof/diff?from=%04d-%02d-%02d&to=%04d-%02d-%02d",
					y, m, d, y+1, 1+rng.Intn(12), 1+rng.Intn(28))
			},
			Validate: ValidateJSON,
		},
	)
}

// mixDate draws a date inside the served epoch [2005-01-01, 2020-07-01).
func mixDate(rng *RNG) string {
	return fmt.Sprintf("%04d-%02d-%02d", 2005+rng.Intn(15), 1+rng.Intn(12), 1+rng.Intn(28))
}

// mixPrefix draws a /8–/24 unicast prefix; misses are fine (an uncovered
// prefix is still a 200), hits exercise the temporal trie and span
// binary search.
func mixPrefix(rng *RNG) string {
	octet := 1 + rng.Intn(223)
	switch 8 * (1 + rng.Intn(3)) {
	case 8:
		return fmt.Sprintf("%d.0.0.0/8", octet)
	case 16:
		return fmt.Sprintf("%d.%d.0.0/16", octet, rng.Intn(256))
	default:
		return fmt.Sprintf("%d.%d.%d.0/24", octet, rng.Intn(256), rng.Intn(256))
	}
}
