package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// ServerVarz is the slice of a marketd /varz document the load harness
// consumes: the shared latency bucket bounds and the per-route request
// and latency-bucket counters. The field names mirror internal/serve's
// machine-readable export (latency_buckets_ms + per-route
// latency_counts); loadgen deliberately re-declares them over HTTP
// instead of importing the serving layer.
type ServerVarz struct {
	LatencyBucketsMS []float64            `json:"latency_buckets_ms"`
	Routes           map[string]RouteVarz `json:"routes"`
	// Process and ZeroCopy are optional sections (absent on servers
	// predating them): cumulative allocation counters and the artifact
	// read-path split, used for per-node allocation accounting.
	Process  *ProcessVarz  `json:"process"`
	ZeroCopy *ZeroCopyVarz `json:"zero_copy"`
}

// ProcessVarz is the slice of the process section the harness uses:
// cumulative runtime allocation counters (runtime.MemStats TotalAlloc
// and Mallocs). Scraped before and after a measured phase, the deltas
// give the node's allocation cost per served request.
type ProcessVarz struct {
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
}

// ZeroCopyVarz is the zero_copy section: how artifact responses were
// served — straight from the sealed segment file, from the in-memory
// copy (no persisted generation), or via fallback after a file error.
type ZeroCopyVarz struct {
	FileReads int64 `json:"file_reads"`
	MemReads  int64 `json:"mem_reads"`
	Fallbacks int64 `json:"fallbacks"`
}

// RouteVarz is one route's counters as exported on /varz.
type RouteVarz struct {
	Requests      int64            `json:"requests"`
	ByStatusClass map[string]int64 `json:"by_status_class"`
	MeanLatencyMS float64          `json:"mean_latency_ms"`
	// LatencyCounts is aligned with the document's latency_buckets_ms,
	// plus one trailing overflow bucket.
	LatencyCounts []int64 `json:"latency_counts"`
}

// ScrapeVarz fetches and decodes base's /varz document.
func ScrapeVarz(ctx context.Context, client *http.Client, base string) (*ServerVarz, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/varz", nil)
	if err != nil {
		return nil, fmt.Errorf("loadgen: build varz request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape varz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape varz: %s answered %s", base, resp.Status)
	}
	var v ServerVarz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&v); err != nil {
		return nil, fmt.Errorf("loadgen: decode varz: %w", err)
	}
	return &v, nil
}

// RouteQuantile estimates the q-quantile of one route's server-side
// latency from the scraped bucket counters. The second return is false
// when the route is absent, has no samples, or exports no buckets
// (a server predating the machine-readable form).
func (v *ServerVarz) RouteQuantile(route string, q float64) (float64, bool) {
	r, ok := v.Routes[route]
	if !ok || r.Requests == 0 || len(r.LatencyCounts) != len(v.LatencyBucketsMS)+1 {
		return 0, false
	}
	est, err := QuantileFromBuckets(v.LatencyBucketsMS, r.LatencyCounts, q)
	if err != nil {
		return 0, false
	}
	return est, true
}

// TotalRequests sums every route's request counter — the node's served
// request count at scrape time.
func (v *ServerVarz) TotalRequests() int64 {
	var n int64
	for _, r := range v.Routes {
		n += r.Requests
	}
	return n
}

// RouteNames returns the scraped route labels, sorted.
func (v *ServerVarz) RouteNames() []string {
	names := make([]string, 0, len(v.Routes))
	for name := range v.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
