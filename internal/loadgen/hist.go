package loadgen

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// The histogram's bucket layout is fixed at package init and shared by
// every Histogram: histFirstBoundMS grown by histGrowth per bucket,
// histBuckets times, plus one implicit overflow bucket. A fixed layout
// is what makes histograms mergeable (associatively, bucket by bucket)
// and two recordings comparable without resampling. The defaults span
// 5µs to ~160s with ≤ 20% relative quantile error (the growth factor).
const (
	histFirstBoundMS = 0.005
	histGrowth       = 1.2
	histBuckets      = 96
)

// histBoundsMS holds the bucket upper bounds in milliseconds, computed
// once; the final implicit bucket is +Inf.
var histBoundsMS = func() []float64 {
	bounds := make([]float64, histBuckets)
	b := histFirstBoundMS
	for i := range bounds {
		bounds[i] = b
		b *= histGrowth
	}
	return bounds
}()

// Histogram is a deterministic streaming latency estimator: fixed
// geometric buckets, exact count/sum/min/max, quantiles by linear
// interpolation inside the covering bucket. Not safe for concurrent
// use — each load worker owns one and the results are merged after the
// workers are joined.
type Histogram struct {
	counts [histBuckets + 1]int64
	count  int64
	sumMS  float64
	minMS  float64
	maxMS  float64
}

// NewHistogram returns an empty histogram over the package bucket
// layout.
func NewHistogram() *Histogram { return &Histogram{} }

// BucketBoundsMS returns the shared bucket upper bounds in milliseconds
// (the final implicit bucket is +Inf). The slice is a copy.
func BucketBoundsMS() []float64 {
	out := make([]float64, len(histBoundsMS))
	copy(out, histBoundsMS)
	return out
}

// Record adds one observed latency.
func (h *Histogram) Record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	i := sort.SearchFloat64s(histBoundsMS, ms)
	h.counts[i]++
	h.count++
	h.sumMS += ms
	if h.count == 1 || ms < h.minMS {
		h.minMS = ms
	}
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// MeanMS returns the exact mean latency in milliseconds (0 when empty).
func (h *Histogram) MeanMS() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sumMS / float64(h.count)
}

// MinMS and MaxMS return the exact observed extremes in milliseconds
// (0 when empty).
func (h *Histogram) MinMS() float64 { return h.minMS }
func (h *Histogram) MaxMS() float64 { return h.maxMS }

// Counts returns a copy of the per-bucket counts, aligned with
// BucketBoundsMS plus the final overflow bucket.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts[:])
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) in milliseconds. The
// estimate interpolates linearly inside the covering bucket and is
// clamped to the exact observed min and max, so Quantile(0) and
// Quantile(1) are exact and everything between carries at most one
// bucket's relative error.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	est := quantileFromBuckets(histBoundsMS, h.counts[:], h.count, q)
	if est < h.minMS {
		est = h.minMS
	}
	if est > h.maxMS {
		est = h.maxMS
	}
	return est
}

// Merge folds o into h. Both histograms share the package bucket
// layout, so merging is exact per bucket and associative: any merge
// order yields identical counts, count, sum, min, and max.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.minMS < h.minMS {
		h.minMS = o.minMS
	}
	if o.maxMS > h.maxMS {
		h.maxMS = o.maxMS
	}
	h.count += o.count
	h.sumMS += o.sumMS
}

// QuantileFromBuckets estimates the q-quantile from an arbitrary bucket
// histogram: boundsMS are the bucket upper bounds in ascending order,
// counts the per-bucket observation counts with one trailing overflow
// bucket (len(counts) == len(boundsMS)+1). This is how marketbench
// computes server-side percentiles from the /varz latency export to
// cross-check its own client-side measurements. It returns an error for
// a malformed histogram (length mismatch, no observations, negative
// count).
func QuantileFromBuckets(boundsMS []float64, counts []int64, q float64) (float64, error) {
	if len(counts) != len(boundsMS)+1 {
		return 0, fmt.Errorf("loadgen: bucket histogram: %d counts for %d bounds (want bounds+1)", len(counts), len(boundsMS))
	}
	var total int64
	for _, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("loadgen: bucket histogram: negative count %d", c)
		}
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("loadgen: bucket histogram: no observations")
	}
	return quantileFromBuckets(boundsMS, counts, total, q), nil
}

// quantileFromBuckets is the shared interpolation core. total must be
// the sum of counts and positive.
func quantileFromBuckets(boundsMS []float64, counts []int64, total int64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The target rank in 1..total: the smallest observation index whose
	// cumulative count covers the q fraction.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = boundsMS[i-1]
		}
		hi := lo
		if i < len(boundsMS) {
			hi = boundsMS[i]
		}
		// Position of the target rank inside this bucket, in (0,1].
		within := float64(rank-(cum-c)) / float64(c)
		return lo + (hi-lo)*within
	}
	// Unreachable when total == sum(counts); defensive fallback.
	return boundsMS[len(boundsMS)-1]
}
