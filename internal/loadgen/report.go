package loadgen

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// This file is the BENCH_cluster.json schema. cmd/marketbench writes
// the file, TestBenchClusterJSONParses reads it back through the same
// types, and the field names follow the BENCH_build/BENCH_serve
// machine-metadata discipline (goos/goarch/cpu/num_cpu/gomaxprocs/
// go_version/procedure/note) so every baseline in the repo is compared
// the same way: only against a recording from like hardware.

// ClusterBaseline is the whole BENCH_cluster.json document.
type ClusterBaseline struct {
	Suite      string `json:"suite"` // always "marketbench"
	Recorded   string `json:"recorded"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Procedure  string `json:"procedure"`
	Note       string `json:"note"`

	Topologies []TopologyReport `json:"topologies"`
}

// TopologyReport is one topology's load run.
type TopologyReport struct {
	// Name identifies the topology ("leader", "leader+2", "target").
	Name string `json:"name"`
	// Followers is the follower count behind the router (0: leader only).
	Followers int `json:"followers"`
	// Router reports whether traffic went through the round-robin
	// router (false: driven directly at a single server).
	Router bool `json:"router"`

	// World identifies the synthetic world the fleet served.
	World WorldParams `json:"world"`

	// Load echoes the workload parameters that produced the numbers.
	Load LoadParams `json:"load"`

	ThroughputRPS   float64 `json:"throughput_rps"`
	MeasuredSeconds float64 `json:"measured_seconds"`
	// Dropped counts open-loop arrivals shed at the in-flight cap.
	Dropped int64 `json:"dropped,omitempty"`

	ErrorBudget BudgetReport `json:"error_budget"`

	Aggregate EndpointReport   `json:"aggregate"`
	Endpoints []EndpointReport `json:"endpoints"`

	// Server carries the server-side cross-check: per node and driven
	// route, the request count and percentiles recomputed from the
	// /varz latency buckets. Client- and server-side percentiles will
	// not be identical (client time includes the router hop and
	// connection handling; bucket layouts differ) but must agree to
	// within the bucket resolution — gross disagreement means one side
	// is lying.
	Server []ServerRouteReport `json:"server,omitempty"`

	// Events are the orchestration milestones exercised under load
	// (rebuild trigger, leader swap, follower catch-up), with wall-clock
	// offsets from the start of the measured phase.
	Events []EventReport `json:"events,omitempty"`

	// Nodes carries per-node allocation accounting over the run, from
	// /varz process counters scraped before and after the load.
	Nodes []NodeReport `json:"nodes,omitempty"`
}

// NodeReport is one node's process-level allocation cost across the
// load run: heap bytes and allocation count per served request, derived
// from the deltas of /varz process.total_alloc_bytes, process.mallocs,
// and the per-route request counters between two scrapes. The deltas
// span warmup and the mid-run rebuild as well as the measured phase, so
// the per-request figures are an upper bound on pure serving cost — the
// useful property is comparability run-over-run. The zero-copy fields
// are the run-end read-path split: file_reads counts artifact responses
// served straight from the sealed segment, fallbacks counts degradations
// to the in-memory copy.
type NodeReport struct {
	Node                 string  `json:"node"`
	Requests             int64   `json:"requests"`
	AllocBytesPerRequest float64 `json:"alloc_bytes_per_request"`
	MallocsPerRequest    float64 `json:"mallocs_per_request"`
	ZeroCopyFileReads    int64   `json:"zero_copy_file_reads"`
	ZeroCopyFallbacks    int64   `json:"zero_copy_fallbacks"`
}

// NewNodeReport derives one node's allocation accounting from a pair of
// /varz scrapes. The boolean is false when either scrape predates the
// process counters or no requests were served between them.
func NewNodeReport(node string, before, after *ServerVarz) (NodeReport, bool) {
	if before == nil || after == nil || before.Process == nil || after.Process == nil {
		return NodeReport{}, false
	}
	requests := after.TotalRequests() - before.TotalRequests()
	if requests <= 0 {
		return NodeReport{}, false
	}
	nr := NodeReport{
		Node:                 node,
		Requests:             requests,
		AllocBytesPerRequest: float64(after.Process.TotalAllocBytes-before.Process.TotalAllocBytes) / float64(requests),
		MallocsPerRequest:    float64(after.Process.Mallocs-before.Process.Mallocs) / float64(requests),
	}
	if after.ZeroCopy != nil {
		nr.ZeroCopyFileReads = after.ZeroCopy.FileReads
		nr.ZeroCopyFallbacks = after.ZeroCopy.Fallbacks
	}
	return nr, true
}

// WorldParams pins the synthetic world the topology served.
type WorldParams struct {
	Seed int64 `json:"seed"`
	LIRs int   `json:"lirs"`
	Days int   `json:"days"`
}

// LoadParams echoes the runner spec.
type LoadParams struct {
	Mode           string  `json:"mode"`
	Seed           uint64  `json:"seed"`
	Concurrency    int     `json:"concurrency"`
	RatePerSec     float64 `json:"rate_per_sec,omitempty"`
	WarmupRequests int     `json:"warmup_requests"`
	Requests       int     `json:"requests"`
}

// BudgetReport is the run's error budget verdict.
type BudgetReport struct {
	AllowedFraction float64 `json:"allowed_fraction"`
	ErrorFraction   float64 `json:"error_fraction"`
	Errors          int64   `json:"errors"`
	Violated        bool    `json:"violated"`
}

// EndpointReport is one endpoint's (or the aggregate's) client-side
// stats.
type EndpointReport struct {
	Name               string  `json:"name"`
	Route              string  `json:"route,omitempty"`
	Requests           int64   `json:"requests"`
	TransportErrors    int64   `json:"transport_errors"`
	HTTPErrors         int64   `json:"http_errors"`
	ValidationFailures int64   `json:"validation_failures"`
	Bytes              int64   `json:"bytes"`
	// BytesPerOp is the mean response-body size (Bytes / Requests) —
	// the client-side counterpart of a Go benchmark's bytes/op, for
	// eyeballing wire cost per endpoint.
	BytesPerOp float64 `json:"bytes_per_op"`
	MeanMS     float64 `json:"mean_ms"`
	P50MS              float64 `json:"p50_ms"`
	P95MS              float64 `json:"p95_ms"`
	P99MS              float64 `json:"p99_ms"`
	MaxMS              float64 `json:"max_ms"`
}

// ServerRouteReport is one node's server-side view of one route.
type ServerRouteReport struct {
	Node     string  `json:"node"` // "leader", "follower1", ...
	Route    string  `json:"route"`
	Requests int64   `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// EventReport is one orchestration milestone under load.
type EventReport struct {
	// Name: "rebuild_triggered", "leader_swapped", "followers_caught_up".
	Name string `json:"name"`
	// AtSeconds is the offset from the start of the measured phase.
	AtSeconds float64 `json:"at_seconds"`
	Detail    string  `json:"detail,omitempty"`
}

// NewEndpointReport renders one runner EndpointStats row.
func NewEndpointReport(es *EndpointStats) EndpointReport {
	var bytesPerOp float64
	if es.Requests > 0 {
		bytesPerOp = float64(es.Bytes) / float64(es.Requests)
	}
	return EndpointReport{
		BytesPerOp: bytesPerOp,
		Name:               es.Name,
		Route:              es.Route,
		Requests:           es.Requests,
		TransportErrors:    es.TransportErrors,
		HTTPErrors:         es.HTTPErrors,
		ValidationFailures: es.ValidationFailures,
		Bytes:              es.Bytes,
		MeanMS:             es.Hist.MeanMS(),
		P50MS:              es.Hist.Quantile(0.50),
		P95MS:              es.Hist.Quantile(0.95),
		P99MS:              es.Hist.Quantile(0.99),
		MaxMS:              es.Hist.MaxMS(),
	}
}

// NewTopologyReport renders a Result (plus its parameters) into a
// report row; the caller fills World, Server, and Events.
func NewTopologyReport(name string, followers int, router bool, budget float64, res *Result) TopologyReport {
	t := TopologyReport{
		Name:      name,
		Followers: followers,
		Router:    router,
		Load: LoadParams{
			Mode:           res.Mode,
			Seed:           res.Seed,
			Concurrency:    res.Concurrency,
			WarmupRequests: int(res.Warmup),
			Requests:       int(res.Completed),
		},
		ThroughputRPS:   res.ThroughputRPS,
		MeasuredSeconds: res.MeasuredSeconds,
		Dropped:         res.Dropped,
		ErrorBudget: BudgetReport{
			AllowedFraction: budget,
			ErrorFraction:   res.ErrorFraction(),
			Errors:          res.Aggregate.Errors(),
			Violated:        res.BudgetViolated(budget),
		},
		Aggregate: NewEndpointReport(res.Aggregate),
	}
	for _, es := range res.Endpoints {
		t.Endpoints = append(t.Endpoints, NewEndpointReport(es))
	}
	return t
}

// NewClusterBaseline stamps the document frame: suite, date, and the
// recording machine's metadata (the same fields cmd/benchrecord writes,
// so all BENCH_*.json files are compared under the same rule).
func NewClusterBaseline(recorded, procedure, note string) ClusterBaseline {
	return ClusterBaseline{
		Suite:      "marketbench",
		Recorded:   recorded,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Procedure:  procedure,
		Note:       note,
	}
}

// Validate structurally checks a decoded baseline: machine metadata
// present, at least one topology, coherent counters, and ordered
// percentiles. TestBenchClusterJSONParses runs it against the committed
// file.
func (b *ClusterBaseline) Validate() error {
	if b.Suite != "marketbench" {
		return fmt.Errorf("suite %q, want marketbench", b.Suite)
	}
	if b.GOOS == "" || b.GOARCH == "" || b.GoVersion == "" {
		return fmt.Errorf("missing platform metadata: goos=%q goarch=%q go_version=%q", b.GOOS, b.GOARCH, b.GoVersion)
	}
	if b.NumCPU < 1 || b.GOMAXPROCS < 1 {
		return fmt.Errorf("implausible machine: num_cpu=%d gomaxprocs=%d", b.NumCPU, b.GOMAXPROCS)
	}
	if !strings.Contains(b.Procedure, "scripts/bench.sh") {
		return fmt.Errorf("procedure does not document re-recording via scripts/bench.sh: %q", b.Procedure)
	}
	if len(b.Topologies) == 0 {
		return fmt.Errorf("no topologies recorded")
	}
	for _, t := range b.Topologies {
		if t.Name == "" {
			return fmt.Errorf("topology with empty name")
		}
		if t.Aggregate.Requests <= 0 {
			return fmt.Errorf("topology %q: no measured requests", t.Name)
		}
		if t.ThroughputRPS <= 0 {
			return fmt.Errorf("topology %q: throughput_rps = %v, want > 0", t.Name, t.ThroughputRPS)
		}
		if len(t.Endpoints) == 0 {
			return fmt.Errorf("topology %q: no per-endpoint rows", t.Name)
		}
		for _, n := range t.Nodes {
			if n.Node == "" || n.Requests <= 0 {
				return fmt.Errorf("topology %q: node report %+v without a node name or served requests", t.Name, n)
			}
			if n.AllocBytesPerRequest < 0 || n.MallocsPerRequest < 0 {
				return fmt.Errorf("topology %q node %q: negative allocation accounting", t.Name, n.Node)
			}
		}
		rows := append([]EndpointReport{t.Aggregate}, t.Endpoints...)
		for _, e := range rows {
			if e.Requests < 0 {
				return fmt.Errorf("topology %q endpoint %q: negative requests", t.Name, e.Name)
			}
			if e.Requests == 0 {
				continue // a low-weight endpoint can miss a short run
			}
			if e.P50MS <= 0 || e.P50MS > e.P95MS || e.P95MS > e.P99MS || e.P99MS > e.MaxMS {
				return fmt.Errorf("topology %q endpoint %q: disordered percentiles p50=%v p95=%v p99=%v max=%v",
					t.Name, e.Name, e.P50MS, e.P95MS, e.P99MS, e.MaxMS)
			}
		}
	}
	return nil
}

// cpuModel returns the CPU model string, best-effort: /proc/cpuinfo on
// Linux, empty elsewhere (the field is omitempty; goarch+num_cpu still
// identify the machine class).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if name, value, ok := strings.Cut(line, ":"); ok {
			if strings.TrimSpace(name) == "model name" {
				return strings.TrimSpace(value)
			}
		}
	}
	return ""
}
