package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderSinks are the encoder/writer entry points whose output order
// becomes response bytes, CSV rows, or hash input — the places where
// Go's randomized map iteration order breaks the repo's determinism
// contract (every artifact and ETag byte-identical across builds).
// Package-level sinks are resolved through the type checker; method
// sinks are matched by name (Write*, Encode, Fprint*), a deliberate
// heuristic that covers io.Writer implementations, csv.Writer,
// json/gob Encoders and hash.Hash without enumerating receiver types.

// MapOrder flags two shapes of nondeterministic encoding, as a forward
// dataflow over the CFG:
//
//  1. an encoder/writer sink called inside a `range` over a map (order
//     is randomized per iteration), and
//  2. a value accumulated in map-range order — append to a slice or
//     string concatenation hoisted out of the loop — that reaches a sink
//     without an intervening deterministic sort. A call to any function
//     whose name starts with "Sort" (sort.Slice, slices.Sort,
//     netblock.SortPrefixes, ...) clears the taint; ranging over a
//     still-tainted slice is as unordered as ranging the map itself.
//
// The fix is the standard one: collect keys, sort, iterate the sorted
// slice. Order-insensitive accumulation (counters, sums, map-to-map
// copies) is deliberately not tracked; note that floating-point sums in
// map order are still nondeterministic in the last bits and need a
// sorted loop if their bytes are ever emitted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag encoding/writing in map-iteration order without a deterministic sort",
	Run: func(pass *Pass) {
		funcBodies(pass.Pkg, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			a := &mapOrder{info: pass.Pkg.Info}
			flow := Flow[taintState]{
				Init:     func() taintState { return taintState{} },
				Clone:    cloneTaintState,
				Transfer: a.transfer,
				Join:     joinTaintState,
			}
			cfg := BuildCFG(body, pass.Pkg.Info)
			sol := flow.Forward(cfg)
			a.emit = func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			}
			flow.ReportPass(cfg, sol)
		})
	},
}

// taintState is the set of variables carrying map-iteration-ordered
// content.
type taintState map[types.Object]bool

func cloneTaintState(s taintState) taintState {
	out := make(taintState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func joinTaintState(dst, src taintState) (taintState, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

type mapOrder struct {
	info *types.Info
	emit func(pos token.Pos, format string, args ...any)
}

func (a *mapOrder) transfer(b *Block, n Node, s taintState) taintState {
	if _, ok := n.Ast.(*ast.DeferStmt); ok && !n.DeferRun {
		return s
	}
	// unordered is the innermost enclosing range whose iteration order is
	// nondeterministic: directly over a map, or over a tainted slice.
	var unordered *ast.RangeStmt
	for _, r := range b.Ranges {
		if a.unorderedRange(r, s) {
			unordered = r
		}
	}
	node := n.Ast
	if n.DeferRun {
		if fl, ok := n.Ast.(*ast.CallExpr).Fun.(*ast.FuncLit); ok {
			node = fl.Body
		}
	}
	walkExpr(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			a.call(m, unordered, s)
		case *ast.AssignStmt:
			a.assign(m, unordered, s)
		}
		return true
	})
	return s
}

// unorderedRange reports whether r iterates in nondeterministic order.
func (a *mapOrder) unorderedRange(r *ast.RangeStmt, s taintState) bool {
	if t := a.info.TypeOf(r.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	if root := rootIdent(r.X); root != nil {
		if obj := identObj(a.info, root); obj != nil && s[obj] {
			return true
		}
	}
	return false
}

func (a *mapOrder) call(call *ast.CallExpr, unordered *ast.RangeStmt, s taintState) {
	// A sort call launders its argument: the slice is deterministic from
	// here on, whatever order it was filled in.
	if a.isSortCall(call) {
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil {
				if obj := identObj(a.info, root); obj != nil {
					delete(s, obj)
				}
			}
		}
		return
	}
	desc, target, ok := a.sink(call)
	if !ok {
		return
	}
	// A sink under an unordered range emits bytes in randomized key
	// order — unless its writer target is loop-local (a fresh buffer per
	// iteration whose bytes land back in a map is order-independent).
	if unordered != nil && target != nil && a.outlivesLoop(target, unordered) {
		a.report(call.Pos(), "%s inside range over %s iterates in nondeterministic order; sort the keys and range the sorted slice", desc, a.rangeOperand(unordered))
		return
	}
	for _, arg := range call.Args {
		if root := rootIdent(arg); root != nil {
			if obj := identObj(a.info, root); obj != nil && s[obj] {
				a.report(call.Pos(), "%s emits %s, which was accumulated in map-iteration order; sort it first", desc, obj.Name())
				return
			}
		}
	}
}

// assign tracks order-dependent accumulation and strong updates.
func (a *mapOrder) assign(m *ast.AssignStmt, unordered *ast.RangeStmt, s taintState) {
	if len(m.Lhs) != len(m.Rhs) && len(m.Rhs) != 1 {
		return
	}
	for i, lhs := range m.Lhs {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			continue
		}
		obj := identObj(a.info, root)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if i < len(m.Rhs) {
			rhs = m.Rhs[i]
		}
		switch {
		case unordered != nil && a.accumulates(m, lhs, rhs) && declaredOutside(obj, unordered):
			s[obj] = true
		case rhs != nil && a.taintedExpr(rhs, s):
			s[obj] = true // alias or derivation keeps the taint
		case m.Tok == token.ASSIGN || m.Tok == token.DEFINE:
			delete(s, obj) // strong update: rebound to something fresh
		}
	}
}

// accumulates recognizes order-sensitive accumulation: append into the
// assigned slice, string +=, or string self-concatenation.
func (a *mapOrder) accumulates(m *ast.AssignStmt, lhs, rhs ast.Expr) bool {
	if m.Tok == token.ADD_ASSIGN {
		return isStringExpr(a.info, lhs)
	}
	if rhs == nil {
		return false
	}
	if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinCall(a.info, call, "append") {
		return true
	}
	if be, ok := rhs.(*ast.BinaryExpr); ok && be.Op == token.ADD && isStringExpr(a.info, lhs) {
		return true
	}
	return false
}

func (a *mapOrder) taintedExpr(e ast.Expr, s taintState) bool {
	// append(tainted, ...) and plain reads keep the taint through the
	// root identifier; anything else is treated as fresh.
	if call, ok := e.(*ast.CallExpr); ok {
		if isBuiltinCall(a.info, call, "append") && len(call.Args) > 0 {
			e = call.Args[0]
		}
	}
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := identObj(a.info, root)
	return obj != nil && s[obj]
}

// sink classifies call as an encoder/writer, returning a short
// description and the expression whose storage receives the ordered
// bytes (nil when the sink only transforms, like json.Marshal — those
// are judged by tainted arguments alone).
func (a *mapOrder) sink(call *ast.CallExpr) (string, ast.Expr, bool) {
	for _, fn := range [...]string{"Fprint", "Fprintf", "Fprintln"} {
		if pkgFuncCall(a.info, call, "fmt", fn) && len(call.Args) > 0 {
			return "fmt." + fn, call.Args[0], true
		}
	}
	for _, fn := range [...]string{"Marshal", "MarshalIndent"} {
		if pkgFuncCall(a.info, call, "encoding/json", fn) {
			return "json." + fn, nil, true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	name := sel.Sel.Name
	if name == "Encode" || strings.HasPrefix(name, "Write") {
		// Method sinks by name: io.Writer implementations, csv.Writer,
		// strings.Builder, hash.Hash, json/gob Encoders. Selections is
		// populated for method and field selections only, so a package-
		// qualified function (csv.NewWriter) never matches.
		if a.info.Selections[sel] != nil {
			return recvTypeName(a.info, sel) + "." + name, sel.X, true
		}
	}
	return "", nil, false
}

// outlivesLoop reports whether the sink target's storage persists across
// iterations of r: its root variable is declared outside the loop body,
// or it has no root identifier at all (a global, a field chain rooted in
// a call — assumed shared).
func (a *mapOrder) outlivesLoop(target ast.Expr, r *ast.RangeStmt) bool {
	root := rootIdent(target)
	if root == nil {
		return true
	}
	obj := identObj(a.info, root)
	return obj == nil || declaredOutside(obj, r)
}

func (a *mapOrder) report(pos token.Pos, format string, args ...any) {
	if a.emit != nil {
		a.emit(pos, format, args...)
	}
}

// isSortCall recognizes deterministic-ordering calls: anything from the
// sort or slices packages, or a function whose name starts with Sort
// (netblock.SortPrefixes and friends). A heuristic, documented as such.
func (a *mapOrder) isSortCall(call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		if selectsPackage(a.info, f, "sort") || selectsPackage(a.info, f, "slices") {
			return true
		}
		return strings.HasPrefix(f.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.HasPrefix(f.Name, "Sort") || strings.HasPrefix(f.Name, "sort")
	}
	return false
}

// rangeOperand renders the ranged expression for the diagnostic.
func (a *mapOrder) rangeOperand(r *ast.RangeStmt) string {
	name := "it"
	if root := rootIdent(r.X); root != nil {
		name = root.Name
	}
	if t := a.info.TypeOf(r.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return "map " + name
		}
	}
	return name + " (filled in map order)"
}

// declaredOutside reports whether obj was declared outside r's body —
// i.e. the accumulator survives the loop.
func declaredOutside(obj types.Object, r *ast.RangeStmt) bool {
	return obj.Pos() < r.Body.Pos() || obj.Pos() > r.Body.End()
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// recvTypeName renders the method receiver's type for diagnostics.
func recvTypeName(info *types.Info, sel *ast.SelectorExpr) string {
	t := info.TypeOf(sel.X)
	if t == nil {
		return "?"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
