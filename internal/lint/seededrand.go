package lint

import (
	"go/ast"
	"strings"
)

// SeededRand forbids calling top-level math/rand (and math/rand/v2)
// functions such as rand.Intn or rand.Float64 in non-test code. The
// reproduction is only checkable because synthetic datasets are
// deterministic functions of an explicit seed; the package-level
// generator is shared mutable global state that any import can perturb.
// All randomness must flow through an explicitly seeded *rand.Rand.
// Constructors (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG, ...)
// are the sanctioned entry points and stay allowed.
//
// Test files are never loaded by the framework, so the rule applies to
// every production file in the module.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid top-level math/rand functions; randomness must use a seeded *rand.Rand",
	Run: func(pass *Pass) {
		inspectFiles(pass, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !selectsPackage(pass.Pkg.Info, sel, "math/rand") &&
				!selectsPackage(pass.Pkg.Info, sel, "math/rand/v2") {
				return true
			}
			if strings.HasPrefix(sel.Sel.Name, "New") {
				return true // constructors for explicitly seeded generators
			}
			pass.Reportf(call.Pos(), "top-level rand.%s uses the shared global generator; draw from an explicitly seeded *rand.Rand", sel.Sel.Name)
			return true
		})
	},
}
