package lint

import (
	"testing"
)

// TestSelfCheck runs the full analyzer suite over the repository's own
// source tree, making plain `go test ./...` (the tier-1 gate) fail on
// any new violation. Fix the finding, or — for an intentional exception —
// add `//lint:ignore <rule> <reason>` on or above the offending line.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from the module")
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("self-check failed with %d finding(s); fix them or suppress with //lint:ignore <rule> <reason>", len(diags))
	}
}
