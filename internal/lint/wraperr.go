package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// WrapErr requires fmt.Errorf calls that embed an error value to use the
// %w verb. Formatting an error with %v or %s flattens it to text, which
// breaks errors.Is/errors.As matching against sentinel errors like
// registry.ErrPolicy — the idiom the pipeline uses everywhere to classify
// failures. Multiple %w verbs are fine (Go ≥ 1.20).
var WrapErr = &Analyzer{
	Name: "wraperr",
	Doc:  "require %w in fmt.Errorf when an argument is an error",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		inspectFiles(pass, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !pkgFuncCall(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // non-constant format: cannot analyze
			}
			format := constant.StringVal(tv.Value)
			verbs, indexed := parseVerbs(format)
			if indexed {
				// Explicit argument indexes (%[1]s) are rare; fall back to
				// a conservative check: any error argument with no %w verb
				// at all in the format string.
				if !strings.Contains(format, "%w") {
					for _, arg := range call.Args[1:] {
						if isErrorValue(info.TypeOf(arg)) {
							pass.Reportf(arg.Pos(), "error argument formatted without %%w; use %%w to preserve the error chain")
						}
					}
				}
				return true
			}
			argIdx := 1
			for _, v := range verbs {
				argIdx += v.stars // '*' width/precision each consume an argument
				if argIdx >= len(call.Args) {
					break
				}
				arg := call.Args[argIdx]
				if v.verb != 'w' && isErrorValue(info.TypeOf(arg)) {
					pass.Reportf(arg.Pos(), "error argument formatted with %%%c; use %%w to preserve the error chain", v.verb)
				}
				argIdx++
			}
			return true
		})
	},
}

// verbSpec is one formatting verb and the number of '*' width/precision
// arguments it consumes before its operand.
type verbSpec struct {
	verb  rune
	stars int
}

// parseVerbs scans a Printf-style format string and returns the
// argument-consuming verbs in order. %% consumes nothing. If the format
// uses explicit argument indexes ("%[1]d"), indexed is true and the
// caller should fall back to a coarser check.
func parseVerbs(format string) (verbs []verbSpec, indexed bool) {
	runes := []rune(format)
	i := 0
	for i < len(runes) {
		if runes[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			i++
			continue
		}
		stars := 0
		for i < len(runes) {
			c := runes[i]
			if c == '[' {
				return nil, true
			}
			if c == '*' {
				stars++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", c) {
				i++
				continue
			}
			verbs = append(verbs, verbSpec{verb: c, stars: stars})
			i++
			break
		}
	}
	return verbs, false
}
