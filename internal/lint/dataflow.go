package lint

import (
	"go/ast"
)

// Flow is a forward dataflow analysis over a CFG, generic in its state
// type S. The framework is a classic iterative worklist solver:
//
//	in(Entry) = Init()
//	out(b)    = Transfer over b's nodes, in order
//	in(b)     = Join of out(p) for every predecessor p
//
// solved to a fixed point. Termination is the analysis's contract: Join
// must be monotone over a finite-height lattice (set union with a finite
// fact universe, or counters the Transfer caps). The four shipped
// analyzers all use small per-function fact maps, so convergence takes a
// handful of passes.
type Flow[S any] struct {
	// Init produces the state at function entry.
	Init func() S
	// Clone deep-copies a state; the solver never aliases states across
	// blocks.
	Clone func(S) S
	// Transfer applies one node's effect. It may mutate s and must return
	// the resulting state. It must not report diagnostics — the solver
	// runs it repeatedly; report in a separate pass over Solution.Reached
	// blocks (see ReportPass).
	Transfer func(b *Block, n Node, s S) S
	// Join merges src into dst and reports whether dst changed. src is
	// owned by the caller and must not be retained.
	Join func(dst, src S) (S, bool)
}

// Solution holds the fixed point: the state at entry to every reachable
// block. Blocks absent from In were never reached (dead code after a
// terminating statement) and are skipped by reporting passes.
type Solution[S any] struct {
	In map[*Block]S
}

// Forward solves the analysis over g and returns the per-block entry
// states.
func (f Flow[S]) Forward(g *CFG) Solution[S] {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = f.Init()
	dirty := make([]bool, len(g.Blocks))
	dirty[g.Entry.Index] = true
	for {
		b := pickDirty(g, dirty)
		if b == nil {
			return Solution[S]{In: in}
		}
		dirty[b.Index] = false
		s := f.Clone(in[b])
		for _, n := range b.Nodes {
			s = f.Transfer(b, n, s)
		}
		for _, succ := range b.Succs {
			cur, ok := in[succ]
			if !ok {
				in[succ] = f.Clone(s)
				dirty[succ.Index] = true
				continue
			}
			merged, changed := f.Join(cur, f.Clone(s))
			in[succ] = merged
			if changed {
				dirty[succ.Index] = true
			}
		}
	}
}

// pickDirty returns the lowest-indexed dirty block, keeping iteration
// order — and with it any order-sensitive tie-breaking inside an
// analysis — deterministic across runs.
func pickDirty(g *CFG, dirty []bool) *Block {
	for i, d := range dirty {
		if d {
			return g.Blocks[i]
		}
	}
	return nil
}

// ReportPass replays Transfer once over every reached block in index
// order with reporting enabled in the analysis (by convention the
// analysis carries an emit callback that is nil while solving). The
// deterministic block order makes diagnostic order stable run-to-run.
func (f Flow[S]) ReportPass(g *CFG, sol Solution[S]) {
	for _, b := range g.Blocks {
		s, ok := sol.In[b]
		if !ok {
			continue
		}
		s = f.Clone(s)
		for _, n := range b.Nodes {
			s = f.Transfer(b, n, s)
		}
	}
}

// funcBodies yields every function body of the package that has one —
// declarations first, then function literals in source order — together
// with the enclosing FuncDecl (nil for literals). Analyzers build one
// CFG per body; a literal deferred directly (`defer func(){...}()`) is
// excluded because it is replayed inside its parent's exit block, and
// analyzing it a second time with an empty entry state would double-
// report or contradict the parent's facts.
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		var deferred map[*ast.FuncLit]bool
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
					if deferred == nil {
						deferred = make(map[*ast.FuncLit]bool)
					}
					deferred[fl] = true
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, nil, fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && !deferred[fl] {
				fn(nil, fl, fl.Body)
			}
			return true
		})
	}
}

// walkExpr walks n's subtree in source order, skipping nested function
// literal bodies — those are separate functions with their own CFGs.
// A RangeStmt used as a CFG header node contributes only itself and its
// range operand: its body statements live in other blocks and must not
// be double-walked.
func walkExpr(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		if visit(r) {
			walkExpr(r.X, visit)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return visit(m)
	})
}

// rootIdent unwraps selector, index, slice, star, paren and type-assert
// chains to the base identifier of an lvalue-ish expression: rootIdent
// of s.mu, x.M[k], (*p).f, xs[i:j] is s, x, p, xs. It returns nil when
// the base is not a plain identifier (a call result, a composite
// literal, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}
