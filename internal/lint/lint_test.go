package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-fixture protocol: a fixture line carries one or more
// expectations as `// want "regexp" "regexp"`. Every expectation must be
// matched by a diagnostic of the analyzer under test at exactly that
// file and line, and every diagnostic must match some expectation.
var (
	wantRe   = regexp.MustCompile(`// want (.+)$`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quotes := quotedRe.FindAllString(m[1], -1)
			if len(quotes) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", e.Name(), i+1, line)
			}
			for _, q := range quotes {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return wants
}

func TestAnalyzersGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rule     string
		analyzer *Analyzer
	}{
		{"floatcmp", FloatCmp},
		{"timeeq", TimeEq},
		{"seededrand", SeededRand},
		{"wraperr", WrapErr},
		{"nakedgo", NakedGo},
		{"noctxhttp", NoCtxHTTP},
		{"bannedcall", BannedCall(DefaultBans())},
		{"mutafterpub", MutAfterPub},
		{"maporder", MapOrder},
		{"ctxflow", CtxFlow},
		{"lockbal", LockBal},
	}
	for _, c := range cases {
		t.Run(c.rule, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.rule)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{c.analyzer})
			wants := loadExpectations(t, dir)
			for _, d := range diags {
				if d.Rule != c.rule {
					t.Errorf("diagnostic from wrong rule: %s", d)
				}
				if d.Pos.Column <= 0 || d.Pos.Line <= 0 || d.Pos.Filename == "" {
					t.Errorf("diagnostic without full position: %s", d)
				}
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

func TestSuppressionAudit(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	res := RunAll([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(res.Diagnostics) != 0 {
		t.Errorf("expected all findings suppressed, got %v", res.Diagnostics)
	}
	if len(res.Suppressions) != 2 {
		t.Fatalf("expected 2 suppressions, got %v", res.Suppressions)
	}
	if s := res.Suppressions[0]; !s.Used || s.Rule != "floatcmp" || s.Reason != "fixture exercises a used suppression" {
		t.Errorf("first suppression should be used with its reason, got %+v", s)
	}
	stale := res.Stale()
	if len(stale) != 1 || stale[0].Pos.Line != res.Suppressions[1].Pos.Line {
		t.Errorf("expected exactly the second suppression stale, got %+v", stale)
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format  string
		verbs   string // verb runes in order
		stars   []int
		indexed bool
	}{
		{"plain", "", nil, false},
		{"%d and %s", "ds", []int{0, 0}, false},
		{"100%% done: %v", "v", []int{0}, false},
		{"%*.*f", "f", []int{2}, false},
		{"%+08.3f|%q", "fq", []int{0, 0}, false},
		{"%[1]d", "", nil, true},
	}
	for _, c := range cases {
		verbs, indexed := parseVerbs(c.format)
		if indexed != c.indexed {
			t.Errorf("parseVerbs(%q) indexed = %v, want %v", c.format, indexed, c.indexed)
			continue
		}
		var got strings.Builder
		for i, v := range verbs {
			got.WriteRune(v.verb)
			if v.stars != c.stars[i] {
				t.Errorf("parseVerbs(%q) verb %d stars = %d, want %d", c.format, i, v.stars, c.stars[i])
			}
		}
		if got.String() != c.verbs {
			t.Errorf("parseVerbs(%q) = %q, want %q", c.format, got.String(), c.verbs)
		}
	}
}

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		text   string
		rule   string
		reason string
		ok     bool
	}{
		{"//lint:ignore floatcmp exact sentinel", "floatcmp", "exact sentinel", true},
		{"//lint:ignore floatcmp", "", "", false}, // reason is mandatory
		{"// lint:ignore floatcmp reason", "", "", false},
		{"// ordinary comment", "", "", false},
	}
	for _, c := range cases {
		rule, reason, ok := parseIgnoreDirective(c.text)
		if ok != c.ok || rule != c.rule || reason != c.reason {
			t.Errorf("parseIgnoreDirective(%q) = %q, %q, %v; want %q, %q, %v", c.text, rule, reason, ok, c.rule, c.reason, c.ok)
		}
	}
}
