package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow generalizes noctxhttp from call syntax to dataflow: a library
// function that accepts a context.Context promises its caller
// cancellation, so every blocking operation in its body must be bound
// to that context — directly or through a value derived from it.
//
// Derivation is tracked as a forward taint: the ctx parameters seed the
// set, and context.With*(ctx, ...), http.NewRequestWithContext(ctx,
// ...), req.WithContext(ctx), ctx.Done(), plain aliases, and the
// context-typed results of any call that was passed a tainted context
// (errgroup-style `g, gctx := NewGroup(ctx)` helpers) extend it.
// Blocking operations checked:
//
//   - time.Sleep — never cancellable; use a Timer and select on Done;
//   - client.Do(req) on an *http.Client where req is not derived from
//     the context;
//   - a bare channel send or receive (a select communication clause is
//     exempt — the select is judged as a whole);
//   - a select with no default and no `<-ctx.Done()` (or derived) arm.
//
// Package main is exempt, as with noctxhttp: a CLI's lifetime is its
// cancellation scope. Functions without a usable Context parameter are
// out of scope — this rule enforces that an accepted context is
// honored, not that one exists. Interprocedural threading is trusted:
// passing ctx into a call is not inspected further.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag blocking operations not bound to the function's context.Context parameter",
	Run: func(pass *Pass) {
		if pass.Pkg.Types.Name() == "main" {
			return
		}
		funcBodies(pass.Pkg, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			var ftype *ast.FuncType
			if decl != nil {
				ftype = decl.Type
			} else {
				ftype = lit.Type
			}
			seeds := ctxParams(pass.Pkg.Info, ftype)
			if len(seeds) == 0 {
				return
			}
			a := &ctxFlow{info: pass.Pkg.Info}
			flow := Flow[taintState]{
				Init: func() taintState {
					s := taintState{}
					for _, obj := range seeds {
						s[obj] = true
					}
					return s
				},
				Clone:    cloneTaintState,
				Transfer: a.transfer,
				Join:     joinTaintState,
			}
			cfg := BuildCFG(body, pass.Pkg.Info)
			sol := flow.Forward(cfg)
			a.emit = func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			}
			flow.ReportPass(cfg, sol)
		})
	},
}

// ctxParams returns the named context.Context parameters of ftype.
func ctxParams(info *types.Info, ftype *ast.FuncType) []types.Object {
	var out []types.Object
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		t := info.TypeOf(field.Type)
		if !isNamedType(t, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := identObj(info, name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

type ctxFlow struct {
	info *types.Info
	emit func(pos token.Pos, format string, args ...any)
}

func (a *ctxFlow) transfer(_ *Block, n Node, s taintState) taintState {
	if _, ok := n.Ast.(*ast.DeferStmt); ok && !n.DeferRun {
		return s
	}
	if n.Comm {
		// A select communication clause blocks under the select's
		// arbitration; the SelectStmt node judges cancellation. Its
		// assignments still run.
		if as, ok := n.Ast.(*ast.AssignStmt); ok {
			a.assign(as, s)
		}
		return s
	}
	if sel, ok := n.Ast.(*ast.SelectStmt); ok {
		a.selectStmt(sel, s)
		return s
	}
	if r, ok := n.Ast.(*ast.RangeStmt); ok {
		if t := a.info.TypeOf(r.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				a.report(r.Pos(), "range over a channel blocks with no cancellation arm; select each receive against the context's Done channel")
			}
		}
		return s
	}
	node := n.Ast
	if n.DeferRun {
		if fl, ok := n.Ast.(*ast.CallExpr).Fun.(*ast.FuncLit); ok {
			node = fl.Body
		}
	}
	walkExpr(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			a.assign(m, s)
		case *ast.SendStmt:
			a.report(m.Arrow, "blocking channel send with no cancellation arm; select on it together with the context's Done channel")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !a.taintedChan(m.X, s) {
				a.report(m.OpPos, "blocking channel receive with no cancellation arm; select on it together with the context's Done channel")
			}
		case *ast.CallExpr:
			a.call(m, s)
		case *ast.SelectStmt:
			// Nested select inside an expression cannot occur; selects
			// reached here are their own CFG nodes.
			return false
		}
		return true
	})
	return s
}

// assign extends the taint through derivations and aliases, with strong
// updates on rebinding.
func (a *ctxFlow) assign(m *ast.AssignStmt, s taintState) {
	if len(m.Lhs) == 0 {
		return
	}
	derived := false
	ctxCall := false
	if len(m.Rhs) == 1 {
		derived = a.derives(m.Rhs[0], s)
		// A helper that takes the context and hands back its own derived
		// one (errgroup-style `g, gctx := NewGroup(ctx)`) is trusted:
		// context-typed results of a call fed a tainted context are
		// tainted.
		if call, ok := m.Rhs[0].(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if a.taintedArg(arg, s) {
					ctxCall = true
					break
				}
			}
		}
	}
	for i, lhs := range m.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := identObj(a.info, id)
		if obj == nil {
			continue
		}
		switch {
		case derived && i == 0:
			// context.WithCancel and friends return (ctx, cancel);
			// NewRequestWithContext returns (req, err): the derived
			// value is the first result.
			s[obj] = true
		case ctxCall && isNamedType(obj.Type(), "context", "Context"):
			s[obj] = true
		case len(m.Rhs) == len(m.Lhs) && a.derives(m.Rhs[i], s):
			s[obj] = true
		default:
			delete(s, obj)
		}
	}
}

// derives reports whether e produces a context-bound value from an
// already-tainted one.
func (a *ctxFlow) derives(e ast.Expr, s taintState) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := identObj(a.info, e)
		return obj != nil && s[obj]
	case *ast.CallExpr:
		for _, fn := range [...]string{"WithCancel", "WithTimeout", "WithDeadline", "WithValue"} {
			if pkgFuncCall(a.info, e, "context", fn) {
				return len(e.Args) > 0 && a.taintedArg(e.Args[0], s)
			}
		}
		if pkgFuncCall(a.info, e, "net/http", "NewRequestWithContext") {
			return len(e.Args) > 0 && a.taintedArg(e.Args[0], s)
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && a.info.Selections[sel] != nil {
			switch sel.Sel.Name {
			case "WithContext":
				return len(e.Args) > 0 && a.taintedArg(e.Args[0], s)
			case "Done", "Deadline":
				return a.taintedArg(sel.X, s)
			}
		}
	}
	return false
}

func (a *ctxFlow) taintedArg(e ast.Expr, s taintState) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := identObj(a.info, root)
	return obj != nil && s[obj]
}

// taintedChan reports whether a received-from channel expression is the
// context's Done channel (waiting on cancellation is the sanctioned
// blocking receive).
func (a *ctxFlow) taintedChan(e ast.Expr, s taintState) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return a.taintedArg(sel.X, s)
		}
		return false
	}
	return a.taintedArg(e, s)
}

func (a *ctxFlow) call(call *ast.CallExpr, s taintState) {
	if pkgFuncCall(a.info, call, "time", "Sleep") {
		a.report(call.Pos(), "time.Sleep cannot be cancelled; use a time.Timer and select on the context's Done channel")
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || a.info.Selections[sel] == nil {
		return
	}
	t := a.info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if !isNamedType(t, "net/http", "Client") || len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	if inner, ok := arg.(*ast.CallExpr); ok && a.derives(inner, s) {
		return // Do(http.NewRequestWithContext-style inline build)
	}
	if !a.taintedArg(arg, s) {
		a.report(call.Pos(), "http request sent without the function's context; build it with http.NewRequestWithContext")
	}
}

// selectStmt passes a select that either cannot block (default clause)
// or has a cancellation arm receiving from a context-derived Done
// channel.
func (a *ctxFlow) selectStmt(sel *ast.SelectStmt, s taintState) {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return // default: non-blocking
		}
		if recv := commRecv(cc.Comm); recv != nil && a.taintedChan(recv.X, s) {
			return
		}
	}
	a.report(sel.Pos(), "select blocks with no arm receiving from the context's Done channel")
}

// commRecv extracts the receive operation of a communication clause, if
// it is one.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	var e ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		e = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			e = c.Rhs[0]
		}
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u
	}
	return nil
}

func (a *ctxFlow) report(pos token.Pos, format string, args ...any) {
	if a.emit != nil {
		a.emit(pos, format, args...)
	}
}
