package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBal checks mutex lock/unlock balance across CFG paths. The serving
// and replication layers lean on short critical sections around shared
// state (snapshot pointers, caches, metrics); an early return that skips
// an Unlock deadlocks the next request, which no unit test reliably
// catches. Per function, a forward dataflow tracks each mutex's hold
// depth along every path — through branches, loops, early returns and
// panic edges — with defer recognition: a `defer mu.Unlock()` (or a
// deferred function literal that unlocks) releases at function exit on
// the paths where it was registered.
//
// Diagnostics:
//
//   - a lock still held when the function exits on some path (reported
//     at the Lock call);
//   - paths that disagree about the hold state where they merge
//     (if/else where only one arm unlocks);
//   - a second Lock of a plain Mutex already held on the same path
//     (self-deadlock); RLock is re-entrant and exempt;
//   - a second Unlock on a path that already released (panics at
//     runtime);
//   - a lock-bearing value copied: by-value parameters and assignments
//     whose type transitively contains a sync.Mutex/RWMutex/Once/
//     WaitGroup/Cond.
//
// An Unlock with no prior Lock in the same function is deliberately not
// reported: unlock-helper methods (a singleflight's release path, a
// caller-locked invariant) are a legitimate pattern, and the analysis
// assumes the caller holds the lock. Mutexes reached through embedded
// fields or sync.Locker interfaces are not tracked; identity is the
// syntactic selector path (s.mu), so two names for one mutex are two
// facts. Functions that intentionally return holding a lock document it
// with a suppression.
var LockBal = &Analyzer{
	Name: "lockbal",
	Doc:  "check mutex lock/unlock balance across all CFG paths, defer-aware; flag lock copies",
	Run: func(pass *Pass) {
		funcBodies(pass.Pkg, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkLockCopies(pass, decl, lit)
			a := &lockBal{info: pass.Pkg.Info}
			flow := Flow[lockState]{
				Init:     func() lockState { return lockState{} },
				Clone:    cloneLockState,
				Transfer: a.transfer,
				Join:     joinLockState,
			}
			cfg := BuildCFG(body, pass.Pkg.Info)
			sol := flow.Forward(cfg)
			a.emit = func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			}
			flow.ReportPass(cfg, sol)
			a.checkJoins(cfg, flow, sol)
			a.checkExit(cfg, flow, sol)
			a.flush(pass)
		})
	},
}

// lockFact is one mutex's state along a path. Deferred unlocks are
// counted into the fact itself rather than kept as a separate defer set:
// the registration travels the same path as the Lock it balances, so an
// unrelated early return elsewhere in the function cannot decouple them
// at a join.
type lockFact struct {
	name       string    // display name: the selector path, e.g. "s.mu"
	depth      int       // current hold depth (capped)
	defUnlocks int       // net deferred unlocks registered on this path
	lockPos    token.Pos // most recent Lock site
	released   bool      // an Unlock already ran at depth zero on this path
}

func (f *lockFact) clone() *lockFact { c := *f; return &c }

// outstanding is the hold depth that will remain after the deferred
// unlocks run at function exit.
func (f *lockFact) outstanding() int { return f.depth - f.defUnlocks }

// lockState carries one fact per mutex key.
type lockState map[string]*lockFact

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v.clone()
	}
	return out
}

// joinLockState merges src into dst per mutex: the path with the larger
// outstanding hold (depth minus deferred unlocks) wins, so a leak on any
// path survives to the exit check; ties break toward the deeper raw
// depth so nested-lock diagnostics survive the merge. Released flags
// join with or.
func joinLockState(dst, src lockState) (lockState, bool) {
	changed := false
	for k, sf := range src {
		df, ok := dst[k]
		if !ok {
			dst[k] = sf.clone()
			changed = true
			continue
		}
		if sf.outstanding() > df.outstanding() ||
			(sf.outstanding() == df.outstanding() && sf.depth > df.depth) {
			df.depth, df.defUnlocks, df.lockPos = sf.depth, sf.defUnlocks, sf.lockPos
			changed = true
		}
		if sf.released && !df.released {
			df.released = true
			changed = true
		}
	}
	return dst, changed
}

const maxLockDepth = 3 // cap keeps the lattice finite; real nesting is 1

type lockBal struct {
	info *types.Info
	emit func(pos token.Pos, format string, args ...any)

	// pending collects join/exit findings keyed by position+message so
	// the repeated solver passes cannot duplicate them; flush reports
	// them in stable order.
	pending map[string]pendingDiag
}

type pendingDiag struct {
	pos token.Pos
	msg string
}

func (a *lockBal) transfer(_ *Block, n Node, s lockState) lockState {
	if d, ok := n.Ast.(*ast.DeferStmt); ok && !n.DeferRun {
		a.registerDefer(d.Call, s)
		return s
	}
	if n.DeferRun {
		return s // accounted at registration, via defUnlocks
	}
	walkExpr(n.Ast, func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok {
			a.lockOp(c, s)
		}
		return true
	})
	return s
}

// registerDefer credits a deferred unlock — `defer mu.Unlock()` or a
// deferred function literal whose body unlocks — against the mutex's
// fact on this path. A literal that locks and unlocks internally is
// balanced and credits nothing (the net count is what's credited).
func (a *lockBal) registerDefer(call *ast.CallExpr, s lockState) {
	counts := make(map[string]int)
	names := make(map[string]string)
	consider := func(c *ast.CallExpr) {
		key, name, op, ok := a.classifyLockOp(c)
		if !ok {
			return
		}
		names[key] = name
		switch op {
		case "Unlock", "RUnlock":
			counts[key]++
		case "Lock", "RLock":
			counts[key]--
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		walkExpr(fl.Body, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				consider(c)
			}
			return true
		})
	} else {
		consider(call)
	}
	for key, n := range counts {
		if n <= 0 {
			continue
		}
		f := s[key]
		if f == nil {
			f = &lockFact{name: names[key]}
			s[key] = f
		}
		if f.defUnlocks += n; f.defUnlocks > maxLockDepth {
			f.defUnlocks = maxLockDepth // cap keeps the lattice finite
		}
	}
}

// classifyLockOp resolves call as a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the mutex's state key, display
// name and operation.
func (a *lockBal) classifyLockOp(call *ast.CallExpr) (key, name, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	t := a.info.TypeOf(sel.X)
	if t == nil {
		return "", "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if !isNamedType(t, "sync", "RWMutex") && !isNamedType(t, "sync", "Mutex") {
		return "", "", "", false
	}
	key, name, ok = lockKey(a.info, sel.X)
	if !ok {
		return "", "", "", false
	}
	if op == "RLock" || op == "RUnlock" {
		key += "/r"
		name += " (read)"
	}
	return key, name, op, true
}

// lockOp applies one call if it is a mutex operation.
func (a *lockBal) lockOp(call *ast.CallExpr, s lockState) {
	key, name, op, ok := a.classifyLockOp(call)
	if !ok {
		return
	}
	read := op == "RLock" || op == "RUnlock"
	f := s[key]
	if f == nil {
		f = &lockFact{name: name}
		s[key] = f
	}
	switch op {
	case "Lock", "RLock":
		if f.depth >= 1 && !read {
			a.report(call.Pos(), "second Lock of %s on a path where it is already held (self-deadlock)", f.name)
		}
		if f.depth < maxLockDepth {
			f.depth++
		}
		f.lockPos = call.Pos()
	case "Unlock", "RUnlock":
		switch {
		case f.depth > 0:
			f.depth--
			if f.depth == 0 {
				f.released = true
			}
		case f.released:
			a.report(call.Pos(), "second Unlock of %s on a path that already released it", f.name)
		default:
			// No Lock in this function: assume a caller-held lock
			// (unlock-helper pattern) rather than guessing.
			f.released = true
		}
	}
}

// checkJoins recomputes each reached block's out-state and reports
// merge points whose incoming paths disagree about a mutex's hold
// depth — the "locked on some paths but not others" class.
func (a *lockBal) checkJoins(cfg *CFG, flow Flow[lockState], sol Solution[lockState]) {
	outs := make(map[*Block]lockState, len(sol.In))
	emit := a.emit
	a.emit = nil // out-state recomputation must not re-report transfer diagnostics
	for _, b := range cfg.Blocks {
		in, ok := sol.In[b]
		if !ok {
			continue
		}
		s := cloneLockState(in)
		for _, n := range b.Nodes {
			s = flow.Transfer(b, n, s)
		}
		outs[b] = s
	}
	a.emit = emit
	preds := make(map[*Block][]*Block)
	for _, b := range cfg.Blocks {
		if _, ok := outs[b]; !ok {
			continue
		}
		for _, succ := range b.Succs {
			preds[succ] = append(preds[succ], b)
		}
	}
	for _, b := range cfg.Blocks {
		ps := preds[b]
		if len(ps) < 2 || b == cfg.Exit {
			continue // exit imbalance is checkExit's, with defers applied
		}
		keys := make(map[string]bool)
		for _, p := range ps {
			for key := range outs[p] {
				keys[key] = true
			}
		}
		for key := range keys {
			min, max := maxLockDepth+1, -1
			var held *lockFact
			for _, p := range ps {
				depth := 0
				if f, ok := outs[p][key]; ok {
					depth = f.depth
					if depth > 0 {
						held = f
					}
				}
				if depth < min {
					min = depth
				}
				if depth > max {
					max = depth
				}
			}
			if min != max && held != nil && held.lockPos.IsValid() {
				a.report(held.lockPos, "%s locked here is held on some but not all paths where they merge; unlock on every path before the merge", held.name)
			}
		}
	}
}

// checkExit reports locks whose hold depth survives the deferred
// unlocks on some path into the exit block.
func (a *lockBal) checkExit(cfg *CFG, flow Flow[lockState], sol Solution[lockState]) {
	in, ok := sol.In[cfg.Exit]
	if !ok {
		return
	}
	emit := a.emit
	a.emit = nil
	s := cloneLockState(in)
	for _, n := range cfg.Exit.Nodes {
		s = flow.Transfer(cfg.Exit, n, s)
	}
	a.emit = emit
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if f := s[k]; f.outstanding() > 0 && f.lockPos.IsValid() {
			a.report(f.lockPos, "%s locked here is still held when the function exits on some path; unlock on every path or defer the unlock", f.name)
		}
	}
}

// report collects into the dedup set (join and exit checks can observe
// the same imbalance); transfer-time reports flow through it too so a
// loop body replay cannot double-report.
func (a *lockBal) report(pos token.Pos, format string, args ...any) {
	if a.emit == nil {
		return
	}
	if a.pending == nil {
		a.pending = make(map[string]pendingDiag)
	}
	msg := fmt.Sprintf(format, args...)
	a.pending[fmt.Sprintf("%d:%s", pos, msg)] = pendingDiag{pos: pos, msg: msg}
}

// flush emits the collected diagnostics in stable position order.
func (a *lockBal) flush(pass *Pass) {
	keys := make([]string, 0, len(a.pending))
	for k := range a.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := a.pending[k]
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

// lockKey renders a stable identity and display name for the mutex
// expression: an identifier or a selector chain of identifiers. The
// identity embeds the root object's declaration position so shadowed
// names stay distinct.
func lockKey(info *types.Info, e ast.Expr) (key, name string, ok bool) {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := identObj(info, x)
			if obj == nil {
				return "", "", false
			}
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			display := parts[0]
			for _, p := range parts[1:] {
				display += "." + p
			}
			return fmt.Sprintf("%d:%s", obj.Pos(), display), display, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", "", false
		}
	}
}

// lockTypes are the sync types whose by-value copy is always a bug.
var lockTypes = [...]string{"Mutex", "RWMutex", "Once", "WaitGroup", "Cond"}

// containsLock reports whether t transitively contains one of the sync
// lock types by value.
func containsLock(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	for _, name := range lockTypes {
		if isNamedType(t, "sync", name) {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}

// checkLockCopies flags by-value parameters and copy assignments of
// lock-bearing types — the AST-level half of lockbal, mirroring go
// vet's copylocks in miniature.
func checkLockCopies(pass *Pass, decl *ast.FuncDecl, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	var ftype *ast.FuncType
	var body *ast.BlockStmt
	if decl != nil {
		ftype, body = decl.Type, decl.Body
	} else {
		ftype, body = lit.Type, lit.Body
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			t := info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, ptr := t.(*types.Pointer); !ptr && containsLock(t, 0) {
				pass.Reportf(field.Pos(), "parameter passes a %s by value; pass a pointer so the lock is shared", types.TypeString(t, nil))
			}
		}
	}
	// Copy assignments: x := y or x = y where y is an addressable read
	// of a lock-bearing value (composite literals and calls initialize,
	// they do not copy a live lock). Nested function literals are
	// skipped; funcBodies visits them on their own.
	walkExpr(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
				continue // discarded, not a live second copy
			}
			switch rhs.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			default:
				continue
			}
			if rootIdent(rhs) == nil {
				continue
			}
			t := info.TypeOf(rhs)
			if t == nil {
				continue
			}
			if _, ptr := t.(*types.Pointer); !ptr && containsLock(t, 0) {
				pass.Reportf(as.Lhs[i].Pos(), "assignment copies a %s by value; use a pointer so the lock is shared", types.TypeString(t, nil))
			}
		}
		return true
	})
}
