package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// This file implements a lightweight intraprocedural control-flow graph
// over go/ast function bodies — the substrate for the dataflow analyzers
// (mutafterpub, maporder, ctxflow, lockbal). It is a miniature of
// golang.org/x/tools/go/cfg, kept stdlib-only like the rest of the
// framework.
//
// Model and soundness limits (shared by every analysis built on it):
//
//   - One CFG per function body (FuncDecl or FuncLit). Calls are opaque:
//     no interprocedural propagation.
//   - Statements and the expressions evaluated with them (an if condition,
//     a range operand, a case expression) appear as Nodes inside basic
//     Blocks; analyzers walk each Node's subtree themselves and must skip
//     nested *ast.FuncLit bodies, which get their own CFGs.
//   - defer is modeled at function exit: every DeferStmt registers in
//     source order, and the Exit block replays them in reverse order as
//     DeferRun nodes. Conditionally-registered defers are replayed on all
//     paths (analyses track registration facts if they need the
//     distinction); a defer inside a loop is replayed once.
//   - panic(x) is an exit edge (deferred calls still run), so a
//     lock-held-at-panic path is visible to lockbal.
//   - goto, labeled break/continue, switch fallthrough and select are
//     supported; dead code after a terminating statement lands in blocks
//     with no predecessors, which dataflow never reaches.
type CFG struct {
	Blocks []*Block // Blocks[0] is Entry; the last block is Exit
	Entry  *Block
	Exit   *Block // all returns and panics edge here; holds the DeferRun replay
}

// Node is one element of a Block: a statement or evaluated expression,
// or — when DeferRun is set — the call expression of a defer replayed at
// function exit.
type Node struct {
	Ast ast.Node
	// DeferRun marks an exit-time replay of a deferred call; Ast is the
	// *ast.CallExpr of the original defer statement.
	DeferRun bool
	// Comm marks a select communication clause statement: it executes
	// only under the select's arbitration, so blocking-op analyses judge
	// the enclosing SelectStmt instead of the bare channel operation.
	Comm bool
}

// Block is a maximal straight-line sequence of Nodes with its control
// successors.
type Block struct {
	Index int
	Kind  string // "entry", "if.then", "for.body", ... for debugging and tests
	Nodes []Node
	Succs []*Block

	// Ranges holds the enclosing *ast.RangeStmt headers of this block,
	// outermost first — the context maporder needs to know whether a node
	// executes under an unordered map iteration.
	Ranges []*ast.RangeStmt
}

// AddSucc appends s to b's successors, once.
func (b *Block) addSucc(s *Block) {
	for _, x := range b.Succs {
		if x == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// breakable is one enclosing construct a break (and possibly continue)
// can target.
type breakable struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type cfgBuilder struct {
	cfg  *CFG
	info *types.Info
	cur  *Block

	stack        []breakable
	rangeStack   []*ast.RangeStmt
	pendingLabel string
	fallTarget   *Block // the next case clause, for fallthrough

	defers []*ast.DeferStmt
	labels map[string]*Block
	gotos  map[string][]*Block // label -> blocks ending in goto label
}

// BuildCFG constructs the control-flow graph of one function body. info
// is used to recognize the panic builtin; it may be nil, in which case
// panic calls fall through like ordinary statements.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		info:   info,
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cur = b.cfg.Entry
	exit := &Block{Kind: "exit"} // appended last so Blocks stays topological-ish
	b.cfg.Exit = exit
	b.stmtList(body.List)
	b.edgeTo(exit)
	exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, exit)
	// Replay deferred calls at exit, last registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, Node{Ast: b.defers[i].Call, DeferRun: true})
	}
	// Resolve forward gotos left pending (a goto may jump to a label
	// defined later in the body).
	for label, srcs := range b.gotos {
		target, ok := b.labels[label]
		if !ok {
			target = exit // type-checked code never hits this
		}
		for _, src := range srcs {
			src.addSucc(target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{
		Index:  len(b.cfg.Blocks),
		Kind:   kind,
		Ranges: append([]*ast.RangeStmt(nil), b.rangeStack...),
	}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo links the current block to next, unless the current position is
// unreachable (nil).
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		b.cur.addSucc(next)
	}
}

// startBlock makes next the current block.
func (b *cfgBuilder) startBlock(next *Block) { b.cur = next }

// add appends a plain node to the current block. Statements after a
// terminator land in a fresh predecessor-less block so they stay in the
// graph (as dead code) without corrupting edges.
func (b *cfgBuilder) add(n ast.Node) { b.addNode(Node{Ast: n}) }

func (b *cfgBuilder) addNode(n Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is a join point (goto may target it from anywhere).
		lb := b.newBlock("label." + s.Label.Name)
		b.edgeTo(lb)
		b.startBlock(lb)
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.cfg.Exit)
		b.startBlock(nil)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.defers = append(b.defers, s)
		b.add(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edgeTo(then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			b.edgeTo(els)
		} else {
			b.edgeTo(done)
		}
		b.startBlock(then)
		b.stmt(s.Body)
		b.edgeTo(done)
		if s.Else != nil {
			b.startBlock(els)
			b.stmt(s.Else)
			b.edgeTo(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edgeTo(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		head.addSucc(body)
		if s.Cond != nil {
			head.addSucc(done)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, Node{Ast: s.Post})
			post.addSucc(head)
			cont = post
		}
		b.stack = append(b.stack, breakable{label: label, brk: done, cont: cont})
		b.startBlock(body)
		b.stmt(s.Body)
		b.edgeTo(cont)
		b.stack = b.stack[:len(b.stack)-1]
		b.startBlock(done)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edgeTo(head)
		b.startBlock(head)
		b.add(s) // the header node: range operand and iteration vars
		done := b.newBlock("range.done")
		head.addSucc(done) // zero iterations
		b.rangeStack = append(b.rangeStack, s)
		body := b.newBlock("range.body")
		head.addSucc(body)
		b.stack = append(b.stack, breakable{label: label, brk: done, cont: head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.edgeTo(head)
		b.stack = b.stack[:len(b.stack)-1]
		b.rangeStack = b.rangeStack[:len(b.rangeStack)-1]
		b.startBlock(done)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, Node{Ast: e})
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s) // analyzers judge arbitration (ctx.Done arms) on the whole select
		head := b.cur
		done := b.newBlock("select.done")
		b.stack = append(b.stack, breakable{label: label, brk: done})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			head.addSucc(blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, Node{Ast: cc.Comm, Comm: true})
			} else {
				hasDefault = true
			}
			b.startBlock(blk)
			b.stmtList(cc.Body)
			b.edgeTo(done)
		}
		_ = hasDefault // a select blocks until an arm fires; no extra edge needed
		b.stack = b.stack[:len(b.stack)-1]
		b.startBlock(done)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.info != nil && isBuiltinCall(b.info, call, "panic") {
			b.edgeTo(b.cfg.Exit)
			b.startBlock(nil)
		}

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt:
		// straight-line nodes.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape: every clause is
// a successor of the header, fallthrough chains to the next clause's
// body, and a missing default adds a header->done edge.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt, caseExprs func(*ast.CaseClause, *Block)) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.stack = append(b.stack, breakable{label: label, brk: done})
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("switch.case")
		head.addSucc(blocks[i])
		if cc.List == nil {
			hasDefault = true
		} else if caseExprs != nil {
			caseExprs(cc, blocks[i])
		}
	}
	if !hasDefault {
		head.addSucc(done)
	}
	for i, cc := range clauses {
		b.startBlock(blocks[i])
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.withFallthrough(next, func() { b.stmtList(cc.Body) })
		b.edgeTo(done)
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.startBlock(done)
}

// fallthroughTarget is managed as a builder field via withFallthrough so
// nested switches restore the enclosing target.
func (b *cfgBuilder) withFallthrough(target *Block, fn func()) {
	prev := b.fallTarget
	b.fallTarget = target
	fn()
	b.fallTarget = prev
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.stack) - 1; i >= 0; i-- {
			if label == "" || b.stack[i].label == label {
				b.edgeTo(b.stack[i].brk)
				break
			}
		}
		b.startBlock(nil)
	case "continue":
		for i := len(b.stack) - 1; i >= 0; i-- {
			if b.stack[i].cont != nil && (label == "" || b.stack[i].label == label) {
				b.edgeTo(b.stack[i].cont)
				break
			}
		}
		b.startBlock(nil)
	case "goto":
		if b.cur != nil {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.startBlock(nil)
	case "fallthrough":
		if b.fallTarget != nil {
			b.edgeTo(b.fallTarget)
		}
		b.startBlock(nil)
	}
}

// String renders the CFG for debugging and the framework tests.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
