// Package ctxflowfix is a golden fixture for the ctxflow analyzer: a
// context.Context parameter must be threaded into every blocking
// operation of the function.
package ctxflowfix

import (
	"context"
	"net/http"
	"time"
)

// poll threads the context everywhere: derived timeout context, a
// context-bound request, and a select with a Done arm.
func poll(ctx context.Context, c *http.Client, ticks <-chan struct{}) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, "http://example.test/", nil)
	if err != nil {
		return err
	}
	if _, err := c.Do(req); err != nil { // fine: req derives from ctx
		return err
	}
	select {
	case <-ticks:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// dropped is the seeded bug: it accepts a context and then blocks
// without it on every operation.
func dropped(ctx context.Context, c *http.Client, ticks chan struct{}) {
	time.Sleep(time.Second) // want "time.Sleep cannot be cancelled"
	req, _ := http.NewRequestWithContext(context.Background(), "GET", "http://example.test/", nil)
	c.Do(req)           // want "http request sent without the function's context"
	<-ticks             // want "blocking channel receive with no cancellation arm"
	ticks <- struct{}{} // want "blocking channel send with no cancellation arm"
	select { // want "select blocks with no arm receiving from the context's Done channel"
	case <-ticks:
	case ticks <- struct{}{}:
	}
}

// derived accepts the context through a chain of derivations.
func derived(ctx context.Context, c *http.Client) {
	vctx := context.WithValue(ctx, struct{}{}, "k")
	req, _ := http.NewRequest("GET", "http://example.test/", nil) // only ctxflow runs over this fixture
	req = req.WithContext(vctx)
	c.Do(req) // fine: req rebound to a context-derived request
}

// doneChan stores ctx.Done in a variable; receiving from it is the
// sanctioned blocking wait, and a select arm on it cancels the select.
func doneChan(ctx context.Context, ticks chan struct{}) {
	done := ctx.Done()
	<-done // fine: waiting for cancellation itself
	select {
	case <-ticks:
	case <-done:
	}
}

// nonBlocking selects with a default clause, which cannot block.
func nonBlocking(ctx context.Context, ticks chan struct{}) {
	select {
	case <-ticks:
	default:
	}
}

// rangeRecv drains a channel with range, which blocks between
// iterations with no cancellation arm.
func rangeRecv(ctx context.Context, ticks chan struct{}) {
	for range ticks { // want "range over a channel blocks with no cancellation arm"
	}
}

// group mimics an errgroup constructor: a helper that accepts the
// context and returns a derived one.
func group(ctx context.Context) (int, context.Context) {
	return 0, ctx
}

// helperDerived trusts the helper's context-typed result: a Done arm on
// gctx is a cancellation arm.
func helperDerived(ctx context.Context, ticks chan struct{}) {
	n, gctx := group(ctx)
	_ = n
	select {
	case <-ticks:
	case <-gctx.Done():
	}
}

// noCtx has no context parameter: channel discipline is out of scope
// for this rule.
func noCtx(ticks chan struct{}) {
	<-ticks
	time.Sleep(time.Millisecond)
}
