// Package bannedcallfix is a golden fixture for the bannedcall analyzer.
package bannedcallfix

import (
	"fmt"
	"os"
)

// Validate is library code: it may neither panic nor kill the process.
func Validate(v int) {
	if v < 0 {
		panic("negative") // want "call to panic is banned"
	}
	if v > 100 {
		os.Exit(1) // want "call to os.Exit is banned"
	}
}

// MustValidate follows the Must* convention and may panic.
func MustValidate(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("negative %d", v))
	}
	return v
}
