// Package floatcmpfix is a golden fixture for the floatcmp analyzer.
package floatcmpfix

func compare(a, b float64, c float32, i int, s string) bool {
	if a == b { // want "floating-point comparison with =="
		return true
	}
	if c != 2.5 { // want "floating-point comparison with !="
		return true
	}
	ok := 1.5 == 2.5 // want "floating-point comparison with =="
	if i == 3 || s == "x" {
		return ok
	}
	//lint:ignore floatcmp fixture demonstrating an intentional exact comparison
	if a == 0 {
		return false
	}
	return a < b
}
