// Package mutafterpubfix is a golden fixture for the mutafterpub
// analyzer: writes to a value after it escapes via an atomic pointer
// store, a channel send, or a return from a Build* function.
package mutafterpubfix

import "sync/atomic"

type snapshot struct {
	seq    int
	tables map[string][]byte
	rows   []int
}

// swap publishes via atomic.Pointer.Store, then keeps writing — the
// seeded post-publish mutation bug.
func swap(ptr *atomic.Pointer[snapshot]) {
	snap := &snapshot{tables: map[string][]byte{}}
	snap.seq = 1 // fine: not yet published
	ptr.Store(snap)
	snap.seq = 2                  // want "write through snap after it was published via atomic Pointer.Store"
	snap.tables["t1"] = []byte{1} // want "write through snap after it was published"
	delete(snap.tables, "t1")     // want "delete through snap after it was published"
}

// send publishes through a channel; the loop back edge carries the
// publish fact into the next iteration's write.
func send(ch chan *snapshot) {
	for i := 0; i < 3; i++ {
		snap := &snapshot{} // fresh value each iteration: clean until sent
		snap.seq = i
		ch <- snap
	}
	shared := &snapshot{}
	for i := 0; i < 3; i++ {
		ch <- shared
		shared.seq = i // want "write through shared after it was published via channel send"
	}
}

// BuildSnapshot returns a published value; the deferred literal runs
// after the return has handed it to the caller.
func BuildSnapshot() *snapshot {
	snap := &snapshot{}
	defer func() {
		snap.seq = 99 // want "write through snap after it was published via return from builder"
	}()
	snap.seq = 1 // fine: before the return
	return snap
}

// alias shows a reference-typed alias carrying the publish fact, while
// rebinding to a fresh value clears it.
func alias(ptr *atomic.Pointer[snapshot]) {
	snap := &snapshot{tables: map[string][]byte{}}
	tables := snap.tables
	ptr.Store(snap)
	rows := snap.rows
	rows[0] = 1 // want "write through rows after it was published"
	_ = tables
	snap = &snapshot{} // strong update: a different value now
	snap.seq = 5       // fine: the rebound value is unpublished
}

// helper is not a Build* function: returning does not publish.
func helper() *snapshot {
	snap := &snapshot{}
	defer func() { snap.seq = 2 }() // fine: never published
	return snap
}
