// Package seededrandfix is a golden fixture for the seededrand analyzer.
package seededrandfix

import "math/rand"

func draws(seed int64) []float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned entry points
	xs := []float64{r.Float64()}        // methods on a seeded *rand.Rand are fine
	xs = append(xs, rand.Float64())     // want "top-level rand.Float64"
	n := rand.Intn(10)                  // want "top-level rand.Intn"
	rand.Shuffle(n, func(i, j int) {})  // want "top-level rand.Shuffle"
	return xs
}
