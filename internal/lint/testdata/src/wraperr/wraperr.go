// Package wraperrfix is a golden fixture for the wraperr analyzer.
package wraperrfix

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func wrap(err error, n int) []error {
	return []error{
		fmt.Errorf("context: %w", err),
		fmt.Errorf("context: %v", err), // want "formatted with %v"
		fmt.Errorf("context: %s", err), // want "formatted with %s"
		fmt.Errorf("%w: %s", errBase, err.Error()),
		fmt.Errorf("%w: %w", errBase, err),
		fmt.Errorf("%*d%% done: %v", 5, n, err), // want "formatted with %v"
		fmt.Errorf("plain %d, no error", n),
	}
}
