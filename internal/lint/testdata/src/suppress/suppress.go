// Package suppressfix exercises the suppression audit: one directive
// that silences a real finding, one that silences nothing.
package suppressfix

func eq(a, b float64) bool {
	return a == b //lint:ignore floatcmp fixture exercises a used suppression
}

//lint:ignore floatcmp stale on purpose: the line below compares ints
func intEq(a, b int) bool {
	return a == b
}
