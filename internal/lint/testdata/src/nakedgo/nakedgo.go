// Package nakedgofix is a golden fixture for the nakedgo analyzer.
package nakedgofix

import (
	"sync"

	"ipv4market/internal/parallel"
)

func spawn(done chan struct{}, wg *sync.WaitGroup, results chan<- int) {
	go func() { // want "naked goroutine"
		println("fire and forget")
	}()
	go func() { // WaitGroup coordination
		defer wg.Done()
		println("ok")
	}()
	go func() { // channel send
		results <- 1
	}()
	go func() { // deferred close signals completion
		defer close(done)
	}()
	go namedWorker() // named functions are out of scope for the heuristic
}

func namedWorker() {}

// supervised hands its work to a parallel.Group: the Group recovers
// panics and surfaces the first error at Wait, so the launching
// goroutine is coordinated even without a syntactic signal.
func supervised(g *parallel.Group, work func() error) {
	go func() {
		g.Go(work)
	}()
}

// launcher has a Go method but is not parallel.Group; the exemption is
// type-aware, so handing work to it is still a naked goroutine.
type launcher struct{}

func (launcher) Go(func() error) {}

func decoy(l launcher) {
	go func() { // want "naked goroutine"
		l.Go(func() error { return nil })
	}()
}
