// Package nakedgofix is a golden fixture for the nakedgo analyzer.
package nakedgofix

import "sync"

func spawn(done chan struct{}, wg *sync.WaitGroup, results chan<- int) {
	go func() { // want "naked goroutine"
		println("fire and forget")
	}()
	go func() { // WaitGroup coordination
		defer wg.Done()
		println("ok")
	}()
	go func() { // channel send
		results <- 1
	}()
	go func() { // deferred close signals completion
		defer close(done)
	}()
	go namedWorker() // named functions are out of scope for the heuristic
}

func namedWorker() {}
