// Package noctxhttpfix is a golden fixture for the noctxhttp analyzer.
package noctxhttpfix

import (
	"context"
	"net/http"
	"net/url"
	"strings"
)

func fetch(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.test/", nil) // the sanctioned form
	if err != nil {
		return err
	}
	resp, err := c.Do(req) // client methods are fine: judged by the request they send
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func sloppy() {
	http.Get("http://example.test/")                                         // want "context-free http.Get"
	http.Head("http://example.test/")                                        // want "context-free http.Head"
	http.Post("http://example.test/", "text/plain", strings.NewReader("x"))  // want "context-free http.Post"
	http.PostForm("http://example.test/", url.Values{})                      // want "context-free http.PostForm"
	req, _ := http.NewRequest(http.MethodGet, "http://example.test/", nil)   // want "context-free http.NewRequest"
	_ = req
}
