// Package maporderfix is a golden fixture for the maporder analyzer:
// encoding in map-iteration order breaks the determinism contract
// (byte-identical artifacts and ETags at any worker count).
package maporderfix

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// emitDirect is the seeded bug: encoder calls directly inside a map
// range.
func emitDirect(w io.Writer, cw *csv.Writer, counts map[string]int) error {
	for name, n := range counts {
		fmt.Fprintf(w, "%s,%d\n", name, n) // want "fmt.Fprintf inside range over map counts"
		if err := cw.Write([]string{name}); err != nil { // want "Writer.Write inside range over map counts"
			return err
		}
	}
	return nil
}

// hashDirect feeds an ETag hash in map order: same data, different
// checksum every run.
func hashDirect(counts map[string]int) uint64 {
	h := fnv.New64a()
	for name := range counts {
		h.Write([]byte(name)) // want "Hash64.Write inside range over map counts"
	}
	return h.Sum64()
}

// emitSorted is the sanctioned pattern: collect, sort, then encode.
func emitSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for name := range counts {
		keys = append(keys, name) // accumulation alone is fine...
	}
	sort.Strings(keys) // ...because the sort launders the order
	for _, name := range keys {
		fmt.Fprintf(w, "%s,%d\n", name, counts[name])
	}
}

// accumulateUnsorted hoists rows out of the loop and encodes them
// without the intervening sort.
func accumulateUnsorted(counts map[string]int) ([]byte, error) {
	rows := make([]string, 0, len(counts))
	for name := range counts {
		rows = append(rows, name)
	}
	return json.Marshal(rows) // want "json.Marshal emits rows, which was accumulated in map-iteration order"
}

// rangeTainted ranges over the unsorted accumulation — exactly as
// unordered as the map itself.
func rangeTainted(w io.Writer, counts map[string]int) {
	rows := make([]string, 0, len(counts))
	for name := range counts {
		rows = append(rows, name)
	}
	for _, name := range rows {
		fmt.Fprintln(w, name) // want "fmt.Fprintln inside range over rows .filled in map order."
	}
}

// concat builds a string in map order and writes it later.
func concat(w io.Writer, counts map[string]int) {
	var body string
	for name := range counts {
		body += name + "\n"
	}
	io.WriteString(w, body) //lint:ignore maporder fixture shows the package-function escape hatch is out of scope
	var buf bytes.Buffer
	buf.WriteString(body) // want "Buffer.WriteString emits body, which was accumulated in map-iteration order"
}

// perIterationBuffer writes into a buffer created inside the loop; the
// bytes land keyed by name, so the outcome is order-independent.
func perIterationBuffer(counts map[string]int) map[string][]byte {
	out := make(map[string][]byte, len(counts))
	for name := range counts {
		var buf bytes.Buffer
		buf.WriteString(name) // fine: loop-local writer
		out[name] = buf.Bytes()
	}
	return out
}

// sliceRange iterates a plain slice: ordered, nothing to report.
func sliceRange(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
