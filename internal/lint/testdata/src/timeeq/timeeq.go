// Package timeeqfix is a golden fixture for the timeeq analyzer.
package timeeqfix

import "time"

func compare(t, u time.Time, p *time.Time) bool {
	if t == u { // want "time.Time compared with =="
		return true
	}
	if t != u { // want "time.Time compared with !="
		return true
	}
	if p == nil { // pointer identity is fine
		return false
	}
	return t.Equal(u) || t.Month() == time.December
}
