// Package lockbalfix is a golden fixture for the lockbal analyzer:
// lock/unlock balance across CFG paths, defer-aware, plus lock copies.
package lockbalfix

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string][]byte
	stat int
}

// earlyReturn is the seeded bug: the miss path returns without
// unlocking, deadlocking the next caller.
func earlyReturn(s *store, key string) ([]byte, bool) {
	s.mu.Lock() // want "s.mu locked here is still held when the function exits on some path"
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	s.mu.Unlock()
	return v, true
}

// deferred is the sanctioned shape: the deferred unlock covers every
// exit, including the early return.
func deferred(s *store, key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil
	}
	return s.data[key]
}

// branchy unlocks on one arm only; the paths disagree where they merge.
func branchy(s *store, fast bool) {
	s.mu.Lock() // want "s.mu locked here is held on some but not all paths where they merge"
	if fast {
		s.mu.Unlock()
	}
	s.stat++
	s.mu.Unlock()
}

// double locks a plain mutex it already holds: self-deadlock.
func double(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want "second Lock of s.mu on a path where it is already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

// doubleUnlock releases twice; the second panics at runtime.
func doubleUnlock(s *store) {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want "second Unlock of s.mu on a path that already released it"
}

// release is an unlock helper: no Lock in this function, the caller
// holds it. Deliberately not reported.
func (s *store) release() {
	s.stat++
	s.mu.Unlock()
}

// deferredLit unlocks inside a deferred function literal; the exit
// replay walks the literal's body.
func deferredLit(s *store) {
	s.mu.Lock()
	defer func() {
		s.stat++
		s.mu.Unlock()
	}()
	s.stat = 1
}

// conditionalDefer registers the unlock on one path only; a defer that
// is not certain does not balance the lock.
func conditionalDefer(s *store, really bool) {
	s.mu.Lock() // want "s.mu locked here is still held when the function exits on some path"
	if really {
		defer s.mu.Unlock()
	}
	s.stat++
}

// reader uses the re-entrant read side of the RWMutex: clean.
func reader(s *store, key string) []byte {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.data[key]
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// byValue copies the mutex into the parameter: the callee locks a
// private copy.
func byValue(g guarded) int { // want "parameter passes a .*guarded by value"
	return g.n
}

func takesMutex(mu sync.Mutex) { // want "parameter passes a sync.Mutex by value"
	_ = mu
}

// copies duplicates a live lock through a dereference assignment.
func copies(g *guarded) int {
	h := *g // want "assignment copies a .*guarded by value"
	return h.n
}
