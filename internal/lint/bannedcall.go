package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BanSpec is one entry in the bannedcall deny-list. Exactly one of
// Builtin or Pkg+Func identifies the callee.
type BanSpec struct {
	Builtin string // builtin function name, e.g. "panic"
	Pkg     string // import path, e.g. "os"
	Func    string // function name, e.g. "Exit"

	AllowInMain    bool   // permitted anywhere in package main
	AllowMustFuncs bool   // permitted inside functions named Must*
	Reason         string // appended to the diagnostic
}

func (s BanSpec) display() string {
	if s.Builtin != "" {
		return s.Builtin
	}
	return s.Pkg + "." + s.Func
}

// DefaultBans is the deny-list the shipped ipv4lint enforces: no panics
// in library code (Must* constructors excepted, matching the stdlib's
// regexp.MustCompile convention) and no os.Exit outside package main,
// so library errors surface as errors and deferred cleanup runs.
func DefaultBans() []BanSpec {
	return []BanSpec{
		{
			Builtin:        "panic",
			AllowInMain:    true,
			AllowMustFuncs: true,
			Reason:         "return an error, or provide a Must* wrapper for known-valid inputs",
		},
		{
			Pkg:         "os",
			Func:        "Exit",
			AllowInMain: true,
			Reason:      "only package main may terminate the process",
		},
	}
}

// BannedCall builds the configurable deny-list analyzer. Test files are
// never loaded by the framework, so the rules apply to production code
// only.
func BannedCall(specs []BanSpec) *Analyzer {
	return &Analyzer{
		Name: "bannedcall",
		Doc:  "deny-list of calls (panic in library code, os.Exit outside main, ...)",
		Run: func(pass *Pass) {
			info := pass.Pkg.Info
			inMain := pass.Pkg.Types.Name() == "main"
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					isMust := strings.HasPrefix(fd.Name.Name, "Must")
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						for _, spec := range specs {
							if !matchesSpec(info, call, spec) {
								continue
							}
							if spec.AllowInMain && inMain {
								continue
							}
							if spec.AllowMustFuncs && isMust {
								continue
							}
							pass.Reportf(call.Pos(), "call to %s is banned here: %s", spec.display(), spec.Reason)
						}
						return true
					})
				}
			}
		},
	}
}

func matchesSpec(info *types.Info, call *ast.CallExpr, spec BanSpec) bool {
	if spec.Builtin != "" {
		return isBuiltinCall(info, call, spec.Builtin)
	}
	return pkgFuncCall(info, call, spec.Pkg, spec.Func)
}
