// Package lint implements a small static-analysis framework over the
// standard library's go/ast, go/parser, go/token and go/types packages,
// together with the repo-specific analyzers that guard the measurement
// pipeline's invariants: deterministic randomness in the synthetic-data
// generators, safe time and floating-point comparison in the timeline and
// price code, error-chain preservation, and panic/os.Exit hygiene in
// library packages.
//
// The framework deliberately has no dependencies outside the standard
// library (the module has none and must stay buildable offline). It is a
// miniature of golang.org/x/tools/go/analysis: an Analyzer holds a Run
// function that walks one type-checked package (a Pass) and reports
// Diagnostics with exact file:line:col positions.
//
// A finding can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is inert. Suppressions
// are deliberately narrow (one rule, one line) so they document each
// exception rather than disabling a rule wholesale.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a resolved source position, the rule that
// fired, and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional
// "file:line:col: message [rule]" form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through it.
type Analyzer struct {
	Name string // rule ID, e.g. "floatcmp"; used in output and suppression
	Doc  string // one-line description shown by ipv4lint -list
	Run  func(*Pass)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos. The position is resolved immediately
// so diagnostics stay meaningful after the Pass is gone.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, filters findings through
// the //lint:ignore suppression index, and returns the survivors sorted
// by file, line, column and rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := newIgnoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if !idx.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
