// Package lint implements a small static-analysis framework over the
// standard library's go/ast, go/parser, go/token and go/types packages,
// together with the repo-specific analyzers that guard the measurement
// pipeline's invariants: deterministic randomness in the synthetic-data
// generators, safe time and floating-point comparison in the timeline and
// price code, error-chain preservation, and panic/os.Exit hygiene in
// library packages.
//
// The framework deliberately has no dependencies outside the standard
// library (the module has none and must stay buildable offline). It is a
// miniature of golang.org/x/tools/go/analysis: an Analyzer holds a Run
// function that walks one type-checked package (a Pass) and reports
// Diagnostics with exact file:line:col positions.
//
// A finding can be suppressed with a comment on the offending line or the
// line directly above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is inert. Suppressions
// are deliberately narrow (one rule, one line) so they document each
// exception rather than disabling a rule wholesale.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a resolved source position, the rule that
// fired, and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional
// "file:line:col: message [rule]" form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Analyzer is one named rule. Run inspects the package held by the Pass
// and reports findings through it.
type Analyzer struct {
	Name string // rule ID, e.g. "floatcmp"; used in output and suppression
	Doc  string // one-line description shown by ipv4lint -list
	Run  func(*Pass)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos. The position is resolved immediately
// so diagnostics stay meaningful after the Pass is gone.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of applying a set of analyzers: the surviving
// diagnostics plus every //lint:ignore directive seen, each marked with
// whether it actually silenced a finding. Both slices are sorted by
// file, line, column.
type Result struct {
	Diagnostics  []Diagnostic
	Suppressions []Suppression
}

// Stale returns the suppressions that silenced nothing. Only meaningful
// when the full analyzer suite ran: under a subset, directives for the
// unselected rules are trivially unused.
func (r Result) Stale() []Suppression {
	var out []Suppression
	for _, s := range r.Suppressions {
		if !s.Used {
			out = append(out, s)
		}
	}
	return out
}

// Run applies every analyzer to every package, filters findings through
// the //lint:ignore suppression index, and returns the survivors sorted
// by file, line, column and rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll(pkgs, analyzers).Diagnostics
}

// RunAll is Run plus the suppression audit trail.
func RunAll(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	for _, pkg := range pkgs {
		idx := newIgnoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if !idx.suppressed(d) {
						res.Diagnostics = append(res.Diagnostics, d)
					}
				},
			}
			a.Run(pass)
		}
		for _, sup := range idx.all {
			res.Suppressions = append(res.Suppressions, *sup)
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return res
}
