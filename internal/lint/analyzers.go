package lint

// All returns the full analyzer suite in its default configuration —
// the set the ipv4lint CLI and the self-check test both run.
func All() []*Analyzer {
	return []*Analyzer{
		BannedCall(DefaultBans()),
		CtxFlow,
		FloatCmp,
		LockBal,
		MapOrder,
		MutAfterPub,
		NakedGo,
		NoCtxHTTP,
		SeededRand,
		TimeEq,
		WrapErr,
	}
}

// ByName returns the analyzers whose names appear in names, in the order
// given, or nil if any name is unknown (the second result names it).
func ByName(names []string) ([]*Analyzer, string) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := index[name]
		if !ok {
			return nil, name
		}
		out = append(out, a)
	}
	return out, ""
}
