package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"testing"
)

// parseFuncCFG type-checks an import-free snippet and builds the CFG of
// its first function body.
func parseFuncCFG(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && fd.Name.Name == "f" {
			return BuildCFG(fd.Body, info), fset
		}
	}
	t.Fatal("no function f in snippet")
	return nil, nil
}

func blockByKind(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no %q block in\n%s", kind, g)
	return nil
}

func preds(g *CFG, b *Block) []*Block {
	var out []*Block
	for _, p := range g.Blocks {
		for _, s := range p.Succs {
			if s == b {
				out = append(out, p)
			}
		}
	}
	return out
}

// assignTracker is a minimal analysis for framework tests: the state is
// the set of variable names that may have been assigned.
type assignTracker struct{}

func (assignTracker) flow() Flow[map[string]bool] {
	return Flow[map[string]bool]{
		Init: func() map[string]bool { return map[string]bool{} },
		Clone: func(s map[string]bool) map[string]bool {
			out := make(map[string]bool, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
		Transfer: func(_ *Block, n Node, s map[string]bool) map[string]bool {
			walkExpr(n.Ast, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							s[id.Name] = true
						}
					}
				}
				return true
			})
			return s
		},
		Join: func(dst, src map[string]bool) (map[string]bool, bool) {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return dst, changed
		},
	}
}

// TestCFGBranchJoin: both arms of an if/else flow into the join block,
// and facts from both survive the union join.
func TestCFGBranchJoin(t *testing.T) {
	g, _ := parseFuncCFG(t, `package p
func f(c bool) int {
	x := 0
	if c {
		y := 1
		_ = y
	} else {
		z := 2
		_ = z
	}
	return x
}`)
	done := blockByKind(t, g, "if.done")
	if n := len(preds(g, done)); n != 2 {
		t.Fatalf("if.done has %d preds, want 2:\n%s", n, g)
	}
	sol := assignTracker{}.flow().Forward(g)
	in := sol.In[done]
	for _, name := range [...]string{"x", "y", "z"} {
		if !in[name] {
			t.Errorf("join lost assignment fact %q: %v", name, in)
		}
	}
}

// TestCFGLoop: the loop body's facts travel the back edge into the head
// and out through the exit edge.
func TestCFGLoop(t *testing.T) {
	g, _ := parseFuncCFG(t, `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		inner := i
		total = inner
	}
	return total
}`)
	head := blockByKind(t, g, "for.head")
	body := blockByKind(t, g, "for.body")
	post := blockByKind(t, g, "for.post")
	done := blockByKind(t, g, "for.done")
	hasSucc := func(b, s *Block) bool {
		for _, x := range b.Succs {
			if x == s {
				return true
			}
		}
		return false
	}
	if !hasSucc(head, body) || !hasSucc(head, done) {
		t.Fatalf("for.head must branch to body and done:\n%s", g)
	}
	if !hasSucc(body, post) || !hasSucc(post, head) {
		t.Fatalf("back edge body->post->head missing:\n%s", g)
	}
	sol := assignTracker{}.flow().Forward(g)
	if in := sol.In[done]; !in["inner"] {
		t.Errorf("loop-body fact did not reach for.done via the back edge: %v", in)
	}
}

// TestCFGDeferOrder: the exit block replays deferred calls in reverse
// registration order.
func TestCFGDeferOrder(t *testing.T) {
	g, _ := parseFuncCFG(t, `package p
func first()  {}
func second() {}
func f() {
	defer first()
	defer second()
}`)
	var names []string
	for _, n := range g.Exit.Nodes {
		if !n.DeferRun {
			t.Fatalf("exit block holds a non-replay node: %v", n.Ast)
		}
		call := n.Ast.(*ast.CallExpr)
		names = append(names, call.Fun.(*ast.Ident).Name)
	}
	if want := []string{"second", "first"}; !reflect.DeepEqual(names, want) {
		t.Errorf("defer replay order = %v, want %v", names, want)
	}
}

// TestCFGPanicEdge: panic terminates the path (edge to exit), and the
// statements after it are never reached by the solver.
func TestCFGPanicEdge(t *testing.T) {
	g, _ := parseFuncCFG(t, `package p
func f() int {
	x := 1
	panic("boom")
	x = 2
	return x
}`)
	entry := g.Entry
	hasExit := false
	for _, s := range entry.Succs {
		if s == g.Exit {
			hasExit = true
		}
	}
	if !hasExit {
		t.Fatalf("panic must edge to exit:\n%s", g)
	}
	dead := blockByKind(t, g, "unreachable")
	if n := len(preds(g, dead)); n != 0 {
		t.Fatalf("dead code after panic has %d preds, want 0:\n%s", n, g)
	}
	sol := assignTracker{}.flow().Forward(g)
	if _, reached := sol.In[dead]; reached {
		t.Errorf("solver reached dead code after panic")
	}
	if in, ok := sol.In[g.Exit]; !ok || !in["x"] {
		t.Errorf("exit state should carry the pre-panic assignment, got %v", in)
	}
}

// TestCFGRangeContext: blocks inside a range body carry the enclosing
// RangeStmt headers, outermost first.
func TestCFGRangeContext(t *testing.T) {
	g, _ := parseFuncCFG(t, `package p
func f(m map[string][]int) int {
	total := 0
	for _, xs := range m {
		for _, x := range xs {
			total += x
		}
	}
	return total
}`)
	var inner *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.body" && len(b.Ranges) == 2 {
			inner = b
		}
	}
	if inner == nil {
		t.Fatalf("no doubly-nested range.body block:\n%s", g)
	}
	if outer := inner.Ranges[0]; outer.Pos() > inner.Ranges[1].Pos() {
		t.Errorf("Ranges not outermost-first: %v", inner.Ranges)
	}
}

// TestDiagnosticsDeterministic: repeated runs of the dataflow analyzers
// over their fixtures produce byte-identical, ordered diagnostics.
func TestDiagnosticsDeterministic(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{MutAfterPub, MapOrder, CtxFlow, LockBal}
	var pkgs []*Package
	for _, rule := range [...]string{"mutafterpub", "maporder", "ctxflow", "lockbal"} {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", rule))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	base := Run(pkgs, analyzers)
	if len(base) == 0 {
		t.Fatal("expected findings from the dataflow fixtures")
	}
	for i := 0; i < 5; i++ {
		if got := Run(pkgs, analyzers); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, got, base)
		}
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.Pos.Filename > b.Pos.Filename || (a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
