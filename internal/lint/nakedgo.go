package lint

import (
	"go/ast"
	"go/types"
)

// NakedGo flags `go func(){...}()` statements whose body shows no sign of
// coordinating with the rest of the program: no deferred cleanup or
// recover, no channel send/close, no select, and no WaitGroup-style
// Done/Add/Wait call. Such a goroutine can neither report failure nor be
// waited for, so a panic inside it kills the process and a hang leaks it
// silently. The check is mostly a syntactic heuristic: any of the signals
// above marks the goroutine as coordinated. One exemption is type-aware:
// a body that hands its work to internal/parallel's Group via the Go
// method is supervised (the Group recovers panics, propagates the first
// error, and is waited on), so it is coordinated even though none of the
// syntactic signals appear. The receiver type is resolved through the
// checker, so an unrelated local type with a Go method is still flagged.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "flag goroutine literals with no recover, channel, or WaitGroup coordination",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		inspectFiles(pass, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			coordinated := false
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if coordinated {
					return false
				}
				switch m := m.(type) {
				case *ast.DeferStmt, *ast.SendStmt, *ast.SelectStmt:
					coordinated = true
				case *ast.CallExpr:
					if isBuiltinCall(info, m, "recover") || isBuiltinCall(info, m, "close") {
						coordinated = true
					}
					if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Done", "Add", "Wait":
							coordinated = true
						case "Go":
							if isParallelGroup(info, sel.X) {
								coordinated = true
							}
						}
					}
				}
				return !coordinated
			})
			if !coordinated {
				pass.Reportf(g.Pos(), "naked goroutine: body has no recover, channel send/close, select, or WaitGroup call")
			}
			return true
		})
	},
}

// isParallelGroup reports whether expr's type (after one pointer deref)
// is internal/parallel's Group — the supervised errgroup whose Go method
// recovers panics and collects errors.
func isParallelGroup(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "ipv4market/internal/parallel", "Group")
}
