package lint

import (
	"go/ast"
	"go/token"
)

// TimeEq forbids comparing time.Time values with == or !=. Two Times can
// describe the same instant yet differ in wall-clock representation,
// monotonic reading, or location — exactly the trap for transfer-log and
// delegation-timeline code that mixes parsed dates with computed ones.
// Use t.Equal(u) (or t.IsZero()) instead. Pointer comparisons are fine
// and not flagged.
var TimeEq = &Analyzer{
	Name: "timeeq",
	Doc:  "forbid == and != between time.Time values (use Equal)",
	Run: func(pass *Pass) {
		inspectFiles(pass, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isTimeExpr(pass, be.X) || isTimeExpr(pass, be.Y) {
				pass.Reportf(be.OpPos, "time.Time compared with %s; use Equal (or IsZero)", be.Op)
			}
			return true
		})
	},
}

func isTimeExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.TypeOf(e)
	return t != nil && isNamedType(t, "time", "Time")
}
