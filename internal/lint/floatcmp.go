package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != between floating-point expressions. Price
// and amortization math (internal/market) and quantile/rank statistics
// (internal/stats) are all float-valued; exact equality there is almost
// always a rounding-sensitivity bug. Compare against a tolerance, or
// restructure the guard as an ordered comparison (x <= 0 instead of
// x == 0). Intentional exact comparisons (IEEE sentinel checks) take a
// //lint:ignore floatcmp directive with a reason.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid == and != between floating-point expressions",
	Run: func(pass *Pass) {
		inspectFiles(pass, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloatExpr(pass, be.X) || isFloatExpr(pass, be.Y) {
				pass.Reportf(be.OpPos, "floating-point comparison with %s; use a tolerance or an ordered comparison", be.Op)
			}
			return true
		})
	},
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
