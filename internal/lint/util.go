package lint

import (
	"go/ast"
	"go/types"
)

// inspectFiles walks every file of the pass's package with fn.
func inspectFiles(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// pkgFuncCall reports whether call invokes the function named fn from the
// package with the given import path (e.g. "fmt", "Errorf"), resolving
// the receiver identifier through the type checker so local shadowing and
// import renaming are handled correctly.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	return selectsPackage(info, sel, pkgPath)
}

// selectsPackage reports whether sel.X is an identifier naming an import
// of pkgPath.
func selectsPackage(info *types.Info, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isBuiltinCall reports whether call invokes the builtin with the given
// name (panic, close, recover, ...), i.e. the identifier is not shadowed
// by a local declaration.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// errorType is the universe's error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorValue reports whether an expression of type t can carry an
// error: it is the error interface itself or any type assignable to it.
func isErrorValue(t types.Type) bool {
	return t != nil && types.AssignableTo(t, errorType)
}
