package lint

import (
	"go/ast"
)

// noCtxHTTPFuncs are the net/http package-level helpers that issue or
// build requests without a context: the request cannot be cancelled, so
// a stuck server holds the caller's goroutine forever. NewRequest is in
// the list because a context-free request infects every client that
// later sends it; NewRequestWithContext is the sanctioned form.
var noCtxHTTPFuncs = []string{"Get", "Head", "Post", "PostForm", "NewRequest"}

// NoCtxHTTP flags context-free net/http calls in library code. Library
// HTTP calls must be cancellable — internal/replicate's follower loop is
// the motivating case: every poll must die promptly on shutdown and
// respect a per-request timeout, which only context-aware requests
// (http.NewRequestWithContext) provide. Package main is exempt: a CLI's
// one-shot probe (rdapd's client mode, marketd's selfcheck) lives and
// dies with the process, so process lifetime is its cancellation scope.
// Methods on an *http.Client value are not package-level calls and are
// judged by what request they send, not flagged here.
var NoCtxHTTP = &Analyzer{
	Name: "noctxhttp",
	Doc:  "flag context-free net/http calls (http.Get, http.NewRequest, ...) in library code",
	Run: func(pass *Pass) {
		if pass.Pkg.Types.Name() == "main" {
			return
		}
		info := pass.Pkg.Info
		inspectFiles(pass, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, fn := range noCtxHTTPFuncs {
				if pkgFuncCall(info, call, "net/http", fn) {
					pass.Reportf(call.Pos(), "context-free http.%s in library code: use http.NewRequestWithContext so the call can be cancelled", fn)
				}
			}
			return true
		})
	},
}
