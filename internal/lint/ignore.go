package lint

import (
	"strings"
)

// ignoreIndex maps (file, line) to the rule names suppressed there by
// //lint:ignore directives. A directive suppresses findings of the named
// rule on its own line and on the line directly below it, so it can sit
// either at the end of the offending line or on its own line above.
type ignoreIndex struct {
	rules map[string]map[int][]string // filename -> line -> rule names
}

func newIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{rules: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.rules[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.rules[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], rule)
			}
		}
	}
	return idx
}

// parseIgnoreDirective extracts the rule name from a
// "//lint:ignore <rule> <reason>" comment. The reason is mandatory:
// a directive without one is inert, which keeps every suppression
// self-documenting.
func parseIgnoreDirective(text string) (rule string, ok bool) {
	body, found := strings.CutPrefix(text, "//lint:ignore ")
	if !found {
		return "", false
	}
	fields := strings.Fields(body)
	if len(fields) < 2 { // rule + at least one word of reason
		return "", false
	}
	return fields[0], true
}

func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	lines := idx.rules[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == d.Rule {
				return true
			}
		}
	}
	return false
}
