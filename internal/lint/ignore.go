package lint

import (
	"go/token"
	"strings"
)

// Suppression is one //lint:ignore directive, resolved to a position.
// Used records whether any diagnostic was actually silenced by it during
// a Run — a suppression that silences nothing is stale: the finding it
// excused has been fixed (or the rule changed), and the directive now
// only misleads readers. The -suppressions audit fails on stale entries.
type Suppression struct {
	Pos    token.Position
	Rule   string
	Reason string
	Used   bool
}

// ignoreIndex maps (file, line) to the suppressions declared there by
// //lint:ignore directives. A directive suppresses findings of the named
// rule on its own line and on the line directly below it, so it can sit
// either at the end of the offending line or on its own line above.
type ignoreIndex struct {
	byLine map[string]map[int][]*Suppression // filename -> line -> directives
	all    []*Suppression                    // in file order
}

func newIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{byLine: make(map[string]map[int][]*Suppression)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, reason, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup := &Suppression{Pos: pos, Rule: rule, Reason: reason}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*Suppression)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], sup)
				idx.all = append(idx.all, sup)
			}
		}
	}
	return idx
}

// parseIgnoreDirective extracts the rule name and reason from a
// "//lint:ignore <rule> <reason>" comment. The reason is mandatory:
// a directive without one is inert, which keeps every suppression
// self-documenting.
func parseIgnoreDirective(text string) (rule, reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//lint:ignore ")
	if !found {
		return "", "", false
	}
	fields := strings.Fields(body)
	if len(fields) < 2 { // rule + at least one word of reason
		return "", "", false
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// suppressed reports whether d is silenced by a directive, marking the
// directive used.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	lines := idx.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, sup := range lines[line] {
			if sup.Rule == d.Rule {
				sup.Used = true
				hit = true
			}
		}
	}
	return hit
}
