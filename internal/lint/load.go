package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package: all non-test .go files
// of a single directory. Test files are deliberately excluded — the rules
// guard production code, and loading external test packages (package
// foo_test) would complicate type-checking for no gain.
type Package struct {
	Path  string // import path, or a synthetic path for testdata fixtures
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library. Module-internal imports are resolved recursively from
// source; everything else (the standard library) is resolved by go/importer's
// source importer, so the loader works offline with no build cache.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.Importer

	byDir  map[string]*Package // memoized packages keyed by absolute dir
	byPath map[string]*Package // the same packages keyed by import path
	active map[string]bool     // import cycle detection
}

// NewLoader builds a Loader for the module containing dir, located by
// walking up to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		byDir:      make(map[string]*Package),
		byPath:     make(map[string]*Package),
		active:     make(map[string]bool),
	}, nil
}

// ModuleDir returns the root directory of the loader's module.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// findModule walks up from dir looking for go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s", filepath.Join(d, "go.mod"))
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer. Module-internal paths are loaded from
// source through the loader itself; all other paths fall through to the
// standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(filepath.Join(l.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads the single package in dir. The import path is derived
// from the module when dir is inside it (including testdata directories,
// which get a synthetic but unambiguous path).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, l.importPathFor(abs))
}

// LoadSubtree loads every package under root (inclusive), skipping
// testdata, hidden and underscore-prefixed directories, exactly like the
// go tool's "./..." pattern. Directories without non-test .go files are
// ignored.
func (l *Loader) LoadSubtree(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	walk := func(dir string) error { return nil }
	walk = func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() {
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					continue
				}
				if err := walk(filepath.Join(dir, name)); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				hasGo = true
			}
		}
		if hasGo {
			pkg, err := l.load(dir, l.importPathFor(dir))
			if err != nil {
				return err
			}
			pkgs = append(pkgs, pkg)
		}
		return nil
	}
	if err := walk(abs); err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadModule loads every package in the loader's module.
func (l *Loader) LoadModule() ([]*Package, error) {
	return l.LoadSubtree(l.moduleDir)
}

// importPathFor derives the import path for an absolute directory. For
// directories outside the module the base name serves as a synthetic path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(abs)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// load parses and type-checks the package in dir, memoized by directory.
func (l *Loader) load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.byDir[dir]; ok {
		return pkg, nil
	}
	if l.active[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.active[dir] = true
	defer delete(l.active, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test .go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}

	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.byDir[dir] = pkg
	l.byPath[importPath] = pkg
	return pkg, nil
}
