package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutAfterPub enforces the architecture's immutability contract
// (ARCHITECTURE.md): a snapshot or study that has been published — made
// reachable by other goroutines or callers — must never be written
// again. Publication points recognized, per function:
//
//   - p.Store(x) where p is a sync/atomic Pointer or Value — the
//     serving layer's snapshot swap;
//   - ch <- x — handing the value to another goroutine;
//   - return x from a function whose name starts with "Build" — the
//     builder convention (BuildSnapshot, BuildWhoisDB, ...): the caller
//     receives a finished, henceforth-immutable value.
//
// After a value's root variable is published on a path, any write
// through it — field assignment, map or slice element store, delete,
// *p = v — is reported, as is the same write through a reference-typed
// alias read out of it after the publish. The analysis is a forward
// may-publish dataflow over the CFG, so a publish inside a loop poisons
// the next iteration via the back edge, and a deferred function that
// mutates the value runs after `return x` has published it (defers are
// replayed at the exit block).
//
// Soundness limits: intraprocedural only (a callee that stashes or
// mutates its argument is invisible); aliases taken before the publish
// point are not retroactively marked; goroutine literals are analyzed
// as separate functions with an empty publish state.
var MutAfterPub = &Analyzer{
	Name: "mutafterpub",
	Doc:  "flag writes to a value after it was published (atomic Store, channel send, Build* return)",
	Run: func(pass *Pass) {
		funcBodies(pass.Pkg, func(decl *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			isBuilder := decl != nil && strings.HasPrefix(decl.Name.Name, "Build")
			a := &mutAfterPub{info: pass.Pkg.Info, isBuilder: isBuilder}
			flow := Flow[pubState]{
				Init:     func() pubState { return pubState{} },
				Clone:    clonePubState,
				Transfer: a.transfer,
				Join:     joinPubState,
			}
			cfg := BuildCFG(body, pass.Pkg.Info)
			sol := flow.Forward(cfg)
			a.emit = func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			}
			flow.ReportPass(cfg, sol)
		})
	},
}

// pubState maps a published variable to a description of how it
// escaped.
type pubState map[types.Object]string

func clonePubState(s pubState) pubState {
	out := make(pubState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinPubState(dst, src pubState) (pubState, bool) {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

type mutAfterPub struct {
	info      *types.Info
	isBuilder bool
	emit      func(pos token.Pos, format string, args ...any)
}

func (a *mutAfterPub) transfer(_ *Block, n Node, s pubState) pubState {
	if _, ok := n.Ast.(*ast.DeferStmt); ok && !n.DeferRun {
		// Registration only evaluates the call's operands; the call body
		// runs at exit, where the DeferRun node replays it.
		return s
	}
	if n.DeferRun {
		// Replayed deferred call: a function literal's body executes
		// here, after any `return x` publish.
		if fl, ok := n.Ast.(*ast.CallExpr).Fun.(*ast.FuncLit); ok {
			for _, stmt := range fl.Body.List {
				s = a.step(stmt, s)
			}
		}
		return s
	}
	return a.step(n.Ast, s)
}

// step applies one statement or expression: report writes through
// published roots, then extend aliases, then record new publishes.
func (a *mutAfterPub) step(node ast.Node, s pubState) pubState {
	walkExpr(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				a.checkWrite(lhs, s)
			}
			if len(m.Lhs) == len(m.Rhs) {
				for i, lhs := range m.Lhs {
					a.alias(lhs, m.Rhs[i], s)
				}
			}
		case *ast.IncDecStmt:
			a.checkWrite(m.X, s)
		case *ast.CallExpr:
			if isBuiltinCall(a.info, m, "delete") && len(m.Args) > 0 {
				if obj, how, ok := publishedRoot(a.info, m.Args[0], s); ok {
					a.report(m.Pos(), "delete", obj, how)
				}
			}
			if recvOK, kind := atomicStore(a.info, m); recvOK && len(m.Args) > 0 {
				a.publish(m.Args[0], "atomic "+kind+".Store", s)
			}
		case *ast.SendStmt:
			a.publish(m.Value, "channel send", s)
		case *ast.ReturnStmt:
			if a.isBuilder {
				for _, res := range m.Results {
					a.publish(res, "return from builder", s)
				}
			}
		}
		return true
	})
	return s
}

// checkWrite reports lhs when it writes through a published root: only
// compound lvalues count (x.F, x[i], *x); rebinding the variable itself
// does not mutate the escaped value.
func (a *mutAfterPub) checkWrite(lhs ast.Expr, s pubState) {
	if _, plain := lhs.(*ast.Ident); plain {
		return
	}
	if obj, how, ok := publishedRoot(a.info, lhs, s); ok {
		a.report(lhs.Pos(), "write", obj, how)
	}
}

func (a *mutAfterPub) report(pos token.Pos, verb string, obj types.Object, how string) {
	if a.emit != nil {
		a.emit(pos, "%s through %s after it was published via %s; published values are immutable", verb, obj.Name(), how)
	}
}

// alias marks lhs published when rhs reads a reference (pointer, map,
// slice, channel, interface) out of a published structure — both names
// now reach the same escaped memory.
func (a *mutAfterPub) alias(lhs, rhs ast.Expr, s pubState) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(a.info, id)
	if obj == nil {
		return
	}
	if _, how, ok := publishedRoot(a.info, rhs, s); ok && isRefType(a.info.TypeOf(rhs)) {
		s[obj] = how
	} else if _, republished := s[obj]; republished {
		// Strong update: rebinding to a fresh value clears the mark.
		delete(s, obj)
	}
}

// publish marks e's root variable as escaped.
func (a *mutAfterPub) publish(e ast.Expr, how string, s pubState) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	root := rootIdent(e)
	if root == nil {
		return
	}
	if obj := identObj(a.info, root); obj != nil {
		if _, ok := obj.(*types.Var); ok {
			if _, already := s[obj]; !already {
				s[obj] = how
			}
		}
	}
}

// publishedRoot resolves e's base identifier and reports whether it is
// published.
func publishedRoot(info *types.Info, e ast.Expr, s pubState) (types.Object, string, bool) {
	root := rootIdent(e)
	if root == nil {
		return nil, "", false
	}
	obj := identObj(info, root)
	if obj == nil {
		return nil, "", false
	}
	how, ok := s[obj]
	return obj, how, ok
}

// atomicStore recognizes method calls p.Store(x) on sync/atomic's
// Pointer[T] and Value.
func atomicStore(info *types.Info, call *ast.CallExpr) (bool, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return false, ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false, ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	for _, name := range [...]string{"Pointer", "Value"} {
		if isNamedType(t, "sync/atomic", name) {
			return true, name
		}
	}
	return false, ""
}

// isRefType reports whether t shares underlying storage when copied.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
