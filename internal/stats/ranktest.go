package stats

import (
	"errors"
	"math"
	"sort"
)

// This file implements the nonparametric rank tests the paper's pricing
// analysis needs. The Mann-Whitney U test compares two regions' price
// samples; Kruskal-Wallis extends it to all three regions at once. Both use
// the normal / chi-squared large-sample approximations with tie correction,
// which is appropriate at the paper's per-cell sample sizes (8-196).

// RankTestResult reports a two-sided nonparametric test.
type RankTestResult struct {
	Statistic float64 // U for Mann-Whitney, H for Kruskal-Wallis
	Z         float64 // standardized statistic (Mann-Whitney only)
	PValue    float64 // two-sided p-value
}

// Significant reports whether the test rejects the null hypothesis of equal
// distributions at the given significance level (e.g. 0.05).
func (r RankTestResult) Significant(alpha float64) bool { return r.PValue < alpha }

// midRanks assigns average ranks (1-based) to the pooled sample and returns
// the ranks in the original order plus the tie-correction term Σ(t³-t).
func midRanks(pooled []float64) (ranks []float64, tieTerm float64) {
	type iv struct {
		v float64
		i int
	}
	idx := make([]iv, len(pooled))
	for i, v := range pooled {
		idx[i] = iv{v, i}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a].v < idx[b].v })
	ranks = make([]float64, len(pooled))
	for i := 0; i < len(idx); {
		j := i
		//lint:ignore floatcmp rank ties are defined by exact value equality
		for j < len(idx) && idx[j].v == idx[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k].i] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	return ranks, tieTerm
}

// MannWhitneyU performs a two-sided Mann-Whitney U test (Wilcoxon rank-sum)
// on samples a and b using the normal approximation with tie correction and
// continuity correction. Both samples need at least 2 observations.
func MannWhitneyU(a, b []float64) (RankTestResult, error) {
	n1, n2 := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return RankTestResult{}, errors.New("stats: Mann-Whitney needs ≥2 observations per sample")
	}
	pooled := make([]float64, 0, len(a)+len(b))
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	ranks, tieTerm := midRanks(pooled)

	var r1 float64
	for i := range a {
		r1 += ranks[i]
	}
	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	u := math.Min(u1, u2)

	mu := n1 * n2 / 2
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence against the null.
		return RankTestResult{Statistic: u, Z: 0, PValue: 1}, nil
	}
	z := (u - mu + 0.5) / math.Sqrt(sigma2) // continuity correction toward 0
	if u > mu {
		z = (u - mu - 0.5) / math.Sqrt(sigma2)
	}
	p := 2 * normCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return RankTestResult{Statistic: u, Z: z, PValue: p}, nil
}

// KruskalWallis performs the Kruskal-Wallis H test across k ≥ 2 groups,
// using the chi-squared approximation with k-1 degrees of freedom and tie
// correction. Every group needs at least 2 observations.
func KruskalWallis(groups ...[]float64) (RankTestResult, error) {
	if len(groups) < 2 {
		return RankTestResult{}, errors.New("stats: Kruskal-Wallis needs ≥2 groups")
	}
	var pooled []float64
	for _, g := range groups {
		if len(g) < 2 {
			return RankTestResult{}, errors.New("stats: Kruskal-Wallis needs ≥2 observations per group")
		}
		pooled = append(pooled, g...)
	}
	ranks, tieTerm := midRanks(pooled)
	n := float64(len(pooled))

	var h float64
	off := 0
	for _, g := range groups {
		var rsum float64
		for i := range g {
			rsum += ranks[off+i]
		}
		ni := float64(len(g))
		h += rsum * rsum / ni
		off += len(g)
	}
	h = 12/(n*(n+1))*h - 3*(n+1)
	// Tie correction.
	c := 1 - tieTerm/(n*n*n-n)
	if c > 0 {
		h /= c
	}
	df := float64(len(groups) - 1)
	p := chiSquaredSF(h, df)
	return RankTestResult{Statistic: h, PValue: p}, nil
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// chiSquaredSF is the chi-squared survival function P(X > x) with df
// degrees of freedom, via the regularized upper incomplete gamma function.
func chiSquaredSF(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(df/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Γ(a, x)/Γ(a) using the series for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func regularizedGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x <= 0 { // x < 0 was handled above; only exact zero reaches here
		return 1
	}
	if x < a+1 {
		return 1 - regularizedGammaPSeries(a, x)
	}
	return regularizedGammaQCF(a, x)
}

func regularizedGammaPSeries(a, x float64) float64 {
	const itMax = 500
	const eps = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itMax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func regularizedGammaQCF(a, x float64) float64 {
	const itMax = 500
	const eps = 1e-14
	const fpMin = 1e-300
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= itMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
