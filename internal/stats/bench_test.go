package stats

import (
	"math/rand"
	"testing"
)

func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + 20
	}
	return xs
}

func BenchmarkSummarize(b *testing.B) {
	xs := benchSamples(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMannWhitneyU(b *testing.B) {
	x := benchSamples(200)
	y := benchSamples(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MannWhitneyU(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKruskalWallis(b *testing.B) {
	g1, g2, g3 := benchSamples(150), benchSamples(150), benchSamples(150)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KruskalWallis(g1, g2, g3); err != nil {
			b.Fatal(err)
		}
	}
}
