package stats

import (
	"fmt"
	"sort"
	"time"
)

// Quarter identifies a calendar quarter, the aggregation unit of the
// paper's Figures 1 and 2 ("aggregated over three months").
type Quarter struct {
	Year int
	Q    int // 1..4
}

// QuarterOf returns the quarter containing t (in UTC).
func QuarterOf(t time.Time) Quarter {
	t = t.UTC()
	return Quarter{t.Year(), (int(t.Month())-1)/3 + 1}
}

// String renders e.g. "2019Q3".
func (q Quarter) String() string { return fmt.Sprintf("%dQ%d", q.Year, q.Q) }

// Start returns the first instant of the quarter.
func (q Quarter) Start() time.Time {
	return time.Date(q.Year, time.Month((q.Q-1)*3+1), 1, 0, 0, 0, 0, time.UTC)
}

// End returns the first instant of the following quarter.
func (q Quarter) End() time.Time { return q.Next().Start() }

// Next returns the following quarter.
func (q Quarter) Next() Quarter {
	if q.Q == 4 {
		return Quarter{q.Year + 1, 1}
	}
	return Quarter{q.Year, q.Q + 1}
}

// Before reports whether q precedes r.
func (q Quarter) Before(r Quarter) bool {
	return q.Year < r.Year || (q.Year == r.Year && q.Q < r.Q)
}

// Index returns a monotone integer useful as a regression x-coordinate.
func (q Quarter) Index() int { return q.Year*4 + q.Q - 1 }

// QuartersBetween returns every quarter from first to last inclusive.
func QuartersBetween(first, last Quarter) []Quarter {
	if last.Before(first) {
		return nil
	}
	var out []Quarter
	for q := first; !last.Before(q); q = q.Next() {
		out = append(out, q)
	}
	return out
}

// SortQuarters sorts quarters chronologically in place.
func SortQuarters(qs []Quarter) {
	sort.Slice(qs, func(i, j int) bool { return qs[i].Before(qs[j]) })
}

// Month identifies a calendar month (for monthly series).
type Month struct {
	Year int
	M    time.Month
}

// MonthOf returns the month containing t (in UTC).
func MonthOf(t time.Time) Month {
	t = t.UTC()
	return Month{t.Year(), t.Month()}
}

// String renders e.g. "2020-06".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.M)) }

// Start returns the first instant of the month.
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.M, 1, 0, 0, 0, 0, time.UTC)
}

// Next returns the following month.
func (m Month) Next() Month {
	if m.M == time.December {
		return Month{m.Year + 1, time.January}
	}
	return Month{m.Year, m.M + 1}
}

// Before reports whether m precedes n.
func (m Month) Before(n Month) bool {
	return m.Year < n.Year || (m.Year == n.Year && m.M < n.M)
}
