package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {1, 4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrNoData {
		t.Errorf("empty quantile err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 should fail")
	}
	one, err := Quantile([]float64{42}, 0.3)
	if err != nil || one != 42 {
		t.Errorf("single-element quantile = %v, %v", one, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100} // 100 is an outlier
	b, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 5 || b.Min != 1 || b.Max != 100 || b.Median != 3 {
		t.Errorf("summary = %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v", b.Outliers)
	}
	if !almostEqual(b.IQR(), b.Q3-b.Q1, 1e-12) {
		t.Error("IQR inconsistent")
	}
	if _, err := Summarize(nil); err != ErrNoData {
		t.Error("empty Summarize should fail")
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := Summarize(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearRegression(t *testing.T) {
	// Perfect line y = 3 + 2x.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{3, 5, 7, 9, 11}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 3, 1e-12) || !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := LinearRegression([]float64{1}, []float64{2}); err == nil {
		t.Error("too few points should fail")
	}
	if _, err := LinearRegression([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("degenerate x should fail")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	flat, err := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil || !almostEqual(flat.Slope, 0, 1e-12) || !almostEqual(flat.R2, 1, 1e-12) {
		t.Errorf("flat fit = %+v, %v", flat, err)
	}
}

func TestLinearRegressionNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 1.5+0.75*xi+rng.NormFloat64()*0.1)
	}
	fit, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.75, 0.01) || !almostEqual(fit.Intercept, 1.5, 0.05) {
		t.Errorf("recovered fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}
