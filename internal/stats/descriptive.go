// Package stats provides the statistical machinery the market analyses
// need: descriptive summaries, five-number box-plot summaries, the
// Mann-Whitney U and Kruskal-Wallis rank tests used for the paper's
// "no statistically significant regional price difference" claim, simple
// linear regression for trend detection, and quarterly time bucketing.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by summaries over empty samples.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
// Samples of size < 2 have variance 0.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input need not be sorted. It returns an error for an empty sample
// or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// BoxPlot is a five-number summary plus outliers, matching what Figure 1
// of the paper draws for each (prefix size, region, quarter) cell.
type BoxPlot struct {
	N        int     // sample size
	Min      float64 // minimum observation
	Q1       float64 // first quartile
	Median   float64
	Q3       float64 // third quartile
	Max      float64 // maximum observation
	Mean     float64
	LowFence float64 // Q1 - 1.5*IQR (Tukey)
	HiFence  float64 // Q3 + 1.5*IQR
	Outliers []float64
}

// Summarize computes a box-plot summary of xs.
func Summarize(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrNoData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	b := BoxPlot{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
	}
	iqr := b.Q3 - b.Q1
	b.LowFence = b.Q1 - 1.5*iqr
	b.HiFence = b.Q3 + 1.5*iqr
	for _, x := range sorted {
		if x < b.LowFence || x > b.HiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b, nil
}

// IQR returns the interquartile range.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// LinearFit is the result of an ordinary least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// LinearRegression fits y = a + b*x by least squares. It returns an error
// if fewer than two points are given or all x are identical.
func LinearRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, errors.New("stats: x and y length mismatch")
	}
	if len(x) < 2 {
		return LinearFit{}, ErrNoData
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx <= 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // all y equal: a horizontal line fits perfectly
	}
	return fit, nil
}
