package stats

import (
	"errors"
	"math/rand"
	"sort"
)

// Bootstrap confidence intervals for the pricing headline numbers: the
// paper reports point estimates ("around $22.50 with little variance");
// resampling quantifies that variance without distributional assumptions.

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// BootstrapCI estimates a percentile confidence interval for the given
// statistic by resampling xs with replacement `rounds` times. The rng
// makes the estimate deterministic for a fixed seed.
func BootstrapCI(rng *rand.Rand, xs []float64, statistic func([]float64) float64, rounds int, level float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, ErrNoData
	}
	if rounds < 10 || level <= 0 || level >= 1 {
		return Interval{}, errors.New("stats: invalid bootstrap parameters")
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = statistic(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    quantileSorted(estimates, alpha),
		Hi:    quantileSorted(estimates, 1-alpha),
		Level: level,
	}, nil
}

// BootstrapMeanCI is BootstrapCI specialized to the mean.
func BootstrapMeanCI(rng *rand.Rand, xs []float64, rounds int, level float64) (Interval, error) {
	return BootstrapCI(rng, xs, Mean, rounds, level)
}
