package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestMidRanks(t *testing.T) {
	ranks, tie := midRanks([]float64{3, 1, 4, 1, 5})
	// sorted: 1,1,3,4,5 → ranks of (1,1)=(1.5,1.5), 3=3, 4=4, 5=5
	want := []float64{3, 1.5, 4, 1.5, 5}
	for i, w := range want {
		if ranks[i] != w {
			t.Errorf("rank[%d] = %v, want %v", i, ranks[i], w)
		}
	}
	if tie != 6 { // one tie group of size 2: 2³-2 = 6
		t.Errorf("tieTerm = %v", tie)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	r, err := MannWhitneyU(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue != 1 {
		t.Errorf("identical constant samples p = %v, want 1", r.PValue)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rejections := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := make([]float64, 40)
		b := make([]float64, 40)
		for j := range a {
			a[j] = rng.NormFloat64()
			b[j] = rng.NormFloat64()
		}
		r, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	// Under the null, ~5% rejections expected; allow generous slack.
	if rejections > trials/5 {
		t.Errorf("too many false rejections: %d/%d", rejections, trials)
	}
}

func TestMannWhitneyShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 60)
	b := make([]float64, 60)
	for j := range a {
		a[j] = rng.NormFloat64()
		b[j] = rng.NormFloat64() + 2 // large shift
	}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Errorf("large shift not detected: p = %v", r.PValue)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Small worked example. a = {1,2,3}, b = {4,5,6}: U = 0, extreme.
	r, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic != 0 {
		t.Errorf("U = %v, want 0", r.Statistic)
	}
	if r.PValue >= 0.2 {
		t.Errorf("p = %v, want small", r.PValue)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("tiny sample should fail")
	}
}

func TestKruskalWallisNull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rejections := 0
	const trials = 150
	for i := 0; i < trials; i++ {
		g := make([][]float64, 3)
		for k := range g {
			g[k] = make([]float64, 30)
			for j := range g[k] {
				g[k][j] = rng.ExpFloat64()
			}
		}
		r, err := KruskalWallis(g...)
		if err != nil {
			t.Fatal(err)
		}
		if r.Significant(0.05) {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("too many false rejections: %d/%d", rejections, trials)
	}
}

func TestKruskalWallisShift(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g1 := make([]float64, 40)
	g2 := make([]float64, 40)
	g3 := make([]float64, 40)
	for j := 0; j < 40; j++ {
		g1[j] = rng.NormFloat64()
		g2[j] = rng.NormFloat64()
		g3[j] = rng.NormFloat64() + 3
	}
	r, err := KruskalWallis(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Errorf("shifted group not detected: p = %v", r.PValue)
	}
}

func TestKruskalWallisErrors(t *testing.T) {
	if _, err := KruskalWallis([]float64{1, 2}); err == nil {
		t.Error("single group should fail")
	}
	if _, err := KruskalWallis([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("tiny group should fail")
	}
}

func TestNormCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
	}
	for _, c := range cases {
		if got := normCDF(c.x); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("normCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestChiSquaredSF(t *testing.T) {
	// Known critical values: P(X > 5.991) = 0.05 for df=2;
	// P(X > 3.841) = 0.05 for df=1; P(X > 9.210) = 0.01 for df=2.
	cases := []struct{ x, df, want float64 }{
		{5.991464547, 2, 0.05},
		{3.841458821, 1, 0.05},
		{9.210340372, 2, 0.01},
		{0, 2, 1},
	}
	for _, c := range cases {
		if got := chiSquaredSF(c.x, c.df); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("chiSquaredSF(%v, %v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestQuarter(t *testing.T) {
	q := QuarterOf(time.Date(2019, 11, 25, 10, 0, 0, 0, time.UTC))
	if q != (Quarter{2019, 4}) {
		t.Errorf("QuarterOf = %v", q)
	}
	if q.String() != "2019Q4" {
		t.Errorf("String = %s", q.String())
	}
	if q.Next() != (Quarter{2020, 1}) {
		t.Errorf("Next = %v", q.Next())
	}
	if !q.Before(q.Next()) || q.Next().Before(q) {
		t.Error("Before wrong")
	}
	if q.Start() != time.Date(2019, 10, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("Start = %v", q.Start())
	}
	if q.End() != time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("End = %v", q.End())
	}
	span := QuartersBetween(Quarter{2019, 3}, Quarter{2020, 2})
	if len(span) != 4 {
		t.Errorf("QuartersBetween = %v", span)
	}
	if QuartersBetween(Quarter{2020, 1}, Quarter{2019, 1}) != nil {
		t.Error("reversed QuartersBetween should be nil")
	}
	if (Quarter{2019, 4}).Index()+1 != (Quarter{2020, 1}).Index() {
		t.Error("Index not contiguous across year boundary")
	}
}

func TestMonth(t *testing.T) {
	m := MonthOf(time.Date(2020, 12, 31, 23, 0, 0, 0, time.UTC))
	if m != (Month{2020, time.December}) {
		t.Errorf("MonthOf = %v", m)
	}
	if m.String() != "2020-12" {
		t.Errorf("String = %s", m.String())
	}
	if m.Next() != (Month{2021, time.January}) {
		t.Errorf("Next = %v", m.Next())
	}
	if !m.Before(m.Next()) {
		t.Error("Before wrong")
	}
	if m.Start().Day() != 1 {
		t.Error("Start should be first of month")
	}
}

func TestRegularizedGammaEdges(t *testing.T) {
	if !math.IsNaN(regularizedGammaQ(-1, 1)) {
		t.Error("negative a should be NaN")
	}
	if regularizedGammaQ(1, 0) != 1 {
		t.Error("Q(a, 0) = 1")
	}
	// Q(1, x) = exp(-x) analytically.
	for _, x := range []float64{0.1, 1, 3, 10} {
		if got := regularizedGammaQ(1, x); !almostEqual(got, math.Exp(-x), 1e-10) {
			t.Errorf("Q(1, %v) = %v, want %v", x, got, math.Exp(-x))
		}
	}
}
