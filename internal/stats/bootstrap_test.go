package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 22.5 + rng.NormFloat64()*1.5
	}
	ci, err := BootstrapMeanCI(rand.New(rand.NewSource(2)), xs, 500, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(22.5) {
		t.Errorf("CI %+v should contain the true mean", ci)
	}
	// Standard error ≈ 1.5/20 = 0.075; a 95% CI is ~0.3 wide.
	if ci.Width() < 0.1 || ci.Width() > 0.8 {
		t.Errorf("CI width = %v", ci.Width())
	}
	if ci.Lo >= ci.Hi || ci.Level != 0.95 {
		t.Errorf("CI = %+v", ci)
	}
}

func TestBootstrapCIDeterminism(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := BootstrapMeanCI(rand.New(rand.NewSource(7)), xs, 200, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BootstrapMeanCI(rand.New(rand.NewSource(7)), xs, 200, 0.9)
	if a != b {
		t.Error("same seed must give the same interval")
	}
}

func TestBootstrapCIMedianStatistic(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10) // median 4.5
	}
	med := func(v []float64) float64 {
		m, _ := Median(v)
		return m
	}
	ci, err := BootstrapCI(rand.New(rand.NewSource(3)), xs, med, 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(4.5) {
		t.Errorf("median CI %+v should contain 4.5", ci)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BootstrapMeanCI(rng, []float64{1}, 100, 0.95); err != ErrNoData {
		t.Errorf("tiny sample err = %v", err)
	}
	if _, err := BootstrapMeanCI(rng, []float64{1, 2}, 5, 0.95); err == nil {
		t.Error("too few rounds should fail")
	}
	if _, err := BootstrapMeanCI(rng, []float64{1, 2}, 100, 1.5); err == nil {
		t.Error("bad level should fail")
	}
}
