package temporal

import (
	"encoding/json"
	"fmt"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
)

// recordVersion guards the persisted encoding. Bump it on any change to
// the record structs or the normalization rules — a restored index must
// answer byte-identically to the one that recorded it, so an old record
// must be rejected (and rebuilt from the world) rather than reinterpreted.
const recordVersion = 1

// The record form is the normalized Input with prefixes and dates as
// strings: canonical JSON, stable across builds, fit for a `_state/` aux
// artifact. Restore decodes it and re-runs New, so the restored index is
// the same pure function of the same normalized history.
type recordDoc struct {
	Version     int           `json:"version"`
	Start       string        `json:"start"`
	End         string        `json:"end"`
	Allocations []allocRec    `json:"allocations"`
	Transfers   []transferRec `json:"transfers"`
	Leases      []leaseRec    `json:"leases"`
}

type allocRec struct {
	Prefix string `json:"prefix"`
	Org    string `json:"org"`
	RIR    string `json:"rir"`
	Date   string `json:"date"`
	Status string `json:"status,omitempty"`
}

type transferRec struct {
	Prefix       string  `json:"prefix"`
	From         string  `json:"from"`
	To           string  `json:"to"`
	FromRIR      string  `json:"from_rir"`
	ToRIR        string  `json:"to_rir"`
	Type         string  `json:"type"`
	Date         string  `json:"date"`
	PricePerAddr float64 `json:"price_per_addr,omitempty"`
}

type leaseRec struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
	FromAS uint32 `json:"from_as"`
	ToAS   uint32 `json:"to_as"`
	Start  string `json:"start"`
	End    string `json:"end,omitempty"`
}

// Record encodes the index's normalized input history as canonical JSON:
// the same history always yields the same bytes, and Restore rebuilds an
// index answering every query identically.
func (ix *Index) Record() ([]byte, error) {
	doc := recordDoc{
		Version:     recordVersion,
		Start:       fmtDay(ix.in.Start),
		End:         fmtDay(ix.in.End),
		Allocations: make([]allocRec, 0, len(ix.in.Allocations)),
		Transfers:   make([]transferRec, 0, len(ix.in.Transfers)),
		Leases:      make([]leaseRec, 0, len(ix.in.Leases)),
	}
	for _, a := range ix.in.Allocations {
		doc.Allocations = append(doc.Allocations, allocRec{
			Prefix: a.Prefix.String(), Org: a.Org, RIR: a.RIR.String(),
			Date: fmtDay(a.Date), Status: a.Status,
		})
	}
	for _, t := range ix.in.Transfers {
		doc.Transfers = append(doc.Transfers, transferRec{
			Prefix: t.Prefix.String(), From: t.From, To: t.To,
			FromRIR: t.FromRIR.String(), ToRIR: t.ToRIR.String(),
			Type: t.Type, Date: fmtDay(t.Date), PricePerAddr: t.PricePerAddr,
		})
	}
	for _, l := range ix.in.Leases {
		doc.Leases = append(doc.Leases, leaseRec{
			Parent: l.Parent.String(), Child: l.Child.String(),
			FromAS: l.FromAS, ToAS: l.ToAS,
			Start: fmtDay(l.Start), End: fmtDay(l.End),
		})
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("temporal: encode record: %w", err)
	}
	return b, nil
}

// Restore rebuilds an index from Record() bytes. The result is
// indistinguishable from the index that recorded them.
func Restore(data []byte) (*Index, error) {
	var doc recordDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("temporal: decode record: %w", err)
	}
	if doc.Version != recordVersion {
		return nil, fmt.Errorf("temporal: record version %d, want %d", doc.Version, recordVersion)
	}
	in := Input{}
	var err error
	if in.Start, err = parseDay(doc.Start); err != nil {
		return nil, fmt.Errorf("temporal: record start: %w", err)
	}
	if in.End, err = parseDay(doc.End); err != nil {
		return nil, fmt.Errorf("temporal: record end: %w", err)
	}
	for _, a := range doc.Allocations {
		rec := AllocationRecord{Org: a.Org, Status: a.Status}
		if rec.Prefix, err = netblock.ParsePrefix(a.Prefix); err != nil {
			return nil, fmt.Errorf("temporal: record allocation: %w", err)
		}
		if rec.RIR, err = registry.ParseRIR(a.RIR); err != nil {
			return nil, fmt.Errorf("temporal: record allocation %s: %w", a.Prefix, err)
		}
		if rec.Date, err = parseDay(a.Date); err != nil {
			return nil, fmt.Errorf("temporal: record allocation %s: %w", a.Prefix, err)
		}
		in.Allocations = append(in.Allocations, rec)
	}
	for _, t := range doc.Transfers {
		rec := TransferRecord{From: t.From, To: t.To, Type: t.Type, PricePerAddr: t.PricePerAddr}
		if rec.Prefix, err = netblock.ParsePrefix(t.Prefix); err != nil {
			return nil, fmt.Errorf("temporal: record transfer: %w", err)
		}
		if rec.FromRIR, err = registry.ParseRIR(t.FromRIR); err != nil {
			return nil, fmt.Errorf("temporal: record transfer %s: %w", t.Prefix, err)
		}
		if rec.ToRIR, err = registry.ParseRIR(t.ToRIR); err != nil {
			return nil, fmt.Errorf("temporal: record transfer %s: %w", t.Prefix, err)
		}
		if rec.Date, err = parseDay(t.Date); err != nil {
			return nil, fmt.Errorf("temporal: record transfer %s: %w", t.Prefix, err)
		}
		in.Transfers = append(in.Transfers, rec)
	}
	for _, l := range doc.Leases {
		rec := LeaseRecord{FromAS: l.FromAS, ToAS: l.ToAS}
		if rec.Parent, err = netblock.ParsePrefix(l.Parent); err != nil {
			return nil, fmt.Errorf("temporal: record lease: %w", err)
		}
		if rec.Child, err = netblock.ParsePrefix(l.Child); err != nil {
			return nil, fmt.Errorf("temporal: record lease: %w", err)
		}
		if rec.Start, err = parseDay(l.Start); err != nil {
			return nil, fmt.Errorf("temporal: record lease %s: %w", l.Child, err)
		}
		if l.End != "" {
			if rec.End, err = parseDay(l.End); err != nil {
				return nil, fmt.Errorf("temporal: record lease %s: %w", l.Child, err)
			}
		}
		in.Leases = append(in.Leases, rec)
	}
	return New(in)
}

// parseDay parses a YYYY-MM-DD date as UTC midnight.
func parseDay(s string) (time.Time, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("date %q: want YYYY-MM-DD", s)
	}
	return t, nil
}
