package temporal

import (
	"fmt"
	"math/bits"
	"testing"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
)

// synthInput builds a deterministic synthetic history: nBlocks /16s, each
// with a chainLen-transfer chain spread over 2010–2019, plus nLeases /24
// delegation spans in the routing window. Event count is
// nBlocks*chainLen + ~2*nLeases. No randomness — the shape is a pure
// function of the sizes, so benchmarks and probe counts are reproducible.
func synthInput(tb testing.TB, nBlocks, chainLen, nLeases int) Input {
	tb.Helper()
	in := Input{
		Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nBlocks; i++ {
		p := netblock.MustPrefix(netblock.AddrFrom4(byte(8+i/256), byte(i%256), 0, 0), 16)
		holder := fmt.Sprintf("org-%d-0", i)
		for j := 0; j < chainLen; j++ {
			next := fmt.Sprintf("org-%d-%d", i, j+1)
			in.Transfers = append(in.Transfers, TransferRecord{
				Prefix: p, From: holder, To: next,
				FromRIR: registry.ARIN, ToRIR: registry.RIR((i + j) % 5),
				Type: string(registry.TypeMarket),
				Date: base.AddDate(0, 0, (i%97)+j*660),
				PricePerAddr: 10 + float64((i+j)%13),
			})
			holder = next
		}
		in.Allocations = append(in.Allocations, AllocationRecord{
			Prefix: p, Org: holder, RIR: registry.ARIN,
			Date: base.AddDate(0, 0, (i%97)+(chainLen-1)*660), Status: "allocated",
		})
	}
	lease := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nLeases; i++ {
		block := i % nBlocks
		child := netblock.MustPrefix(netblock.AddrFrom4(byte(8+block/256), byte(block%256), byte(i/nBlocks), 0), 24)
		in.Leases = append(in.Leases, LeaseRecord{
			Parent: netblock.MustPrefix(netblock.AddrFrom4(byte(8+block/256), byte(block%256), 0, 0), 16),
			Child:  child,
			FromAS: uint32(64496 + block), ToAS: uint32(65000 + i),
			Start: lease.AddDate(0, 0, i%700),
			End:   lease.AddDate(0, 0, i%700+90+i%300),
		})
	}
	return in
}

// probeCount runs a point query and returns how many index probes
// (binary-search steps and trie visits) it took.
func probeCount(ix *Index, p netblock.Prefix, d time.Time) int {
	n := 0
	ix.at(p, d, func() { n++ })
	return n
}

// maxProbes sweeps every block at a spread of dates and returns the worst
// probe count observed.
func maxProbes(ix *Index, nBlocks int) int {
	dates := []time.Time{
		time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2012, 3, 9, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 11, 23, 0, 0, 0, 0, time.UTC),
		time.Date(2018, 7, 4, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC),
	}
	worst := 0
	for i := 0; i < nBlocks; i += 7 {
		p := netblock.MustPrefix(netblock.AddrFrom4(byte(8+i/256), byte(i%256), 0, 0), 16)
		for _, d := range dates {
			if n := probeCount(ix, p, d); n > worst {
				worst = n
			}
		}
	}
	return worst
}

// TestPointLookupSublinear is the acceptance bound in deterministic form:
// growing the event log 10× must grow the probe count (binary-search steps
// + trie visits) logarithmically, not linearly. Counting probes instead of
// timing keeps the test meaningful under -race and on loaded machines.
func TestPointLookupSublinear(t *testing.T) {
	small := mustNew(t, synthInput(t, 200, 5, 400))
	big := mustNew(t, synthInput(t, 2400, 5, 4500))
	if big.EventCount() < 10*small.EventCount() {
		t.Fatalf("scaling fixture too small: %d vs %d events", big.EventCount(), small.EventCount())
	}

	pSmall, pBig := maxProbes(small, 200), maxProbes(big, 2000)
	t.Logf("max probes: %d @ %d events, %d @ %d events", pSmall, small.EventCount(), pBig, big.EventCount())

	// A lookup is a constant number of trie walks (≤ 33 visits each) plus
	// binary searches over spans and epochs: O(log events) with a small
	// constant. 8·log2(events)+96 is far below linear but fails loudly if
	// a scan ever sneaks into the query path.
	bound := func(events int) int { return 8*bits.Len(uint(events)) + 96 }
	if pSmall > bound(small.EventCount()) {
		t.Errorf("small index: %d probes exceeds O(log) bound %d", pSmall, bound(small.EventCount()))
	}
	if pBig > bound(big.EventCount()) {
		t.Errorf("10× index: %d probes exceeds O(log) bound %d", pBig, bound(big.EventCount()))
	}
	// And the growth itself must be additive-logarithmic, not ~10×.
	if pBig > pSmall+40 {
		t.Errorf("probe count grew from %d to %d across a 10× event log", pSmall, pBig)
	}
}

// BenchmarkIndexAt measures point lookups at 1× and ≥10× the default
// world's event volume (the default simulation yields ≈5.7k events:
// 3,743 transfers + 2·990 lease boundaries). The "x10" size is the
// acceptance benchmark: ~60k events.
func BenchmarkIndexAt(b *testing.B) {
	for _, sc := range []struct {
		name                      string
		nBlocks, chainLen, nLeases int
	}{
		{"x1", 800, 4, 1000},     // ≈ 5.2k events
		{"x10", 8000, 4, 14000},  // ≈ 60k events
	} {
		b.Run(sc.name, func(b *testing.B) {
			ix := mustNew(b, synthInput(b, sc.nBlocks, sc.chainLen, sc.nLeases))
			b.Logf("events=%d spans=%d epochs=%d", ix.EventCount(), ix.SpanCount(), ix.EpochCount())
			d := time.Date(2018, 7, 4, 0, 0, 0, 0, time.UTC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk := i % sc.nBlocks
				p := netblock.MustPrefix(netblock.AddrFrom4(byte(8+blk/256), byte(blk%256), 0, 0), 16)
				ix.At(p, d)
			}
		})
	}
}

// BenchmarkIndexBuild measures New at the same two scales — the cost the
// snapshot build DAG pays for the temporal stage.
func BenchmarkIndexBuild(b *testing.B) {
	for _, sc := range []struct {
		name                      string
		nBlocks, chainLen, nLeases int
	}{
		{"x1", 800, 4, 1000},
		{"x10", 8000, 4, 14000},
	} {
		b.Run(sc.name, func(b *testing.B) {
			in := synthInput(b, sc.nBlocks, sc.chainLen, sc.nLeases)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
