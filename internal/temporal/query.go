package temporal

import (
	"sort"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// HolderState is who held a block at a point in time. Block is the indexed
// block the answer came from — the queried prefix itself or, when the query
// named something more specific, the longest indexed block covering it.
type HolderState struct {
	Block        netblock.Prefix
	Org          string
	RIR          registry.RIR
	Since        time.Time
	Until        time.Time // zero: still held at the epoch end
	Via          Acquisition
	PricePerAddr float64
}

// PointResult is the full as-of answer for one (prefix, date) pair.
type PointResult struct {
	Prefix netblock.Prefix
	Date   time.Time
	Holder *HolderState // nil: no indexed block covered the prefix at Date

	// Delegations active at Date, relative to the queried prefix.
	Exact    []DelegationSpan // child == prefix
	Covering []DelegationSpan // child strictly covers prefix
	Covered  []DelegationSpan // child strictly inside prefix
}

// TimelineResult is the full history of one prefix: every holding span of
// the matched block and every delegation span touching the prefix.
type TimelineResult struct {
	Prefix      netblock.Prefix
	Block       netblock.Prefix // matched indexed block; zero if none
	Holders     []Span
	Delegations []DelegationSpan // child equal to, inside, or covering Prefix
}

// At answers the point-in-time query: the holder, and the delegation state,
// of prefix p on date d. The caller is responsible for d being inside
// [Start, End) — out-of-range dates simply answer as empty state.
func (ix *Index) At(p netblock.Prefix, d time.Time) PointResult {
	return ix.at(p, d, nil)
}

// at is At with an optional probe hook, called once per binary-search step
// and per trie descent. Tests count probes to prove lookups stay
// logarithmic in the event count; production passes nil.
func (ix *Index) at(p netblock.Prefix, d time.Time, probe func()) PointResult {
	d = day(d)
	res := PointResult{Prefix: p, Date: d}

	block, rng, ok := ix.holderRange(p, probe)
	if ok {
		if i := lastSpanStarting(ix.spans, rng, d, probe); i >= 0 {
			s := ix.spans[i]
			if s.ActiveOn(d) {
				res.Holder = &HolderState{
					Block: block, Org: s.Org, RIR: s.RIR,
					Since: s.Start, Until: s.End,
					Via: s.Via, PricePerAddr: s.PricePerAddr,
				}
			}
		}
	}

	if len(ix.delegs) > 0 {
		e := &ix.epochs[lastStartAtOrBeforeProbed(ix.epochStarts, d, probe)]
		for _, entry := range e.delegs.Covering(p) {
			if probe != nil {
				probe()
			}
			for _, id := range entry.Value {
				ds := ix.delegs[id]
				if !ds.ActiveOn(d) {
					continue
				}
				if entry.Prefix == p {
					res.Exact = append(res.Exact, ds)
				} else {
					res.Covering = append(res.Covering, ds)
				}
			}
		}
		for _, entry := range e.delegs.CoveredBy(p) {
			if probe != nil {
				probe()
			}
			if entry.Prefix == p {
				continue // already in Exact
			}
			for _, id := range entry.Value {
				ds := ix.delegs[id]
				if ds.ActiveOn(d) {
					res.Covered = append(res.Covered, ds)
				}
			}
		}
	}
	return res
}

// holderRange resolves p to the indexed block whose spans govern it: p
// itself when indexed, otherwise the longest indexed block covering p.
func (ix *Index) holderRange(p netblock.Prefix, probe func()) (netblock.Prefix, spanRange, bool) {
	if probe != nil {
		probe()
	}
	if rng, ok := ix.holderTrie.Get(p); ok {
		return p, rng, true
	}
	if probe != nil {
		probe()
	}
	block, rng, ok := ix.holderTrie.LongestMatch(p)
	return block, rng, ok
}

// lastSpanStarting binary-searches spans[rng.lo:rng.hi] (date-sorted by
// Start) for the last span starting on or before d; -1 if none. Because a
// prefix's spans tile time and the final span is open-ended, that span is
// always the holder at d: a same-day chain's zero-length spans all start on
// the same date, and "last starting on or before d" lands past them on the
// span that survived the day.
func lastSpanStarting(spans []Span, rng spanRange, d time.Time, probe func()) int {
	lo, hi := int(rng.lo), int(rng.hi)
	n := sort.Search(hi-lo, func(i int) bool {
		if probe != nil {
			probe()
		}
		return spans[lo+i].Start.After(d)
	})
	if n == 0 {
		return -1
	}
	return lo + n - 1
}

// lastStartAtOrBeforeProbed is lastStartAtOrBefore with probe counting.
func lastStartAtOrBeforeProbed(starts []time.Time, d time.Time, probe func()) int {
	i := sort.Search(len(starts), func(j int) bool {
		if probe != nil {
			probe()
		}
		return starts[j].After(d)
	}) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Timeline answers the history query: every holding span of the block
// governing p, plus every delegation span whose child equals, covers, or
// sits inside p.
func (ix *Index) Timeline(p netblock.Prefix) TimelineResult {
	res := TimelineResult{Prefix: p}
	if block, rng, ok := ix.holderRange(p, nil); ok {
		res.Block = block
		res.Holders = append(res.Holders, ix.spans[rng.lo:rng.hi]...)
	}
	for _, entry := range ix.delegTrie.Covering(p) {
		if entry.Prefix == p {
			continue // CoveredBy below reports the exact child too
		}
		res.Delegations = append(res.Delegations, ix.delegs[entry.Value.lo:entry.Value.hi]...)
	}
	for _, entry := range ix.delegTrie.CoveredBy(p) {
		res.Delegations = append(res.Delegations, ix.delegs[entry.Value.lo:entry.Value.hi]...)
	}
	sort.SliceStable(res.Delegations, func(i, j int) bool {
		a, b := res.Delegations[i], res.Delegations[j]
		if c := a.Child.Compare(b.Child); c != 0 {
			return c < 0
		}
		return a.Start.Before(b.Start)
	})
	return res
}

// Diff returns the events in the half-open window (from, to]: exactly the
// events that turn the world state at `from` into the state at `to` (At
// applies every event dated on or before its query date).
func (ix *Index) Diff(from, to time.Time) []Event {
	from, to = day(from), day(to)
	lo := sort.Search(len(ix.events), func(i int) bool { return ix.events[i].Date.After(from) })
	hi := sort.Search(len(ix.events), func(i int) bool { return ix.events[i].Date.After(to) })
	if lo >= hi {
		return nil
	}
	return append([]Event(nil), ix.events[lo:hi]...)
}

// PriceContext returns the price state of the quarter containing d, and
// whether any transfers were executed in that quarter.
func (ix *Index) PriceContext(d time.Time) (QuarterPrices, bool) {
	q := stats.QuarterOf(day(d))
	i := sort.Search(len(ix.quarters), func(i int) bool {
		return !ix.quarters[i].Quarter.Before(q)
	})
	if i < len(ix.quarters) && ix.quarters[i].Quarter == q {
		return ix.quarters[i], true
	}
	return QuarterPrices{}, false
}

// NaiveAt is the reference implementation of At: a linear replay of the
// normalized event log, with no index structures. Property tests compare
// the index against it over every event boundary; it is exported so the
// serve layer's HTTP-level property test can reuse it.
func NaiveAt(in Input, p netblock.Prefix, d time.Time) PointResult {
	d = day(d)
	res := PointResult{Prefix: p, Date: d}

	// The governing block: the longest prefix with an allocation record
	// that equals or covers p (transfer prefixes always have one too).
	best, found := netblock.Prefix{}, false
	for _, a := range in.Allocations {
		if a.Prefix.Covers(p) && (!found || a.Prefix.Bits() > best.Bits()) {
			best, found = a.Prefix, true
		}
	}
	if found {
		res.Holder = naiveHolder(in, best, d)
	}

	for _, l := range in.Leases {
		if !l.activeOn(d) {
			continue
		}
		switch {
		case l.Child == p:
			res.Exact = append(res.Exact, DelegationSpan(l))
		case l.Child.Covers(p):
			res.Covering = append(res.Covering, DelegationSpan(l))
		case p.Covers(l.Child):
			res.Covered = append(res.Covered, DelegationSpan(l))
		}
	}
	return res
}

// activeOn mirrors DelegationSpan.ActiveOn for the input record form.
func (l LeaseRecord) activeOn(d time.Time) bool {
	return !d.Before(l.Start) && (l.End.IsZero() || d.Before(l.End))
}

// naiveHolder replays the transfer log for one block and reports its
// holder at d, or nil when the block was not yet held.
func naiveHolder(in Input, block netblock.Prefix, d time.Time) *HolderState {
	var alloc AllocationRecord
	for _, a := range in.Allocations {
		if a.Prefix == block {
			alloc = a
			break
		}
	}
	var chain []TransferRecord
	for _, t := range in.Transfers {
		if t.Prefix.Covers(block) {
			chain = append(chain, t)
		}
	}
	if len(chain) == 0 {
		if d.Before(alloc.Date) {
			return nil
		}
		return &HolderState{Block: block, Org: alloc.Org, RIR: alloc.RIR, Since: alloc.Date, Via: ViaOrigin}
	}
	// Replay: start from the first sender (held since the epoch start),
	// apply every transfer dated on or before d in log order.
	h := &HolderState{Block: block, Org: chain[0].From, RIR: chain[0].FromRIR, Since: in.Start, Via: ViaOrigin}
	h.Until = chain[0].Date
	for i, t := range chain {
		if t.Date.After(d) {
			break
		}
		h = &HolderState{
			Block: block, Org: t.To, RIR: t.ToRIR, Since: t.Date,
			Via: viaOf(t.Type), PricePerAddr: t.PricePerAddr,
		}
		if i+1 < len(chain) {
			h.Until = chain[i+1].Date
		}
	}
	if d.Before(h.Since) {
		return nil // before the epoch start can't happen; defensive
	}
	return h
}
