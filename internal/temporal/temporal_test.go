package temporal

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
	"ipv4market/internal/stats"
)

func pfx(t testing.TB, s string) netblock.Prefix {
	t.Helper()
	p, err := netblock.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func onDay(t testing.TB, s string) time.Time {
	t.Helper()
	d, err := parseDay(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fixtureInput is a small hand-written history exercising every span shape:
// a transferred block (market then merger), legacy space predating the
// epoch, a plain allocation, and overlapping delegations (one closed, one
// open-ended).
func fixtureInput(t testing.TB) Input {
	return Input{
		Start: onDay(t, "2005-01-01"),
		End:   onDay(t, "2020-07-01"),
		Allocations: []AllocationRecord{
			{Prefix: pfx(t, "10.0.0.0/16"), Org: "C", RIR: registry.ARIN, Date: onDay(t, "2016-06-15"), Status: "allocated"},
			{Prefix: pfx(t, "20.0.0.0/8"), Org: "L", RIR: registry.ARIN, Date: onDay(t, "1985-01-01"), Status: "legacy"},
			{Prefix: pfx(t, "30.0.0.0/16"), Org: "X", RIR: registry.RIPENCC, Date: onDay(t, "2010-05-10"), Status: "allocated"},
		},
		Transfers: []TransferRecord{
			{Prefix: pfx(t, "10.0.0.0/16"), From: "A", To: "B", FromRIR: registry.ARIN, ToRIR: registry.ARIN,
				Type: string(registry.TypeMarket), Date: onDay(t, "2013-03-01"), PricePerAddr: 8},
			{Prefix: pfx(t, "10.0.0.0/16"), From: "B", To: "C", FromRIR: registry.ARIN, ToRIR: registry.ARIN,
				Type: string(registry.TypeMerger), Date: onDay(t, "2016-06-15")},
		},
		Leases: []LeaseRecord{
			{Parent: pfx(t, "20.0.0.0/8"), Child: pfx(t, "20.1.0.0/24"), FromAS: 100, ToAS: 200,
				Start: onDay(t, "2018-01-01"), End: onDay(t, "2019-01-01")},
			{Parent: pfx(t, "20.0.0.0/8"), Child: pfx(t, "20.1.0.0/16"), FromAS: 100, ToAS: 300,
				Start: onDay(t, "2018-06-01")},
		},
	}
}

func mustNew(t testing.TB, in Input) *Index {
	t.Helper()
	ix, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestHolderReconstruction(t *testing.T) {
	ix := mustNew(t, fixtureInput(t))
	block := pfx(t, "10.0.0.0/16")

	cases := []struct {
		date    string
		org     string
		via     Acquisition
		price   float64
		noState bool
	}{
		{date: "2005-01-01", org: "A", via: ViaOrigin},            // reconstructed pre-transfer holder
		{date: "2013-02-28", org: "A", via: ViaOrigin},            // day before the first transfer
		{date: "2013-03-01", org: "B", via: ViaMarket, price: 8},  // exactly on the event date
		{date: "2016-06-14", org: "B", via: ViaMarket, price: 8},  // day before the second
		{date: "2016-06-15", org: "C", via: ViaMerger},            // merger, unpriced
		{date: "2020-06-30", org: "C", via: ViaMerger},            // last queryable day
	}
	for _, c := range cases {
		res := ix.At(block, onDay(t, c.date))
		if res.Holder == nil {
			t.Fatalf("At(%v, %s): no holder", block, c.date)
		}
		h := res.Holder
		if h.Org != c.org || h.Via != c.via || h.PricePerAddr != c.price || h.Block != block {
			t.Errorf("At(%v, %s) = org=%q via=%q price=%v block=%v, want org=%q via=%q price=%v",
				block, c.date, h.Org, h.Via, h.PricePerAddr, h.Block, c.org, c.via, c.price)
		}
	}

	// A more-specific query resolves to the covering indexed block.
	res := ix.At(pfx(t, "10.0.128.0/24"), onDay(t, "2014-01-01"))
	if res.Holder == nil || res.Holder.Org != "B" || res.Holder.Block != block {
		t.Errorf("more-specific lookup = %+v, want holder B of %v", res.Holder, block)
	}

	// Legacy space keeps its true (pre-epoch) origin date.
	res = ix.At(pfx(t, "20.0.0.0/8"), onDay(t, "2005-01-01"))
	if res.Holder == nil || res.Holder.Org != "L" || !res.Holder.Since.Equal(onDay(t, "1985-01-01")) {
		t.Errorf("legacy lookup = %+v, want L since 1985-01-01", res.Holder)
	}

	// Before an untransferred block's allocation date: not yet held.
	if res := ix.At(pfx(t, "30.0.0.0/16"), onDay(t, "2010-05-09")); res.Holder != nil {
		t.Errorf("lookup before allocation date answered holder %+v", res.Holder)
	}
	if res := ix.At(pfx(t, "30.0.0.0/16"), onDay(t, "2010-05-10")); res.Holder == nil || res.Holder.Org != "X" {
		t.Errorf("lookup on allocation date = %+v, want X", res.Holder)
	}

	// A prefix no indexed block covers.
	if res := ix.At(pfx(t, "99.0.0.0/8"), onDay(t, "2015-01-01")); res.Holder != nil {
		t.Errorf("uncovered prefix answered holder %+v", res.Holder)
	}
}

func TestSameDayChainOrdering(t *testing.T) {
	in := Input{
		Start: onDay(t, "2005-01-01"),
		End:   onDay(t, "2020-07-01"),
		Allocations: []AllocationRecord{
			{Prefix: pfx(t, "10.0.0.0/16"), Org: "C", RIR: registry.ARIN, Date: onDay(t, "2015-01-01")},
		},
		Transfers: []TransferRecord{
			{Prefix: pfx(t, "10.0.0.0/16"), From: "A", To: "B", FromRIR: registry.ARIN, ToRIR: registry.ARIN,
				Type: string(registry.TypeMarket), Date: onDay(t, "2015-01-01"), PricePerAddr: 7},
			{Prefix: pfx(t, "10.0.0.0/16"), From: "B", To: "C", FromRIR: registry.ARIN, ToRIR: registry.ARIN,
				Type: string(registry.TypeMerger), Date: onDay(t, "2015-01-01")},
		},
	}
	ix := mustNew(t, in)
	p := pfx(t, "10.0.0.0/16")

	// On the chain date the log order decides: C holds at end of day.
	if res := ix.At(p, onDay(t, "2015-01-01")); res.Holder == nil || res.Holder.Org != "C" {
		t.Fatalf("same-day chain At = %+v, want C", res.Holder)
	}
	if res := ix.At(p, onDay(t, "2014-12-31")); res.Holder == nil || res.Holder.Org != "A" {
		t.Fatalf("day before chain At = %+v, want A", res.Holder)
	}

	// The timeline retains the zero-length intermediate span.
	tl := ix.Timeline(p)
	if len(tl.Holders) != 3 {
		t.Fatalf("timeline has %d spans, want 3 (incl. zero-length)", len(tl.Holders))
	}
	mid := tl.Holders[1]
	if mid.Org != "B" || !mid.Start.Equal(mid.End) {
		t.Errorf("middle span = %+v, want zero-length span held by B", mid)
	}
}

func TestDelegationsAt(t *testing.T) {
	ix := mustNew(t, fixtureInput(t))
	child24, child16 := pfx(t, "20.1.0.0/24"), pfx(t, "20.1.0.0/16")

	res := ix.At(child24, onDay(t, "2018-06-01"))
	if len(res.Exact) != 1 || res.Exact[0].ToAS != 200 {
		t.Errorf("Exact = %+v, want the /24 lease", res.Exact)
	}
	if len(res.Covering) != 1 || res.Covering[0].Child != child16 {
		t.Errorf("Covering = %+v, want the /16 lease", res.Covering)
	}
	if len(res.Covered) != 0 {
		t.Errorf("Covered = %+v, want none", res.Covered)
	}

	// On the /24 lease's end date it is gone ([Start, End) is half-open).
	res = ix.At(child24, onDay(t, "2019-01-01"))
	if len(res.Exact) != 0 {
		t.Errorf("lease active on its end date: %+v", res.Exact)
	}
	if len(res.Covering) != 1 {
		t.Errorf("open-ended covering lease missing: %+v", res.Covering)
	}

	// From the /16's point of view the /24 is a covered delegation.
	res = ix.At(child16, onDay(t, "2018-07-01"))
	if len(res.Exact) != 1 || res.Exact[0].ToAS != 300 {
		t.Errorf("Exact = %+v, want the /16 lease", res.Exact)
	}
	if len(res.Covered) != 1 || res.Covered[0].Child != child24 {
		t.Errorf("Covered = %+v, want the /24 lease", res.Covered)
	}

	// Before any delegation started: nothing.
	res = ix.At(child24, onDay(t, "2017-12-31"))
	if len(res.Exact)+len(res.Covering)+len(res.Covered) != 0 {
		t.Errorf("delegations before first event: %+v", res)
	}
}

func TestDiffWindow(t *testing.T) {
	ix := mustNew(t, fixtureInput(t))

	// (from, to]: the first transfer date as `from` excludes it.
	evs := ix.Diff(onDay(t, "2013-03-01"), onDay(t, "2016-06-15"))
	if len(evs) != 1 || evs[0].Kind != EventTransfer || evs[0].To != "C" {
		t.Fatalf("Diff(2013-03-01, 2016-06-15) = %+v, want only the B→C transfer", evs)
	}

	// A window over the delegation churn sees starts and the /24 end.
	evs = ix.Diff(onDay(t, "2017-12-31"), onDay(t, "2019-01-01"))
	kinds := map[EventKind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
	}
	if kinds[EventDelegationStart] != 2 || kinds[EventDelegationEnd] != 1 {
		t.Fatalf("Diff kinds = %v, want 2 starts + 1 end", kinds)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Date.Before(evs[i-1].Date) {
			t.Fatalf("Diff events out of date order: %v", evs)
		}
	}

	if evs := ix.Diff(onDay(t, "2014-01-01"), onDay(t, "2014-01-01")); len(evs) != 0 {
		t.Errorf("empty window returned %d events", len(evs))
	}
}

func TestPriceContext(t *testing.T) {
	ix := mustNew(t, fixtureInput(t))

	qp, ok := ix.PriceContext(onDay(t, "2013-02-10"))
	if !ok || qp.Quarter != (stats.Quarter{Year: 2013, Q: 1}) {
		t.Fatalf("PriceContext(2013-02-10) = %+v ok=%v", qp, ok)
	}
	if qp.Transfers != 1 || qp.Priced != 1 || qp.MeanPrice != 8 || qp.MinPrice != 8 || qp.MaxPrice != 8 {
		t.Errorf("2013Q1 = %+v, want one priced transfer at 8", qp)
	}
	if qp.Addresses != pfx(t, "10.0.0.0/16").NumAddrs() {
		t.Errorf("2013Q1 moved %d addresses, want one /16", qp.Addresses)
	}

	qp, ok = ix.PriceContext(onDay(t, "2016-05-01"))
	if !ok || qp.Priced != 0 || qp.Transfers != 1 || qp.MeanPrice != 0 {
		t.Errorf("2016Q2 = %+v ok=%v, want one unpriced transfer", qp, ok)
	}

	if _, ok := ix.PriceContext(onDay(t, "2011-01-01")); ok {
		t.Error("quarter with no transfers reported price context")
	}
}

func TestNewValidatesInput(t *testing.T) {
	base := fixtureInput(t)

	bad := base
	bad.End = bad.Start
	if _, err := New(bad); err == nil {
		t.Error("New accepted an empty epoch")
	}

	bad = fixtureInput(t)
	bad.Allocations = append(bad.Allocations, bad.Allocations[0])
	if _, err := New(bad); err == nil {
		t.Error("New accepted a duplicate allocation")
	}

	bad = fixtureInput(t)
	bad.Transfers = append(bad.Transfers, TransferRecord{
		Prefix: pfx(t, "44.0.0.0/16"), From: "A", To: "B",
		Type: string(registry.TypeMarket), Date: onDay(t, "2014-01-01"),
	})
	if _, err := New(bad); err == nil {
		t.Error("New accepted a transfer with no final allocation")
	}

	bad = fixtureInput(t)
	bad.Allocations[0].Org = "NOT-C"
	if _, err := New(bad); err == nil {
		t.Error("New accepted a final holder contradicting the transfer chain")
	}
}

func TestRecordRestoreRoundTrip(t *testing.T) {
	ix := mustNew(t, fixtureInput(t))
	rec, err := ix.Record()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := got.Record()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, rec2) {
		t.Error("Record bytes differ after a restore round trip")
	}

	for _, p := range []string{"10.0.0.0/16", "20.1.0.0/24", "30.0.0.0/16"} {
		for _, d := range []string{"2010-01-01", "2013-03-01", "2018-06-01", "2020-06-30"} {
			a, b := ix.At(pfx(t, p), onDay(t, d)), got.At(pfx(t, p), onDay(t, d))
			if !reflect.DeepEqual(a, b) {
				t.Errorf("At(%s, %s) differs after restore:\n  built:    %+v\n  restored: %+v", p, d, a, b)
			}
		}
		if a, b := ix.Timeline(pfx(t, p)), got.Timeline(pfx(t, p)); !reflect.DeepEqual(a, b) {
			t.Errorf("Timeline(%s) differs after restore", p)
		}
	}
	if !reflect.DeepEqual(ix.Quarters(), got.Quarters()) {
		t.Error("Quarters differ after restore")
	}
}

func TestRestoreRejectsBadRecords(t *testing.T) {
	for _, data := range []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "start": "2005-01-01", "end": "soon"}`,
		`{"version": 1, "start": "2005-01-01", "end": "2020-07-01", "allocations": [{"prefix": "bogus"}]}`,
	} {
		if _, err := Restore([]byte(data)); err == nil {
			t.Errorf("Restore accepted %q", data)
		}
	}
}

// TestNewDeterministicUnderInputOrder proves normalization: allocation and
// lease order must not matter (transfer order is semantic and kept).
func TestNewDeterministicUnderInputOrder(t *testing.T) {
	a := fixtureInput(t)
	b := fixtureInput(t)
	for i, j := 0, len(b.Allocations)-1; i < j; i, j = i+1, j-1 {
		b.Allocations[i], b.Allocations[j] = b.Allocations[j], b.Allocations[i]
	}
	for i, j := 0, len(b.Leases)-1; i < j; i, j = i+1, j-1 {
		b.Leases[i], b.Leases[j] = b.Leases[j], b.Leases[i]
	}
	recA, err := mustNew(t, a).Record()
	if err != nil {
		t.Fatal(err)
	}
	recB, err := mustNew(t, b).Record()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recA, recB) {
		t.Error("Record bytes depend on input slice order")
	}
}

// worldInput maps a simulated world to the temporal event model the same
// way the serve layer does; the property test runs over a real history.
func worldInput(cfg simulation.Config, w *simulation.World) Input {
	in := Input{Start: cfg.HistoryStart, End: cfg.MarketEnd}
	for _, a := range w.Registry.Allocations() {
		in.Allocations = append(in.Allocations, AllocationRecord{
			Prefix: a.Prefix, Org: string(a.Org), RIR: a.RIR, Date: a.Date, Status: string(a.Status),
		})
	}
	for _, tr := range w.Registry.Transfers() {
		in.Transfers = append(in.Transfers, TransferRecord{
			Prefix: tr.Prefix, From: string(tr.From), To: string(tr.To),
			FromRIR: tr.FromRIR, ToRIR: tr.ToRIR, Type: string(tr.Type),
			Date: tr.Date, PricePerAddr: tr.PricePerAddr,
		})
	}
	for _, l := range w.Leases {
		in.Leases = append(in.Leases, LeaseRecord{
			Parent: l.Parent, Child: l.Child,
			FromAS: uint32(l.Provider.PrimaryAS()), ToAS: uint32(l.Customer.PrimaryAS()),
			Start: cfg.RoutingStart.AddDate(0, 0, l.StartDay),
			End:   cfg.RoutingStart.AddDate(0, 0, l.EndDay),
		})
	}
	return in
}

// canonicalize sorts a PointResult's delegation slices so index answers
// (trie walk order) and naive answers (scan order) compare structurally.
func canonicalize(r PointResult) PointResult {
	for _, s := range [][]DelegationSpan{r.Exact, r.Covering, r.Covered} {
		sort.Slice(s, func(i, j int) bool {
			a, b := s[i], s[j]
			if c := a.Child.Compare(b.Child); c != 0 {
				return c < 0
			}
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			if a.FromAS != b.FromAS {
				return a.FromAS < b.FromAS
			}
			return a.ToAS < b.ToAS
		})
	}
	return r
}

// TestIndexMatchesNaiveReplay is the acceptance property test: over a real
// simulated history, for (prefix, date) pairs spanning every event
// boundary (the event's own prefix at the boundary, one day before, one
// day after) plus a cross-sample of prefixes and dates, the index answers
// exactly like a naive replay of the event log.
func TestIndexMatchesNaiveReplay(t *testing.T) {
	cfg := simulation.DefaultConfig()
	cfg.Seed = 7
	cfg.NumLIRs = 12
	cfg.RoutingDays = 120
	cfg.AdministrativeLeases = 60
	cfg.RoutedLeases = 30
	cfg.SmallAssignmentsPerLIR = 8
	w, err := simulation.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix := mustNew(t, worldInput(cfg, w))
	in := ix.Input()
	t.Logf("world: %d allocations, %d transfers, %d leases, %d events",
		len(in.Allocations), len(in.Transfers), len(in.Leases), ix.EventCount())

	type pair struct {
		p netblock.Prefix
		d time.Time
	}
	var pairs []pair
	add := func(p netblock.Prefix, d time.Time) {
		if !d.Before(in.Start) && d.Before(in.End) {
			pairs = append(pairs, pair{p, d})
		}
	}

	// Every event boundary, probed at the boundary and one day either side.
	events := ix.Diff(in.Start.AddDate(0, 0, -1), in.End)
	if len(events) != ix.EventCount() {
		t.Fatalf("boundary sweep covers %d events, index holds %d", len(events), ix.EventCount())
	}
	for _, e := range events {
		for _, d := range []time.Time{e.Date.AddDate(0, 0, -1), e.Date, e.Date.AddDate(0, 0, 1)} {
			add(e.Prefix, d)
		}
	}

	// Cross-sample: a deterministic stride of allocation prefixes (plus a
	// more-specific child of each) against a spread of dates, including
	// the epoch edges.
	dates := []time.Time{in.Start, in.Start.AddDate(1, 0, 0), onDay(t, "2011-02-03"),
		onDay(t, "2015-07-01"), onDay(t, "2019-04-09"), in.End.AddDate(0, 0, -1)}
	for i := 0; i < len(in.Allocations); i += 97 {
		p := in.Allocations[i].Prefix
		for _, d := range dates {
			add(p, d)
			if p.Bits() <= 24 {
				if kid, err := netblock.PrefixFrom(p.Addr(), p.Bits()+2); err == nil {
					add(kid, d)
				}
			}
		}
	}
	// And a prefix nothing in the world covers.
	for _, d := range dates {
		add(pfx(t, "203.0.113.0/24"), d)
	}

	for _, pr := range pairs {
		got := canonicalize(ix.At(pr.p, pr.d))
		want := canonicalize(NaiveAt(in, pr.p, pr.d))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("At(%v, %s) diverges from naive replay:\n  index: %+v\n  naive: %+v",
				pr.p, fmtDay(pr.d), got, want)
		}
	}
	t.Logf("verified %d (prefix, date) pairs", len(pairs))
}
