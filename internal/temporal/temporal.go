// Package temporal materializes the study's event history — delegations,
// transfers, holder changes, and quarterly price state — into an immutable,
// date-indexed temporal index, so "who held prefix P on date D" (and the
// delegation and price context around it) answers in O(log) of the event
// count instead of a replay of the event log.
//
// The index is built once from a normalized event Input by New, never
// mutated afterwards, and is byte-deterministic: the same Input always
// yields the same Record() bytes and the same query answers, regardless of
// build parallelism, map iteration order, or the machine. Restore(Record())
// reproduces the index exactly, which is what lets warm starts and
// replication followers answer /v1/asof byte-identically to the builder.
//
// Layout (see ARCHITECTURE.md §9): holding spans are grouped per prefix in
// one contiguous date-sorted slice — each prefix owns a half-open range of
// that slice, found by trie lookup and binary-searched by date (the
// interval-tree role; spans of one prefix tile time, so "last span starting
// on or before D" is the holder at D). Delegation spans are partitioned
// into per-epoch tries: epoch boundaries are drawn from delegation
// start/end dates, a date binary-searches to its epoch, and the epoch's
// trie holds only the delegations overlapping that epoch.
package temporal

import (
	"fmt"
	"sort"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// Acquisition says how a holder came to hold a block.
type Acquisition string

// Acquisition kinds. ViaOrigin covers RIR delegation and legacy holdings
// (and the reconstructed pre-first-transfer holder, whose original
// delegation date the registry no longer carries once a transfer has
// rewritten the allocation record).
const (
	ViaOrigin Acquisition = "origin"
	ViaMarket Acquisition = "market"
	ViaMerger Acquisition = "merger"
)

// AllocationRecord is the final registry state of one block: who holds it
// now and since when. Together with the transfer chain for the same prefix
// it determines the block's whole holding history.
type AllocationRecord struct {
	Prefix netblock.Prefix
	Org    string
	RIR    registry.RIR
	Date   time.Time
	Status string
}

// TransferRecord is one completed transfer from the registry's log.
// Records for the same prefix must appear in execution order; same-day
// chains (A→B→C on one date) rely on it.
type TransferRecord struct {
	Prefix       netblock.Prefix
	From, To     string
	FromRIR      registry.RIR
	ToRIR        registry.RIR
	Type         string
	Date         time.Time
	PricePerAddr float64
}

// LeaseRecord is one delegation span observed in the routing/whois window:
// the provider block, the delegated child, and the AS pair. [Start, End) —
// a zero End means the delegation was still active at the epoch end.
type LeaseRecord struct {
	Parent netblock.Prefix
	Child  netblock.Prefix
	FromAS uint32
	ToAS   uint32
	Start  time.Time
	End    time.Time
}

// Input is the full event history the index is built from. Start/End bound
// the simulated epoch: queries are answered for dates in [Start, End).
type Input struct {
	Start       time.Time
	End         time.Time
	Allocations []AllocationRecord
	Transfers   []TransferRecord
	Leases      []LeaseRecord
}

// Span is one holding span: Org held Prefix for [Start, End). A zero End
// means the block is still held at the epoch end. Same-day transfer chains
// produce zero-length spans (Start == End), which point-in-time lookups
// skip over but timelines retain.
type Span struct {
	Prefix       netblock.Prefix
	Org          string
	RIR          registry.RIR
	Start        time.Time
	End          time.Time
	Via          Acquisition
	PricePerAddr float64
}

// ActiveOn reports whether the span covers date d.
func (s Span) ActiveOn(d time.Time) bool {
	return !d.Before(s.Start) && (s.End.IsZero() || d.Before(s.End))
}

// DelegationSpan is one delegation's lifetime: Child delegated from FromAS
// to ToAS for [Start, End) (zero End = open at the epoch end).
type DelegationSpan struct {
	Parent netblock.Prefix
	Child  netblock.Prefix
	FromAS uint32
	ToAS   uint32
	Start  time.Time
	End    time.Time
}

// ActiveOn reports whether the delegation covers date d.
func (s DelegationSpan) ActiveOn(d time.Time) bool {
	return !d.Before(s.Start) && (s.End.IsZero() || d.Before(s.End))
}

// EventKind classifies entries of the merged event stream behind Diff.
type EventKind string

// Event kinds.
const (
	EventTransfer        EventKind = "transfer"
	EventDelegationStart EventKind = "delegation_start"
	EventDelegationEnd   EventKind = "delegation_end"
)

// Event is one entry of the merged, date-sorted event stream: a transfer,
// or a delegation starting or ending. Only the fields for its kind are set.
type Event struct {
	Date   time.Time
	Kind   EventKind
	Prefix netblock.Prefix // transferred block, or delegated child

	// Transfer fields.
	From, To     string
	FromRIR      registry.RIR
	ToRIR        registry.RIR
	Type         string
	PricePerAddr float64

	// Delegation fields.
	Parent netblock.Prefix
	FromAS uint32
	ToAS   uint32
}

// QuarterPrices is the transfer-market price state of one quarter,
// aggregated over the priced (market) transfers executed in it.
type QuarterPrices struct {
	Quarter   stats.Quarter
	Transfers int     // all transfers executed in the quarter
	Priced    int     // transfers carrying a nonzero price
	Addresses uint64  // addresses moved by all transfers
	MeanPrice float64 // mean USD/addr over priced transfers; 0 if none
	MinPrice  float64
	MaxPrice  float64
}

// spanRange is a half-open index range [lo, hi) into a shared span slice.
type spanRange struct{ lo, hi int32 }

// epoch is one partition of the delegation time axis: [start, end), with a
// trie from child prefix to the indexes (into Index.delegs) of every
// delegation span overlapping the epoch.
type epoch struct {
	start  time.Time
	end    time.Time // zero for the last epoch
	delegs *netblock.Trie[[]int32]
}

// maxEpochs caps the number of delegation epochs; beyond it, epochs absorb
// multiple boundary dates and queries date-filter within the epoch. It
// bounds build cost (a span is inserted once per epoch it overlaps) while
// keeping per-epoch candidate lists short.
const maxEpochs = 256

// Index is the immutable as-of index. Build it with New (or Restore) and
// share it freely: all methods are safe for concurrent use.
type Index struct {
	in Input // normalized; Record marshals exactly this

	spans      []Span // grouped by prefix (Compare order), date-sorted within
	holderTrie *netblock.Trie[spanRange]

	delegs      []DelegationSpan // sorted by (child, start, end, parent, AS pair)
	delegTrie   *netblock.Trie[spanRange]
	epochs      []epoch
	epochStarts []time.Time // epochs[i].start, for binary search

	events   []Event
	quarters []QuarterPrices
}

// New builds the index from an event history. It normalizes the input
// (sorting allocations and leases canonically, clamping lease spans to
// [Start, End), truncating dates to UTC day granularity) and then derives
// every structure deterministically from the normalized form, so equal
// histories always produce equal indexes — and equal Record() bytes.
func New(in Input) (*Index, error) {
	norm, err := normalize(in)
	if err != nil {
		return nil, err
	}
	ix := &Index{in: norm}
	if err := ix.buildSpans(); err != nil {
		return nil, err
	}
	ix.buildDelegations()
	ix.buildEvents()
	ix.buildQuarters()
	return ix, nil
}

// day truncates a timestamp to its UTC calendar day. The index is
// date-granular: every event in the study lands on a UTC midnight already,
// and queries are keyed by date.
func day(t time.Time) time.Time {
	if t.IsZero() {
		return t
	}
	y, m, d := t.UTC().Date()
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// normalize copies and canonicalizes the input so that the rest of the
// build — and Record() — see one unique representation per history.
func normalize(in Input) (Input, error) {
	out := Input{Start: day(in.Start), End: day(in.End)}
	if out.Start.IsZero() || out.End.IsZero() || !out.Start.Before(out.End) {
		return Input{}, fmt.Errorf("temporal: epoch [%s, %s) is empty", fmtDay(out.Start), fmtDay(out.End))
	}

	out.Allocations = append([]AllocationRecord(nil), in.Allocations...)
	for i := range out.Allocations {
		out.Allocations[i].Date = day(out.Allocations[i].Date)
	}
	sort.Slice(out.Allocations, func(i, j int) bool {
		return out.Allocations[i].Prefix.Compare(out.Allocations[j].Prefix) < 0
	})
	for i := 1; i < len(out.Allocations); i++ {
		if out.Allocations[i].Prefix == out.Allocations[i-1].Prefix {
			return Input{}, fmt.Errorf("temporal: duplicate allocation for %v", out.Allocations[i].Prefix)
		}
	}

	// Transfers keep their log order — it is the execution order, the
	// order the registry actually applied them in, and the only thing
	// that orders a same-day chain. The log's dates, however, are not
	// monotone along a block's chain: the generator sweeps market by
	// market, so an entry executed later can carry an earlier date (real
	// RIR transfer logs have the same wart). Each date is repaired
	// forward to the latest date of any earlier log entry covering the
	// same space, which makes every block's history date-monotone while
	// preserving the registry's final state. The repair is idempotent,
	// so Record/Restore round-trips byte-identically.
	out.Transfers = append([]TransferRecord(nil), in.Transfers...)
	latest := netblock.NewTrie[time.Time]()
	for i := range out.Transfers {
		t := &out.Transfers[i]
		t.Date = day(t.Date)
		for _, entry := range latest.Covering(t.Prefix) {
			if entry.Value.After(t.Date) {
				t.Date = entry.Value
			}
		}
		if cur, ok := latest.Get(t.Prefix); !ok || t.Date.After(cur) {
			latest.Insert(t.Prefix, t.Date)
		}
	}

	for _, l := range in.Leases {
		l.Start, l.End = day(l.Start), day(l.End)
		if !l.Start.Before(out.End) {
			continue // never visible inside the epoch
		}
		if l.Start.Before(out.Start) {
			l.Start = out.Start
		}
		if l.End.IsZero() || !l.End.Before(out.End) {
			l.End = time.Time{} // open: active through the epoch end
		}
		if !l.End.IsZero() && !l.Start.Before(l.End) {
			continue // empty after clamping
		}
		out.Leases = append(out.Leases, l)
	}
	sort.Slice(out.Leases, func(i, j int) bool {
		a, b := out.Leases[i], out.Leases[j]
		if c := a.Child.Compare(b.Child); c != 0 {
			return c < 0
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if !a.End.Equal(b.End) {
			return leaseEndBefore(a.End, b.End)
		}
		if c := a.Parent.Compare(b.Parent); c != 0 {
			return c < 0
		}
		if a.FromAS != b.FromAS {
			return a.FromAS < b.FromAS
		}
		return a.ToAS < b.ToAS
	})
	return out, nil
}

// leaseEndBefore orders span end dates with the open (zero) end last.
func leaseEndBefore(a, b time.Time) bool {
	if a.IsZero() {
		return false
	}
	if b.IsZero() {
		return true
	}
	return a.Before(b)
}

// buildSpans reconstructs every block's holding history from the final
// allocation state plus the transfer chain, exactly as a replay of the
// event log would: the holder at D is the holder after applying every
// transfer dated on or before D.
//
// A block's chain is every transfer whose prefix covers it, not only exact
// matches: the registry splits an allocation when a sub-block is
// transferred away, so a block transferred whole and later split leaves a
// transfer record at the parent prefix and final allocations only at the
// pieces — each piece inherits the parent's part of the chain.
//
// The registry also rewrites an allocation in place on transfer (org, RIR
// and date all change), so for a transferred block the original delegation
// date is unrecoverable; its first span opens at the epoch start, held by
// the first transfer's sender, via "origin". Untransferred blocks keep
// their true allocation date, even when it predates the epoch (legacy
// space).
func (ix *Index) buildSpans() error {
	in := ix.in
	transferTrie := netblock.NewTrie[[]int32]()
	for i, t := range in.Transfers {
		ids, _ := transferTrie.Get(t.Prefix)
		transferTrie.Insert(t.Prefix, append(ids, int32(i)))
	}
	used := make([]bool, len(in.Transfers))

	// Allocations are sorted and unique after normalize.
	ix.holderTrie = netblock.NewTrie[spanRange]()
	for _, a := range in.Allocations {
		p := a.Prefix
		var chain []int32
		for _, entry := range transferTrie.Covering(p) {
			chain = append(chain, entry.Value...)
		}
		sort.Slice(chain, func(i, j int) bool { return chain[i] < chain[j] })
		for _, id := range chain {
			used[id] = true
		}
		lo := int32(len(ix.spans))
		if len(chain) == 0 {
			ix.spans = append(ix.spans, Span{
				Prefix: p, Org: a.Org, RIR: a.RIR,
				Start: a.Date, Via: ViaOrigin,
			})
		} else {
			first := in.Transfers[chain[0]]
			origin := in.Start
			if first.Date.Before(origin) {
				origin = first.Date // pre-epoch transfer: keep spans tiling
			}
			ix.spans = append(ix.spans, Span{
				Prefix: p, Org: first.From, RIR: first.FromRIR,
				Start: origin, End: first.Date, Via: ViaOrigin,
			})
			for i, ti := range chain {
				t := in.Transfers[ti]
				if i > 0 && t.Date.Before(in.Transfers[chain[i-1]].Date) {
					return fmt.Errorf("temporal: transfers of %v out of date order", p)
				}
				end := time.Time{}
				if i+1 < len(chain) {
					end = in.Transfers[chain[i+1]].Date
				}
				ix.spans = append(ix.spans, Span{
					Prefix: p, Org: t.To, RIR: t.ToRIR,
					Start: t.Date, End: end,
					Via: viaOf(t.Type), PricePerAddr: t.PricePerAddr,
				})
			}
			last := in.Transfers[chain[len(chain)-1]]
			if last.To != a.Org {
				return fmt.Errorf("temporal: %v: final holder %q does not match last transfer recipient %q",
					p, a.Org, last.To)
			}
		}
		ix.holderTrie.Insert(p, spanRange{lo, int32(len(ix.spans))})
	}
	for i, u := range used {
		if !u {
			return fmt.Errorf("temporal: transfer of %v covers no final allocation", in.Transfers[i].Prefix)
		}
	}
	return nil
}

// viaOf maps a registry transfer type to an acquisition kind.
func viaOf(typ string) Acquisition {
	if typ == string(registry.TypeMerger) {
		return ViaMerger
	}
	return ViaMarket
}

// buildDelegations materializes the delegation spans, the global child
// trie, and the per-epoch partition tries.
func (ix *Index) buildDelegations() {
	ix.delegTrie = netblock.NewTrie[spanRange]()
	for _, l := range ix.in.Leases {
		ix.delegs = append(ix.delegs, DelegationSpan{
			Parent: l.Parent, Child: l.Child,
			FromAS: l.FromAS, ToAS: l.ToAS,
			Start: l.Start, End: l.End,
		})
	}
	for lo := 0; lo < len(ix.delegs); {
		hi := lo
		for hi < len(ix.delegs) && ix.delegs[hi].Child == ix.delegs[lo].Child {
			hi++
		}
		ix.delegTrie.Insert(ix.delegs[lo].Child, spanRange{int32(lo), int32(hi)})
		lo = hi
	}

	// Epoch boundaries: every distinct delegation start/end inside the
	// epoch, thinned to at most maxEpochs partitions.
	var bounds []time.Time
	for _, d := range ix.delegs {
		if d.Start.After(ix.in.Start) {
			bounds = append(bounds, d.Start)
		}
		if !d.End.IsZero() {
			bounds = append(bounds, d.End)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Before(bounds[j]) })
	dedup := bounds[:0]
	for _, b := range bounds {
		if len(dedup) == 0 || !b.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, b)
		}
	}
	stride := 1
	if len(dedup) > maxEpochs {
		stride = (len(dedup) + maxEpochs - 1) / maxEpochs
	}
	ix.epochStarts = []time.Time{ix.in.Start}
	for i := stride - 1; i < len(dedup); i += stride {
		ix.epochStarts = append(ix.epochStarts, dedup[i])
	}
	for i, start := range ix.epochStarts {
		e := epoch{start: start, delegs: netblock.NewTrie[[]int32]()}
		if i+1 < len(ix.epochStarts) {
			e.end = ix.epochStarts[i+1]
		}
		ix.epochs = append(ix.epochs, e)
	}
	for i, d := range ix.delegs {
		lo := lastStartAtOrBefore(ix.epochStarts, d.Start)
		hi := len(ix.epochs) - 1
		if !d.End.IsZero() {
			// The span is dead in epochs starting at or after its end.
			hi = sort.Search(len(ix.epochStarts), func(j int) bool {
				return !ix.epochStarts[j].Before(d.End)
			}) - 1
		}
		for e := lo; e <= hi; e++ {
			ids, _ := ix.epochs[e].delegs.Get(d.Child)
			ix.epochs[e].delegs.Insert(d.Child, append(ids, int32(i)))
		}
	}
}

// lastStartAtOrBefore returns the index of the last element of starts that
// is not after d; starts[0] is the epoch start, so the result is >= 0 for
// any in-range date.
func lastStartAtOrBefore(starts []time.Time, d time.Time) int {
	i := sort.Search(len(starts), func(j int) bool { return starts[j].After(d) }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// buildEvents merges transfers and delegation starts/ends into one
// date-sorted stream. The sort is stable over a deterministic pre-order
// (transfers in log order, then delegation starts, then ends, each in
// normalized order), so same-day events keep a reproducible order.
func (ix *Index) buildEvents() {
	ix.events = make([]Event, 0, len(ix.in.Transfers)+2*len(ix.delegs))
	for _, t := range ix.in.Transfers {
		ix.events = append(ix.events, Event{
			Date: t.Date, Kind: EventTransfer, Prefix: t.Prefix,
			From: t.From, To: t.To, FromRIR: t.FromRIR, ToRIR: t.ToRIR,
			Type: t.Type, PricePerAddr: t.PricePerAddr,
		})
	}
	for _, d := range ix.delegs {
		ix.events = append(ix.events, Event{
			Date: d.Start, Kind: EventDelegationStart, Prefix: d.Child,
			Parent: d.Parent, FromAS: d.FromAS, ToAS: d.ToAS,
		})
	}
	for _, d := range ix.delegs {
		if d.End.IsZero() {
			continue
		}
		ix.events = append(ix.events, Event{
			Date: d.End, Kind: EventDelegationEnd, Prefix: d.Child,
			Parent: d.Parent, FromAS: d.FromAS, ToAS: d.ToAS,
		})
	}
	sort.SliceStable(ix.events, func(i, j int) bool {
		return ix.events[i].Date.Before(ix.events[j].Date)
	})
}

// buildQuarters aggregates the quarterly transfer-price state. Sums are
// accumulated in transfer-log order, so the floating-point results are
// identical on every build.
func (ix *Index) buildQuarters() {
	type agg struct {
		transfers, priced int
		addrs             uint64
		sum, min, max     float64
	}
	byQuarter := make(map[stats.Quarter]*agg)
	var order []stats.Quarter
	for _, t := range ix.in.Transfers {
		q := stats.QuarterOf(t.Date)
		a := byQuarter[q]
		if a == nil {
			a = &agg{}
			byQuarter[q] = a
			order = append(order, q)
		}
		a.transfers++
		a.addrs += t.Prefix.NumAddrs()
		if t.PricePerAddr > 0 {
			if a.priced == 0 || t.PricePerAddr < a.min {
				a.min = t.PricePerAddr
			}
			if t.PricePerAddr > a.max {
				a.max = t.PricePerAddr
			}
			a.priced++
			a.sum += t.PricePerAddr
		}
	}
	stats.SortQuarters(order)
	for _, q := range order {
		a := byQuarter[q]
		qp := QuarterPrices{
			Quarter: q, Transfers: a.transfers, Priced: a.priced,
			Addresses: a.addrs, MinPrice: a.min, MaxPrice: a.max,
		}
		if a.priced > 0 {
			qp.MeanPrice = a.sum / float64(a.priced)
		}
		ix.quarters = append(ix.quarters, qp)
	}
}

// Input returns a copy of the normalized input the index was built from.
// NaiveAt over this copy is the reference the index must agree with.
func (ix *Index) Input() Input {
	out := ix.in
	out.Allocations = append([]AllocationRecord(nil), ix.in.Allocations...)
	out.Transfers = append([]TransferRecord(nil), ix.in.Transfers...)
	out.Leases = append([]LeaseRecord(nil), ix.in.Leases...)
	return out
}

// Start returns the first queryable date (inclusive).
func (ix *Index) Start() time.Time { return ix.in.Start }

// End returns the epoch end (exclusive): the first date that is NOT
// queryable.
func (ix *Index) End() time.Time { return ix.in.End }

// Contains reports whether d falls inside the queryable epoch [Start, End).
func (ix *Index) Contains(d time.Time) bool {
	d = day(d)
	return !d.Before(ix.in.Start) && d.Before(ix.in.End)
}

// EventCount returns the number of entries in the merged event stream.
func (ix *Index) EventCount() int { return len(ix.events) }

// SpanCount returns the number of holding spans.
func (ix *Index) SpanCount() int { return len(ix.spans) }

// DelegationCount returns the number of delegation spans.
func (ix *Index) DelegationCount() int { return len(ix.delegs) }

// EpochCount returns the number of delegation-epoch partitions.
func (ix *Index) EpochCount() int { return len(ix.epochs) }

// Quarters returns the quarterly price state, ascending by quarter.
func (ix *Index) Quarters() []QuarterPrices {
	return append([]QuarterPrices(nil), ix.quarters...)
}

// fmtDay renders a date as YYYY-MM-DD ("" for the zero time).
func fmtDay(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format("2006-01-02")
}
