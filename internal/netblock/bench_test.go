package netblock

import (
	"math/rand"
	"testing"
)

func benchPrefixes(n int) []Prefix {
	rng := rand.New(rand.NewSource(1))
	ps := make([]Prefix, n)
	for i := range ps {
		ps[i] = MustPrefix(Addr(rng.Uint32()), 8+rng.Intn(17))
	}
	return ps
}

func BenchmarkTrieInsert(b *testing.B) {
	ps := benchPrefixes(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTrie[int]()
		for j, p := range ps {
			tr.Insert(p, j)
		}
	}
}

func BenchmarkTrieLongestMatch(b *testing.B) {
	ps := benchPrefixes(10000)
	tr := NewTrie[int]()
	for j, p := range ps {
		tr.Insert(p, j)
	}
	queries := benchPrefixes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LongestMatch(queries[i%len(queries)])
	}
}

func BenchmarkSetAddPrefix(b *testing.B) {
	ps := benchPrefixes(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSet()
		for _, p := range ps {
			s.AddPrefix(p)
		}
	}
}

func BenchmarkSetPrefixesDecompose(b *testing.B) {
	s := NewSet()
	for _, p := range benchPrefixes(2000) {
		s.AddPrefix(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Prefixes()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkSetIntersectionSize(b *testing.B) {
	a := NewSet()
	c := NewSet()
	for i, p := range benchPrefixes(4000) {
		if i%2 == 0 {
			a.AddPrefix(p)
		} else {
			c.AddPrefix(p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectionSize(c)
	}
}
