package netblock

import (
	"math/rand"
	"testing"
)

func TestTrieInsertGetDelete(t *testing.T) {
	tr := NewTrie[string]()
	p := MustParsePrefix("10.0.0.0/8")
	if !tr.Insert(p, "ten") {
		t.Error("first insert should be fresh")
	}
	if tr.Insert(p, "ten2") {
		t.Error("second insert should not be fresh")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	v, ok := tr.Get(p)
	if !ok || v != "ten2" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/9")); ok {
		t.Error("Get of absent prefix should miss")
	}
	if !tr.Delete(p) || tr.Delete(p) {
		t.Error("Delete semantics wrong")
	}
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestTrieLongestMatch(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 16)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 24)

	cases := []struct {
		q    string
		want int
		ok   bool
	}{
		{"10.1.2.0/25", 24, true},
		{"10.1.2.0/24", 24, true},
		{"10.1.3.0/24", 16, true},
		{"10.2.0.0/16", 8, true},
		{"11.0.0.0/8", 0, false},
	}
	for _, c := range cases {
		_, v, ok := tr.LongestMatch(MustParsePrefix(c.q))
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("LongestMatch(%s) = %d, %v; want %d, %v", c.q, v, ok, c.want, c.ok)
		}
	}
}

func TestTrieRootEntry(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	p, v, ok := tr.LongestMatch(MustParsePrefix("203.0.113.0/24"))
	if !ok || v != "default" || p != MustParsePrefix("0.0.0.0/0") {
		t.Errorf("root match = %v, %q, %v", p, v, ok)
	}
}

func TestTrieCoveringAndCoveredBy(t *testing.T) {
	tr := NewTrie[int]()
	for i, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.2.0.0/16", "11.0.0.0/8"} {
		tr.Insert(MustParsePrefix(s), i)
	}
	cov := tr.Covering(MustParsePrefix("10.1.2.128/25"))
	if len(cov) != 3 {
		t.Fatalf("Covering returned %d entries: %v", len(cov), cov)
	}
	wantOrder := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"}
	for i, w := range wantOrder {
		if cov[i].Prefix.String() != w {
			t.Errorf("covering[%d] = %v, want %s", i, cov[i].Prefix, w)
		}
	}

	sub := tr.CoveredBy(MustParsePrefix("10.0.0.0/8"))
	if len(sub) != 4 {
		t.Fatalf("CoveredBy returned %d entries: %v", len(sub), sub)
	}
	if sub[0].Prefix != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("CoveredBy should include the query prefix itself, got %v", sub[0].Prefix)
	}
	if got := tr.CoveredBy(MustParsePrefix("12.0.0.0/8")); got != nil {
		t.Errorf("CoveredBy disjoint = %v", got)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	tr := NewTrie[int]()
	in := []string{"11.0.0.0/8", "10.1.0.0/16", "10.0.0.0/8", "10.1.2.0/24"}
	for i, s := range in {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %d", len(got))
	}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("walk[%d] = %v, want %s", i, got[i], w)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early-stopped walk visited %d", n)
	}
}

// TestTrieAgainstLinearScan cross-checks LongestMatch/Covering/CoveredBy
// against brute-force implementations on random prefix sets.
func TestTrieAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := NewTrie[int]()
		var all []Prefix
		for i := 0; i < 100; i++ {
			p := MustPrefix(Addr(rng.Uint32()), 8+rng.Intn(25))
			if tr.Insert(p, i) {
				all = append(all, p)
			}
		}
		for q := 0; q < 50; q++ {
			query := MustPrefix(Addr(rng.Uint32()), 8+rng.Intn(25))

			// Brute-force longest match.
			var bestP Prefix
			bestBits, found := -1, false
			for _, p := range all {
				if p.Covers(query) && p.Bits() > bestBits {
					bestP, bestBits, found = p, p.Bits(), true
				}
			}
			gp, _, gok := tr.LongestMatch(query)
			if gok != found || (found && gp != bestP) {
				t.Fatalf("trial %d: LongestMatch(%v) = %v,%v; want %v,%v", trial, query, gp, gok, bestP, found)
			}

			// Brute-force covering count.
			nCover := 0
			for _, p := range all {
				if p.Covers(query) {
					nCover++
				}
			}
			if got := len(tr.Covering(query)); got != nCover {
				t.Fatalf("trial %d: Covering(%v) = %d, want %d", trial, query, got, nCover)
			}

			// Brute-force covered-by count.
			nSub := 0
			for _, p := range all {
				if query.Covers(p) {
					nSub++
				}
			}
			if got := len(tr.CoveredBy(query)); got != nSub {
				t.Fatalf("trial %d: CoveredBy(%v) = %d, want %d", trial, query, got, nSub)
			}
		}
	}
}
