package netblock_test

import (
	"fmt"

	"ipv4market/internal/netblock"
)

func ExamplePrefix_Covers() {
	alloc := netblock.MustParsePrefix("185.0.0.0/16")
	lease := netblock.MustParsePrefix("185.0.7.0/24")
	fmt.Println(alloc.Covers(lease), alloc.CoversStrictly(lease), lease.Covers(alloc))
	// Output: true true false
}

func ExampleSet() {
	pool := netblock.NewSet(netblock.MustParsePrefix("185.0.0.0/16"))
	pool.RemovePrefix(netblock.MustParsePrefix("185.0.0.0/24")) // allocated away
	fmt.Println(pool.Size())
	fmt.Println(pool.Contains(netblock.MustParseAddr("185.0.0.7")))
	// Output:
	// 65280
	// false
}

func ExampleTrie_LongestMatch() {
	routes := netblock.NewTrie[string]()
	routes.Insert(netblock.MustParsePrefix("185.0.0.0/16"), "provider")
	routes.Insert(netblock.MustParsePrefix("185.0.7.0/24"), "lessee")

	p, origin, _ := routes.LongestMatch(netblock.MustParsePrefix("185.0.7.128/25"))
	fmt.Println(p, origin)
	// Output: 185.0.7.0/24 lessee
}

func ExampleSet_Prefixes() {
	s := netblock.NewSet()
	s.AddRange(netblock.MustParseAddr("185.0.0.3"), netblock.MustParseAddr("185.0.0.10"))
	for _, p := range s.Prefixes() {
		fmt.Println(p)
	}
	// Output:
	// 185.0.0.3/32
	// 185.0.0.4/30
	// 185.0.0.8/31
	// 185.0.0.10/32
}
