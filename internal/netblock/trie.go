package netblock

// Trie is a binary radix trie keyed by Prefix, mapping each prefix to an
// arbitrary value. It supports exact lookup, longest-prefix match, covering
// (less-specific) and covered (more-specific) enumeration — the primitives
// the delegation-inference pipeline needs to relate announced prefixes.
//
// The zero value... is not usable; create with NewTrie. Trie is not
// safe for concurrent mutation.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

func bitAt(a Addr, i int) int {
	return int(a>>(31-uint(i))) & 1
}

// Insert stores val under p, replacing any existing value. It reports
// whether the prefix was newly inserted.
func (t *Trie[V]) Insert(p Prefix, val V) bool {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.set
	n.val, n.set = val, true
	if fresh {
		t.size++
	}
	return fresh
}

// Get returns the value stored exactly at p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.set
}

// Delete removes the value stored exactly at p and reports whether it was
// present. Empty interior nodes are left in place; the trie is rebuilt by
// the callers that care about memory (none of ours do per-day).
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// LongestMatch returns the most specific stored prefix covering p, along
// with its value.
func (t *Trie[V]) LongestMatch(p Prefix) (Prefix, V, bool) {
	var (
		bestP  Prefix
		bestV  V
		found  bool
		n      = t.root
		prefix Addr
	)
	if n.set {
		bestP, bestV, found = Prefix{}, n.val, true
	}
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		n = n.child[b]
		if n == nil {
			break
		}
		if b == 1 {
			prefix |= Addr(1) << (31 - uint(i))
		}
		if n.set {
			bestP, bestV, found = Prefix{prefix, uint8(i + 1)}, n.val, true
		}
	}
	return bestP, bestV, found
}

// CoveringEntry holds a prefix/value pair returned by enumeration methods.
type CoveringEntry[V any] struct {
	Prefix Prefix
	Value  V
}

// Covering returns all stored prefixes that cover p (including p itself if
// stored), ordered from least to most specific.
func (t *Trie[V]) Covering(p Prefix) []CoveringEntry[V] {
	var (
		out    []CoveringEntry[V]
		n      = t.root
		prefix Addr
	)
	if n.set {
		out = append(out, CoveringEntry[V]{Prefix{}, n.val})
	}
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		n = n.child[b]
		if n == nil {
			return out
		}
		if b == 1 {
			prefix |= Addr(1) << (31 - uint(i))
		}
		if n.set {
			out = append(out, CoveringEntry[V]{Prefix{prefix, uint8(i + 1)}, n.val})
		}
	}
	return out
}

// CoveredBy returns all stored prefixes covered by p (including p itself if
// stored), in Compare order.
func (t *Trie[V]) CoveredBy(p Prefix) []CoveringEntry[V] {
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(p.Addr(), i)]
		if n == nil {
			return nil
		}
	}
	var out []CoveringEntry[V]
	collect(n, p.Addr(), p.Bits(), &out)
	return out
}

func collect[V any](n *trieNode[V], addr Addr, depth int, out *[]CoveringEntry[V]) {
	if n.set {
		*out = append(*out, CoveringEntry[V]{Prefix{addr, uint8(depth)}, n.val})
	}
	if depth == 32 {
		return
	}
	if n.child[0] != nil {
		collect(n.child[0], addr, depth+1, out)
	}
	if n.child[1] != nil {
		collect(n.child[1], addr|Addr(1)<<(31-uint(depth)), depth+1, out)
	}
}

// Walk visits every stored prefix/value pair in Compare order. The visit
// function returns false to stop the walk early.
func (t *Trie[V]) Walk(visit func(Prefix, V) bool) {
	walk(t.root, 0, 0, visit)
}

func walk[V any](n *trieNode[V], addr Addr, depth int, visit func(Prefix, V) bool) bool {
	if n.set && !visit(Prefix{addr, uint8(depth)}, n.val) {
		return false
	}
	if depth == 32 {
		return true
	}
	if n.child[0] != nil && !walk(n.child[0], addr, depth+1, visit) {
		return false
	}
	if n.child[1] != nil && !walk(n.child[1], addr|Addr(1)<<(31-uint(depth)), depth+1, visit) {
		return false
	}
	return true
}
