package netblock

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.0", 0, false},
		{"-1.0.0.0", 0, false},
		{"01.2.3.4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"0.0.0.0/0", true},
		{"10.0.0.0/8", true},
		{"192.0.2.0/24", true},
		{"192.0.2.1/32", true},
		{"192.0.2.1/24", false}, // host bits set
		{"192.0.2.0/33", false},
		{"192.0.2.0/-1", false},
		{"192.0.2.0", false},
		{"bogus/24", false},
	}
	for _, c := range cases {
		_, err := ParsePrefix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(v uint32, b uint8) bool {
		bits := int(b % 33)
		p := MustPrefix(Addr(v), bits)
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixNumAddrs(t *testing.T) {
	if got := MustParsePrefix("0.0.0.0/0").NumAddrs(); got != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", got)
	}
	if got := MustParsePrefix("10.0.0.0/24").NumAddrs(); got != 256 {
		t.Errorf("/24 NumAddrs = %d", got)
	}
	if got := MustParsePrefix("10.0.0.1/32").NumAddrs(); got != 1 {
		t.Errorf("/32 NumAddrs = %d", got)
	}
}

func TestPrefixContainsCovers(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	q := MustParsePrefix("10.1.0.0/16")
	r := MustParsePrefix("11.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.0.1")) {
		t.Error("10/8 should contain 10.255.0.1")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
	if !p.Covers(q) || q.Covers(p) {
		t.Error("covers relation wrong for 10/8 vs 10.1/16")
	}
	if !p.Covers(p) {
		t.Error("prefix must cover itself")
	}
	if p.CoversStrictly(p) {
		t.Error("prefix must not strictly cover itself")
	}
	if !p.CoversStrictly(q) {
		t.Error("10/8 strictly covers 10.1/16")
	}
	if p.Covers(r) || r.Covers(p) {
		t.Error("10/8 and 11/8 are disjoint")
	}
	if !p.Overlaps(q) || p.Overlaps(r) {
		t.Error("overlap relation wrong")
	}
}

func TestPrefixParentChildrenSibling(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/9")
	if got := p.Parent(); got != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Parent = %v", got)
	}
	lo, hi, err := MustParsePrefix("10.0.0.0/8").Children()
	if err != nil || lo != MustParsePrefix("10.0.0.0/9") || hi != MustParsePrefix("10.128.0.0/9") {
		t.Errorf("Children = %v, %v, %v", lo, hi, err)
	}
	if _, _, err := MustParsePrefix("192.0.2.1/32").Children(); err == nil {
		t.Error("Children(/32) should fail")
	}
	if got := lo.Sibling(); got != hi {
		t.Errorf("Sibling(%v) = %v, want %v", lo, got, hi)
	}
	root := MustParsePrefix("0.0.0.0/0")
	if root.Parent() != root || root.Sibling() != root {
		t.Error("root parent/sibling should be identity")
	}
}

func TestPrefixChildrenProperty(t *testing.T) {
	f := func(v uint32, b uint8) bool {
		bits := int(b % 32) // exclude /32
		p := MustPrefix(Addr(v), bits)
		lo, hi, err := p.Children()
		return err == nil && p.Covers(lo) && p.Covers(hi) && !lo.Overlaps(hi) &&
			lo.NumAddrs()+hi.NumAddrs() == p.NumAddrs() &&
			lo.Parent() == p && hi.Parent() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixSplit(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	subs, err := p.Split(26)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("Split(/26) returned %d prefixes", len(subs))
	}
	want := []string{"192.0.2.0/26", "192.0.2.64/26", "192.0.2.128/26", "192.0.2.192/26"}
	for i, w := range want {
		if subs[i] != MustParsePrefix(w) {
			t.Errorf("subs[%d] = %v, want %s", i, subs[i], w)
		}
	}
	if _, err := p.Split(23); err == nil {
		t.Error("splitting into shorter prefix should fail")
	}
	if _, err := p.Split(33); err == nil {
		t.Error("splitting into /33 should fail")
	}
	same, err := p.Split(24)
	if err != nil || len(same) != 1 || same[0] != p {
		t.Errorf("Split(/24) = %v, %v", same, err)
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.First() != MustParseAddr("192.0.2.0") || p.Last() != MustParseAddr("192.0.2.255") {
		t.Errorf("First/Last = %v/%v", p.First(), p.Last())
	}
}

func TestCompareAndSort(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("9.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
	}
	SortPrefixes(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16"}
	for i, w := range want {
		if ps[i].String() != w {
			t.Errorf("sorted[%d] = %v, want %s", i, ps[i], w)
		}
	}
	if MustParsePrefix("10.0.0.0/8").Compare(MustParsePrefix("10.0.0.0/8")) != 0 {
		t.Error("equal prefixes must compare 0")
	}
}

func TestSumAddrs(t *testing.T) {
	ps := []Prefix{MustParsePrefix("10.0.0.0/24"), MustParsePrefix("10.0.1.0/25")}
	if got := SumAddrs(ps); got != 256+128 {
		t.Errorf("SumAddrs = %d", got)
	}
}

func TestSpecialPurpose(t *testing.T) {
	if !IsSpecialPurpose(MustParsePrefix("10.0.0.0/8")) {
		t.Error("10/8 is special purpose")
	}
	if !IsSpecialPurpose(MustParsePrefix("10.1.0.0/16")) {
		t.Error("subnets of 10/8 are special purpose")
	}
	if !IsSpecialPurpose(MustParsePrefix("0.0.0.0/0")) {
		t.Error("default route overlaps special space")
	}
	if IsSpecialPurpose(MustParsePrefix("193.0.0.0/8")) {
		t.Error("193/8 is routable")
	}
	if !IsGloballyRoutable(MustParsePrefix("8.8.8.0/24")) {
		t.Error("8.8.8.0/24 is routable")
	}
	if IsGloballyRoutable(MustParsePrefix("100.64.0.0/10")) {
		t.Error("CGN space is not routable")
	}
}
