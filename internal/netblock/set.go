package netblock

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a set of IPv4 addresses maintained as disjoint, sorted,
// half-open intervals [lo, hi). The zero value is an empty set ready to use.
//
// Intervals use uint64 bounds so that the interval ending at 255.255.255.255
// can be represented as [.., 1<<32) without overflow.
type Set struct {
	ivs []interval
}

type interval struct{ lo, hi uint64 } // half-open [lo, hi)

// NewSet builds a set from the given prefixes.
func NewSet(ps ...Prefix) *Set {
	s := &Set{}
	for _, p := range ps {
		s.AddPrefix(p)
	}
	return s
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{ivs: make([]interval, len(s.ivs))}
	copy(c.ivs, s.ivs)
	return c
}

// AddPrefix inserts all addresses of p into the set.
func (s *Set) AddPrefix(p Prefix) {
	s.addRange(uint64(p.First()), uint64(p.First())+p.NumAddrs())
}

// AddRange inserts the inclusive address range [first, last].
func (s *Set) AddRange(first, last Addr) {
	if last < first {
		first, last = last, first
	}
	s.addRange(uint64(first), uint64(last)+1)
}

func (s *Set) addRange(lo, hi uint64) {
	if lo >= hi {
		return
	}
	// Find all intervals that touch or overlap [lo, hi) and merge them.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].lo <= hi {
		if s.ivs[j].lo < lo {
			lo = s.ivs[j].lo
		}
		if s.ivs[j].hi > hi {
			hi = s.ivs[j].hi
		}
		j++
	}
	merged := interval{lo, hi}
	s.ivs = append(s.ivs[:i], append([]interval{merged}, s.ivs[j:]...)...)
}

// RemovePrefix deletes all addresses of p from the set.
func (s *Set) RemovePrefix(p Prefix) {
	s.removeRange(uint64(p.First()), uint64(p.First())+p.NumAddrs())
}

// RemoveRange deletes the inclusive address range [first, last].
func (s *Set) RemoveRange(first, last Addr) {
	if last < first {
		first, last = last, first
	}
	s.removeRange(uint64(first), uint64(last)+1)
}

func (s *Set) removeRange(lo, hi uint64) {
	if lo >= hi {
		return
	}
	var out []interval
	for _, iv := range s.ivs {
		if iv.hi <= lo || iv.lo >= hi {
			out = append(out, iv)
			continue
		}
		if iv.lo < lo {
			out = append(out, interval{iv.lo, lo})
		}
		if iv.hi > hi {
			out = append(out, interval{hi, iv.hi})
		}
	}
	s.ivs = out
}

// Contains reports whether the address is in the set.
func (s *Set) Contains(a Addr) bool {
	v := uint64(a)
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi > v })
	return i < len(s.ivs) && s.ivs[i].lo <= v
}

// ContainsPrefix reports whether every address of p is in the set.
func (s *Set) ContainsPrefix(p Prefix) bool {
	lo := uint64(p.First())
	hi := lo + p.NumAddrs()
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi > lo })
	return i < len(s.ivs) && s.ivs[i].lo <= lo && s.ivs[i].hi >= hi
}

// OverlapsPrefix reports whether any address of p is in the set.
func (s *Set) OverlapsPrefix(p Prefix) bool {
	lo := uint64(p.First())
	hi := lo + p.NumAddrs()
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi > lo })
	return i < len(s.ivs) && s.ivs[i].lo < hi
}

// Size returns the number of addresses in the set.
func (s *Set) Size() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.hi - iv.lo
	}
	return n
}

// IsEmpty reports whether the set contains no addresses.
func (s *Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Union adds every address of other to s.
func (s *Set) Union(other *Set) {
	for _, iv := range other.ivs {
		s.addRange(iv.lo, iv.hi)
	}
}

// Subtract removes every address of other from s.
func (s *Set) Subtract(other *Set) {
	for _, iv := range other.ivs {
		s.removeRange(iv.lo, iv.hi)
	}
}

// Intersect keeps only addresses present in both sets.
func (s *Set) Intersect(other *Set) {
	var out []interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		a, b := s.ivs[i], other.ivs[j]
		lo := max64(a.lo, b.lo)
		hi := min64(a.hi, b.hi)
		if lo < hi {
			out = append(out, interval{lo, hi})
		}
		if a.hi < b.hi {
			i++
		} else {
			j++
		}
	}
	s.ivs = out
}

// IntersectionSize returns the number of addresses in both sets without
// modifying either.
func (s *Set) IntersectionSize(other *Set) uint64 {
	var n uint64
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		a, b := s.ivs[i], other.ivs[j]
		lo := max64(a.lo, b.lo)
		hi := min64(a.hi, b.hi)
		if lo < hi {
			n += hi - lo
		}
		if a.hi < b.hi {
			i++
		} else {
			j++
		}
	}
	return n
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Prefixes decomposes the set into the minimal list of CIDR prefixes, in
// address order.
func (s *Set) Prefixes() []Prefix {
	var out []Prefix
	for _, iv := range s.ivs {
		out = appendRangePrefixes(out, iv.lo, iv.hi)
	}
	return out
}

// appendRangePrefixes appends the minimal CIDR cover of [lo, hi) to dst.
func appendRangePrefixes(dst []Prefix, lo, hi uint64) []Prefix {
	for lo < hi {
		// Largest power-of-two block starting at lo: limited both by the
		// alignment of lo and by the remaining size.
		size := lo & -lo // lowest set bit of lo; 0 means unconstrained
		if size == 0 {
			size = 1 << 32
		}
		for size > hi-lo {
			size >>= 1
		}
		bits := 32
		for b := size; b > 1; b >>= 1 {
			bits--
		}
		dst = append(dst, Prefix{Addr(lo), uint8(bits)})
		lo += size
	}
	return dst
}

// String renders the set as a comma-separated list of CIDR prefixes.
func (s *Set) String() string {
	ps := s.Prefixes()
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports whether the two sets contain exactly the same addresses.
func (s *Set) Equal(other *Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i, iv := range s.ivs {
		if iv != other.ivs[i] {
			return false
		}
	}
	return true
}

// checkInvariants verifies the internal representation: sorted, disjoint,
// non-adjacent, non-empty intervals. Exposed for property tests via the
// exported debug helper below.
func (s *Set) checkInvariants() error {
	for i, iv := range s.ivs {
		if iv.lo >= iv.hi {
			return fmt.Errorf("empty interval at %d: [%d,%d)", i, iv.lo, iv.hi)
		}
		if iv.hi > 1<<32 {
			return fmt.Errorf("interval out of IPv4 range at %d: [%d,%d)", i, iv.lo, iv.hi)
		}
		if i > 0 && s.ivs[i-1].hi >= iv.lo {
			return fmt.Errorf("intervals %d and %d overlap or touch", i-1, i)
		}
	}
	return nil
}

// DebugCheck verifies internal invariants; used by property tests.
func (s *Set) DebugCheck() error { return s.checkInvariants() }
