package netblock

// Reserved and special-purpose IPv4 address space, per the IANA
// special-purpose registry and the Team Cymru bogon reference. The
// delegation pipeline removes routes for these blocks before inference.
var specialPurpose = []string{
	"0.0.0.0/8",       // "this network"
	"10.0.0.0/8",      // private (RFC 1918)
	"100.64.0.0/10",   // shared address space / CGN (RFC 6598)
	"127.0.0.0/8",     // loopback
	"169.254.0.0/16",  // link local
	"172.16.0.0/12",   // private (RFC 1918)
	"192.0.0.0/24",    // IETF protocol assignments
	"192.0.2.0/24",    // TEST-NET-1
	"192.168.0.0/16",  // private (RFC 1918)
	"198.18.0.0/15",   // benchmarking
	"198.51.100.0/24", // TEST-NET-2
	"203.0.113.0/24",  // TEST-NET-3
	"224.0.0.0/4",     // multicast
	"240.0.0.0/4",     // reserved (includes 255.255.255.255)
}

var specialSet = func() *Set {
	s := &Set{}
	for _, p := range specialPurpose {
		s.AddPrefix(MustParsePrefix(p))
	}
	return s
}()

// SpecialPurposePrefixes returns the reserved/special-purpose blocks as
// prefixes, in address order.
func SpecialPurposePrefixes() []Prefix {
	ps := make([]Prefix, len(specialPurpose))
	for i, s := range specialPurpose {
		ps[i] = MustParsePrefix(s)
	}
	return ps
}

// IsSpecialPurpose reports whether the prefix overlaps reserved or
// special-purpose address space (bogon space in routing terms).
func IsSpecialPurpose(p Prefix) bool {
	return specialSet.OverlapsPrefix(p)
}

// IsGloballyRoutable reports whether the prefix lies entirely outside
// special-purpose space.
func IsGloballyRoutable(p Prefix) bool {
	return !specialSet.OverlapsPrefix(p)
}
