package netblock

import "testing"

// FuzzPrefixFrom asserts PrefixFrom is total over the full (addr, bits)
// space and that every accepted prefix satisfies the package's canonical
// invariants: host bits zero, stable text round trip, and consistent
// containment arithmetic.
func FuzzPrefixFrom(f *testing.F) {
	f.Add(uint32(0x0A000000), 8)   // 10.0.0.0/8
	f.Add(uint32(0xC0A80101), 24)  // host bits set: must canonicalize
	f.Add(uint32(0xFFFFFFFF), 32)  // single address
	f.Add(uint32(0), 0)            // whole space
	f.Add(uint32(0x80000000), 1)   // top half
	f.Add(uint32(0xDEADBEEF), 33)  // out of range
	f.Add(uint32(0xDEADBEEF), -1)  // out of range
	f.Fuzz(func(t *testing.T, addr uint32, bits int) {
		p, err := PrefixFrom(Addr(addr), bits)
		if bits < 0 || bits > 32 {
			if err == nil {
				t.Fatalf("PrefixFrom(%#x, %d) accepted an invalid length", addr, bits)
			}
			return
		}
		if err != nil {
			t.Fatalf("PrefixFrom(%#x, %d): %v", addr, bits, err)
		}
		if p.Bits() != bits {
			t.Fatalf("Bits() = %d, want %d", p.Bits(), bits)
		}
		if got := p.Addr() &^ maskFor(bits); got != 0 {
			t.Fatalf("host bits survived canonicalization: %v has residue %#x", p, uint32(got))
		}
		if !p.Contains(Addr(addr)) {
			t.Fatalf("%v does not contain the address it was built from (%v)", p, Addr(addr))
		}
		if !p.Contains(p.First()) || !p.Contains(p.Last()) {
			t.Fatalf("%v does not contain its own range [%v, %v]", p, p.First(), p.Last())
		}
		if !p.Covers(p) || p.CoversStrictly(p) {
			t.Fatalf("self-coverage broken for %v", p)
		}
		rt, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", p.String(), err)
		}
		if rt != p {
			t.Fatalf("text round trip changed %v into %v", p, rt)
		}
		if bits > 0 {
			if !p.Parent().Covers(p) {
				t.Fatalf("parent %v does not cover %v", p.Parent(), p)
			}
			if sib := p.Sibling(); sib.Overlaps(p) {
				t.Fatalf("sibling %v overlaps %v", sib, p)
			}
		}
		if bits < 32 {
			lo, hi, err := p.Children()
			if err != nil {
				t.Fatalf("Children(%v): %v", p, err)
			}
			if !p.Covers(lo) || !p.Covers(hi) || lo.Overlaps(hi) {
				t.Fatalf("children of %v malformed: %v, %v", p, lo, hi)
			}
			if lo.NumAddrs()+hi.NumAddrs() != p.NumAddrs() {
				t.Fatalf("children of %v do not partition its %d addresses", p, p.NumAddrs())
			}
		}
	})
}

// FuzzParsePrefix asserts the textual parser is total over arbitrary
// strings and strict about canonical form: anything it accepts renders
// back to an equal prefix, and non-canonical spellings are rejected
// rather than silently fixed.
func FuzzParsePrefix(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("192.168.1.1/24") // host bits set: must be rejected
	f.Add("0.0.0.0/0")
	f.Add("255.255.255.255/32")
	f.Add("1.2.3.4")
	f.Add("1.2.3.4/33")
	f.Add("01.2.3.4/8") // leading zero: rejected
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if got := p.Addr() &^ maskFor(p.Bits()); got != 0 {
			t.Fatalf("ParsePrefix(%q) accepted host bits: %v", s, p)
		}
		rt, err := ParsePrefix(p.String())
		if err != nil || rt != p {
			t.Fatalf("round trip of %q via %q failed: %v, %v", s, p.String(), rt, err)
		}
	})
}
