// Package netblock provides IPv4 prefix arithmetic for the address-market
// analyses: a compact value type for CIDR prefixes, containment and
// adjacency tests, splitting and supernetting, disjoint interval sets, and
// a binary radix trie keyed by prefix.
//
// All types treat a prefix as the pair (network address, mask length) with
// host bits forced to zero, so prefixes are canonical and comparable with ==.
package netblock

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Addr is an IPv4 address represented as a big-endian 32-bit integer.
type Addr uint32

// AddrFrom4 builds an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netblock: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("netblock: invalid IPv4 address %q", s)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("netblock: invalid IPv4 address %q", s)
		}
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("netblock: leading zero in IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix is an IPv4 CIDR prefix in canonical form: all bits below the mask
// are zero. The zero value is 0.0.0.0/0.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom builds a canonical prefix from an address and mask length,
// zeroing any host bits. It returns an error if bits is outside [0, 32];
// use ParsePrefix for untrusted textual input.
func PrefixFrom(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netblock: invalid prefix length %d", bits)
	}
	return Prefix{addr & maskFor(bits), uint8(bits)}, nil
}

// MustPrefix is PrefixFrom that panics on error. It is for tests and for
// call sites whose mask length is a constant or already validated to be
// in [0, 32]; code handling untrusted lengths should use PrefixFrom.
func MustPrefix(addr Addr, bits int) Prefix {
	p, err := PrefixFrom(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// ParsePrefix parses "a.b.c.d/len". Host bits must be zero; a prefix such
// as 10.0.0.1/24 is rejected so that data errors surface rather than being
// silently canonicalized.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netblock: missing '/' in prefix %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netblock: invalid prefix length in %q", s)
	}
	if addr&^maskFor(bits) != 0 {
		return Prefix{}, fmt.Errorf("netblock: host bits set in prefix %q", s)
	}
	return Prefix{addr, uint8(bits)}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length.
func (p Prefix) Bits() int { return int(p.bits) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.bits)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - uint(p.bits))
}

// First returns the first (network) address of the prefix.
func (p Prefix) First() Addr { return p.addr }

// Last returns the last address of the prefix.
func (p Prefix) Last() Addr {
	return p.addr | ^maskFor(int(p.bits))
}

// Contains reports whether the prefix covers address a.
func (p Prefix) Contains(a Addr) bool {
	return a&maskFor(int(p.bits)) == p.addr
}

// Covers reports whether p covers the whole of q, i.e. q is equal to or
// more specific than p and within p's range.
func (p Prefix) Covers(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// CoversStrictly reports whether p covers q and q is strictly more specific.
func (p Prefix) CoversStrictly(q Prefix) bool {
	return q.bits > p.bits && p.Contains(q.addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// Parent returns the enclosing prefix one bit shorter. Calling Parent on
// 0.0.0.0/0 returns it unchanged.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		return p
	}
	b := int(p.bits) - 1
	return Prefix{p.addr & maskFor(b), uint8(b)}
}

// Children splits the prefix into its two halves. It returns an error on
// a /32, which has no halves.
func (p Prefix) Children() (Prefix, Prefix, error) {
	if p.bits == 32 {
		return Prefix{}, Prefix{}, errors.New("netblock: cannot split a /32")
	}
	b := uint(p.bits) + 1
	lo := Prefix{p.addr, uint8(b)}
	hi := Prefix{p.addr | Addr(1)<<(32-b), uint8(b)}
	return lo, hi, nil
}

// Split divides the prefix into subprefixes of the given length. It returns
// an error if bits is shorter than the prefix or longer than 32.
func (p Prefix) Split(bits int) ([]Prefix, error) {
	if bits < int(p.bits) || bits > 32 {
		return nil, fmt.Errorf("netblock: cannot split %v into /%d", p, bits)
	}
	n := 1 << uint(bits-int(p.bits))
	out := make([]Prefix, 0, n)
	step := Addr(1) << (32 - uint(bits))
	a := p.addr
	for i := 0; i < n; i++ {
		out = append(out, Prefix{a, uint8(bits)})
		a += step
	}
	return out, nil
}

// Sibling returns the other half of the parent prefix. Calling Sibling on
// 0.0.0.0/0 returns it unchanged.
func (p Prefix) Sibling() Prefix {
	if p.bits == 0 {
		return p
	}
	return Prefix{p.addr ^ Addr(1)<<(32-uint(p.bits)), p.bits}
}

// Compare orders prefixes by network address, then by mask length
// (less-specific first). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// SortPrefixes sorts prefixes in Compare order in place.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
}

// SumAddrs returns the total number of addresses covered by the prefixes.
// Overlapping prefixes are counted multiply; deduplicate with a Set first
// if overlap is possible.
func SumAddrs(ps []Prefix) uint64 {
	var n uint64
	for _, p := range ps {
		if n > math.MaxUint64-p.NumAddrs() {
			return math.MaxUint64
		}
		n += p.NumAddrs()
	}
	return n
}
