package netblock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if !s.IsEmpty() || s.Size() != 0 {
		t.Fatal("new set should be empty")
	}
	s.AddPrefix(MustParsePrefix("10.0.0.0/24"))
	if s.Size() != 256 {
		t.Errorf("Size = %d, want 256", s.Size())
	}
	if !s.Contains(MustParseAddr("10.0.0.17")) {
		t.Error("set should contain 10.0.0.17")
	}
	if s.Contains(MustParseAddr("10.0.1.0")) {
		t.Error("set should not contain 10.0.1.0")
	}
	s.RemovePrefix(MustParsePrefix("10.0.0.128/25"))
	if s.Size() != 128 {
		t.Errorf("Size after removal = %d, want 128", s.Size())
	}
	if s.Contains(MustParseAddr("10.0.0.200")) {
		t.Error("removed address still present")
	}
}

func TestSetMergeAdjacent(t *testing.T) {
	s := NewSet()
	s.AddPrefix(MustParsePrefix("10.0.0.0/25"))
	s.AddPrefix(MustParsePrefix("10.0.0.128/25"))
	ps := s.Prefixes()
	if len(ps) != 1 || ps[0] != MustParsePrefix("10.0.0.0/24") {
		t.Errorf("adjacent halves should merge to /24, got %v", ps)
	}
	if err := s.DebugCheck(); err != nil {
		t.Error(err)
	}
}

func TestSetContainsOverlapsPrefix(t *testing.T) {
	s := NewSet(MustParsePrefix("10.0.0.0/16"))
	if !s.ContainsPrefix(MustParsePrefix("10.0.5.0/24")) {
		t.Error("should contain sub-prefix")
	}
	if s.ContainsPrefix(MustParsePrefix("10.0.0.0/8")) {
		t.Error("should not fully contain super-prefix")
	}
	if !s.OverlapsPrefix(MustParsePrefix("10.0.0.0/8")) {
		t.Error("should overlap super-prefix")
	}
	if s.OverlapsPrefix(MustParsePrefix("11.0.0.0/8")) {
		t.Error("should not overlap disjoint prefix")
	}
}

func TestSetFullRange(t *testing.T) {
	s := NewSet(MustParsePrefix("0.0.0.0/0"))
	if s.Size() != 1<<32 {
		t.Errorf("full set size = %d", s.Size())
	}
	if !s.Contains(MustParseAddr("255.255.255.255")) {
		t.Error("full set should contain broadcast address")
	}
	s.RemovePrefix(MustParsePrefix("255.255.255.255/32"))
	if s.Size() != 1<<32-1 {
		t.Errorf("size after removing one = %d", s.Size())
	}
}

func TestSetAddRangeUnaligned(t *testing.T) {
	s := NewSet()
	s.AddRange(MustParseAddr("10.0.0.3"), MustParseAddr("10.0.0.10"))
	if s.Size() != 8 {
		t.Errorf("size = %d, want 8", s.Size())
	}
	ps := s.Prefixes()
	// Minimal CIDR cover of [3,10]: 3/32, 4/30, 8/31, 10/32.
	want := []string{"10.0.0.3/32", "10.0.0.4/30", "10.0.0.8/31", "10.0.0.10/32"}
	if len(ps) != len(want) {
		t.Fatalf("prefixes = %v", ps)
	}
	for i, w := range want {
		if ps[i].String() != w {
			t.Errorf("prefix[%d] = %v, want %s", i, ps[i], w)
		}
	}
}

func TestSetUnionSubtractIntersect(t *testing.T) {
	a := NewSet(MustParsePrefix("10.0.0.0/24"), MustParsePrefix("10.0.2.0/24"))
	b := NewSet(MustParsePrefix("10.0.1.0/24"), MustParsePrefix("10.0.2.128/25"))

	u := a.Clone()
	u.Union(b)
	if u.Size() != 256*3 {
		t.Errorf("union size = %d, want 768", u.Size())
	}

	d := a.Clone()
	d.Subtract(b)
	if d.Size() != 256+128 {
		t.Errorf("difference size = %d, want 384", d.Size())
	}

	i := a.Clone()
	i.Intersect(b)
	if i.Size() != 128 {
		t.Errorf("intersection size = %d, want 128", i.Size())
	}
	if got := a.IntersectionSize(b); got != 128 {
		t.Errorf("IntersectionSize = %d, want 128", got)
	}
	// a must be unchanged by IntersectionSize.
	if a.Size() != 512 {
		t.Error("IntersectionSize mutated receiver")
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(MustParsePrefix("10.0.0.0/25"), MustParsePrefix("10.0.0.128/25"))
	b := NewSet(MustParsePrefix("10.0.0.0/24"))
	if !a.Equal(b) {
		t.Error("equivalent sets should be Equal")
	}
	b.AddPrefix(MustParsePrefix("11.0.0.0/24"))
	if a.Equal(b) {
		t.Error("different sets should not be Equal")
	}
}

// TestSetAgainstReferenceModel cross-checks Set against a brute-force map
// model over a small universe, using randomized operation sequences.
func TestSetAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const base = 0x0A000000 // 10.0.0.0, universe of 4096 addresses
	const universe = 4096
	for trial := 0; trial < 30; trial++ {
		s := NewSet()
		model := map[Addr]bool{}
		for op := 0; op < 60; op++ {
			bits := 20 + rng.Intn(13) // /20 .. /32 within universe
			off := rng.Intn(universe)
			p := MustPrefix(Addr(base+off), bits)
			if p.Addr() < base || uint64(p.Addr())+p.NumAddrs() > base+universe {
				continue
			}
			if rng.Intn(2) == 0 {
				s.AddPrefix(p)
				for a := p.First(); ; a++ {
					model[a] = true
					if a == p.Last() {
						break
					}
				}
			} else {
				s.RemovePrefix(p)
				for a := p.First(); ; a++ {
					delete(model, a)
					if a == p.Last() {
						break
					}
				}
			}
			if err := s.DebugCheck(); err != nil {
				t.Fatalf("trial %d op %d: invariant: %v", trial, op, err)
			}
		}
		var want uint64
		for range model {
			want++
		}
		// Only count model addresses inside the universe; Set may contain
		// nothing else by construction.
		if got := s.Size(); got != want {
			t.Fatalf("trial %d: size %d, model %d", trial, got, want)
		}
		for a := Addr(base); a < base+universe; a++ {
			if s.Contains(a) != model[a] {
				t.Fatalf("trial %d: membership of %v diverges", trial, a)
			}
		}
	}
}

// TestSetPrefixesRoundTrip verifies that decomposing a set into prefixes
// and rebuilding yields an equal set (property test).
func TestSetPrefixesRoundTrip(t *testing.T) {
	f := func(seeds []uint32) bool {
		s := NewSet()
		for _, v := range seeds {
			bits := int(v%17) + 16 // /16../32
			s.AddPrefix(MustPrefix(Addr(v), bits))
		}
		rebuilt := NewSet(s.Prefixes()...)
		return rebuilt.Equal(s) && rebuilt.Size() == s.Size() && s.DebugCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetAddRangeReversedArgs(t *testing.T) {
	s := NewSet()
	s.AddRange(MustParseAddr("10.0.0.10"), MustParseAddr("10.0.0.3"))
	if s.Size() != 8 {
		t.Errorf("reversed AddRange size = %d, want 8", s.Size())
	}
	s.RemoveRange(MustParseAddr("10.0.0.10"), MustParseAddr("10.0.0.3"))
	if !s.IsEmpty() {
		t.Error("reversed RemoveRange should clear the set")
	}
}
