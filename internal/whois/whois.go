// Package whois models the RIPE-style WHOIS database restricted to what
// the paper's RDAP analysis needs: inetnum objects with their delegation-
// related statuses, an in-memory database with hierarchy (parent/children)
// lookups, and the RPSL text serialization used by the public split
// snapshots (ripe.db.inetnum).
package whois

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ipv4market/internal/netblock"
)

// Status is the value of an inetnum's "status:" attribute.
type Status string

// Inetnum statuses relevant to the leasing analysis (§4): SUB-ALLOCATED PA
// marks space sub-allocated to another organization; ASSIGNED PA marks
// space assigned from an LIR to an end host.
const (
	StatusAllocatedPA    Status = "ALLOCATED PA"
	StatusAssignedPA     Status = "ASSIGNED PA"
	StatusSubAllocatedPA Status = "SUB-ALLOCATED PA"
	StatusAssignedPI     Status = "ASSIGNED PI"
	StatusLegacy         Status = "LEGACY"
)

// Inetnum is one WHOIS inetnum object. Ranges are inclusive and need not
// align to CIDR boundaries.
type Inetnum struct {
	First   netblock.Addr
	Last    netblock.Addr
	Netname string
	Descr   string
	Country string
	Org     string // org: attribute — the registrant
	AdminC  string
	TechC   string
	Status  Status
	MntBy   string
	Created time.Time
}

// NumAddrs returns the number of addresses in the range.
func (in *Inetnum) NumAddrs() uint64 {
	return uint64(in.Last) - uint64(in.First) + 1
}

// Range renders the range in WHOIS notation, e.g. "185.0.0.0 - 185.0.0.255".
func (in *Inetnum) Range() string {
	return fmt.Sprintf("%s - %s", in.First, in.Last)
}

// Covers reports whether in's range fully contains other's.
func (in *Inetnum) Covers(other *Inetnum) bool {
	return in.First <= other.First && in.Last >= other.Last
}

// CoversPrefix reports whether in's range fully contains the prefix.
func (in *Inetnum) CoversPrefix(p netblock.Prefix) bool {
	return in.First <= p.First() && in.Last >= p.Last()
}

// AsPrefix returns the range as a single CIDR prefix if it aligns to one.
func (in *Inetnum) AsPrefix() (netblock.Prefix, bool) {
	n := in.NumAddrs()
	if n&(n-1) != 0 {
		return netblock.Prefix{}, false
	}
	bits := 32
	for m := n; m > 1; m >>= 1 {
		bits--
	}
	p := netblock.MustPrefix(in.First, bits)
	if p.First() != in.First {
		return netblock.Prefix{}, false
	}
	return p, true
}

// SmallerThanSlash24 reports whether the range covers fewer than 256
// addresses — the blocks the paper skips to spare the RDAP interface.
func (in *Inetnum) SmallerThanSlash24() bool { return in.NumAddrs() < 256 }

// DB is an in-memory inetnum database ordered for hierarchy lookups.
// It is not safe for concurrent mutation; once frozen (see Freeze) it is
// safe for concurrent reads.
type DB struct {
	objs   []*Inetnum // sorted by (First asc, size desc)
	byKey  map[rangeKey]*Inetnum
	sorted bool
}

type rangeKey struct{ first, last netblock.Addr }

// NewDB returns an empty database.
func NewDB() *DB { return &DB{byKey: make(map[rangeKey]*Inetnum), sorted: true} }

// Add inserts an object. Duplicate ranges replace the existing object's
// contents, matching WHOIS primary-key semantics.
func (db *DB) Add(in *Inetnum) {
	k := rangeKey{in.First, in.Last}
	if existing, ok := db.byKey[k]; ok {
		*existing = *in
		return
	}
	db.byKey[k] = in
	db.objs = append(db.objs, in)
	db.sorted = false
}

// Len returns the number of objects.
func (db *DB) Len() int { return len(db.objs) }

// Freeze sorts the object index eagerly. Parent, Children, and All sort
// lazily on first use, which is a hidden write; after Freeze (and until
// the next Add) every read method is mutation-free and the DB is safe
// for unlimited concurrent readers. Builders call Freeze once
// construction is complete.
func (db *DB) Freeze() { db.ensureSorted() }

func (db *DB) ensureSorted() {
	if db.sorted {
		return
	}
	sort.Slice(db.objs, func(i, j int) bool {
		a, b := db.objs[i], db.objs[j]
		if a.First != b.First {
			return a.First < b.First
		}
		return a.Last > b.Last // larger ranges first: parents before children
	})
	db.sorted = true
}

// Lookup returns the object with exactly the given range.
func (db *DB) Lookup(first, last netblock.Addr) (*Inetnum, bool) {
	o, ok := db.byKey[rangeKey{first, last}]
	return o, ok
}

// LookupPrefix returns the object whose range equals the prefix.
func (db *DB) LookupPrefix(p netblock.Prefix) (*Inetnum, bool) {
	return db.Lookup(p.First(), p.Last())
}

// Parent returns the smallest object strictly containing in's range, i.e.
// the object WHOIS would report as the less-specific parent.
func (db *DB) Parent(in *Inetnum) (*Inetnum, bool) {
	db.ensureSorted()
	// Candidates have First <= in.First; scan backwards from in's sort
	// position keeping the smallest container found.
	i := sort.Search(len(db.objs), func(i int) bool {
		o := db.objs[i]
		return o.First > in.First || (o.First == in.First && o.Last <= in.Last)
	})
	var best *Inetnum
	for j := i - 1; j >= 0; j-- {
		o := db.objs[j]
		if o.First == in.First && o.Last == in.Last {
			continue
		}
		if o.Covers(in) {
			if best == nil || best.NumAddrs() > o.NumAddrs() {
				best = o
			}
			// Ordering puts the smallest container with the same First
			// nearest; once a container is found, any better one must
			// still cover in, so keep scanning only while ranges can
			// still start at or before in.First. They all do; however
			// the first container encountered scanning backwards is the
			// one with the greatest First, which is the smallest — stop.
			break
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// Children returns the objects whose ranges are strictly inside in's range
// and have no intermediate parent between them and in, in address order.
func (db *DB) Children(in *Inetnum) []*Inetnum {
	db.ensureSorted()
	var out []*Inetnum
	i := sort.Search(len(db.objs), func(i int) bool { return db.objs[i].First >= in.First })
	var lastEnd netblock.Addr
	started := false
	for ; i < len(db.objs); i++ {
		o := db.objs[i]
		if o.First > in.Last {
			break
		}
		if o == in || !in.Covers(o) {
			continue
		}
		// Skip grandchildren: any object nested inside an already-selected
		// direct child.
		if started && o.First >= outFirst(out) && o.Last <= lastEnd {
			continue
		}
		out = append(out, o)
		lastEnd = o.Last
		started = true
	}
	return out
}

func outFirst(out []*Inetnum) netblock.Addr {
	return out[len(out)-1].First
}

// All returns every object in address order.
func (db *DB) All() []*Inetnum {
	db.ensureSorted()
	return append([]*Inetnum(nil), db.objs...)
}

// Census summarizes the database the way §4 of the paper reports it.
type Census struct {
	Total              int
	ByStatus           map[Status]int
	AssignedPASub24    int     // ASSIGNED PA entries smaller than /24
	FracAssignedSub24  float64 // fraction of ASSIGNED PA smaller than /24
	SubAllocatedBlocks int
}

// TakeCensus computes the paper's §4 input statistics.
func (db *DB) TakeCensus() Census {
	c := Census{ByStatus: make(map[Status]int)}
	assigned := 0
	for _, o := range db.objs {
		c.Total++
		c.ByStatus[o.Status]++
		switch o.Status {
		case StatusAssignedPA:
			assigned++
			if o.SmallerThanSlash24() {
				c.AssignedPASub24++
			}
		case StatusSubAllocatedPA:
			c.SubAllocatedBlocks++
		}
	}
	if assigned > 0 {
		c.FracAssignedSub24 = float64(c.AssignedPASub24) / float64(assigned)
	}
	return c
}

// WriteTo serializes the database as a split snapshot: RPSL objects
// separated by blank lines, in address order.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, o := range db.All() {
		s := FormatRPSL(o)
		c, err := bw.WriteString(s + "\n")
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// FormatRPSL renders one inetnum object in RPSL attribute syntax.
func FormatRPSL(in *Inetnum) string {
	var b strings.Builder
	attr := func(k, v string) {
		if v != "" {
			fmt.Fprintf(&b, "%-16s%s\n", k+":", v)
		}
	}
	attr("inetnum", in.Range())
	attr("netname", in.Netname)
	attr("descr", in.Descr)
	attr("country", in.Country)
	attr("org", in.Org)
	attr("admin-c", in.AdminC)
	attr("tech-c", in.TechC)
	attr("status", string(in.Status))
	attr("mnt-by", in.MntBy)
	if !in.Created.IsZero() {
		attr("created", in.Created.UTC().Format("2006-01-02T15:04:05Z"))
	}
	return b.String()
}

// ErrBadObject reports a malformed RPSL object.
var ErrBadObject = errors.New("whois: malformed RPSL object")

// ParseSnapshot reads a split snapshot (blank-line separated RPSL objects)
// into a database. Unknown attributes are ignored; objects without an
// inetnum attribute are rejected.
func ParseSnapshot(r io.Reader) (*DB, error) {
	db := NewDB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *Inetnum
	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.Last < cur.First {
			return fmt.Errorf("%w: inverted range %s", ErrBadObject, cur.Range())
		}
		db.Add(cur)
		cur = nil
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: line %d: missing colon", ErrBadObject, lineNo)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		if key == "inetnum" {
			if err := flush(); err != nil {
				return nil, err
			}
			first, last, err := parseRange(val)
			if err != nil {
				return nil, fmt.Errorf("whois: line %d: %w", lineNo, err)
			}
			cur = &Inetnum{First: first, Last: last}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("%w: line %d: attribute before inetnum", ErrBadObject, lineNo)
		}
		switch key {
		case "netname":
			cur.Netname = val
		case "descr":
			cur.Descr = val
		case "country":
			cur.Country = val
		case "org":
			cur.Org = val
		case "admin-c":
			cur.AdminC = val
		case "tech-c":
			cur.TechC = val
		case "status":
			cur.Status = Status(val)
		case "mnt-by":
			cur.MntBy = val
		case "created":
			t, err := time.Parse("2006-01-02T15:04:05Z", val)
			if err == nil {
				cur.Created = t
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("whois: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return db, nil
}

func parseRange(s string) (first, last netblock.Addr, err error) {
	parts := strings.Split(s, "-")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%w: bad range %q", ErrBadObject, s)
	}
	first, err = netblock.ParseAddr(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	last, err = netblock.ParseAddr(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return first, last, nil
}
