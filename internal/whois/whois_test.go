package whois

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ipv4market/internal/netblock"
)

func addr(s string) netblock.Addr { return netblock.MustParseAddr(s) }

func in(first, last string, status Status, org string) *Inetnum {
	return &Inetnum{
		First:   addr(first),
		Last:    addr(last),
		Netname: "NET-" + first,
		Country: "DE",
		Org:     org,
		Status:  status,
	}
}

func TestInetnumBasics(t *testing.T) {
	o := in("185.0.0.0", "185.0.0.255", StatusAssignedPA, "ORG-A")
	if o.NumAddrs() != 256 {
		t.Errorf("NumAddrs = %d", o.NumAddrs())
	}
	if o.Range() != "185.0.0.0 - 185.0.0.255" {
		t.Errorf("Range = %q", o.Range())
	}
	if o.SmallerThanSlash24() {
		t.Error("a /24 is not smaller than /24")
	}
	small := in("185.0.0.0", "185.0.0.127", StatusAssignedPA, "ORG-A")
	if !small.SmallerThanSlash24() {
		t.Error("a /25 is smaller than /24")
	}
	p, ok := o.AsPrefix()
	if !ok || p != netblock.MustParsePrefix("185.0.0.0/24") {
		t.Errorf("AsPrefix = %v, %v", p, ok)
	}
	// Non-CIDR range.
	odd := in("185.0.0.1", "185.0.0.255", StatusAssignedPA, "ORG-A")
	if _, ok := odd.AsPrefix(); ok {
		t.Error("non-aligned range should not convert to a prefix")
	}
	misaligned := in("185.0.0.128", "185.0.1.127", StatusAssignedPA, "ORG-A")
	if _, ok := misaligned.AsPrefix(); ok {
		t.Error("power-of-two but misaligned range should not convert")
	}
	if !o.CoversPrefix(netblock.MustParsePrefix("185.0.0.0/25")) {
		t.Error("CoversPrefix failed")
	}
}

func newHierarchyDB() (*DB, *Inetnum, *Inetnum, *Inetnum, *Inetnum) {
	db := NewDB()
	root := in("185.0.0.0", "185.0.255.255", StatusAllocatedPA, "ORG-LIR") // /16
	mid := in("185.0.0.0", "185.0.3.255", StatusSubAllocatedPA, "ORG-ISP") // /22
	leaf := in("185.0.0.0", "185.0.0.255", StatusAssignedPA, "ORG-CUST")   // /24
	other := in("185.0.16.0", "185.0.16.255", StatusAssignedPA, "ORG-X")   // /24 elsewhere
	db.Add(root)
	db.Add(mid)
	db.Add(leaf)
	db.Add(other)
	return db, root, mid, leaf, other
}

func TestDBLookupAndParent(t *testing.T) {
	db, root, mid, leaf, other := newHierarchyDB()
	if got, ok := db.Lookup(addr("185.0.0.0"), addr("185.0.3.255")); !ok || got != mid {
		t.Errorf("Lookup mid = %v, %v", got, ok)
	}
	if _, ok := db.Lookup(addr("185.0.0.0"), addr("185.0.0.1")); ok {
		t.Error("absent range should miss")
	}
	if got, ok := db.LookupPrefix(netblock.MustParsePrefix("185.0.0.0/24")); !ok || got != leaf {
		t.Errorf("LookupPrefix = %v, %v", got, ok)
	}

	if p, ok := db.Parent(leaf); !ok || p != mid {
		t.Errorf("Parent(leaf) = %v, %v; want mid", p, ok)
	}
	if p, ok := db.Parent(mid); !ok || p != root {
		t.Errorf("Parent(mid) = %v, %v; want root", p, ok)
	}
	if p, ok := db.Parent(other); !ok || p != root {
		t.Errorf("Parent(other) = %v, %v; want root", p, ok)
	}
	if _, ok := db.Parent(root); ok {
		t.Error("root should have no parent")
	}
}

func TestDBChildren(t *testing.T) {
	db, root, mid, leaf, other := newHierarchyDB()
	kids := db.Children(root)
	if len(kids) != 2 || kids[0] != mid || kids[1] != other {
		t.Errorf("Children(root) = %v", kids)
	}
	kids = db.Children(mid)
	if len(kids) != 1 || kids[0] != leaf {
		t.Errorf("Children(mid) = %v", kids)
	}
	if kids := db.Children(leaf); len(kids) != 0 {
		t.Errorf("Children(leaf) = %v", kids)
	}
}

func TestDBAddReplacesDuplicate(t *testing.T) {
	db := NewDB()
	db.Add(in("185.0.0.0", "185.0.0.255", StatusAssignedPA, "ORG-A"))
	db.Add(in("185.0.0.0", "185.0.0.255", StatusAssignedPA, "ORG-B"))
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	got, _ := db.Lookup(addr("185.0.0.0"), addr("185.0.0.255"))
	if got.Org != "ORG-B" {
		t.Error("duplicate Add should replace")
	}
}

func TestTakeCensus(t *testing.T) {
	db := NewDB()
	db.Add(in("185.0.0.0", "185.0.255.255", StatusAllocatedPA, "ORG-LIR"))
	db.Add(in("185.0.0.0", "185.0.3.255", StatusSubAllocatedPA, "ORG-ISP"))
	db.Add(in("185.0.0.0", "185.0.0.255", StatusAssignedPA, "ORG-C1"))   // /24
	db.Add(in("185.0.1.0", "185.0.1.127", StatusAssignedPA, "ORG-C2"))   // /25 (< /24)
	db.Add(in("185.0.1.128", "185.0.1.191", StatusAssignedPA, "ORG-C3")) // /26 (< /24)
	c := db.TakeCensus()
	if c.Total != 5 {
		t.Errorf("Total = %d", c.Total)
	}
	if c.ByStatus[StatusAssignedPA] != 3 || c.SubAllocatedBlocks != 1 {
		t.Errorf("census = %+v", c)
	}
	if c.AssignedPASub24 != 2 {
		t.Errorf("AssignedPASub24 = %d", c.AssignedPASub24)
	}
	if c.FracAssignedSub24 < 0.66 || c.FracAssignedSub24 > 0.67 {
		t.Errorf("FracAssignedSub24 = %v", c.FracAssignedSub24)
	}
}

func TestRPSLRoundTrip(t *testing.T) {
	db, _, _, _, _ := newHierarchyDB()
	created := time.Date(2019, 5, 1, 12, 0, 0, 0, time.UTC)
	for _, o := range db.All() {
		o.Created = created
		o.MntBy = "MNT-TEST"
		o.AdminC = "AC1-RIPE"
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), db.Len())
	}
	o, ok := got.Lookup(addr("185.0.0.0"), addr("185.0.3.255"))
	if !ok {
		t.Fatal("mid object lost")
	}
	if o.Status != StatusSubAllocatedPA || o.Org != "ORG-ISP" || !o.Created.Equal(created) ||
		o.MntBy != "MNT-TEST" || o.AdminC != "AC1-RIPE" || o.Country != "DE" {
		t.Errorf("round-tripped object = %+v", o)
	}
}

func TestParseSnapshotCommentsAndErrors(t *testing.T) {
	good := `% RIPE database snapshot
# comment

inetnum:        185.0.0.0 - 185.0.0.255
netname:        TEST-NET
status:         ASSIGNED PA
unknown-attr:   ignored
`
	db, err := ParseSnapshot(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}

	bad := []string{
		"netname: ORPHAN\n",                           // attribute before inetnum
		"inetnum: 185.0.0.255 - 185.0.0.0\n",          // inverted range
		"inetnum: 185.0.0.0\n",                        // not a range
		"inetnum: x - y\n",                            // bad addresses
		"inetnum: 185.0.0.0 - 185.0.0.255\nnocolon\n", // missing colon
	}
	for i, b := range bad {
		if _, err := ParseSnapshot(strings.NewReader(b)); err == nil {
			t.Errorf("bad[%d]: expected error", i)
		}
	}
}

func TestParseSnapshotBadCreatedIgnored(t *testing.T) {
	src := "inetnum: 185.0.0.0 - 185.0.0.255\ncreated: not-a-date\n"
	db, err := ParseSnapshot(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	o := db.All()[0]
	if !o.Created.IsZero() {
		t.Error("unparseable created should stay zero")
	}
}
