package whois

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ipv4market/internal/netblock"
)

// Property test: WriteTo → ParseSnapshot is the identity on databases of
// random well-formed objects.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	statuses := []Status{StatusAllocatedPA, StatusAssignedPA, StatusSubAllocatedPA, StatusAssignedPI, StatusLegacy}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		var want []*Inetnum
		for i := 0; i < int(n%24)+1; i++ {
			first := netblock.Addr(rng.Uint32())
			span := netblock.Addr(rng.Intn(1 << 12))
			last := first
			if uint64(first)+uint64(span) <= 0xffffffff {
				last = first + span
			}
			o := &Inetnum{
				First:   first,
				Last:    last,
				Netname: "NET-Q",
				Descr:   "quick property object",
				Country: "DE",
				Org:     "ORG-Q",
				AdminC:  "QA1-RIPE",
				TechC:   "QT1-RIPE",
				Status:  statuses[rng.Intn(len(statuses))],
				MntBy:   "MNT-Q",
				Created: time.Unix(rng.Int63n(1<<31), 0).UTC().Truncate(time.Second),
			}
			before := db.Len()
			db.Add(o)
			if db.Len() > before {
				want = append(want, o)
			}
		}
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ParseSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if got.Len() != db.Len() {
			return false
		}
		for _, o := range want {
			g, ok := got.Lookup(o.First, o.Last)
			if !ok {
				return false
			}
			if g.Status != o.Status || g.Org != o.Org || g.AdminC != o.AdminC ||
				g.TechC != o.TechC || g.MntBy != o.MntBy || g.Country != o.Country ||
				!g.Created.Equal(o.Created) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
