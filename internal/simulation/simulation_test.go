package simulation

import (
	"testing"
	"time"

	"ipv4market/internal/bgp"
	"ipv4market/internal/delegation"
	"ipv4market/internal/market"
	"ipv4market/internal/registry"
	"ipv4market/internal/whois"
)

// testConfig returns a small, fast world for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumLIRs = 18
	cfg.RoutingDays = 60
	cfg.AdministrativeLeases = 120
	cfg.RoutedLeases = 50
	cfg.MonitorsPerCollector = 4
	cfg.SmallAssignmentsPerLIR = 10
	return cfg
}

func buildTestWorld(t testing.TB) *World {
	t.Helper()
	w, err := Build(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildDeterminism(t *testing.T) {
	w1 := buildTestWorld(t)
	w2 := buildTestWorld(t)
	if len(w1.Orgs) != len(w2.Orgs) || len(w1.Leases) != len(w2.Leases) || len(w1.Prices) != len(w2.Prices) {
		t.Fatal("same seed must give the same world")
	}
	for i := range w1.Leases {
		if w1.Leases[i].Child != w2.Leases[i].Child || w1.Leases[i].StartDay != w2.Leases[i].StartDay {
			t.Fatalf("lease %d differs between builds", i)
		}
	}
	t1 := w1.Registry.Transfers()
	t2 := w2.Registry.Transfers()
	if len(t1) != len(t2) {
		t.Fatal("transfer history differs")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("transfer %d differs", i)
		}
	}
}

func TestWorldPopulation(t *testing.T) {
	w := buildTestWorld(t)
	if len(w.Orgs) == 0 || len(w.Leases) == 0 || len(w.Prices) == 0 {
		t.Fatal("world should be populated")
	}
	// Org/AS indexes consistent.
	for _, o := range w.Orgs {
		if w.ByID[o.ID] != o {
			t.Fatalf("ByID broken for %s", o.ID)
		}
		for _, a := range o.ASNs {
			if w.ByAS[a] != o {
				t.Fatalf("ByAS broken for %s", a)
			}
		}
	}
	// AFRINIC/LACNIC get fewer LIRs.
	if w.Registry.NumMembers(registry.AFRINIC) >= w.Registry.NumMembers(registry.RIPENCC) {
		t.Error("AFRINIC should have fewer members than RIPE")
	}
	// as2org series resolves same-org pairs.
	for _, o := range w.Orgs {
		if len(o.ASNs) >= 2 {
			if !w.OrgSeries.SameOrgAt(w.Cfg.RoutingStart, o.ASNs[0], o.ASNs[1]) {
				t.Error("multi-AS org not same-org in series")
			}
			break
		}
	}
}

func TestTransferMarketShape(t *testing.T) {
	w := buildTestWorld(t)
	transfers := w.Registry.Transfers()
	counts := market.QuarterlyCounts(market.FilterMarketTransfers(transfers))

	sum := func(r registry.RIR) int {
		n := 0
		for _, qc := range counts[r] {
			n += qc.Count
		}
		return n
	}
	arin, ripe, apnic := sum(registry.ARIN), sum(registry.RIPENCC), sum(registry.APNIC)
	afr, lac := sum(registry.AFRINIC), sum(registry.LACNIC)
	if arin <= ripe || arin <= apnic {
		t.Errorf("ARIN should dominate: arin=%d ripe=%d apnic=%d", arin, ripe, apnic)
	}
	if afr+lac > (arin+ripe+apnic)/10 {
		t.Errorf("AFRINIC+LACNIC markets should be negligible: %d vs %d", afr+lac, arin+ripe+apnic)
	}
	// No transfers before each market opened.
	for _, tr := range transfers {
		if tr.Type == registry.TypeMarket && !registry.TransferMarketOpen(tr.FromRIR, tr.Date) {
			t.Errorf("market transfer before market open: %+v", tr)
		}
	}

	// Inter-RIR flows exist, mostly out of ARIN (Figure 3).
	flows := market.InterRIRFlows(transfers)
	if len(flows) == 0 {
		t.Fatal("no inter-RIR flows")
	}
	nf := market.NetFlow(transfers, time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC), w.Cfg.MarketEnd)
	if nf[registry.ARIN] >= 0 {
		t.Errorf("ARIN net flow should be negative, got %d", nf[registry.ARIN])
	}
}

func TestPriceShape(t *testing.T) {
	w := buildTestWorld(t)
	d := func(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }

	factor, err := market.GrowthFactor(w.Prices, d(2016, 1), d(2017, 1), d(2019, 7), d(2020, 7))
	if err != nil {
		t.Fatal(err)
	}
	if factor < 1.6 || factor > 2.6 {
		t.Errorf("price growth factor = %v, want ≈2", factor)
	}
	mean2020, err := market.MeanPrice(w.Prices, d(2020, 1), d(2020, 7))
	if err != nil {
		t.Fatal(err)
	}
	if mean2020 < 20 || mean2020 > 26 {
		t.Errorf("2020 mean price = $%.2f, want ≈$22.50", mean2020)
	}
	// No significant region effect.
	re, err := market.RegionEffect(w.Prices, d(2018, 1), d(2020, 7))
	if err != nil {
		t.Fatal(err)
	}
	if re.Significant(0.01) {
		t.Errorf("region effect p = %v; prices should not differ by region", re.PValue)
	}
	// Consolidation detected, starting no earlier than 2018 (a 1%-per-
	// quarter tolerance, as the core study uses).
	cons, ok := market.DetectConsolidation(w.Prices, 0.01, 4)
	if !ok {
		t.Fatal("no consolidation phase detected")
	}
	if cons.Since.Year < 2018 {
		t.Errorf("consolidation since %v, expected around 2019", cons.Since)
	}
}

func TestPriceLevelTrajectory(t *testing.T) {
	d := func(y, m int) time.Time { return time.Date(y, time.Month(m), 1, 0, 0, 0, 0, time.UTC) }
	if PriceLevel(d(2016, 1)) >= PriceLevel(d(2018, 1)) {
		t.Error("prices must rise 2016→2018")
	}
	if PriceLevel(d(2019, 6)) != PriceLevel(d(2020, 6)) {
		t.Error("plateau after Spring 2019")
	}
	if PriceLevel(d(2020, 1)) != 22.5 {
		t.Errorf("plateau level = %v", PriceLevel(d(2020, 1)))
	}
	if PriceLevel(d(2010, 1)) < 5 || PriceLevel(d(2010, 1)) > 8.5 {
		t.Errorf("early price = %v", PriceLevel(d(2010, 1)))
	}
}

func TestWhoisDBShape(t *testing.T) {
	w := buildTestWorld(t)
	db := w.BuildWhoisDB()
	census := db.TakeCensus()
	if census.Total == 0 || census.SubAllocatedBlocks == 0 {
		t.Fatalf("census = %+v", census)
	}
	// Most ASSIGNED PA entries are smaller than /24 (paper: 91.4%).
	if census.FracAssignedSub24 < 0.5 {
		t.Errorf("FracAssignedSub24 = %v, want majority", census.FracAssignedSub24)
	}
	// Every whois-registered lease has an object.
	for _, l := range w.Leases {
		if !l.InWhois {
			continue
		}
		if _, ok := db.Lookup(l.Child.First(), l.Child.Last()); !ok {
			t.Fatalf("lease %v missing from WHOIS", l.Child)
		}
	}
	// WHOIS snapshot round-trips.
	var n int
	for _, o := range db.All() {
		if o.Status == whois.StatusAllocatedPA {
			n++
		}
	}
	if n == 0 {
		t.Error("no ALLOCATED PA objects")
	}
}

func TestRoutingSimDelegationInference(t *testing.T) {
	w := buildTestWorld(t)
	rs := NewRoutingSim(w)
	if rs.NumMonitors() != w.Cfg.Collectors*w.Cfg.MonitorsPerCollector {
		t.Fatalf("NumMonitors = %d", rs.NumMonitors())
	}

	day := 10
	survey := rs.SurveyAt(day)
	if survey.NumMonitors() != rs.NumMonitors() {
		t.Fatalf("survey monitors = %d", survey.NumMonitors())
	}

	inf := delegation.DefaultInference(w.OrgSeries)
	date := w.Cfg.RoutingStart.AddDate(0, 0, day)
	extended := inf.FromSurvey(date, survey)
	baseline := delegation.Baseline(survey)

	if len(extended) == 0 {
		t.Fatal("extended algorithm found no delegations")
	}
	// The extensions only remove: extended ⊆ baseline-ish in count.
	if len(extended) > len(baseline) {
		t.Errorf("extended (%d) should not exceed baseline (%d)", len(extended), len(baseline))
	}

	// Recall against ground truth: most announced leases (provider and
	// customer in different orgs, not MOAS-tainted) must be recovered.
	truth := rs.TrueDelegationsOn(day)
	found := make(map[string]bool)
	for _, d := range extended {
		found[d.Child.String()] = true
	}
	recovered, total := 0, 0
	for child := range truth {
		total++
		if found[child.String()] {
			recovered++
		}
	}
	if total == 0 {
		t.Fatal("no ground-truth delegations on day 10")
	}
	if frac := float64(recovered) / float64(total); frac < 0.7 {
		t.Errorf("recall = %.2f (%d/%d), want ≥ 0.7", frac, recovered, total)
	}

	// Precision: every extended delegation should be a true lease child
	// (hijacks and MOAS are filtered; scrub-like noise is not generated).
	falsePos := 0
	for _, d := range extended {
		if _, ok := truth[d.Child]; !ok {
			falsePos++
		}
	}
	if frac := float64(falsePos) / float64(len(extended)); frac > 0.1 {
		t.Errorf("false-positive rate = %.2f", frac)
	}
}

func TestRoutingSimDayDeterminism(t *testing.T) {
	w := buildTestWorld(t)
	rs := NewRoutingSim(w)
	s1 := rs.SurveyAt(7)
	s2 := rs.SurveyAt(7)
	p1 := s1.Pairs()
	p2 := s2.Pairs()
	if len(p1) != len(p2) {
		t.Fatal("same day must be deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestCollectorAtMatchesSurveyAt(t *testing.T) {
	w := buildTestWorld(t)
	rs := NewRoutingSim(w)
	day := 3

	direct := rs.SurveyAt(day)

	// Rebuild the survey from materialized collectors.
	s2 := bgp.NewOriginSurvey()
	for i := 0; i < rs.NumCollectors(); i++ {
		rs.CollectorAt(day, i).AddViewsTo(s2)
	}
	d1 := direct.CleanPairs(0.5)
	d2 := s2.CleanPairs(0.5)
	if len(d1) != len(d2) {
		t.Fatalf("clean pairs differ: %d vs %d", len(d1), len(d2))
	}
	for p, o := range d1 {
		if d2[p] != o {
			t.Fatalf("pair %v differs: %v vs %v", p, o, d2[p])
		}
	}
}

func TestRPKIHistoryCalibration(t *testing.T) {
	cfg := testConfig()
	cfg.RoutingDays = 200
	cfg.RoutedLeases = 80
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := w.BuildRPKIHistory(0.8, DefaultROADropProb)
	if h.NumDelegations() == 0 {
		t.Fatal("no RPKI delegations")
	}
	r10, err := h.EvaluateRule(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r10.Premises == 0 {
		t.Fatal("no premises for rule 10/0")
	}
	// Appendix: fail rate ≈ 5% for M=10, N=0.
	if fr := r10.FailRate(); fr < 0.02 || fr > 0.09 {
		t.Errorf("fail rate M=10,N=0 = %.3f, want ≈0.05", fr)
	}
	// Fail rate never reaches 30% even at M=100.
	r100, err := h.EvaluateRule(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r100.Premises > 0 && r100.FailRate() >= 0.75 {
		t.Errorf("fail rate M=100,N=0 = %.3f", r100.FailRate())
	}
	// With N=3, 90-day windows should mostly hold (paper: ~90%).
	r90, err := h.EvaluateRule(90, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r90.Premises > 0 && r90.FailRate() > 0.25 {
		t.Errorf("fail rate M=90,N=3 = %.3f, want small", r90.FailRate())
	}
}

func TestRPKISnapshotDelegations(t *testing.T) {
	w := buildTestWorld(t)
	snap := w.BuildRPKISnapshot(10, 1.0)
	if snap.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	ds := snap.Delegations()
	if len(ds) == 0 {
		t.Fatal("no ROA delegations inferred")
	}
	// Every inferred delegation corresponds to a lease child or nested
	// allocation; sanity: children strictly inside parents.
	for _, d := range ds {
		if !d.Parent.CoversStrictly(d.Child) {
			t.Fatalf("bad delegation %+v", d)
		}
	}
}

// TestScrubbingCreatesFalsePositives verifies the limitation §4 concedes:
// a scrubbing service announcing a customer's more-specific looks exactly
// like a delegation and survives the extended algorithm's filters.
func TestScrubbingCreatesFalsePositives(t *testing.T) {
	cfg := testConfig()
	cfg.RoutingDays = 200 // more window → at least one scrub event likely
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRoutingSim(w)

	// Find a day with an active scrub event.
	day := -1
	for d := 0; d < cfg.RoutingDays; d++ {
		if len(rs.ScrubbedPrefixesOn(d)) > 0 {
			day = d
			break
		}
	}
	if day < 0 {
		t.Skip("no scrub event generated at this scale")
	}
	inf := delegation.DefaultInference(w.OrgSeries)
	ds := inf.FromSurvey(cfg.RoutingStart.AddDate(0, 0, day), rs.SurveyAt(day))
	byChild := map[string]bool{}
	for _, d := range ds {
		byChild[d.Child.String()] = true
	}
	found := false
	for _, p := range rs.ScrubbedPrefixesOn(day) {
		if byChild[p.String()] {
			found = true
		}
	}
	if !found {
		t.Error("scrubbed prefix should be inferred as a (false) delegation — the documented limitation")
	}
}

func TestLegacyHolders(t *testing.T) {
	w := buildTestWorld(t)
	var legacy []*registry.Allocation
	for _, a := range w.Registry.Allocations() {
		if a.Status == registry.StatusLegacy {
			legacy = append(legacy, a)
		}
	}
	// Legacy space fragments as holders sell and lease, and every
	// fragment keeps its legacy status; at least the nine original
	// holders' space must be present across all three seeded /8s.
	if len(legacy) < 9 {
		t.Fatalf("legacy allocations = %d", len(legacy))
	}
	regions := map[registry.RIR]bool{}
	orgs := map[registry.OrgID]bool{}
	for _, a := range legacy {
		regions[a.RIR] = true
		orgs[a.Org] = true
	}
	if len(regions) != 3 || len(orgs) < 9 {
		t.Errorf("legacy spread: %d regions, %d orgs", len(regions), len(orgs))
	}
	db := w.BuildWhoisDB()
	for _, a := range legacy {
		o, ok := db.Lookup(a.Prefix.First(), a.Prefix.Last())
		if !ok || o.Status != whois.StatusLegacy {
			t.Errorf("legacy block %v: whois = %+v, %v", a.Prefix, o, ok)
		}
		org := w.ByID[a.Org]
		if org == nil {
			t.Fatalf("legacy org %s missing from world", a.Org)
		}
	}
	// Legacy space is announced: its prefix-origin pairs reach the survey.
	rs := NewRoutingSim(w)
	clean := rs.SurveyAt(0).CleanPairs(0.5)
	found := 0
	for _, a := range legacy {
		if origin, ok := clean[a.Prefix]; ok && origin == w.ByID[a.Org].PrimaryAS() {
			found++
		}
	}
	if found == 0 {
		t.Error("no legacy announcements visible in BGP")
	}
}

// TestROVFiltersHijacks: with full RPKI deployment, route origin
// validation classifies hijack announcements as invalid and
// SanitizeWithROV removes them — connecting the appendix's RPKI data to
// the sanitization stage (§7's "combine routing information and RPKI").
func TestROVFiltersHijacks(t *testing.T) {
	cfg := testConfig()
	cfg.HijackRate = 5 // make hijacks near-certain on any given day
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRoutingSim(w)
	snap := w.BuildRPKISnapshot(10, 1.0)

	totalDropped := 0
	for ci := 0; ci < rs.NumCollectors(); ci++ {
		c := rs.CollectorAt(10, ci)
		for p := 0; p < c.NumPeers(); p++ {
			routes := c.PeerRIB(p).Routes()
			plain, _ := bgp.Sanitize(routes)
			rov, _, dropped := bgp.SanitizeWithROV(routes, snap)
			if len(rov)+dropped != len(plain) {
				t.Fatalf("ROV accounting: %d + %d != %d", len(rov), dropped, len(plain))
			}
			totalDropped += dropped
		}
	}
	if totalDropped == 0 {
		t.Error("ROV should drop at least some hijack routes at rate 5/day")
	}
}
