package simulation

import (
	"testing"

	"ipv4market/internal/bgp"
	"ipv4market/internal/netblock"
)

// TestUpdateStreamEvolvesSnapshot checks the paper's daily workflow:
// applying the update stream for days d..d+k to the day-d snapshot must
// reproduce exactly the day-(d+k) snapshot, per peer and per route.
func TestUpdateStreamEvolvesSnapshot(t *testing.T) {
	w := buildTestWorld(t)
	rs := NewRoutingSim(w)
	const from, to = 5, 9

	for ci := 0; ci < rs.NumCollectors(); ci++ {
		base := rs.CollectorAt(from, ci)
		want := rs.CollectorAt(to, ci)

		// Expand the base snapshot into per-peer state and apply the
		// per-day update streams.
		var peers []bgp.PeerEntry
		for p := 0; p < base.NumPeers(); p++ {
			peers = append(peers, base.Peer(p))
		}
		// Expand into per-peer state by replaying each base route as an
		// announcement.
		st := bgp.NewSnapshotState(peers, nil)
		for p := 0; p < base.NumPeers(); p++ {
			peer := base.Peer(p)
			key := bgp.PeerKey{IP: peer.IP, AS: peer.AS}
			for _, r := range base.PeerRIB(p).Routes() {
				bgp.ApplyUpdate(st.RIBOf(key), &bgp.UpdateRecord{
					Announced: []netblock.Prefix{r.Prefix}, Path: r.Path,
					Origin: r.Origin, NextHop: r.NextHop,
				})
			}
		}
		for d := from; d < to; d++ {
			ups := rs.UpdateStream(d, d+1, ci)
			for i := range ups {
				st.Apply(&ups[i])
			}
		}

		for p := 0; p < want.NumPeers(); p++ {
			peer := want.Peer(p)
			key := bgp.PeerKey{IP: peer.IP, AS: peer.AS}
			got := st.RIBOf(key)
			exp := want.PeerRIB(p)
			if got.Len() != exp.Len() {
				t.Fatalf("collector %d peer %d: %d routes, want %d", ci, p, got.Len(), exp.Len())
			}
			for _, r := range exp.Routes() {
				g, ok := got.Get(r.Prefix)
				if !ok || g.Path.String() != r.Path.String() {
					t.Fatalf("collector %d peer %d: route %v diverges", ci, p, r.Prefix)
				}
			}
		}
	}
}
