package simulation

import (
	"ipv4market/internal/netblock"
)

// Activity defaults: the share of a routed block's addresses estimated
// active (responding hosts per "Lost in Space"-style probing) when the
// scenario does not override the utilization profile.
const (
	defaultActivityMean   = 0.55
	defaultActivityJitter = 0.25
)

// ActivityFraction estimates the fraction of a routed prefix's
// addresses that are active. The estimate is a pure deterministic
// function of (seed, prefix): a splitmix64-style hash drives a jitter
// around the configured mean, clamped to [0.02, 0.98] so no routed
// block is ever fully dead or fully packed. Concurrent calls are safe —
// no shared RNG stream is consumed.
func (w *World) ActivityFraction(p netblock.Prefix) float64 {
	mean := w.Cfg.ActivityMean
	if mean <= 0 {
		mean = defaultActivityMean
	}
	jitter := w.Cfg.ActivityJitter
	if jitter <= 0 {
		jitter = defaultActivityJitter
	}
	x := uint64(w.Cfg.Seed)*0x9e3779b97f4a7c15 ^ uint64(p.Addr())<<8 ^ uint64(p.Bits())
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Uniform in [-1, 1), scaled by the jitter.
	u := float64(x>>11)/float64(1<<53)*2 - 1
	f := mean + u*jitter
	if f < 0.02 {
		f = 0.02
	}
	if f > 0.98 {
		f = 0.98
	}
	return f
}
