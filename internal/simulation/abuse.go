package simulation

import (
	"math/rand"
	"time"

	"ipv4market/internal/reputation"
)

// Abuse simulation (§2 and §6): spammers lease short-lived blocks, engage
// in malicious activity while keeping their own space clean, and the
// leased blocks land on blacklists. Leasing providers rely on WHOIS
// registration (SWIP-style records) so that the taint stays with the
// delegated block rather than their remaining space.

// BuildBlacklist derives the blacklist history from the world's leases:
// every spammer lease is listed shortly after it starts; VPN-provider
// leases are occasionally listed too (their rotating address usage trips
// heuristics); delisting lags the lease end, and a fraction of listings
// never close — "it can be hard to remove it again".
func (w *World) BuildBlacklist() *reputation.Blacklist {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0xb1ac))
	bl := reputation.NewBlacklist()
	dayTime := func(day int) time.Time {
		return w.Cfg.RoutingStart.AddDate(0, 0, day)
	}
	for _, l := range w.Leases {
		var listProb float64
		switch l.Customer.Kind {
		case KindSpammer:
			listProb = 0.9
		case KindVPNProvider:
			listProb = 0.15
		default:
			listProb = 0.02
		}
		if rng.Float64() > listProb {
			continue
		}
		from := l.StartDay + 2 + rng.Intn(15)
		listing := reputation.Listing{
			Prefix: l.Child,
			From:   dayTime(from),
			Reason: "spam",
		}
		// Most listings close some weeks after the lease ends; some never do.
		if rng.Float64() < 0.8 {
			until := l.EndDay + 14 + rng.Intn(60)
			if until > from {
				listing.Until = dayTime(until)
			}
		}
		bl.Add(listing)
	}
	return bl
}
