package simulation

import (
	"fmt"
	"math/rand"
	"time"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
)

// Waiting-list dynamics (§2): once depleted, an RIR serves approved
// requests from recovered address space only, so waiting times depend on
// the recovery rate. The paper reports ARIN waits of up to 130+ days and
// that the RIPE NCC cleared its whole list with recovered space in
// November 2019, leaving ~340k addresses in the pool.

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// WaitingListScenario parameterizes one RIR's post-depletion regime.
type WaitingListScenario struct {
	RIR registry.RIR
	// Start/End bound the simulated period (Start should be at or after
	// the RIR's depletion date).
	Start, End time.Time
	// RequestsPerWeek is the mean arrival rate of approved requests.
	RequestsPerWeek float64
	// RecoveredBlocksPerMonth is the mean number of address blocks
	// recovered from closed members per month.
	RecoveredBlocksPerMonth float64
	// RecoveredBlockBits is the prefix length of recovered blocks.
	RecoveredBlockBits int
	// InitialPool seeds the free pool at Start (the RIPE NCC entered
	// depletion with recovered space already banked).
	InitialPool uint64
	Seed        int64
}

// ARIN2020Scenario models ARIN's regime: steady demand, slow recovery,
// empty pool.
func ARIN2020Scenario() WaitingListScenario {
	return WaitingListScenario{
		RIR:                     registry.ARIN,
		Start:                   date(2019, time.July, 1),
		End:                     date(2020, time.July, 1),
		RequestsPerWeek:         3.5,
		RecoveredBlocksPerMonth: 2.4,
		RecoveredBlockBits:      20,
		Seed:                    1,
	}
}

// RIPE2019Scenario models the RIPE NCC just after run-out: a burst of
// queued requests served from banked recovered space.
func RIPE2019Scenario() WaitingListScenario {
	return WaitingListScenario{
		RIR:                     registry.RIPENCC,
		Start:                   date(2019, time.November, 25),
		End:                     date(2020, time.July, 1),
		RequestsPerWeek:         4,
		RecoveredBlocksPerMonth: 5,
		RecoveredBlockBits:      19,
		InitialPool:             128_000,
		Seed:                    1,
	}
}

// WaitingListOutcome summarizes the simulated regime.
type WaitingListOutcome struct {
	Scenario    WaitingListScenario
	Requests    int
	Fulfilled   int
	Pending     int
	Rejected    int // waiting list full
	MaxWaitDays int
	MeanWait    float64 // days, over fulfilled requests
	PoolLeft    uint64  // addresses remaining unallocated at End
}

// SimulateWaitingList runs the scenario through the registry policy
// engine day by day: requests join the waiting list (the pool is empty or
// insufficient), recovered blocks rest in quarantine for six months, and
// the list is served first-come-first-served as space matures.
func SimulateWaitingList(sc WaitingListScenario) WaitingListOutcome {
	rng := rand.New(rand.NewSource(sc.Seed))
	reg := registry.NewRegistry()
	out := WaitingListOutcome{Scenario: sc}

	// Donor organizations hold the space that will be recovered. Their
	// blocks are allocated long before depletion and recovered during the
	// scenario; the six-month quarantine applies, so seed recoveries six
	// months before Start as well (space already resting when we begin).
	donor := registry.OrgID("donor")
	reg.RegisterLIR(donor, sc.RIR, "XX", date(2000, time.January, 1))
	reg.SeedPool(sc.RIR, netblock.MustParsePrefix("203.0.0.0/10"))

	requested := make(map[registry.OrgID]time.Time)
	nextOrg := 0
	newOrg := func(t time.Time) registry.OrgID {
		nextOrg++
		id := registry.OrgID(fmt.Sprintf("req-%04d", nextOrg))
		reg.RegisterLIR(id, sc.RIR, "XX", t)
		return id
	}

	// Pre-allocate donor blocks: enough for the whole scenario.
	months := int(sc.End.Sub(sc.Start).Hours()/24/30) + 8
	var donorBlocks []netblock.Prefix
	for i := 0; i < int(sc.RecoveredBlocksPerMonth*float64(months))+8; i++ {
		a, err := reg.Allocate(sc.RIR, donor, sc.RecoveredBlockBits, date(2001, time.January, 1))
		if err != nil {
			break
		}
		donorBlocks = append(donorBlocks, a.Prefix)
	}
	// Drain whatever free pool remains so the depleted regime is real,
	// then bank the scenario's initial pool.
	sink := registry.OrgID("sink")
	reg.RegisterLIR(sink, sc.RIR, "XX", date(2000, time.January, 1))
	for {
		if _, err := reg.Allocate(sc.RIR, sink, 10, date(2001, time.June, 1)); err != nil {
			break
		}
	}
	for {
		if _, err := reg.Allocate(sc.RIR, sink, 24, date(2001, time.June, 1)); err != nil {
			break
		}
	}
	if sc.InitialPool > 0 {
		// Recover donor blocks early enough that they mature before Start.
		var banked uint64
		early := sc.Start.Add(-registry.QuarantinePeriod - 24*time.Hour)
		for banked < sc.InitialPool && len(donorBlocks) > 0 {
			b := donorBlocks[0]
			donorBlocks = donorBlocks[1:]
			if err := reg.Recover(b, early); err == nil {
				banked += b.NumAddrs()
			}
		}
	}

	maxBits := registry.MaxAssignmentBits(sc.RIR, sc.Start)
	dayRequests := sc.RequestsPerWeek / 7
	dayRecoveries := sc.RecoveredBlocksPerMonth / 30

	// Recovery is an ongoing process: blocks recovered during the six
	// months before Start mature throughout the window.
	for t := sc.Start.Add(-registry.QuarantinePeriod); t.Before(sc.Start); t = t.AddDate(0, 0, 1) {
		for i := 0; i < poisson(rng, dayRecoveries) && len(donorBlocks) > 0; i++ {
			b := donorBlocks[0]
			donorBlocks = donorBlocks[1:]
			_ = reg.Recover(b, t)
		}
	}

	for t := sc.Start; t.Before(sc.End); t = t.AddDate(0, 0, 1) {
		// New approved requests.
		for i := 0; i < poisson(rng, dayRequests); i++ {
			org := newOrg(t)
			_, err := reg.Allocate(sc.RIR, org, maxBits, t)
			switch {
			case err == nil:
				// Pool had matured space: served instantly.
				out.Requests++
				out.Fulfilled++
			case err == registry.ErrWaitingList:
				out.Requests++
				requested[org] = t
			default: // ErrWaitingListFull or policy refusal
				out.Requests++
				out.Rejected++
			}
		}
		// Recoveries enter quarantine.
		for i := 0; i < poisson(rng, dayRecoveries) && len(donorBlocks) > 0; i++ {
			b := donorBlocks[0]
			donorBlocks = donorBlocks[1:]
			_ = reg.Recover(b, t)
		}
		// Daily maturation + FIFO service.
		for _, a := range reg.ProcessQuarantine(sc.RIR, t) {
			reqAt, ok := requested[a.Org]
			if !ok {
				continue
			}
			delete(requested, a.Org)
			wait := int(a.Date.Sub(reqAt).Hours() / 24)
			out.Fulfilled++
			out.MeanWait += float64(wait)
			if wait > out.MaxWaitDays {
				out.MaxWaitDays = wait
			}
		}
	}
	out.Pending = len(requested)
	if served := out.Fulfilled; served > 0 {
		out.MeanWait /= float64(served)
	}
	out.PoolLeft = reg.PoolSize(sc.RIR)
	return out
}
