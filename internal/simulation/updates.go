package simulation

import (
	"ipv4market/internal/bgp"
)

// UpdateStream computes the BGP4MP update records that evolve collector
// idx's view from `day` to `toDay` — what the collector's update files
// for those days would contain (withdrawals of vanished routes and
// attribute-grouped announcements of new or changed ones).
func (rs *RoutingSim) UpdateStream(day, toDay, idx int) []bgp.UpdateRecord {
	from := rs.CollectorAt(day, idx)
	to := rs.CollectorAt(toDay, idx)
	ts := rs.w.Cfg.RoutingStart.AddDate(0, 0, toDay)
	var out []bgp.UpdateRecord
	for p := 0; p < from.NumPeers(); p++ {
		peer := from.Peer(p)
		key := bgp.PeerKey{IP: peer.IP, AS: peer.AS}
		diffs := bgp.DiffUpdates(from.PeerRIB(p), to.PeerRIB(p), key)
		for i := range diffs {
			diffs[i].Timestamp = ts
		}
		out = append(out, diffs...)
	}
	return out
}
