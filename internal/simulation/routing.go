package simulation

import (
	"fmt"
	"math/rand"

	"ipv4market/internal/bgp"
	"ipv4market/internal/netblock"
)

// RoutingSim synthesizes the daily view of the global routing system as
// seen from a set of collectors: owner announcements of allocations,
// leased more-specifics with on-off patterns, plus the noise the paper's
// extended algorithm must suppress — low-visibility more-specific
// hijacks, MOAS, and AS_SET aggregates. Each day's view is generated
// deterministically and independently from the world seed.
type RoutingSim struct {
	w *World

	collectors []collectorSpec
	// announced allocations: every (allocation, origin AS) pair visible
	// in steady state.
	anns []announcement
	// moasLeases adds a second origin to a few leased children.
	moasLeases map[*Lease]ASN
	// asSetAggs are prefixes announced with AS_SET termination.
	asSetAggs []announcement
	// scrubEvents are DDoS-scrubbing episodes: the scrubber announces a
	// victim's more-specific at full visibility for a few days. §4 lists
	// these as an unavoidable false-positive source for the inference.
	scrubEvents []scrubEvent
	// transit maps each origin AS to its upstream.
	transit map[ASN]ASN
}

type scrubEvent struct {
	prefix   netblock.Prefix
	scrubber ASN
	fromDay  int
	toDay    int
}

type collectorSpec struct {
	name  string
	id    netblock.Addr
	peers []bgp.PeerEntry
}

type announcement struct {
	prefix netblock.Prefix
	origin ASN
	asSet  []ASN // non-nil: terminate the path with this AS_SET
}

// collectorNames gives the simulation's collectors familiar labels.
var collectorNames = []string{"rrc00", "route-views2", "isolario"}

// NewRoutingSim prepares the daily route generator for the world.
func NewRoutingSim(w *World) *RoutingSim {
	rs := &RoutingSim{
		w:          w,
		moasLeases: make(map[*Lease]ASN),
		transit:    make(map[ASN]ASN),
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x5eed))

	// Collectors and monitor peers. Peer ASNs live in the public range.
	nextPeerAS := ASN(21000)
	nextPeerIP := netblock.MustParseAddr("198.51.100.1") // doc space: fine for peer IPs
	for c := 0; c < w.Cfg.Collectors; c++ {
		name := fmt.Sprintf("collector-%d", c)
		if c < len(collectorNames) {
			name = collectorNames[c]
		}
		spec := collectorSpec{name: name, id: netblock.Addr(0xC0000200 + uint32(c))}
		for m := 0; m < w.Cfg.MonitorsPerCollector; m++ {
			spec.peers = append(spec.peers, bgp.PeerEntry{
				BGPID: nextPeerIP, IP: nextPeerIP, AS: nextPeerAS,
			})
			nextPeerAS++
			nextPeerIP++
		}
		rs.collectors = append(rs.collectors, spec)
	}

	// Transit providers: a small pool of tier-1-ish ASNs.
	tier1 := []ASN{1299, 3356, 174, 3320, 2914, 6453}
	transitOf := func(a ASN) ASN {
		t := tier1[int(uint32(a))%len(tier1)]
		if t == a {
			t = tier1[(int(uint32(a))+1)%len(tier1)]
		}
		return t
	}

	// Owner announcements: nearly all allocations are announced by the
	// holder's primary AS; a few stay dark (unrouted address space).
	for _, a := range w.Registry.Allocations() {
		org := w.ByID[a.Org]
		if org == nil {
			continue
		}
		dark := rng.Float64() < 0.08 && org.Kind != KindISP && org.Kind != KindHoster
		if dark {
			continue
		}
		origin := org.PrimaryAS()
		rs.anns = append(rs.anns, announcement{prefix: a.Prefix, origin: origin})
		rs.transit[origin] = transitOf(origin)
	}
	for _, l := range w.Leases {
		rs.transit[l.Customer.PrimaryAS()] = transitOf(l.Customer.PrimaryAS())
	}

	// MOAS noise: a handful of routed leases gain a second origin
	// (multihoming look-alikes the extended algorithm discards).
	routed := w.RoutedLeases()
	for i := 0; i < len(routed)/25; i++ {
		l := routed[rng.Intn(len(routed))]
		other := w.Orgs[rng.Intn(len(w.Orgs))]
		if other != l.Customer {
			rs.moasLeases[l] = other.PrimaryAS()
		}
	}

	// Scrubbing episodes: roughly one active per ~150 days of window.
	scrubbers := []ASN{32787, 19905, 200020} // Prolexic/Neustar-style ASNs
	nEvents := w.Cfg.RoutingDays/150 + 1
	for i := 0; i < nEvents && len(rs.anns) > 0; i++ {
		victim := rs.anns[rng.Intn(len(rs.anns))]
		if victim.prefix.Bits() >= 24 {
			continue
		}
		off := netblock.Addr(rng.Int63n(1 << uint(24-victim.prefix.Bits())))
		child := netblock.MustPrefix(victim.prefix.Addr()+off<<8, 24)
		from := rng.Intn(w.Cfg.RoutingDays)
		sc := scrubbers[rng.Intn(len(scrubbers))]
		rs.scrubEvents = append(rs.scrubEvents, scrubEvent{
			prefix: child, scrubber: sc, fromDay: from, toDay: from + 3 + rng.Intn(8),
		})
		rs.transit[sc] = transitOf(sc)
	}

	// AS_SET aggregates: a few prefixes whose path ends in a set.
	for i := 0; i < 3 && i < len(rs.anns); i++ {
		base := rs.anns[rng.Intn(len(rs.anns))]
		children, err := base.prefix.Split(minInt(base.prefix.Bits()+2, 30))
		if err != nil || len(children) == 0 {
			continue
		}
		rs.asSetAggs = append(rs.asSetAggs, announcement{
			prefix: children[0],
			origin: base.origin,
			asSet:  []ASN{base.origin, ASN(10000 + rng.Intn(500))},
		})
	}
	return rs
}

// NumMonitors returns the total monitor count across collectors.
func (rs *RoutingSim) NumMonitors() int {
	n := 0
	for _, c := range rs.collectors {
		n += len(c.peers)
	}
	return n
}

// RoutedLeases returns the leases that announce their child prefix.
func (w *World) RoutedLeases() []*Lease {
	var out []*Lease
	for _, l := range w.Leases {
		if l.Routed {
			out = append(out, l)
		}
	}
	return out
}

// dayRNG returns the deterministic per-day random source used for the
// day's shared events (hijacks and their observer assignment).
func (rs *RoutingSim) dayRNG(day int) *rand.Rand {
	return rand.New(rand.NewSource(rs.w.Cfg.Seed*1_000_003 + int64(day)))
}

// visRNG returns the per-(day, collector) source used for per-monitor
// visibility sampling, so that SurveyAt and CollectorAt see identical
// views.
func (rs *RoutingSim) visRNG(day, collector int) *rand.Rand {
	return rand.New(rand.NewSource(rs.w.Cfg.Seed*7_368_787 + int64(day)*131 + int64(collector)))
}

// dayEvents computes the day's shared state: active announcements,
// hijacks, and which global monitor indexes observe each hijack.
func (rs *RoutingSim) dayEvents(day int) (anns, hijacks []announcement, hijackMonitors [][]int) {
	rng := rs.dayRNG(day)
	anns = rs.activeAnnouncements(day)
	hijacks = rs.hijacks(rng, day)
	total := rs.NumMonitors()
	hijackMonitors = make([][]int, len(hijacks))
	for i := range hijacks {
		m1 := rng.Intn(total)
		hijackMonitors[i] = []int{m1}
		if rng.Float64() < 0.5 {
			hijackMonitors[i] = append(hijackMonitors[i], (m1+1)%total)
		}
	}
	return anns, hijacks, hijackMonitors
}

// activeAnnouncements returns all (prefix, origin, asSet) announcements
// that exist on the day, before per-monitor visibility sampling.
func (rs *RoutingSim) activeAnnouncements(day int) []announcement {
	out := make([]announcement, 0, len(rs.anns)+len(rs.w.Leases)/2+8)
	out = append(out, rs.anns...)
	for _, l := range rs.w.Leases {
		if !l.AnnouncedOn(day) {
			continue
		}
		out = append(out, announcement{prefix: l.Child, origin: l.Customer.PrimaryAS()})
		if second, ok := rs.moasLeases[l]; ok {
			out = append(out, announcement{prefix: l.Child, origin: second})
		}
	}
	for _, ev := range rs.scrubEvents {
		if day >= ev.fromDay && day < ev.toDay {
			out = append(out, announcement{prefix: ev.prefix, origin: ev.scrubber})
		}
	}
	out = append(out, rs.asSetAggs...)
	return out
}

// ScrubbedPrefixesOn returns the prefixes announced by scrubbing services
// on the day — ground truth for the false positives §4's limitations
// paragraph concedes the algorithm cannot avoid.
func (rs *RoutingSim) ScrubbedPrefixesOn(day int) []netblock.Prefix {
	var out []netblock.Prefix
	for _, ev := range rs.scrubEvents {
		if day >= ev.fromDay && day < ev.toDay {
			out = append(out, ev.prefix)
		}
	}
	return out
}

// hijacks draws the day's short-lived more-specific hijacks; each is
// visible at only one or two monitors (locally spread, as §4 puts it).
// The expected count is the baseline HijackRate, or the rate of a
// hijack wave covering the day.
func (rs *RoutingSim) hijacks(rng *rand.Rand, day int) []announcement {
	n := poisson(rng, rs.w.Cfg.hijackRateOn(day))
	var out []announcement
	for i := 0; i < n && len(rs.anns) > 0; i++ {
		victim := rs.anns[rng.Intn(len(rs.anns))]
		if victim.prefix.Bits() >= 24 {
			continue
		}
		// A random /24 inside the victim block.
		off := netblock.Addr(rng.Int63n(1 << uint(24-victim.prefix.Bits())))
		child := netblock.MustPrefix(victim.prefix.Addr()+off<<8, 24)
		attacker := rs.w.Orgs[rng.Intn(len(rs.w.Orgs))].PrimaryAS()
		if attacker == victim.origin {
			continue
		}
		out = append(out, announcement{prefix: child, origin: attacker})
	}
	return out
}

// SurveyAt builds the day's origin survey across all monitors, applying
// the same sanitization the offline pipeline uses. Legitimate routes are
// seen by each monitor with ~97% probability; hijacks at only 1-2
// monitors.
//
// SurveyAt is a pure derivation: every random draw comes from RNGs
// seeded deterministically per (day, collector), and the receiver is not
// mutated. Concurrent calls for different days are therefore safe and
// order-independent — the per-date inference fan-out in core.Figure6
// relies on this contract.
func (rs *RoutingSim) SurveyAt(day int) *bgp.OriginSurvey {
	anns, hijacks, hijackMonitors := rs.dayEvents(day)
	survey := bgp.NewOriginSurvey()
	monIdx := 0
	for ci, spec := range rs.collectors {
		rng := rs.visRNG(day, ci)
		for p := range spec.peers {
			rib := rs.monitorRIB(rng, spec.peers[p].AS, monIdx, anns, hijacks, hijackMonitors)
			clean, _ := bgp.Sanitize(rib.Routes())
			survey.AddView(fmt.Sprintf("%s:%s", spec.name, spec.peers[p].IP), clean)
			monIdx++
		}
	}
	return survey
}

// monitorRIB builds one monitor's table for the day: each announcement is
// present with ~97% probability, hijacks only at their assigned monitors,
// and — as in a real per-peer RIB — at most one best route per prefix.
// For MOAS prefixes the preferred origin alternates by monitor, so the
// survey still observes both origins across the platform.
func (rs *RoutingSim) monitorRIB(rng *rand.Rand, peerAS ASN, monIdx int, anns, hijacks []announcement, hijackMonitors [][]int) *bgp.RIB {
	rib := bgp.NewRIB()
	for _, a := range anns {
		if rng.Float64() > 0.97 {
			continue // this monitor misses the route today
		}
		insertPreferring(rib, rs.routeFor(a, peerAS), monIdx)
	}
	for i, h := range hijacks {
		for _, m := range hijackMonitors[i] {
			if m == monIdx {
				insertPreferring(rib, rs.routeFor(h, peerAS), monIdx)
			}
		}
	}
	return rib
}

// insertPreferring resolves same-prefix conflicts deterministically: even
// monitors prefer the lower origin AS, odd monitors the higher one.
func insertPreferring(rib *bgp.RIB, r bgp.Route, monIdx int) {
	old, ok := rib.Get(r.Prefix)
	if !ok {
		rib.Insert(r)
		return
	}
	oldOrigin, ok1 := old.Path.OriginAS()
	newOrigin, ok2 := r.Path.OriginAS()
	if !ok1 || !ok2 {
		return // keep the existing route when origins are unusable
	}
	preferNew := (monIdx%2 == 0) == (newOrigin < oldOrigin)
	if preferNew {
		rib.Insert(r)
	}
}

func (rs *RoutingSim) routeFor(a announcement, peerAS ASN) bgp.Route {
	transit := rs.transit[a.origin]
	if transit == 0 {
		transit = 1299
	}
	path := bgp.NewPath(peerAS, transit, a.origin)
	if a.asSet != nil {
		path = path.AppendSet(a.asSet...)
	}
	return bgp.Route{
		Prefix:  a.prefix,
		Path:    path,
		Origin:  bgp.OriginIGP,
		NextHop: netblock.Addr(0xC6336401),
	}
}

// CollectorAt materializes collector idx's full state for the day — used
// to export MRT snapshots identical to what the survey path consumes.
func (rs *RoutingSim) CollectorAt(day, idx int) *bgp.Collector {
	anns, hijacks, hijackMonitors := rs.dayEvents(day)
	spec := rs.collectors[idx]
	c := bgp.NewCollector(spec.name, spec.id)
	// Global monitor index of this collector's first peer.
	base := 0
	for i := 0; i < idx; i++ {
		base += len(rs.collectors[i].peers)
	}
	rng := rs.visRNG(day, idx)
	for p, peer := range spec.peers {
		i := c.AddPeer(peer)
		rib := rs.monitorRIB(rng, peer.AS, base+p, anns, hijacks, hijackMonitors)
		*c.PeerRIB(i) = *rib
	}
	return c
}

// NumCollectors returns the collector count.
func (rs *RoutingSim) NumCollectors() int { return len(rs.collectors) }

// TrueDelegationsOn returns the ground-truth set of leased child prefixes
// whose delegation is in principle observable in BGP on the day (lease
// active and routed, provider and customer in different organizations).
func (rs *RoutingSim) TrueDelegationsOn(day int) map[netblock.Prefix]ASN {
	out := make(map[netblock.Prefix]ASN)
	for _, l := range rs.w.Leases {
		if l.AnnouncedOn(day) {
			out[l.Child] = l.Customer.PrimaryAS()
		}
	}
	return out
}
