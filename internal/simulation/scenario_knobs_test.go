package simulation

import (
	"fmt"
	"testing"
	"time"

	"ipv4market/internal/netblock"
)

func knobTestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumLIRs = 10
	cfg.RoutingDays = 30
	return cfg
}

func mustBuild(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDayWindowContains(t *testing.T) {
	w := DayWindow{StartDay: 5, EndDay: 10}
	for day, want := range map[int]bool{4: false, 5: true, 9: true, 10: false} {
		if got := w.Contains(day); got != want {
			t.Errorf("Contains(%d) = %v, want %v", day, got, want)
		}
	}
}

func TestPriceShockFactor(t *testing.T) {
	cfg := knobTestConfig()
	cfg.PriceShocks = []PriceShock{
		{Start: time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC), End: time.Date(2019, 7, 1, 0, 0, 0, 0, time.UTC), Factor: 1.5},
		{Start: time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC), End: time.Date(2019, 8, 1, 0, 0, 0, 0, time.UTC), Factor: 2},
	}
	cases := []struct {
		t    time.Time
		want float64
	}{
		{time.Date(2018, 12, 31, 0, 0, 0, 0, time.UTC), 1},
		{time.Date(2019, 2, 1, 0, 0, 0, 0, time.UTC), 1.5},
		{time.Date(2019, 6, 15, 0, 0, 0, 0, time.UTC), 3}, // overlap compounds
		{time.Date(2019, 7, 15, 0, 0, 0, 0, time.UTC), 2},
		{time.Date(2019, 8, 1, 0, 0, 0, 0, time.UTC), 1}, // end is exclusive
	}
	for _, tc := range cases {
		if got := cfg.priceShockFactor(tc.t); got != tc.want {
			t.Errorf("priceShockFactor(%s) = %g, want %g", tc.t.Format("2006-01-02"), got, tc.want)
		}
	}
}

func TestHijackRateOn(t *testing.T) {
	cfg := knobTestConfig()
	cfg.HijackRate = 0.8
	cfg.HijackWaves = []HijackWave{
		{Window: DayWindow{StartDay: 10, EndDay: 20}, Rate: 5},
		{Window: DayWindow{StartDay: 15, EndDay: 25}, Rate: 9},
	}
	cases := map[int]float64{5: 0.8, 10: 5, 17: 9 /* last matching wave wins */, 24: 9, 25: 0.8}
	for day, want := range cases {
		if got := cfg.hijackRateOn(day); got != want {
			t.Errorf("hijackRateOn(%d) = %g, want %g", day, got, want)
		}
	}
}

func TestStormOn(t *testing.T) {
	cfg := knobTestConfig()
	cfg.RPKIChurnStorms = []RPKIChurnStorm{
		{Window: DayWindow{StartDay: 3, EndDay: 8}, DropProb: 0.5},
	}
	if _, on := cfg.stormOn(2); on {
		t.Error("storm active before its window")
	}
	if storm, on := cfg.stormOn(5); !on || storm.DropProb != 0.5 {
		t.Errorf("stormOn(5) = %+v, %v; want the configured storm", storm, on)
	}
	if _, on := cfg.stormOn(8); on {
		t.Error("storm active at its exclusive end day")
	}
}

// TestKnobsOffIsByteIdenticalWorld is the central determinism guarantee:
// a config with zero scenario knobs generates exactly the world the
// pre-knob generator did — empty knob slices must not consume or
// reshuffle any RNG stream.
func TestKnobsOffIsByteIdenticalWorld(t *testing.T) {
	a := mustBuild(t, knobTestConfig())
	cfgB := knobTestConfig()
	cfgB.PriceShocks = []PriceShock{}
	cfgB.RPKIChurnStorms = []RPKIChurnStorm{}
	cfgB.HijackWaves = []HijackWave{}
	b := mustBuild(t, cfgB)

	if len(a.Prices) != len(b.Prices) {
		t.Fatalf("price record counts differ: %d vs %d", len(a.Prices), len(b.Prices))
	}
	for i := range a.Prices {
		if a.Prices[i] != b.Prices[i] {
			t.Fatalf("price record %d differs: %+v vs %+v", i, a.Prices[i], b.Prices[i])
		}
	}
	if len(a.Leases) != len(b.Leases) {
		t.Fatalf("lease counts differ: %d vs %d", len(a.Leases), len(b.Leases))
	}
}

// TestPriceShockRaisesWindowPrices compares the same seed with and
// without a shock: deals inside the window get dearer by the factor,
// deals outside it are untouched (same RNG draws either way).
func TestPriceShockRaisesWindowPrices(t *testing.T) {
	base := mustBuild(t, knobTestConfig())

	cfg := knobTestConfig()
	start := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.PriceShocks = []PriceShock{{Start: start, End: end, Factor: 2}}
	shocked := mustBuild(t, cfg)

	if len(base.Prices) != len(shocked.Prices) {
		t.Fatalf("shock changed the price record count: %d vs %d", len(base.Prices), len(shocked.Prices))
	}
	inWindow, outside := 0, 0
	for i := range base.Prices {
		bp, sp := base.Prices[i], shocked.Prices[i]
		if !bp.Date.Equal(sp.Date) || bp.Region != sp.Region || bp.Bits != sp.Bits {
			t.Fatalf("shock changed record %d identity: %+v vs %+v", i, bp, sp)
		}
		ratio := sp.PricePerAddr / bp.PricePerAddr
		if !bp.Date.Before(start) && bp.Date.Before(end) {
			inWindow++
			if ratio < 1.99 || ratio > 2.01 {
				t.Errorf("record %d in window: price ratio %g, want 2", i, ratio)
			}
		} else {
			outside++
			if ratio < 0.99 || ratio > 1.01 {
				t.Errorf("record %d outside window: price ratio %g, want 1", i, ratio)
			}
		}
	}
	if inWindow == 0 || outside == 0 {
		t.Fatalf("degenerate test world: %d priced deals in window, %d outside", inWindow, outside)
	}
}

// TestHijackWaveRaisesHijackCount counts hijack announcements per day
// with and without a wave covering the whole window.
func TestHijackWaveRaisesHijackCount(t *testing.T) {
	countHijacks := func(cfg Config) int {
		rs := NewRoutingSim(mustBuild(t, cfg))
		n := 0
		for day := 0; day < cfg.RoutingDays; day++ {
			_, hijacks, _ := rs.dayEvents(day)
			n += len(hijacks)
		}
		return n
	}
	base := countHijacks(knobTestConfig())
	cfg := knobTestConfig()
	cfg.HijackWaves = []HijackWave{{Window: DayWindow{StartDay: 0, EndDay: cfg.RoutingDays}, Rate: 10}}
	waved := countHijacks(cfg)
	if waved <= base {
		t.Errorf("hijack wave: %d events, want more than the %d baseline", waved, base)
	}
}

// TestChurnStormDegradesPresence: under a storm the RPKI history sees
// fewer observations in the storm window (higher drop probability) —
// and the history before the storm is identical to the baseline.
func TestChurnStormDegradesPresence(t *testing.T) {
	presence := func(cfg Config) []int {
		w := mustBuild(t, cfg)
		return w.BuildRPKIHistory(0.8, DefaultROADropProb).PresenceCount()
	}
	base := presence(knobTestConfig())

	cfg := knobTestConfig()
	cfg.RPKIChurnStorms = []RPKIChurnStorm{{Window: DayWindow{StartDay: 10, EndDay: 20}, DropProb: 0.9}}
	stormed := presence(cfg)

	if len(base) != len(stormed) {
		t.Fatalf("history lengths differ: %d vs %d", len(base), len(stormed))
	}
	var inBase, inStorm int
	for day := 10; day < 20; day++ {
		inBase += base[day]
		inStorm += stormed[day]
	}
	if inStorm >= inBase {
		t.Errorf("storm window presence %d, want below baseline %d", inStorm, inBase)
	}
	for day := 0; day < 10; day++ {
		if base[day] != stormed[day] {
			t.Errorf("day %d before the storm: presence %d vs %d, want identical", day, stormed[day], base[day])
		}
	}
}

// TestStaleROAsOutliveLeases: a storm with a stale-ROA fraction keeps
// some delegations visible after their lease end, so total presence
// exceeds the same storm with no stale fraction.
func TestStaleROAsOutliveLeases(t *testing.T) {
	presence := func(stale float64) int {
		cfg := knobTestConfig()
		cfg.RPKIChurnStorms = []RPKIChurnStorm{{
			Window: DayWindow{StartDay: 0, EndDay: cfg.RoutingDays}, DropProb: DefaultROADropProb, StaleROAFraction: stale,
		}}
		w := mustBuild(t, cfg)
		total := 0
		for _, n := range w.BuildRPKIHistory(0.8, DefaultROADropProb).PresenceCount() {
			total += n
		}
		return total
	}
	without, with := presence(0), presence(1)
	if with <= without {
		t.Errorf("stale-ROA storm presence %d, want above the %d observed without staleness", with, without)
	}
}

func TestActivityFraction(t *testing.T) {
	w := mustBuild(t, knobTestConfig())
	p1 := netblock.MustParsePrefix("10.0.0.0/16")
	p2 := netblock.MustParsePrefix("10.1.0.0/16")

	f1 := w.ActivityFraction(p1)
	if f1 != w.ActivityFraction(p1) {
		t.Error("ActivityFraction is not deterministic for a fixed prefix")
	}
	if f1 == w.ActivityFraction(p2) {
		t.Error("distinct prefixes hash to identical activity; expected spread")
	}
	if f1 < 0.02 || f1 > 0.98 {
		t.Errorf("activity %g outside the clamp [0.02, 0.98]", f1)
	}

	// The configured mean shifts the distribution.
	low := knobTestConfig()
	low.ActivityMean, low.ActivityJitter = 0.1, 0.05
	high := knobTestConfig()
	high.ActivityMean, high.ActivityJitter = 0.9, 0.05
	wLow, wHigh := mustBuild(t, low), mustBuild(t, high)
	var sumLow, sumHigh float64
	for i := 0; i < 64; i++ {
		p := netblock.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i))
		sumLow += wLow.ActivityFraction(p)
		sumHigh += wHigh.ActivityFraction(p)
	}
	if sumLow >= sumHigh {
		t.Errorf("mean knob had no effect: low-mean sum %g >= high-mean sum %g", sumLow, sumHigh)
	}
}
