package simulation

import (
	"fmt"
	"math/rand"

	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
	"ipv4market/internal/whois"
)

// createLeases generates the two leasing populations of §4:
//
//   - administrative leases: sub-allocations and assignments registered in
//     WHOIS but (mostly) never visible as more-specific BGP announcements
//     — ISPs reserving space for customers, hosting-bundled leases inside
//     the provider AS, and unannounced reservations;
//   - routed leases: the delegatee announces the child prefix with its own
//     AS, a fraction of which (RoutedLeaseWhoisProb) is also registered.
//
// The population sizes in DefaultConfig are calibrated so the RDAP view
// holds vastly more delegated addresses than the BGP view (the paper:
// BGP covers ~1.85% of RDAP-delegated IPs) while RDAP covers roughly two
// thirds of BGP-delegated IPs.
func (w *World) createLeases() {
	providers := w.leaseProviders()
	if len(providers) == 0 {
		return
	}
	// Administrative leases: medium-sized blocks, heavy in addresses.
	for i := 0; i < w.Cfg.AdministrativeLeases; i++ {
		bits := w.adminLeaseBits()
		provider := w.pickProvider(providers, bits)
		if provider == nil {
			continue
		}
		lease := w.carveLease(provider, bits, w.rng.Float64() < 0.45)
		if lease == nil {
			continue
		}
		lease.InWhois = true
		lease.Routed = false
		w.Leases = append(w.Leases, lease)
	}
	// Routed leases: small blocks announced by the customer's AS. The
	// first ~92% predate the routing window (so the delegation count only
	// grows ~7% over it, as in Figure 6) and later arrivals skew smaller
	// (the /24 share rises while /20 falls).
	for i := 0; i < w.Cfg.RoutedLeases; i++ {
		frac := float64(i) / float64(w.Cfg.RoutedLeases)
		bits := w.routedLeaseBits(frac)
		provider := w.pickProvider(providers, bits)
		if provider == nil {
			continue
		}
		lease := w.carveLease(provider, bits, frac >= 0.85)
		if lease == nil {
			continue
		}
		lease.Routed = true
		lease.InWhois = w.rng.Float64() < w.Cfg.RoutedLeaseWhoisProb
		if w.rng.Float64() < w.Cfg.OnOffProb {
			lease.OnOff = true
			lease.onPeriod = 5 + w.rng.Intn(25)
			// Most off-periods fit inside the 10-day consistency window;
			// some exceed it (true gaps the rule must not bridge).
			if w.rng.Float64() < 0.8 {
				lease.offPeriod = 1 + w.rng.Intn(8)
			} else {
				lease.offPeriod = 12 + w.rng.Intn(20)
			}
			lease.phase = w.rng.Intn(lease.onPeriod + lease.offPeriod)
		}
		w.Leases = append(w.Leases, lease)
	}
}

// pickProvider chooses a provider that can still carve a strictly-covered
// block of the requested size: a few random draws, then a linear scan so
// capacity is exhausted before leases are dropped.
func (w *World) pickProvider(providers []*Org, bits int) *Org {
	fits := func(o *Org) bool {
		for _, p := range o.sellable {
			if p.Bits() < bits {
				return true
			}
		}
		return false
	}
	for i := 0; i < 6; i++ {
		o := providers[w.rng.Intn(len(providers))]
		if fits(o) {
			return o
		}
	}
	for _, o := range providers {
		if fits(o) {
			return o
		}
	}
	return nil
}

// leaseProviders returns orgs that lease out space: ISPs and hosters with
// room to spare.
func (w *World) leaseProviders() []*Org {
	var out []*Org
	for _, o := range w.Orgs {
		if (o.Kind == KindISP || o.Kind == KindHoster) && o.hasSellable() {
			out = append(out, o)
		}
	}
	return out
}

func (w *World) adminLeaseBits() int {
	r := w.rng.Float64()
	switch {
	case r < 0.05:
		return 17
	case r < 0.20:
		return 18
	case r < 0.40:
		return 19
	case r < 0.65:
		return 20
	case r < 0.85:
		return 21
	default:
		return 22
	}
}

// routedLeaseBits skews later leases (frac → 1) toward /24: the paper
// observes the /24 share growing from ~66% to ~72% while /20 falls from
// ~7% to ~3%.
func (w *World) routedLeaseBits(frac float64) int {
	p20 := 0.09 - 0.07*frac
	p21 := 0.05
	p22 := 0.08
	p23 := 0.14
	r := w.rng.Float64()
	switch {
	case r < p20:
		return 20
	case r < p20+p21:
		return 21
	case r < p20+p21+p22:
		return 22
	case r < p20+p21+p22+p23:
		return 23
	default:
		return 24
	}
}

// carveLease takes a child block out of the provider's space and pairs it
// with a customer org. inWindow selects whether the lease arrives during
// the routing window or predates it.
func (w *World) carveLease(provider *Org, bits int, inWindow bool) *Lease {
	child, ok := takeSellableStrict(provider, bits)
	if !ok {
		return nil
	}
	// Find the provider's covering allocation for the parent prefix.
	parentAlloc, ok := w.Registry.HolderOf(child)
	if !ok {
		// Should not happen: sellable space is always allocated.
		provider.addSellable(child)
		return nil
	}
	customer := w.pickCustomer(provider)
	if customer == nil {
		provider.addSellable(child)
		return nil
	}
	// Pre-window leases run long (nearly all survive the window); window
	// arrivals produce the slow net growth. Large pre-window blocks (/21
	// and shorter masks) terminate earlier — §6's long-term customers buy
	// their own space and end the lease — which shrinks the /20 share
	// over the window while the /24 share grows.
	var startDay, duration int
	if inWindow {
		startDay = w.rng.Intn(w.Cfg.RoutingDays)
		duration = 300 + w.rng.Intn(2500)
	} else {
		startDay = -w.rng.Intn(700) - 1
		if bits <= 21 {
			duration = 700 + w.rng.Intn(1000)
		} else {
			duration = 1500 + w.rng.Intn(3000)
		}
	}
	if customer.Kind == KindSpammer {
		duration = 10 + w.rng.Intn(60) // §6: spammers lease short-lived
	}
	return &Lease{
		Provider: provider,
		Customer: customer,
		Parent:   parentAlloc.Prefix,
		Child:    child,
		StartDay: startDay,
		EndDay:   startDay + duration,
	}
}

func (w *World) pickCustomer(provider *Org) *Org {
	for attempts := 0; attempts < 10; attempts++ {
		o := w.Orgs[w.rng.Intn(len(w.Orgs))]
		if o == provider {
			continue
		}
		switch o.Kind {
		case KindYoungBusiness, KindVPNProvider, KindSpammer, KindLongTermCustomer, KindHoster:
			return o
		}
	}
	return nil
}

// BuildWhoisDB materializes the WHOIS database at the end of the window:
// every live allocation becomes an ALLOCATED PA object, whois-registered
// leases become SUB-ALLOCATED PA (medium blocks to ISPs/hosters) or
// ASSIGNED PA objects, and each LIR carries many sub-/24 customer
// assignments (the paper: 91.4% of ASSIGNED PA entries are < /24).
//
// BuildWhoisDB is a pure derivation: it draws from its own seed-derived
// RNG (never the world's shared stream), so calling it any number of
// times — concurrently or not — yields identical databases and leaves
// the World untouched. The returned DB is frozen and therefore safe for
// concurrent reads.
func (w *World) BuildWhoisDB() *whois.DB {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x3b015)) // private stream: keeps this a read-only derivation
	db := whois.NewDB()
	for _, a := range w.Registry.Allocations() {
		org := w.ByID[a.Org]
		if org == nil {
			continue
		}
		status := whois.StatusAllocatedPA
		if a.Status == registry.StatusLegacy {
			status = whois.StatusLegacy
		}
		db.Add(&whois.Inetnum{
			First:   a.Prefix.First(),
			Last:    a.Prefix.Last(),
			Netname: fmt.Sprintf("NET-%s", a.Prefix.Addr()),
			Country: a.Country,
			Org:     string(a.Org),
			AdminC:  adminHandle(a.Org),
			Status:  status,
			Created: a.Date,
		})
	}
	for _, l := range w.Leases {
		if !l.InWhois {
			continue
		}
		status := whois.StatusAssignedPA
		if l.Customer.Kind == KindISP || l.Customer.Kind == KindHoster {
			status = whois.StatusSubAllocatedPA
		}
		db.Add(&whois.Inetnum{
			First:   l.Child.First(),
			Last:    l.Child.Last(),
			Netname: fmt.Sprintf("LEASE-%s", l.Child.Addr()),
			Country: l.Customer.Country,
			Org:     string(l.Customer.ID),
			AdminC:  adminHandle(l.Customer.ID),
			Status:  status,
			Created: w.Cfg.RoutingStart.AddDate(0, 0, maxInt(l.StartDay, 0)),
		})
	}
	// Sub-/24 end-host assignments inside each LIR's space. These carry
	// the customer's own handle but fall below the paper's query
	// threshold, so the RDAP survey skips them.
	custSeq := 0
	for _, org := range w.Orgs {
		if org.Kind != KindISP && org.Kind != KindHoster {
			continue
		}
		space := org.sellable
		if len(space) == 0 {
			continue
		}
		for i := 0; i < w.Cfg.SmallAssignmentsPerLIR; i++ {
			base := space[rng.Intn(len(space))]
			bits := 25 + rng.Intn(5) // /25../29
			if bits <= base.Bits() {
				continue
			}
			// Pick a random aligned sub-block without materializing the
			// full split (a /14 holds 2^15 /29s).
			nSubs := uint64(1) << uint(bits-base.Bits())
			step := netblock.Addr(1) << (32 - uint(bits))
			off := netblock.Addr(rng.Int63n(int64(nSubs)))
			p := netblock.MustPrefix(base.Addr()+off*step, bits)
			db.Add(&whois.Inetnum{
				First:   p.First(),
				Last:    p.Last(),
				Netname: fmt.Sprintf("CUST-%d", custSeq),
				Country: org.Country,
				Org:     fmt.Sprintf("ORG-CUST-%d", custSeq),
				AdminC:  fmt.Sprintf("ADM-CUST-%d", custSeq),
				Status:  whois.StatusAssignedPA,
			})
			custSeq++
		}
	}
	db.Freeze()
	return db
}

func adminHandle(org registry.OrgID) string { return "ADM-" + string(org) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
