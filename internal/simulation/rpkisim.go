package simulation

import (
	"math/rand"

	"ipv4market/internal/rpki"
)

// RPKI simulation: the appendix infers delegations from ROA pairs and
// calibrates consistency rules on their day-to-day visibility. Observed
// behavior in the paper: the 10-day/N=0 rule fails ~5% of the time; fail
// rates never reach 30% even at M=100; and ~90% of delegations seen 90
// days apart are visible for all but at most 3 days in between.
//
// A single per-day drop probability cannot produce that saturation (a 5%
// fail rate at M=10 would compound to >40% at M=100), so drops follow a
// mixture: most delegations are rock-solid, while a flaky minority
// (FlakyROAFraction) drops days independently with DefaultROADropProb.
// The M→∞ fail rate then saturates at the flaky fraction, below 30%.

// DefaultROADropProb is the flaky population's per-day probability of
// being absent from the validated ROA set (publication glitches, expired
// certificates, validator hiccups).
const DefaultROADropProb = 0.0216

// FlakyROAFraction is the share of delegations whose ROAs flap; solid
// delegations drop days with solidROADropProb.
const FlakyROAFraction = 0.28

const solidROADropProb = 0.0004

// BuildRPKIHistory generates the daily ROA-delegation visibility history
// over the routing window. adoptionProb is the fraction of leases whose
// parties deploy RPKI (the paper sees an order of magnitude fewer
// RPKI delegations than BGP delegations).
func (w *World) BuildRPKIHistory(adoptionProb, dropProb float64) *rpki.History {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x4b1d))
	h := rpki.NewHistory(w.Cfg.RoutingStart, w.Cfg.RoutingDays)
	for _, l := range w.Leases {
		if !l.Routed || rng.Float64() > adoptionProb {
			continue
		}
		d := rpki.Delegation{
			Parent: l.Parent,
			Child:  l.Child,
			From:   l.Provider.PrimaryAS(),
			To:     l.Customer.PrimaryAS(),
		}
		p := solidROADropProb
		if rng.Float64() < FlakyROAFraction {
			p = dropProb
		}
		lo := maxInt(l.StartDay, 0)
		hi := minInt(l.EndDay, w.Cfg.RoutingDays)
		for day := lo; day < hi; day++ {
			if rng.Float64() < p {
				continue // ROA temporarily absent from the validated set
			}
			h.Observe(day, d)
		}
	}
	return h
}

// BuildRPKISnapshot materializes the validated ROA set for one day:
// owners authorize their allocations, and RPKI-deploying lease customers
// authorize their leased children. The same adoption draw as
// BuildRPKIHistory is used so the two views agree.
func (w *World) BuildRPKISnapshot(day int, adoptionProb float64) *rpki.Snapshot {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x4b1d))
	snap := rpki.NewSnapshot(w.Cfg.RoutingStart.AddDate(0, 0, day))
	for _, a := range w.Registry.Allocations() {
		org := w.ByID[a.Org]
		if org == nil {
			continue
		}
		snap.Add(rpki.ROA{Prefix: a.Prefix, MaxLength: 24, ASN: org.PrimaryAS()})
	}
	for _, l := range w.Leases {
		if !l.Routed || rng.Float64() > adoptionProb {
			continue
		}
		if !l.ActiveOn(day) {
			continue
		}
		snap.Add(rpki.ROA{Prefix: l.Child, MaxLength: l.Child.Bits(), ASN: l.Customer.PrimaryAS()})
	}
	return snap
}
