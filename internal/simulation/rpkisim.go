package simulation

import (
	"math/rand"

	"ipv4market/internal/rpki"
)

// RPKI simulation: the appendix infers delegations from ROA pairs and
// calibrates consistency rules on their day-to-day visibility. Observed
// behavior in the paper: the 10-day/N=0 rule fails ~5% of the time; fail
// rates never reach 30% even at M=100; and ~90% of delegations seen 90
// days apart are visible for all but at most 3 days in between.
//
// A single per-day drop probability cannot produce that saturation (a 5%
// fail rate at M=10 would compound to >40% at M=100), so drops follow a
// mixture: most delegations are rock-solid, while a flaky minority
// (FlakyROAFraction) drops days independently with DefaultROADropProb.
// The M→∞ fail rate then saturates at the flaky fraction, below 30%.

// DefaultROADropProb is the flaky population's per-day probability of
// being absent from the validated ROA set (publication glitches, expired
// certificates, validator hiccups).
const DefaultROADropProb = 0.0216

// FlakyROAFraction is the share of delegations whose ROAs flap; solid
// delegations drop days with solidROADropProb.
const FlakyROAFraction = 0.28

const solidROADropProb = 0.0004

// BuildRPKIHistory generates the daily ROA-delegation visibility history
// over the routing window. adoptionProb is the fraction of leases whose
// parties deploy RPKI (the paper sees an order of magnitude fewer
// RPKI delegations than BGP delegations).
//
// Configured RPKIChurnStorms degrade the history inside their windows:
// the per-day drop probability rises to at least the storm's DropProb,
// and a StaleROAFraction share of delegations whose lease has ended
// before a storm closes keep publishing ROAs until the storm passes
// (stale authorizations that no longer match any active lease). Storm
// effects draw from side RNG streams so a world without storms is
// byte-for-byte identical to the pre-knob generator.
func (w *World) BuildRPKIHistory(adoptionProb, dropProb float64) *rpki.History {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x4b1d))
	h := rpki.NewHistory(w.Cfg.RoutingStart, w.Cfg.RoutingDays)
	for _, l := range w.Leases {
		if !l.Routed || rng.Float64() > adoptionProb {
			continue
		}
		d := rpki.Delegation{
			Parent: l.Parent,
			Child:  l.Child,
			From:   l.Provider.PrimaryAS(),
			To:     l.Customer.PrimaryAS(),
		}
		p := solidROADropProb
		if rng.Float64() < FlakyROAFraction {
			p = dropProb
		}
		lo := maxInt(l.StartDay, 0)
		hi := minInt(l.EndDay, w.Cfg.RoutingDays)
		for day := lo; day < hi; day++ {
			drop := p
			if storm, ok := w.Cfg.stormOn(day); ok && storm.DropProb > drop {
				drop = storm.DropProb
			}
			if rng.Float64() < drop {
				continue // ROA temporarily absent from the validated set
			}
			h.Observe(day, d)
		}
	}
	w.observeStaleROAs(h, adoptionProb)
	return h
}

// observeStaleROAs runs the stale-authorization pass: for every churn
// storm with a StaleROAFraction, delegations with no matching routed
// announcement surface in the validated set while the storm lasts —
// the lease ended before the storm closes, or it was a registry-only
// lease whose authorization was provisioned but never announced. Both
// model operators and validator caches serving authorizations nobody
// revokes during the churn. Each (lease, storm) pair draws from its
// own deterministic side stream, keeping the main generator's draw
// sequence untouched: with no storms configured this pass is a no-op.
func (w *World) observeStaleROAs(h *rpki.History, adoptionProb float64) {
	for si, storm := range w.Cfg.RPKIChurnStorms {
		if storm.StaleROAFraction <= 0 {
			continue
		}
		hi := minInt(storm.Window.EndDay, w.Cfg.RoutingDays)
		for li, l := range w.Leases {
			// Live routed leases are the main loop's job; everything
			// else is a stale candidate.
			ended := l.EndDay < storm.Window.EndDay
			if l.Routed && !ended {
				continue
			}
			srng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x57a1e ^ int64(li)*1_000_003 ^ int64(si)*2_147_483_659))
			// The lease's parties must have deployed RPKI at all, and
			// then failed to clean up the authorization.
			if srng.Float64() > adoptionProb || srng.Float64() >= storm.StaleROAFraction {
				continue
			}
			d := rpki.Delegation{
				Parent: l.Parent,
				Child:  l.Child,
				From:   l.Provider.PrimaryAS(),
				To:     l.Customer.PrimaryAS(),
			}
			lo := maxInt(storm.Window.StartDay, 0)
			if l.Routed {
				// A routed lease was live in the validated set until it
				// ended; staleness begins at its end.
				lo = maxInt(lo, l.EndDay)
			}
			for day := lo; day < hi; day++ {
				if srng.Float64() < storm.DropProb {
					continue
				}
				h.Observe(day, d)
			}
		}
	}
}

// BuildRPKISnapshot materializes the validated ROA set for one day:
// owners authorize their allocations, and RPKI-deploying lease customers
// authorize their leased children. The same adoption draw as
// BuildRPKIHistory is used so the two views agree.
func (w *World) BuildRPKISnapshot(day int, adoptionProb float64) *rpki.Snapshot {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x4b1d))
	snap := rpki.NewSnapshot(w.Cfg.RoutingStart.AddDate(0, 0, day))
	for _, a := range w.Registry.Allocations() {
		org := w.ByID[a.Org]
		if org == nil {
			continue
		}
		snap.Add(rpki.ROA{Prefix: a.Prefix, MaxLength: 24, ASN: org.PrimaryAS()})
	}
	for _, l := range w.Leases {
		if !l.Routed || rng.Float64() > adoptionProb {
			continue
		}
		if !l.ActiveOn(day) {
			continue
		}
		snap.Add(rpki.ROA{Prefix: l.Child, MaxLength: l.Child.Bits(), ASN: l.Customer.PrimaryAS()})
	}
	return snap
}
