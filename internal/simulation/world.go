package simulation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ipv4market/internal/asorg"
	"ipv4market/internal/market"
	"ipv4market/internal/netblock"
	"ipv4market/internal/registry"
)

// ASN is an autonomous system number.
type ASN = asorg.ASN

// OrgKind classifies organizations by the market behavior §6 describes.
type OrgKind int

// Organization kinds.
const (
	KindISP OrgKind = iota // buys > /20, leases parts to customers
	KindHoster
	KindLongTermCustomer // buys < /20, terminates leases
	KindYoungBusiness    // leases small, grows, eventually buys
	KindVPNProvider      // leases continuously, rotates IPs
	KindSpammer          // short-lived leases of varying size
)

// String names the kind.
func (k OrgKind) String() string {
	switch k {
	case KindISP:
		return "isp"
	case KindHoster:
		return "hoster"
	case KindLongTermCustomer:
		return "long-term-customer"
	case KindYoungBusiness:
		return "young-business"
	case KindVPNProvider:
		return "vpn-provider"
	case KindSpammer:
		return "spammer"
	}
	return fmt.Sprintf("OrgKind(%d)", int(k))
}

// Org is one organization in the world.
type Org struct {
	ID      registry.OrgID
	Kind    OrgKind
	RIR     registry.RIR
	Country string
	ASNs    []ASN
	// sellable tracks address space the org may still sell or lease out,
	// as chunks that never span allocation boundaries (a transfer must
	// stay within one registry allocation).
	sellable []netblock.Prefix
}

func (o *Org) addSellable(p netblock.Prefix) { o.sellable = append(o.sellable, p) }

func (o *Org) hasSellable() bool { return len(o.sellable) > 0 }

// PrimaryAS returns the org's first ASN.
func (o *Org) PrimaryAS() ASN { return o.ASNs[0] }

// World is the generated ground truth.
type World struct {
	Cfg       Config
	Registry  *registry.Registry
	Orgs      []*Org
	ByID      map[registry.OrgID]*Org
	ByAS      map[ASN]*Org
	OrgSeries *asorg.Series
	Prices    []market.PriceRecord
	Leases    []*Lease

	rng *rand.Rand
}

// Lease is one ground-truth leasing agreement.
type Lease struct {
	Provider *Org
	Customer *Org
	Parent   netblock.Prefix // the provider's covering block
	Child    netblock.Prefix
	// StartDay/EndDay are routing-window day indexes; StartDay may be
	// negative (lease predates the window) and EndDay may exceed the
	// window length.
	StartDay, EndDay int
	InWhois          bool
	Routed           bool // child announced in BGP by the customer AS
	OnOff            bool
	onPeriod         int
	offPeriod        int
	phase            int
}

// ActiveOn reports whether the lease exists on the routing-window day.
func (l *Lease) ActiveOn(day int) bool { return day >= l.StartDay && day < l.EndDay }

// AnnouncedOn reports whether the leased child prefix is visible in BGP on
// the day (active, routed and in the "on" part of its pattern).
func (l *Lease) AnnouncedOn(day int) bool {
	if !l.ActiveOn(day) || !l.Routed {
		return false
	}
	if !l.OnOff {
		return true
	}
	cycle := l.onPeriod + l.offPeriod
	pos := (day + l.phase) % cycle
	if pos < 0 {
		pos += cycle
	}
	return pos < l.onPeriod
}

// Build generates the world from the configuration.
func Build(cfg Config) (*World, error) {
	w := &World{
		Cfg:      cfg,
		Registry: registry.NewRegistry(),
		ByID:     make(map[registry.OrgID]*Org),
		ByAS:     make(map[ASN]*Org),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	for rir, seeds := range poolSeeds {
		for _, s := range seeds {
			w.Registry.SeedPool(rir, netblock.MustParsePrefix(s))
		}
	}
	w.createOrgs()
	if err := w.createLegacyHolders(); err != nil {
		return nil, err
	}
	w.buildOrgSeries()
	if err := w.allocateHistory(); err != nil {
		return nil, err
	}
	if err := w.runTransferMarket(); err != nil {
		return nil, err
	}
	w.createLeases()
	return w, nil
}

var kindWeights = []struct {
	kind OrgKind
	w    int
}{
	{KindISP, 25}, {KindHoster, 15}, {KindLongTermCustomer, 25},
	{KindYoungBusiness, 20}, {KindVPNProvider, 10}, {KindSpammer, 5},
}

func (w *World) pickKind() OrgKind {
	total := 0
	for _, kw := range kindWeights {
		total += kw.w
	}
	n := w.rng.Intn(total)
	for _, kw := range kindWeights {
		if n < kw.w {
			return kw.kind
		}
		n -= kw.w
	}
	return KindISP
}

func (w *World) createOrgs() {
	nextAS := ASN(10000)
	for _, rir := range registry.AllRIRs() {
		n := lirShare(rir, w.Cfg.NumLIRs)
		for i := 0; i < n; i++ {
			org := &Org{
				ID:      registry.OrgID(fmt.Sprintf("ORG-%s-%03d", rir.StatsName(), i)),
				Kind:    w.pickKind(),
				RIR:     rir,
				Country: countryFor(rir, i),
			}
			// ISPs and hosters often run several ASes of one organization
			// (the same-org filter must remove their internal delegations).
			nASes := 1
			if org.Kind == KindISP || org.Kind == KindHoster {
				nASes = 1 + w.rng.Intn(3)
			}
			for a := 0; a < nASes; a++ {
				org.ASNs = append(org.ASNs, nextAS)
				w.ByAS[nextAS] = org
				nextAS++
			}
			w.Orgs = append(w.Orgs, org)
			w.ByID[org.ID] = org
			// Members join spread over history; everyone is a member well
			// before the routing window.
			joined := w.Cfg.HistoryStart.AddDate(0, w.rng.Intn(96), 0)
			w.Registry.RegisterLIR(org.ID, rir, org.Country, joined)
		}
	}
}

// buildOrgSeries emits quarterly as2org snapshots over the routing window.
func (w *World) buildOrgSeries() {
	var snaps []*asorg.Snapshot
	for t := w.Cfg.RoutingStart.AddDate(0, -3, 0); t.Before(w.Cfg.MarketEnd); t = t.AddDate(0, 3, 0) {
		snap := asorg.NewSnapshot(t)
		for _, org := range w.Orgs {
			snap.AddOrg(asorg.Org{ID: string(org.ID), Name: string(org.ID), Country: org.Country, Source: org.RIR.StatsName()})
			for _, a := range org.ASNs {
				snap.AddAS(a, string(org.ID))
			}
		}
		snaps = append(snaps, snap)
	}
	w.OrgSeries = asorg.NewSeries(snaps...)
}

// legacySeeds maps each major region to address space assigned before the
// RIR framework existed ("legacy" space, still announced today).
var legacySeeds = map[registry.RIR]string{
	registry.ARIN:    "44.0.0.0/8",  // amateur radio, classic US legacy
	registry.RIPENCC: "51.0.0.0/8",  // UK government legacy
	registry.APNIC:   "133.0.0.0/8", // Japanese class-B legacy space
}

// createLegacyHolders registers a few pre-RIR assignments per major
// region. Legacy holders are ordinary organizations in the world (they
// announce their space and may lease it), but their blocks carry legacy
// status in the registry statistics and WHOIS.
func (w *World) createLegacyHolders() error {
	nextAS := ASN(64000 - 100) // distinct public range below the member block
	_ = nextAS
	for _, rir := range []registry.RIR{registry.ARIN, registry.RIPENCC, registry.APNIC} {
		base := netblock.MustParsePrefix(legacySeeds[rir])
		for i := 0; i < 3; i++ {
			org := &Org{
				ID:      registry.OrgID(fmt.Sprintf("ORG-legacy-%s-%d", rir.StatsName(), i)),
				Kind:    KindISP, // legacy holders behave like ISPs (lease/sell)
				RIR:     rir,
				Country: countryFor(rir, i),
			}
			asn := ASN(9000 + 10*int(rir) + i)
			org.ASNs = []ASN{asn}
			w.ByAS[asn] = org
			w.Orgs = append(w.Orgs, org)
			w.ByID[org.ID] = org
			// Legacy holders typically became members later to get support.
			w.Registry.RegisterLIR(org.ID, rir, org.Country, w.Cfg.HistoryStart)
			block := netblock.MustPrefix(base.Addr()+netblock.Addr(i)<<16, 16)
			a, err := w.Registry.RegisterLegacy(rir, org.ID, block, org.Country, date(1985, time.January, 1))
			if err != nil {
				return fmt.Errorf("simulation: legacy %v: %w", block, err)
			}
			org.addSellable(a.Prefix)
		}
	}
	return nil
}

// allocationBits returns a plausible allocation size by org kind. ISPs
// and hosters hold the large blocks that feed both the transfer market
// and the leasing ecosystem.
func (w *World) allocationBits(kind OrgKind) int {
	switch kind {
	case KindISP:
		return 12 + w.rng.Intn(4) // /12../15
	case KindHoster:
		return 14 + w.rng.Intn(4) // /14../17
	default:
		return 20 + w.rng.Intn(3) // /20../22
	}
}

func (w *World) allocateHistory() error {
	for _, org := range w.Orgs {
		m := registry.MilestonesOf(org.RIR)
		// Allocation request somewhere between history start and the
		// region's soft-landing date (all our orgs are pre-exhaustion
		// members; late joiners are modeled by the waiting-list tests).
		windowDays := int(m.DownToLastBlock.Sub(w.Cfg.HistoryStart).Hours() / 24)
		if windowDays < 1 {
			windowDays = 1
		}
		when := w.Cfg.HistoryStart.AddDate(0, 0, w.rng.Intn(windowDays))
		bits := w.allocationBits(org.Kind)
		a, err := w.Registry.Allocate(org.RIR, org.ID, bits, when)
		if err != nil {
			return fmt.Errorf("simulation: allocate for %s: %w", org.ID, err)
		}
		org.addSellable(a.Prefix)
		// ISPs sometimes hold a second block.
		if org.Kind == KindISP && w.rng.Float64() < 0.4 {
			b, err := w.Registry.Allocate(org.RIR, org.ID, bits+2, when.AddDate(1, 0, 0))
			if err == nil {
				org.addSellable(b.Prefix)
			}
		}
	}
	return nil
}

// PriceLevel returns the market price level ($/address) at time t:
// ~$10.50 in early 2016, doubling to ~$22.50 by Spring 2019, then flat —
// the trajectory §3 reports.
func PriceLevel(t time.Time) float64 {
	anchor := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	plateau := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	const start, end = 10.5, 22.5
	if !t.After(anchor) {
		// Slow pre-2016 drift from ~$7.
		years := anchor.Sub(t).Hours() / 24 / 365
		v := start - years*0.35
		if v < 5 {
			v = 5
		}
		return v
	}
	if t.After(plateau) {
		return end
	}
	frac := t.Sub(anchor).Hours() / plateau.Sub(anchor).Hours()
	// Smooth S-curve between the anchors.
	s := 0.5 - 0.5*math.Cos(frac*math.Pi)
	return start + (end-start)*s
}

// sizeFactor prices small blocks at a premium (§3: /24 and /23 cost more;
// very large blocks, rare, also rise — excluded from the data set).
func sizeFactor(bits int) float64 {
	switch {
	case bits >= 24:
		return 1.12
	case bits == 23:
		return 1.08
	case bits == 16:
		return 0.97
	default:
		return 1.0
	}
}

// meanSizeFactor normalizes the size premium so the market-wide average
// price tracks PriceLevel (the deal mix is dominated by /24s and /23s).
const meanSizeFactor = 1.07

// transactionPrice draws a per-address price for a deal at time t. Any
// configured price shock covering t multiplies the level (the noise
// draw stays in the stream regardless, so shock windows perturb prices
// without reshuffling every later market draw).
func (w *World) transactionPrice(t time.Time, bits int) float64 {
	noise := 1 + w.rng.NormFloat64()*0.06
	if noise < 0.7 {
		noise = 0.7
	}
	return PriceLevel(t) * w.Cfg.priceShockFactor(t) * sizeFactor(bits) / meanSizeFactor * noise
}

// monthlyTransferRate returns the expected number of intra-RIR transfers
// in the region for the given month, following Figure 2's shape: markets
// start at the last-/8 date, ramp up, ARIN largest, RIPE with a year-end
// seasonal bump, AFRINIC/LACNIC negligible.
func monthlyTransferRate(r registry.RIR, t time.Time) float64 {
	if !registry.TransferMarketOpen(r, t) {
		return 0
	}
	open := registry.MilestonesOf(r).DownToLastBlock
	years := t.Sub(open).Hours() / 24 / 365
	ramp := math.Min(years/3, 1)
	var base float64
	switch r {
	case registry.ARIN:
		base = 28
	case registry.RIPENCC:
		base = 9
		if t.Month() == time.November || t.Month() == time.December {
			base *= 1.8 // §3: RIPE's pattern aligns with the end of year
		}
	case registry.APNIC:
		base = 6
	default:
		base = 0.3 // AFRINIC, LACNIC: negligible
	}
	return base * ramp
}

// transferBits draws the size of a transferred block (mostly /24../22,
// occasionally up to /16).
func (w *World) transferBits() int {
	r := w.rng.Float64()
	switch {
	case r < 0.45:
		return 24
	case r < 0.65:
		return 23
	case r < 0.82:
		return 22
	case r < 0.92:
		return 20 + w.rng.Intn(2)
	case r < 0.98:
		return 17 + w.rng.Intn(3)
	default:
		return 16
	}
}

// poisson draws a Poisson variate (Knuth's method; rates here are small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// takeSellable carves a block of the requested size from the org's
// sellable space, keeping each remaining chunk inside its original
// allocation.
func takeSellable(org *Org, bits int) (netblock.Prefix, bool) {
	return takeSellableMin(org, bits, bits)
}

// takeSellableStrict carves a block whose source chunk is strictly less
// specific, guaranteeing the org keeps an announcable covering remainder
// (lease children must sit strictly inside an allocation fragment, or the
// delegation could never be observed in BGP).
func takeSellableStrict(org *Org, bits int) (netblock.Prefix, bool) {
	return takeSellableMin(org, bits, bits-1)
}

func takeSellableMin(org *Org, bits, maxChunkBits int) (netblock.Prefix, bool) {
	for i, p := range org.sellable {
		if p.Bits() > maxChunkBits {
			continue
		}
		block := netblock.MustPrefix(p.Addr(), bits)
		rem := netblock.NewSet(p)
		rem.RemovePrefix(block)
		rest := rem.Prefixes()
		org.sellable = append(org.sellable[:i], org.sellable[i+1:]...)
		org.sellable = append(org.sellable, rest...)
		return block, true
	}
	return netblock.Prefix{}, false
}

func (w *World) orgsOf(rir registry.RIR) []*Org {
	var out []*Org
	for _, o := range w.Orgs {
		if o.RIR == rir {
			out = append(out, o)
		}
	}
	return out
}

func (w *World) runTransferMarket() error {
	// Intra-RIR market, monthly steps from the earliest market opening.
	for _, rir := range registry.AllRIRs() {
		regionOrgs := w.orgsOf(rir)
		if len(regionOrgs) < 2 {
			continue
		}
		start := registry.MilestonesOf(rir).DownToLastBlock
		for t := start; t.Before(w.Cfg.MarketEnd); t = t.AddDate(0, 1, 0) {
			n := poisson(w.rng, monthlyTransferRate(rir, t))
			for i := 0; i < n; i++ {
				if err := w.oneTransfer(rir, regionOrgs, t); err != nil {
					return err
				}
			}
		}
	}
	// Inter-RIR transfers from 2012, mostly out of ARIN, growing in count
	// with shrinking blocks (Figure 3).
	for year := 2012; year < w.Cfg.MarketEnd.Year()+1; year++ {
		count := 2 + (year-2012)*2
		maxBits := 17 + (year-2012)/2 // later years: smaller blocks
		if maxBits > 23 {
			maxBits = 23
		}
		for i := 0; i < count; i++ {
			from := registry.ARIN
			if w.rng.Float64() < 0.2 {
				from = registry.APNIC
			}
			var to registry.RIR
			switch {
			case from == registry.ARIN && w.rng.Float64() < 0.55:
				to = registry.RIPENCC
			case from == registry.ARIN:
				to = registry.APNIC
			default:
				to = registry.RIPENCC
			}
			t := time.Date(year, time.Month(1+w.rng.Intn(12)), 1+w.rng.Intn(28), 0, 0, 0, 0, time.UTC)
			if !t.Before(w.Cfg.MarketEnd) {
				continue
			}
			bits := maxBits + w.rng.Intn(2)
			if bits > 24 {
				bits = 24
			}
			if err := w.oneInterRIRTransfer(from, to, bits, t); err != nil {
				return err
			}
		}
	}
	sort.Slice(w.Prices, func(i, j int) bool { return w.Prices[i].Date.Before(w.Prices[j].Date) })
	return nil
}

func (w *World) oneTransfer(rir registry.RIR, regionOrgs []*Org, t time.Time) error {
	bits := w.transferBits()
	seller := w.pickSeller(regionOrgs, bits)
	if seller == nil {
		return nil // market dried up in this region
	}
	buyer := regionOrgs[w.rng.Intn(len(regionOrgs))]
	if buyer == seller {
		return nil
	}
	block, ok := takeSellable(seller, bits)
	if !ok {
		return nil
	}
	isMA := w.rng.Float64() < 0.12 // some consolidations ride the logs
	if isMA {
		// An acquisition consolidates the acquired company's holdings:
		// several blocks move between the same organization pair on the
		// same day — the signature merger-inference heuristics look for.
		blocks := []netblock.Prefix{block}
		for i := 0; i < 1+w.rng.Intn(4); i++ {
			b, ok := takeSellable(seller, bits)
			if !ok {
				break
			}
			blocks = append(blocks, b)
		}
		for _, b := range blocks {
			if _, err := w.Registry.ExecuteTransfer(b, seller.ID, buyer.ID, rir, registry.TypeMerger, 0, t); err != nil {
				return fmt.Errorf("simulation: M&A transfer %v: %w", b, err)
			}
			buyer.addSellable(b)
		}
		return nil
	}
	price := w.transactionPrice(t, bits)
	if _, err := w.Registry.ExecuteTransfer(block, seller.ID, buyer.ID, rir, registry.TypeMarket, price, t); err != nil {
		return fmt.Errorf("simulation: transfer %v: %w", block, err)
	}
	buyer.addSellable(block)
	if bits >= 16 {
		// The broker data set covers /16 and more-specific only.
		w.Prices = append(w.Prices, market.PriceRecord{
			Date: t, Region: rir, Bits: bits, PricePerAddr: price,
		})
	}
	return nil
}

func (w *World) oneInterRIRTransfer(from, to registry.RIR, bits int, t time.Time) error {
	if !registry.TransferMarketOpen(from, t) {
		return nil // source region not yet in its transfer regime
	}
	sellers := w.orgsOf(from)
	buyers := w.orgsOf(to)
	if len(sellers) == 0 || len(buyers) == 0 {
		return nil
	}
	seller := w.pickSeller(sellers, bits)
	if seller == nil {
		return nil
	}
	buyer := buyers[w.rng.Intn(len(buyers))]
	block, ok := takeSellable(seller, bits)
	if !ok {
		return nil
	}
	price := w.transactionPrice(t, bits)
	if _, err := w.Registry.ExecuteTransfer(block, seller.ID, buyer.ID, to, registry.TypeMarket, price, t); err != nil {
		return fmt.Errorf("simulation: inter-RIR transfer %v: %w", block, err)
	}
	buyer.addSellable(block)
	if bits >= 16 {
		// Region follows the maintaining RIR, which is now the recipient.
		w.Prices = append(w.Prices, market.PriceRecord{
			Date: t, Region: to, Bits: bits, PricePerAddr: price,
		})
	}
	return nil
}

// pickSeller prefers ISPs and hosters with enough contiguous space.
func (w *World) pickSeller(orgs []*Org, bits int) *Org {
	for attempts := 0; attempts < 12; attempts++ {
		o := orgs[w.rng.Intn(len(orgs))]
		if o.Kind != KindISP && o.Kind != KindHoster && attempts < 8 {
			continue
		}
		for _, p := range o.sellable {
			if p.Bits() <= bits {
				return o
			}
		}
	}
	return nil
}
