// Package simulation generates a synthetic but behaviorally faithful
// IPv4-market world: organizations and ASes, an allocation history
// replayed through the registry policy engine, a transfer market whose
// volume and price process are calibrated to the paper's Figures 1-3, a
// leasing ecosystem with configurable WHOIS registration and BGP
// visibility (Figures 4/6 and the §4 coverage statistics), multi-collector
// BGP routing with on-off announcements, hijacks, MOAS and AS_SET noise,
// and RPKI ROA churn (Figure 5).
//
// Everything is deterministic given Config.Seed.
package simulation

import (
	"time"

	"ipv4market/internal/registry"
)

// Config parameterizes the world generator. DefaultConfig returns values
// producing a laptop-scale world with the paper's qualitative shape.
type Config struct {
	Seed int64

	// NumLIRs is the number of member organizations per major RIR
	// (AFRINIC and LACNIC receive a fraction of it).
	NumLIRs int

	// HistoryStart is when allocation history begins.
	HistoryStart time.Time
	// MarketEnd bounds the transfer/price simulation (exclusive).
	MarketEnd time.Time

	// RoutingStart/RoutingDays bound the daily BGP simulation window
	// (the paper: 2018-01-01 to 2020-06-01, 882 days).
	RoutingStart time.Time
	RoutingDays  int

	// Collectors and MonitorsPerCollector describe the measurement
	// platform (RIS + Route Views + Isolario in the paper).
	Collectors           int
	MonitorsPerCollector int

	// Leasing population sizes.
	AdministrativeLeases int // registered in WHOIS, mostly invisible in BGP
	RoutedLeases         int // announced in BGP as more-specifics

	// RoutedLeaseWhoisProb is the probability that a routed lease is also
	// registered in WHOIS/RDAP (the paper measures ~65.7% coverage).
	RoutedLeaseWhoisProb float64

	// OnOffProb is the probability that a routed lease shows an on-off
	// announcement pattern rather than being continuously visible.
	OnOffProb float64

	// HijackRate is the per-day expected number of short-lived
	// more-specific hijacks visible at a few monitors.
	HijackRate float64

	// SmallAssignmentsPerLIR controls the count of sub-/24 ASSIGNED PA
	// objects per LIR (the paper: 91.4% of ASSIGNED PA entries are
	// smaller than /24).
	SmallAssignmentsPerLIR int

	// PriceShocks multiply the broker-market price level inside their
	// windows (scenario knob: supply squeezes, fire sales).
	PriceShocks []PriceShock

	// RPKIChurnStorms raise the per-day ROA drop probability and leave
	// stale ROAs behind for expired delegations inside their windows
	// (scenario knob: the churn/stale-ROA storms of the RPKI SoK).
	RPKIChurnStorms []RPKIChurnStorm

	// HijackWaves override HijackRate inside their windows (scenario
	// knob: concentrated hijack campaigns).
	HijackWaves []HijackWave

	// ActivityMean/ActivityJitter shape the per-prefix active-address
	// fraction the utilization inference estimates. Zero values fall
	// back to defaultActivityMean/defaultActivityJitter.
	ActivityMean   float64
	ActivityJitter float64
}

// PriceShock multiplies transaction prices by Factor for deals dated
// in [Start, End).
type PriceShock struct {
	Start, End time.Time
	Factor     float64
}

// DayWindow is a half-open routing-window day range [StartDay, EndDay).
type DayWindow struct {
	StartDay, EndDay int
}

// Contains reports whether day falls inside the window.
func (w DayWindow) Contains(day int) bool {
	return day >= w.StartDay && day < w.EndDay
}

// RPKIChurnStorm degrades ROA publication inside its window: the
// per-day drop probability is raised to at least DropProb, and
// StaleROAFraction of the delegations with no matching routed
// announcement (ended or never-routed leases) surface as stale
// authorizations while the storm lasts.
type RPKIChurnStorm struct {
	Window           DayWindow
	DropProb         float64
	StaleROAFraction float64
}

// HijackWave replaces the baseline HijackRate with Rate inside its
// window.
type HijackWave struct {
	Window DayWindow
	Rate   float64
}

// priceShockFactor returns the combined shock multiplier for a deal at
// time t (1.0 outside every window; overlapping shocks compound).
func (c *Config) priceShockFactor(t time.Time) float64 {
	f := 1.0
	for _, s := range c.PriceShocks {
		if !t.Before(s.Start) && t.Before(s.End) {
			f *= s.Factor
		}
	}
	return f
}

// hijackRateOn returns the expected hijack count for the routing-window
// day, honoring any hijack wave covering it (the last matching wave
// wins, so later config entries can carve exceptions).
func (c *Config) hijackRateOn(day int) float64 {
	rate := c.HijackRate
	for _, wv := range c.HijackWaves {
		if wv.Window.Contains(day) {
			rate = wv.Rate
		}
	}
	return rate
}

// stormOn returns the churn storm covering the day, if any (the last
// matching storm wins).
func (c *Config) stormOn(day int) (RPKIChurnStorm, bool) {
	var out RPKIChurnStorm
	found := false
	for _, s := range c.RPKIChurnStorms {
		if s.Window.Contains(day) {
			out, found = s, true
		}
	}
	return out, found
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		NumLIRs:                60,
		HistoryStart:           time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC),
		MarketEnd:              time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC),
		RoutingStart:           time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		RoutingDays:            882, // through 2020-06-01, as in the paper
		Collectors:             3,   // RIS, Route Views, Isolario
		MonitorsPerCollector:   6,
		AdministrativeLeases:   700,
		RoutedLeases:           290,
		RoutedLeaseWhoisProb:   0.657,
		OnOffProb:              0.35,
		HijackRate:             0.8,
		SmallAssignmentsPerLIR: 110,
	}
}

// poolSeeds lists the address space IANA handed to each RIR in our world.
// Sizes roughly follow reality (ARIN, APNIC and RIPE hold far more space
// than AFRINIC and LACNIC).
var poolSeeds = map[registry.RIR][]string{
	registry.AFRINIC: {"41.0.0.0/8"},
	registry.APNIC:   {"103.0.0.0/8", "110.0.0.0/8", "1.0.0.0/8"},
	registry.ARIN:    {"23.0.0.0/8", "50.0.0.0/8", "64.0.0.0/8"},
	registry.LACNIC:  {"177.0.0.0/8"},
	registry.RIPENCC: {"185.0.0.0/8", "193.0.0.0/8", "77.0.0.0/8"},
}

// lirShare returns how many LIRs a region receives, given NumLIRs per
// major region.
func lirShare(r registry.RIR, numLIRs int) int {
	switch r {
	case registry.AFRINIC, registry.LACNIC:
		return numLIRs / 6 // §3: negligible markets in these regions
	default:
		return numLIRs
	}
}

// countryFor returns a representative country code per region.
func countryFor(r registry.RIR, i int) string {
	pools := map[registry.RIR][]string{
		registry.AFRINIC: {"ZA", "NG", "KE", "EG"},
		registry.APNIC:   {"JP", "CN", "AU", "IN", "SG"},
		registry.ARIN:    {"US", "CA", "US", "US"},
		registry.LACNIC:  {"BR", "AR", "CL", "MX"},
		registry.RIPENCC: {"DE", "NL", "GB", "FR", "SE", "RU"},
	}
	cs := pools[r]
	return cs[i%len(cs)]
}
