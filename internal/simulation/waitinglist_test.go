package simulation

import (
	"testing"
	"time"

	"ipv4market/internal/registry"
)

func TestARINWaitingListScenario(t *testing.T) {
	out := SimulateWaitingList(ARIN2020Scenario())
	if out.Requests == 0 {
		t.Fatal("no requests simulated")
	}
	if out.Fulfilled == 0 {
		t.Fatal("no requests fulfilled")
	}
	// §2: ARIN waiting times up to 130 days. With slow recovery and the
	// six-month quarantine, multi-month waits must appear.
	if out.MaxWaitDays < 60 {
		t.Errorf("max wait = %d days; expected multi-month waits", out.MaxWaitDays)
	}
	if out.MaxWaitDays > 400 {
		t.Errorf("max wait = %d days; implausibly long", out.MaxWaitDays)
	}
	if out.MeanWait <= 0 || out.MeanWait > float64(out.MaxWaitDays) {
		t.Errorf("mean wait = %.1f", out.MeanWait)
	}
	// Demand exceeds supply: a queue remains.
	if out.Pending == 0 {
		t.Error("expected pending requests under ARIN's regime")
	}
}

func TestRIPEWaitingListScenario(t *testing.T) {
	out := SimulateWaitingList(RIPE2019Scenario())
	if out.Requests == 0 || out.Fulfilled == 0 {
		t.Fatalf("outcome = %+v", out)
	}
	// §2: RIPE cleared its list with recovered space; most requests are
	// served quickly and the pool retains banked addresses.
	frac := float64(out.Fulfilled) / float64(out.Requests)
	if frac < 0.9 {
		t.Errorf("fulfilled fraction = %.2f; RIPE should clear its list", frac)
	}
	if out.MeanWait > 40 {
		t.Errorf("mean wait = %.1f days; RIPE's waits were short", out.MeanWait)
	}
	if out.PoolLeft == 0 {
		t.Error("RIPE's pool should retain recovered addresses")
	}
}

func TestWaitingListDeterminism(t *testing.T) {
	a := SimulateWaitingList(ARIN2020Scenario())
	b := SimulateWaitingList(ARIN2020Scenario())
	if a != b {
		t.Error("same scenario must be deterministic")
	}
}

func TestWaitingListScenarioBounds(t *testing.T) {
	sc := ARIN2020Scenario()
	if registry.PhaseAt(sc.RIR, sc.Start) != registry.PhaseDepleted {
		t.Error("ARIN scenario must start in the depleted phase")
	}
	sc2 := RIPE2019Scenario()
	if !sc2.Start.Equal(time.Date(2019, 11, 25, 0, 0, 0, 0, time.UTC)) {
		t.Error("RIPE scenario starts at run-out")
	}
}
