package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Wrap layers the shared serving middleware around a handler:
//
//	instrument(recovery(timeout(h)))
//
// Instrumentation is outermost so it observes the final status
// (including 500s from the recovery layer); recovery sits outside the
// timeout layer so it catches panics from the wrapped handler. A
// non-positive timeout disables the timeout layer (admin endpoints and
// segment streaming use that).
//
// The timeout layer is deadline-based, not http.TimeoutHandler:
// TimeoutHandler buffers the entire response body in memory before
// writing it, which would put a per-request copy back into the
// zero-copy artifact path (and block sendfile). Instead the request
// context gets a deadline — every handler doing cancellable work reads
// it — and the connection gets a write deadline covering the response,
// so a stalled client cannot pin the connection either.
//
// cmd/marketd and cmd/rdapd share this stack; neither duplicates it.
func Wrap(h http.Handler, m *Metrics, route string, timeout time.Duration) http.Handler {
	if timeout > 0 {
		h = timeoutLayer(h, timeout)
	}
	h = recovery(m, h)
	if m != nil {
		h = m.instrument(route, h)
	}
	return h
}

// timeoutLayer bounds a request without buffering its response: the
// handler sees a context that expires after timeout, and the underlying
// connection gets a write deadline so the response bytes — streamed
// straight from a segment file on the zero-copy path — must also finish
// by then. Writers that do not support deadlines (test recorders) just
// skip that half.
func timeoutLayer(h http.Handler, timeout time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		// Best-effort: httptest recorders and exotic writers return
		// ErrNotSupported, which leaves only the context deadline.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(timeout))
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// recovery converts handler panics into 500 responses instead of killing
// the connection, and counts them. http.ErrAbortHandler is re-raised: it
// is the sanctioned way to abort a response and net/http handles it.
func recovery(m *Metrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec) //lint:ignore bannedcall re-raising http.ErrAbortHandler is the contract net/http expects
			}
			if m != nil {
				m.panics.Add(1)
			}
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}()
		h.ServeHTTP(w, r)
	})
}

// Serve runs srv on ln until ctx is cancelled, then shuts down
// gracefully, giving in-flight requests up to drain to finish. It returns
// nil on a clean shutdown and the serve or shutdown error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve(ln) // coordinated: result drained via errc below
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	//lint:ignore ctxflow Shutdown has returned, so Serve has already unblocked: this receive is bounded, not cancellable
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}
