package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Wrap layers the shared serving middleware around a handler:
//
//	instrument(recovery(timeout(h)))
//
// Instrumentation is outermost so it observes the final status (including
// 500s from the recovery layer and 503s from the timeout layer); recovery
// sits outside the timeout handler because http.TimeoutHandler re-panics
// handler panics on the caller's goroutine. A non-positive timeout
// disables the timeout layer (needed for streaming or admin endpoints).
//
// cmd/marketd and cmd/rdapd share this stack; neither duplicates it.
func Wrap(h http.Handler, m *Metrics, route string, timeout time.Duration) http.Handler {
	if timeout > 0 {
		h = http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`+"\n")
	}
	h = recovery(m, h)
	if m != nil {
		h = m.instrument(route, h)
	}
	return h
}

// recovery converts handler panics into 500 responses instead of killing
// the connection, and counts them. http.ErrAbortHandler is re-raised: it
// is the sanctioned way to abort a response and net/http handles it.
func recovery(m *Metrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec) //lint:ignore bannedcall re-raising http.ErrAbortHandler is the contract net/http expects
			}
			if m != nil {
				m.panics.Add(1)
			}
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}()
		h.ServeHTTP(w, r)
	})
}

// Serve runs srv on ln until ctx is cancelled, then shuts down
// gracefully, giving in-flight requests up to drain to finish. It returns
// nil on a clean shutdown and the serve or shutdown error otherwise.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve(ln) // coordinated: result drained via errc below
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	//lint:ignore ctxflow Shutdown has returned, so Serve has already unblocked: this receive is bounded, not cancellable
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}
