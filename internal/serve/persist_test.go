package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"ipv4market/internal/store"
)

// openStore opens a durable store under a fresh temp directory (or the
// given one, for restart tests that reopen the same data).
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// TestSnapshotRecordRestoreRoundTrip checks the persist bridge in
// isolation: flattening a snapshot to store artifacts and restoring it
// yields identical artifact bytes, ETags, and query state.
func TestSnapshotRecordRestoreRoundTrip(t *testing.T) {
	cfg := testConfig()
	snap, err := BuildSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta, arts, err := snapshotRecord(snap)
	if err != nil {
		t.Fatal(err)
	}
	meta.Gen = 7 // Append would assign this; the bridge must carry it through.

	got, err := restoreSnapshot(meta, arts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 7 || got.Source != SourceStore {
		t.Fatalf("restored gen=%d source=%q, want gen=7 source=%q", got.Gen, got.Source, SourceStore)
	}
	if got.Cfg.Seed != cfg.Seed || got.Cfg.NumLIRs != cfg.NumLIRs || got.Cfg.RoutingDays != cfg.RoutingDays {
		t.Fatalf("restored cfg = seed=%d lirs=%d days=%d, want seed=%d lirs=%d days=%d",
			got.Cfg.Seed, got.Cfg.NumLIRs, got.Cfg.RoutingDays, cfg.Seed, cfg.NumLIRs, cfg.RoutingDays)
	}
	if len(got.static) != len(snap.static) {
		t.Fatalf("restored %d static artifacts, want %d", len(got.static), len(snap.static))
	}
	for key, want := range snap.static {
		art, ok := got.static[key]
		if !ok {
			t.Fatalf("restored snapshot lacks artifact %q", key)
		}
		if !bytes.Equal(art.json, want.json) || art.jsonETag != want.jsonETag {
			t.Errorf("artifact %q: JSON body or ETag differs after round trip", key)
		}
		if !bytes.Equal(art.csv, want.csv) || art.csvETag != want.csvETag {
			t.Errorf("artifact %q: CSV body or ETag differs after round trip", key)
		}
	}

	// Query state must round-trip exactly: re-encode both sides and
	// compare bytes (float equality without float comparison).
	wantCells, _ := json.Marshal(snap.PriceCells)
	gotCells, _ := json.Marshal(got.PriceCells)
	if !bytes.Equal(wantCells, gotCells) {
		t.Error("price cells differ after round trip")
	}
	if got.Delegations.Len() != snap.Delegations.Len() {
		t.Errorf("restored %d delegations, want %d", got.Delegations.Len(), snap.Delegations.Len())
	}
	if !got.Delegations.Date().Equal(snap.Delegations.Date()) {
		t.Errorf("restored delegation date %v, want %v", got.Delegations.Date(), snap.Delegations.Date())
	}
	if got.TransferTotal() != snap.TransferTotal() {
		t.Errorf("restored %d transfers, want %d", got.TransferTotal(), snap.TransferTotal())
	}
}

// TestAssembleArtifactsRejectsTamperedBody proves the ETag check in the
// restore path: a body that does not match its stored ETag is refused
// (defense in depth beyond the store's CRCs).
func TestAssembleArtifactsRejectsTamperedBody(t *testing.T) {
	snap, err := BuildSnapshot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, arts, err := snapshotRecord(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arts {
		if arts[i].ETag != "" {
			arts[i].Body = append([]byte(nil), arts[i].Body...)
			arts[i].Body[0] ^= 0x01
			break
		}
	}
	if _, _, err := assembleArtifacts(arts); err == nil {
		t.Fatal("assembleArtifacts accepted a body that contradicts its ETag")
	}
}

// determinismPaths are the request shapes the warm/cold comparison
// drives: every static artifact, both encodings where they exist, and
// the filtered queries that are answered from restored state rather
// than stored bytes.
var determinismPaths = []string{
	"/v1/table1", "/v1/table1?format=csv",
	"/v1/figures/1", "/v1/figures/2", "/v1/figures/3", "/v1/figures/4",
	"/v1/prices", "/v1/prices?format=csv",
	"/v1/prices?size=/16",
	"/v1/prices?region=RIPE%20NCC",
	"/v1/prices?quarter=2019Q2",
	"/v1/prices?size=16&region=ARIN&quarter=2019Q4",
	"/v1/transfers",
	"/v1/delegations",
	"/v1/delegations?prefix=185.0.0.0/16",
	"/v1/delegations?prefix=8.8.8.0/24",
	"/v1/leasing",
	"/v1/headline",
	"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
	"/v1/asof?date=2013-02-15&prefix=23.0.0.0/12",
	"/v1/asof/timeline?prefix=185.0.0.0/16",
	"/v1/asof/diff?from=2015-01-01&to=2015-12-31",
}

// TestWarmStartMatchesColdBuild is the restart-determinism acceptance
// test: a server warm-started from the store serves byte-identical
// bodies and ETags to the cold-built server that persisted them —
// including filtered queries, which are computed from restored state.
func TestWarmStartMatchesColdBuild(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()

	cold, err := New(cfg, Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted() {
		t.Fatal("cold server claims a warm start")
	}
	if got := cold.Snapshot().Gen; got != 1 {
		t.Fatalf("cold build persisted as generation %d, want 1", got)
	}

	warm, err := New(cfg, Options{Store: openStore(t, dir), WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted() {
		t.Fatal("server with a populated store did not warm-start")
	}
	ws := warm.Snapshot()
	if ws.Gen != 1 || ws.Source != SourceStore {
		t.Fatalf("warm snapshot gen=%d source=%q, want gen=1 source=%q", ws.Gen, ws.Source, SourceStore)
	}

	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	tsWarm := httptest.NewServer(warm.Handler())
	defer tsWarm.Close()

	for _, path := range determinismPaths {
		respC, bodyC := get(t, tsCold, path)
		respW, bodyW := get(t, tsWarm, path)
		if respC.StatusCode != 200 || respW.StatusCode != 200 {
			t.Errorf("%s: cold=%d warm=%d, want 200/200", path, respC.StatusCode, respW.StatusCode)
			continue
		}
		if !bytes.Equal(bodyC, bodyW) {
			t.Errorf("%s: warm body differs from cold body", path)
		}
		if ec, ew := respC.Header.Get("ETag"), respW.Header.Get("ETag"); ec != ew || ec == "" {
			t.Errorf("%s: ETag cold=%q warm=%q, want identical and non-empty", path, ec, ew)
		}
	}
}
