package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipv4market/internal/simulation"
)

// testConfig is a deliberately small world: every endpoint has data, but
// a snapshot builds in well under a second.
func testConfig() simulation.Config {
	cfg := simulation.DefaultConfig()
	cfg.NumLIRs = 14
	cfg.RoutingDays = 40
	cfg.AdministrativeLeases = 120
	cfg.RoutedLeases = 50
	cfg.MonitorsPerCollector = 4
	cfg.SmallAssignmentsPerLIR = 10
	return cfg
}

var (
	sharedOnce sync.Once
	sharedSrv  *Server
	sharedErr  error
)

// sharedServer returns one admin-enabled server reused by all read-only
// tests; tests that mutate serving state build their own.
func sharedServer(t *testing.T) *Server {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSrv, sharedErr = New(testConfig(), Options{EnableAdmin: true})
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedSrv
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

// TestEndpoints drives every served route over real HTTP and checks
// status, content type, and that JSON bodies decode.
func TestEndpoints(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	jsonPaths := []string{
		"/readyz", "/varz",
		"/v1/table1",
		"/v1/figures/1", "/v1/figures/2", "/v1/figures/3", "/v1/figures/4",
		"/v1/prices",
		"/v1/prices?size=/16",
		"/v1/prices?region=RIPE%20NCC",
		"/v1/prices?quarter=2019Q2",
		"/v1/prices?size=16&region=ARIN&quarter=2019Q4",
		"/v1/transfers",
		"/v1/delegations",
		"/v1/delegations?prefix=185.0.0.0/16",
		"/v1/leasing",
		"/v1/headline",
		"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
		"/v1/asof/timeline?prefix=185.0.0.0/16",
		"/v1/asof/diff?from=2013-01-01&to=2013-12-31",
	}
	for _, path := range jsonPaths {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, body %s", path, resp.StatusCode, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: content type %q", path, ct)
		}
		var doc any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Errorf("%s: invalid JSON: %v", path, err)
		}
	}

	csvPaths := []string{
		"/v1/table1?format=csv",
		"/v1/figures/1?format=csv",
		"/v1/figures/2?format=csv",
		"/v1/figures/3?format=csv",
		"/v1/figures/4?format=csv",
		"/v1/prices?format=csv",
		"/v1/prices?size=/16&format=csv",
	}
	for _, path := range csvPaths {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("%s: content type %q", path, ct)
		}
		if !strings.Contains(string(body), ",") {
			t.Errorf("%s: body does not look like CSV", path)
		}
	}

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz: status %d body %q", resp.StatusCode, body)
	}
}

// TestETagNotModified verifies the conditional-request flow: a second GET
// with If-None-Match set to the returned ETag answers 304 with no body.
func TestETagNotModified(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/table1", "/v1/prices?size=/16", "/v1/table1?format=csv"} {
		resp, _ := get(t, ts, path)
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", path)
		}
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		resp2, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Errorf("%s with If-None-Match: status %d, want 304", path, resp2.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("%s: 304 carried a %d-byte body", path, len(body))
		}
	}
}

// TestBadRequests checks the 4xx surface: malformed prefixes, filters,
// figure IDs, and unsupported methods.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	for path, want := range map[string]int{
		"/v1/delegations?prefix=banana":      http.StatusBadRequest,
		"/v1/delegations?prefix=10.0.0.0/33": http.StatusBadRequest,
		"/v1/prices?size=huge":               http.StatusBadRequest,
		"/v1/prices?region=MARS":             http.StatusBadRequest,
		"/v1/prices?quarter=then":            http.StatusBadRequest,
		"/v1/figures/9":                      http.StatusNotFound,
		"/v1/figures/banana":                 http.StatusNotFound,
		"/v1/transfers?format=csv":           http.StatusBadRequest, // no CSV encoding
	} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d (body %s)", path, resp.StatusCode, want, body)
			continue
		}
		var doc errorBody
		if err := json.Unmarshal(body, &doc); err != nil || doc.Error == "" {
			t.Errorf("%s: error body %q not the JSON error document", path, body)
		}
	}

	if resp, _ := get(t, ts, "/v1/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/nosuch: status %d, want 404", resp.StatusCode)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/table1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/table1: status %d, want 405", resp.StatusCode)
	}
}

// TestFilteredPricesSubset checks that filters actually filter, and that
// the filtered response is consistent with the unfiltered cell set.
func TestFilteredPricesSubset(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	var all, filtered priceCellsView
	_, body := get(t, ts, "/v1/prices")
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts, "/v1/prices?size=/16")
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	if filtered.N == 0 {
		t.Fatal("size=/16 filter matched nothing; test world too small?")
	}
	if filtered.N >= all.N {
		t.Errorf("filtered N=%d not a strict subset of all N=%d", filtered.N, all.N)
	}
	for _, c := range filtered.Cells {
		if c.Bits != 16 {
			t.Errorf("size=/16 returned a /%d cell", c.Bits)
		}
	}
}

// TestQueryCacheServes verifies that repeated filtered queries are served
// from the per-snapshot cache: the /varz hit counter advances and the
// miss counter does not.
func TestQueryCacheServes(t *testing.T) {
	srv, err := New(testConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const path = "/v1/prices?size=/18&region=APNIC"
	get(t, ts, path) // miss: renders and caches
	missesAfterFirst := srv.metrics.cacheMisses.Load()
	hitsBefore := srv.metrics.cacheHits.Load()
	for i := 0; i < 5; i++ {
		resp, _ := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, resp.StatusCode)
		}
	}
	if got := srv.metrics.cacheMisses.Load(); got != missesAfterFirst {
		t.Errorf("repeated query recomputed: misses %d -> %d", missesAfterFirst, got)
	}
	if got := srv.metrics.cacheHits.Load(); got < hitsBefore+5 {
		t.Errorf("cache hits %d, want >= %d", got, hitsBefore+5)
	}
}

// TestRebuildWhileQuerying hammers the read path while background
// rebuilds swap snapshots underneath it. Run under -race (scripts/
// check.sh does), this is the no-torn-reads proof: every response must
// be complete and internally consistent, never a mix of generations.
func TestRebuildWhileQuerying(t *testing.T) {
	srv, err := New(testConfig(), Options{EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	paths := []string{
		"/v1/table1", "/v1/prices?size=/16", "/v1/delegations?prefix=185.0.0.0/16",
		"/v1/transfers", "/varz",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) { // coordinated: wg.Done + stop channel
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(i+n)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: %s status %d err %v", i, path, resp.StatusCode, err)
					return
				}
				var doc any
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Errorf("reader %d: %s: torn body: %v", i, path, err)
					return
				}
			}
		}(i)
	}

	// Drive rebuilds with changing seeds while the readers run.
	startSeq := srv.Snapshot().Seq
	rebuilds := 0
	for seed := int64(100); rebuilds < 2 && seed < 150; seed++ {
		resp, err := ts.Client().Post(fmt.Sprintf("%s/admin/rebuild?seed=%d", ts.URL, seed), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			rebuilds++
			for srv.Rebuilding() {
				time.Sleep(5 * time.Millisecond)
			}
		case http.StatusConflict:
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("rebuild: status %d", resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	srv.Wait()

	if got := srv.Snapshot().Seq; got != startSeq+uint64(rebuilds) {
		t.Errorf("snapshot seq = %d, want %d after %d rebuilds", got, startSeq+uint64(rebuilds), rebuilds)
	}
	if srv.Snapshot().Cfg.Seed == testConfig().Seed {
		t.Error("rebuild did not adopt the new seed")
	}
}

// TestRebuildConflict checks that concurrent rebuild triggers cannot
// stack: while one build is in flight, further triggers answer 409.
func TestRebuildConflict(t *testing.T) {
	srv, err := New(testConfig(), Options{EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	startSeq := srv.Snapshot().Seq
	if !srv.RebuildAsync(cfg) {
		t.Fatal("first RebuildAsync declined")
	}
	// A build takes orders of magnitude longer than these calls; every
	// immediate re-trigger must be declined by the in-flight guard.
	for i := 0; i < 16; i++ {
		if srv.RebuildAsync(cfg) {
			t.Fatalf("re-trigger %d stacked a second build", i)
		}
	}
	srv.Wait()
	if got := srv.Snapshot().Seq; got != startSeq+1 {
		t.Errorf("snapshot seq = %d, want %d (exactly one rebuild)", got, startSeq+1)
	}
}

// TestSnapshotDeterminism pins the serving layer to the study contract:
// two snapshots of the same config serve byte-identical artifacts.
func TestSnapshotDeterminism(t *testing.T) {
	a, err := BuildSnapshot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSnapshot(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for key, art := range a.static {
		other, ok := b.staticArtifact(key)
		if !ok {
			t.Errorf("second snapshot lacks artifact %q", key)
			continue
		}
		if art.jsonETag != other.jsonETag {
			t.Errorf("artifact %q: JSON differs across identical builds", key)
		}
		if art.csvETag != other.csvETag {
			t.Errorf("artifact %q: CSV differs across identical builds", key)
		}
	}
}

// TestPanicRecovery confirms the recovery middleware turns a handler
// panic into a 500 JSON error and counts it, without killing the server.
func TestPanicRecovery(t *testing.T) {
	m := NewMetrics()
	h := Wrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom") //lint:ignore bannedcall test fixture exercising the recovery middleware
	}), m, "/panic", time.Second)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/panic")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "boom") {
		t.Errorf("body %q does not mention the panic", body)
	}
	if m.panics.Load() != 1 {
		t.Errorf("panic counter = %d, want 1", m.panics.Load())
	}
	// The server must still answer after the panic.
	resp2, err := ts.Client().Get(ts.URL + "/panic")
	if err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
	resp2.Body.Close()
}

// TestVarzShape decodes /varz and spot-checks the counter document.
func TestVarzShape(t *testing.T) {
	srv, err := New(testConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get(t, ts, "/v1/table1")
	get(t, ts, "/v1/table1")
	_, body := get(t, ts, "/varz")
	var v varzView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Snapshot.Seq != 1 || v.Snapshot.Seed != testConfig().Seed {
		t.Errorf("snapshot identity = %+v", v.Snapshot)
	}
	if v.Snapshot.BuildSeconds <= 0 {
		t.Error("build_seconds not recorded")
	}
	rt, ok := v.Routes["GET /v1/table1"]
	if !ok {
		t.Fatalf("routes lack GET /v1/table1: %v", v.Routes)
	}
	if rt.Requests != 2 || rt.ByStatusClass["2xx"] != 2 {
		t.Errorf("table1 route stats = %+v", rt)
	}
	if v.Process == nil {
		t.Fatal("varz lacks a process section")
	}
	if v.Process.UptimeSeconds < 0 || v.Process.Goroutines < 1 ||
		v.Process.GOMAXPROCS < 1 || !strings.HasPrefix(v.Process.GoVersion, "go") {
		t.Errorf("process section = %+v", v.Process)
	}
	// A standalone server has no replication section.
	if v.Replication != nil {
		t.Errorf("standalone varz has a replication section: %v", v.Replication)
	}
	// The machine-readable histogram export: bucket bounds at the top
	// level, per-route counts aligned with them (plus overflow).
	if len(v.LatencyBucketsMS) != numLatencyBuckets {
		t.Fatalf("latency_buckets_ms has %d bounds, want %d", len(v.LatencyBucketsMS), numLatencyBuckets)
	}
	for i := 1; i < len(v.LatencyBucketsMS); i++ {
		if v.LatencyBucketsMS[i] <= v.LatencyBucketsMS[i-1] {
			t.Fatalf("latency_buckets_ms not ascending at %d: %v", i, v.LatencyBucketsMS)
		}
	}
	if len(rt.LatencyCounts) != numLatencyBuckets+1 {
		t.Fatalf("latency_counts has %d entries, want %d", len(rt.LatencyCounts), numLatencyBuckets+1)
	}
	var sum int64
	for _, c := range rt.LatencyCounts {
		sum += c
	}
	if sum != rt.Requests {
		t.Errorf("latency_counts sum to %d, want the route's %d requests", sum, rt.Requests)
	}
}

// TestReadyCheckGatesReadyz pins the ReadyCheck hook contract: a failing
// check turns /readyz into a 503 with the error as the reason (so a
// router drains the node), a passing or absent check answers 200, and
// the snapshot identity fields are present either way.
func TestReadyCheckGatesReadyz(t *testing.T) {
	var unready atomic.Bool
	srv, err := New(testConfig(), Options{ReadyCheck: func() error {
		if unready.Load() {
			return fmt.Errorf("replication lag 7 generations exceeds max 2")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyResp, body := get(t, ts, "/readyz")
	if readyResp.StatusCode != http.StatusOK {
		t.Fatalf("passing check: /readyz = %d, want 200", readyResp.StatusCode)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ready" {
		t.Errorf("status = %v, want ready", doc["status"])
	}

	unready.Store(true)
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing check: /readyz = %d, want 503", resp.StatusCode)
	}
	doc = nil
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "unready" {
		t.Errorf("status = %v, want unready", doc["status"])
	}
	if reason, _ := doc["reason"].(string); !strings.Contains(reason, "replication lag") {
		t.Errorf("reason = %v, want the check's error", doc["reason"])
	}
	if _, ok := doc["seq"]; !ok {
		t.Error("unready body lacks the snapshot identity fields")
	}
}
