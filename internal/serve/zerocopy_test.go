package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"ipv4market/internal/store"
)

// storedServer builds a server persisting into a fresh store, so the
// artifact endpoints exercise the zero-copy segment-file path.
func storedServer(t *testing.T) (*Server, *store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(testConfig(), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Snapshot().Gen == 0 {
		t.Fatal("snapshot was not persisted")
	}
	return srv, st, dir
}

// TestPriceTableRenderIdentity pins the columnar fast path to the
// row-at-a-time reference: for a spread of filters, render must produce
// byte-identical JSON and CSV bodies (hence identical ETags) to
// newArtifact over filterPriceCells.
func TestPriceTableRenderIdentity(t *testing.T) {
	snap := sharedServer(t).Snapshot()
	if snap.prices == nil {
		t.Fatal("built snapshot lacks the columnar price table")
	}
	if snap.prices.len() != len(snap.PriceCells) {
		t.Fatalf("table has %d rows, snapshot %d cells", snap.prices.len(), len(snap.PriceCells))
	}

	filters := []string{
		"size=/16",
		"size=/24",
		"region=ARIN",
		"region=RIPE NCC",
		"quarter=2019Q2",
		"size=/16&region=ARIN",
		"size=/16&region=ARIN&quarter=2019Q4",
		"size=/7", // matches nothing: the empty-document layout
	}
	matchedSomething := false
	for _, raw := range filters {
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parsePriceFilter(q)
		if err != nil {
			t.Fatalf("filter %q: %v", raw, err)
		}
		cells := filterPriceCells(snap.PriceCells, f.match)
		want, err := newArtifact(viewPriceCells(cells), priceCellsCSV(cells))
		if err != nil {
			t.Fatal(err)
		}
		got := snap.prices.render(f)
		if !bytes.Equal(got.json, want.json) {
			t.Errorf("filter %q: columnar JSON differs from reference\n got: %q\nwant: %q", raw, got.json, want.json)
		}
		if !bytes.Equal(got.csv, want.csv) {
			t.Errorf("filter %q: columnar CSV differs from reference", raw)
		}
		if got.jsonETag != want.jsonETag || got.csvETag != want.csvETag {
			t.Errorf("filter %q: ETags differ: %s/%s vs %s/%s", raw, got.jsonETag, got.csvETag, want.jsonETag, want.csvETag)
		}
		if len(cells) > 0 {
			matchedSomething = true
		}
	}
	if !matchedSomething {
		t.Fatal("every test filter matched zero cells; test world too small?")
	}
}

// TestArtifactRangeRequests checks the Range/If-Range machinery on the
// artifact endpoints, on both the zero-copy file path (store-backed)
// and the in-memory path (storeless) — the two must behave identically.
func TestArtifactRangeRequests(t *testing.T) {
	stored, _, _ := storedServer(t)
	for name, srv := range map[string]*Server{"file": stored, "memory": sharedServer(t)} {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for _, path := range []string{"/v1/table1", "/v1/prices", "/v1/table1?format=csv"} {
				resp, full := get(t, ts, path)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: status %d", path, resp.StatusCode)
				}
				etag := resp.Header.Get("ETag")
				if resp.Header.Get("Accept-Ranges") != "bytes" {
					t.Errorf("%s: Accept-Ranges = %q, want bytes", path, resp.Header.Get("Accept-Ranges"))
				}

				req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("Range", "bytes=5-24")
				resp2, err := ts.Client().Do(req)
				if err != nil {
					t.Fatal(err)
				}
				part, _ := io.ReadAll(resp2.Body)
				resp2.Body.Close()
				if resp2.StatusCode != http.StatusPartialContent {
					t.Fatalf("%s range: status %d, want 206", path, resp2.StatusCode)
				}
				if !bytes.Equal(part, full[5:25]) {
					t.Errorf("%s range: got %q, want %q", path, part, full[5:25])
				}
				if resp2.Header.Get("ETag") != etag {
					t.Errorf("%s range: ETag changed", path)
				}

				// If-Range with the current ETag: the range is honored.
				req.Header.Set("If-Range", etag)
				resp3, err := ts.Client().Do(req)
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp3.Body)
				resp3.Body.Close()
				if resp3.StatusCode != http.StatusPartialContent {
					t.Errorf("%s if-range match: status %d, want 206", path, resp3.StatusCode)
				}

				// If-Range with a stale ETag: full body, 200.
				req.Header.Set("If-Range", `"0000000000000000"`)
				resp4, err := ts.Client().Do(req)
				if err != nil {
					t.Fatal(err)
				}
				body4, _ := io.ReadAll(resp4.Body)
				resp4.Body.Close()
				if resp4.StatusCode != http.StatusOK {
					t.Errorf("%s if-range stale: status %d, want 200", path, resp4.StatusCode)
				}
				if !bytes.Equal(body4, full) {
					t.Errorf("%s if-range stale: body differs from full response", path)
				}
			}
		})
	}
}

// TestZeroCopyFileReads checks a store-backed server serves static
// artifacts from the sealed segment (not the in-memory copy) and
// reports it on /varz, and that the bytes and ETag match the in-memory
// artifact exactly.
func TestZeroCopyFileReads(t *testing.T) {
	srv, _, _ := storedServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	art, ok := srv.Snapshot().staticArtifact("table1")
	if !ok {
		t.Fatal("no table1 artifact")
	}
	resp, body := get(t, ts, "/v1/table1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, art.json) {
		t.Error("file-served body differs from the in-memory artifact")
	}
	if resp.Header.Get("ETag") != art.jsonETag {
		t.Errorf("ETag %s, want %s", resp.Header.Get("ETag"), art.jsonETag)
	}
	get(t, ts, "/v1/table1?format=csv")
	get(t, ts, "/v1/prices")

	if got := srv.metrics.artifactFileReads.Load(); got < 3 {
		t.Errorf("file reads = %d, want >= 3", got)
	}
	if got := srv.metrics.artifactFallbacks.Load(); got != 0 {
		t.Errorf("fallbacks = %d, want 0", got)
	}

	_, raw := get(t, ts, "/varz")
	var v struct {
		ZeroCopy *varzZeroCopy `json:"zero_copy"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.ZeroCopy == nil || v.ZeroCopy.FileReads < 3 {
		t.Errorf("varz zero_copy = %+v, want file_reads >= 3", v.ZeroCopy)
	}
}

// TestDeletedSegmentFallback deletes the sealed segment out from under
// a store-backed server: requests must degrade to the in-memory copy —
// identical bytes, identical ETag, no error — and the degradation must
// be visible on /varz.
func TestDeletedSegmentFallback(t *testing.T) {
	srv, st, dir := storedServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, before := get(t, ts, "/v1/table1")
	etag := resp.Header.Get("ETag")
	if fb := srv.metrics.artifactFallbacks.Load(); fb != 0 {
		t.Fatalf("fallbacks before deletion = %d", fb)
	}

	g, ok := st.Generation(srv.Snapshot().Gen)
	if !ok {
		t.Fatal("serving generation not in store")
	}
	if err := os.Remove(filepath.Join(dir, g.File)); err != nil {
		t.Fatal(err)
	}

	resp2, after := get(t, ts, "/v1/table1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-deletion status %d", resp2.StatusCode)
	}
	if !bytes.Equal(before, after) {
		t.Error("fallback body differs from the file-served body")
	}
	if resp2.Header.Get("ETag") != etag {
		t.Errorf("fallback ETag %s, want %s", resp2.Header.Get("ETag"), etag)
	}
	if fb := srv.metrics.artifactFallbacks.Load(); fb != 1 {
		t.Errorf("fallbacks = %d, want 1", fb)
	}

	_, raw := get(t, ts, "/varz")
	var v struct {
		ZeroCopy *varzZeroCopy `json:"zero_copy"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.ZeroCopy == nil || v.ZeroCopy.Fallbacks != 1 {
		t.Errorf("varz zero_copy = %+v, want fallbacks = 1", v.ZeroCopy)
	}
}
