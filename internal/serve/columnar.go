package serve

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"

	"ipv4market/internal/market"
	"ipv4market/internal/registry"
	"ipv4market/internal/stats"
)

// priceTable is the columnar in-memory layout of the snapshot's price
// cells. The filter columns (bits, region, quarter) are stored as plain
// slices so a filtered /v1/prices scan touches only the bytes it
// compares, and each row's JSON and CSV renderings are produced once at
// build time — rendering a filtered response is then a concatenation of
// pre-encoded fragments, with no per-row marshalling, no float
// formatting, and no intermediate []market.PriceCell copy.
//
// Byte-exactness contract: render(f) must produce exactly the bytes of
// newArtifact(viewPriceCells(filterPriceCells(cells, f.match)),
// priceCellsCSV(cells...)) — same bodies, same ETags — so warm-started
// and cold-built servers, and servers from before this layout existed,
// answer filtered queries identically. TestPriceTableRenderIdentity
// pins it.
type priceTable struct {
	bits    []int
	region  []registry.RIR
	quarter []stats.Quarter

	// jsonRow[i] is json.MarshalIndent(rowView, "    ", "  ") — the
	// array-element encoding at the exact depth it appears inside the
	// priceCellsView document. csvRow[i] is the row's rendered CSV line
	// including the terminator; csvHeader is the column-header line.
	jsonRow   [][]byte
	csvRow    [][]byte
	csvHeader []byte
}

// priceCSVHeader is the shared column layout of Figure1CSV and
// priceCellsCSV.
var priceCSVHeader = []string{"quarter", "prefix_bits", "region", "n", "min", "q1", "median", "q3", "max", "mean"}

// newPriceTable renders every cell once into the columnar layout.
func newPriceTable(cells []market.PriceCell) (*priceTable, error) {
	t := &priceTable{
		bits:    make([]int, len(cells)),
		region:  make([]registry.RIR, len(cells)),
		quarter: make([]stats.Quarter, len(cells)),
		jsonRow: make([][]byte, len(cells)),
		csvRow:  make([][]byte, len(cells)),
	}
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(priceCSVHeader); err != nil {
		return nil, fmt.Errorf("serve: price table header: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, fmt.Errorf("serve: price table header: %w", err)
	}
	t.csvHeader = append([]byte(nil), buf.Bytes()...)

	f2 := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for i, c := range cells {
		t.bits[i] = c.Bits
		t.region[i] = c.Region
		t.quarter[i] = c.Quarter

		view := priceCellView{
			Quarter: c.Quarter.String(),
			Bits:    c.Bits,
			Region:  c.Region.String(),
			N:       c.Box.N,
			Min:     c.Box.Min,
			Q1:      c.Box.Q1,
			Median:  c.Box.Median,
			Q3:      c.Box.Q3,
			Max:     c.Box.Max,
			Mean:    c.Box.Mean,
		}
		row, err := json.MarshalIndent(view, "    ", "  ")
		if err != nil {
			return nil, fmt.Errorf("serve: price table row %d: %w", i, err)
		}
		t.jsonRow[i] = row

		buf.Reset()
		err = cw.Write([]string{
			view.Quarter, strconv.Itoa(c.Bits), view.Region,
			strconv.Itoa(c.Box.N), f2(c.Box.Min), f2(c.Box.Q1), f2(c.Box.Median),
			f2(c.Box.Q3), f2(c.Box.Max), f2(c.Box.Mean),
		})
		if err != nil {
			return nil, fmt.Errorf("serve: price table row %d: %w", i, err)
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return nil, fmt.Errorf("serve: price table row %d: %w", i, err)
		}
		t.csvRow[i] = append([]byte(nil), buf.Bytes()...)
	}
	return t, nil
}

// len reports the row count.
func (t *priceTable) len() int { return len(t.bits) }

// selectRows scans the filter columns and returns the matching row
// indices in table order.
func (t *priceTable) selectRows(f priceFilter) []int {
	idx := make([]int, 0, t.len())
	for i := range t.bits {
		if f.bits != 0 && t.bits[i] != f.bits {
			continue
		}
		if f.hasRIR && t.region[i] != f.region {
			continue
		}
		if f.hasQuarter && t.quarter[i] != f.quarter {
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

// render materializes the filtered artifact by slicing column views and
// concatenating the selected rows' pre-encoded fragments.
func (t *priceTable) render(f priceFilter) *artifact {
	idx := t.selectRows(f)

	jsonSize := len(`{  "cells": [],  "n": `) + 8
	csvSize := len(t.csvHeader)
	for _, i := range idx {
		jsonSize += len(t.jsonRow[i]) + 6 // ",\n    " separator
		csvSize += len(t.csvRow[i])
	}

	// The JSON document mirrors json.MarshalIndent(priceCellsView, "",
	// "  ") byte for byte: a two-space-indented object with the cells
	// array first and the count after, trailing newline appended (as
	// newArtifact does).
	jb := bytes.NewBuffer(make([]byte, 0, jsonSize))
	jb.WriteString("{\n  \"cells\": [")
	for n, i := range idx {
		if n > 0 {
			jb.WriteByte(',')
		}
		jb.WriteString("\n    ")
		jb.Write(t.jsonRow[i])
	}
	if len(idx) > 0 {
		jb.WriteString("\n  ")
	}
	jb.WriteString("],\n  \"n\": ")
	jb.WriteString(strconv.Itoa(len(idx)))
	jb.WriteString("\n}\n")

	cb := bytes.NewBuffer(make([]byte, 0, csvSize))
	cb.Write(t.csvHeader)
	for _, i := range idx {
		cb.Write(t.csvRow[i])
	}

	art := &artifact{json: jb.Bytes(), csv: cb.Bytes()}
	art.jsonETag = etagOf(art.json)
	art.csvETag = etagOf(art.csv)
	return art
}
