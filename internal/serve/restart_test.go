package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRestartETagContinuity is the e2e restart test: build → persist →
// "restart" (a new server over the same data directory) and prove that
// a client's cached ETag from before the restart still answers 304
// Not Modified afterwards, byte-identical body included.
func TestRestartETagContinuity(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()

	// Phase 1: cold build, persist, capture what a client would cache.
	first, err := New(cfg, Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(first.Handler())
	cached := make(map[string]struct {
		etag string
		body []byte
	})
	paths := []string{
		"/v1/table1", "/v1/prices", "/v1/delegations", "/v1/headline",
		"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
		"/v1/asof/timeline?prefix=185.0.0.0/16",
	}
	for _, path := range paths {
		resp, body := get(t, ts1, path)
		if resp.StatusCode != 200 || resp.Header.Get("ETag") == "" {
			t.Fatalf("%s: status=%d etag=%q before restart", path, resp.StatusCode, resp.Header.Get("ETag"))
		}
		cached[path] = struct {
			etag string
			body []byte
		}{resp.Header.Get("ETag"), body}
	}
	ts1.Close() // the "crash": the process goes away, the data dir stays

	// Phase 2: a new process warm-starts over the same directory.
	second, err := New(cfg, Options{Store: openStore(t, dir), WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !second.WarmStarted() {
		t.Fatal("restarted server did not warm-start")
	}
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()

	for _, path := range paths {
		want := cached[path]
		resp, body := get(t, ts2, path)
		if !bytes.Equal(body, want.body) {
			t.Errorf("%s: body changed across restart", path)
		}
		if got := resp.Header.Get("ETag"); got != want.etag {
			t.Errorf("%s: ETag %q after restart, want %q", path, got, want.etag)
		}

		// The conditional request a cache would send: the pre-restart
		// ETag must still short-circuit to 304.
		req, err := http.NewRequest(http.MethodGet, ts2.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", want.etag)
		cresp, err := ts2.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		cresp.Body.Close()
		if cresp.StatusCode != http.StatusNotModified {
			t.Errorf("%s: conditional GET with pre-restart ETag: %d, want 304", path, cresp.StatusCode)
		}
	}
}

// TestHistoryEndpoint checks /v1/history: 404 without a store,
// otherwise one entry per persisted generation with build metadata.
func TestHistoryEndpoint(t *testing.T) {
	t.Run("no_store", func(t *testing.T) {
		ts := httptest.NewServer(sharedServer(t).Handler())
		defer ts.Close()
		resp, _ := get(t, ts, "/v1/history")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("history without store: %d, want 404", resp.StatusCode)
		}
	})

	t.Run("with_store", func(t *testing.T) {
		cfg := testConfig()
		srv, err := New(cfg, Options{Store: openStore(t, t.TempDir()), EnableAdmin: true})
		if err != nil {
			t.Fatal(err)
		}
		// A second generation via admin rebuild with a fresh seed.
		if !srv.RebuildAsync(srv.rebuildConfig(cfg.Seed+1, true)) {
			t.Fatal("rebuild not started")
		}
		srv.Wait()

		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, body := get(t, ts, "/v1/history")
		if resp.StatusCode != 200 {
			t.Fatalf("history: %d, want 200", resp.StatusCode)
		}
		var view historyView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("history document: %v", err)
		}
		if len(view.Generations) != 2 {
			t.Fatalf("history lists %d generations, want 2", len(view.Generations))
		}
		if view.ServingGen != 2 || view.ServingSource != string(SourceBuild) {
			t.Fatalf("serving_gen=%d source=%q, want 2/%q", view.ServingGen, view.ServingSource, SourceBuild)
		}
		for i, g := range view.Generations {
			if g.Gen != uint64(i+1) {
				t.Errorf("generation[%d].gen = %d, want %d", i, g.Gen, i+1)
			}
			if g.BuiltAt == "" || g.Bytes <= 0 || len(g.Stages) == 0 {
				t.Errorf("generation %d: missing build metadata (built_at=%q bytes=%d stages=%d)",
					g.Gen, g.BuiltAt, g.Bytes, len(g.Stages))
			}
		}
		if view.Generations[0].Seed == view.Generations[1].Seed {
			t.Error("reseeded rebuild recorded the same seed")
		}
	})
}

// TestPinnedGenerationReads drives ?gen= on the artifact endpoints:
// a pinned read serves the stored bytes and ETag of that generation
// even after a rebuild changed what is current.
func TestPinnedGenerationReads(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg, Options{Store: openStore(t, t.TempDir()), EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, gen1Body := get(t, ts, "/v1/prices")
	resp1, _ := get(t, ts, "/v1/prices?gen=1")
	etag1 := resp1.Header.Get("ETag")

	if !srv.RebuildAsync(srv.rebuildConfig(cfg.Seed+99, true)) {
		t.Fatal("rebuild not started")
	}
	srv.Wait()

	// Current moved on; the pin still answers with generation 1's bytes.
	resp, curBody := get(t, ts, "/v1/prices")
	if resp.StatusCode != 200 {
		t.Fatalf("current prices after rebuild: %d", resp.StatusCode)
	}
	if bytes.Equal(curBody, gen1Body) {
		t.Fatal("reseeded rebuild produced identical price bytes; test cannot distinguish generations")
	}
	respPin, pinBody := get(t, ts, "/v1/prices?gen=1")
	if respPin.StatusCode != 200 {
		t.Fatalf("pinned read: %d, want 200", respPin.StatusCode)
	}
	if !bytes.Equal(pinBody, gen1Body) {
		t.Error("?gen=1 body differs from generation 1's original bytes")
	}
	if got := respPin.Header.Get("ETag"); got != etag1 {
		t.Errorf("?gen=1 ETag %q, want %q", got, etag1)
	}

	// Pinning the current generation hits the snapshot fast path.
	resp2, pin2 := get(t, ts, "/v1/prices?gen=2")
	if resp2.StatusCode != 200 || !bytes.Equal(pin2, curBody) {
		t.Errorf("?gen=2: status=%d, body matches current=%v", resp2.StatusCode, bytes.Equal(pin2, curBody))
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/table1?gen=99", http.StatusNotFound},                        // never persisted
		{"/v1/table1?gen=0", http.StatusBadRequest},                       // not a generation
		{"/v1/table1?gen=abc", http.StatusBadRequest},                     // not a number
		{"/v1/prices?gen=1&size=/16", http.StatusBadRequest},              // filter + pin
		{"/v1/delegations?gen=1&prefix=8.0.0.0/8", http.StatusBadRequest}, // filter + pin
		{"/v1/prices?gen=1", http.StatusOK},                               // unfiltered pin is fine
		{"/v1/figures/2?gen=1", http.StatusOK},
	} {
		resp, _ := get(t, ts, tc.path)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestPinnedReadWithoutStore: ?gen= on a storeless server is 404, not a
// crash or a silent fallthrough to current.
func TestPinnedReadWithoutStore(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/v1/table1?gen=1")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("?gen= without store: %d, want 404", resp.StatusCode)
	}
}
