package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
)

// BenchmarkSnapshotBuild measures the write path: a full snapshot build
// (world generation, every analysis pipeline, encoding) at different
// build-stage worker counts. workers=1 is the serial reference; the
// NumCPU run is what marketd does at boot and on rebuild. Baselines live
// in BENCH_build.json; the speedup is bounded by the hardware's core
// count and by the serial study stage (Amdahl), so on a single-core
// machine all rows converge.
func BenchmarkSnapshotBuild(b *testing.B) {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := BuildSnapshotOpts(testConfig(), BuildOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if snap.Delegations.Len() == 0 {
					b.Fatal("empty delegation index")
				}
			}
		})
	}
}

// BenchmarkSnapshotServe measures the fast path: requests against a
// prebuilt snapshot, in parallel (RunParallel mirrors a concurrent
// client population). The snapshot builds once, outside the timer — the
// point of the architecture is that request cost is decoupled from
// study cost, and these numbers are the request cost. Baselines live in
// BENCH_serve.json.
func BenchmarkSnapshotServe(b *testing.B) {
	srv, err := New(testConfig(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()

	bench := func(path string, header http.Header) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodGet, path, nil)
					for k, vs := range header {
						req.Header[k] = vs
					}
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotModified {
						b.Fatalf("%s: status %d", path, rec.Code)
					}
				}
			})
		}
	}

	b.Run("table1", bench("/v1/table1", nil))
	b.Run("prices_full", bench("/v1/prices", nil))
	b.Run("prices_filtered", bench("/v1/prices?size=/16&region=ARIN", nil))
	b.Run("delegation_lookup", bench("/v1/delegations?prefix=185.0.0.0/16", nil))
	b.Run("varz", bench("/varz", nil))

	// The 304 path: client revalidation against a warm ETag.
	art, ok := srv.Snapshot().staticArtifact("table1")
	if !ok {
		b.Fatal("no table1 artifact")
	}
	b.Run("table1_304", bench("/v1/table1", http.Header{"If-None-Match": {art.jsonETag}}))
}
