package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"ipv4market/internal/store"
)

// BenchmarkSnapshotBuild measures the write path: a full snapshot build
// (world generation, every analysis pipeline, encoding) at different
// build-stage worker counts. workers=1 is the serial reference; the
// NumCPU run is what marketd does at boot and on rebuild. Baselines live
// in BENCH_build.json; the speedup is bounded by the hardware's core
// count and by the serial study stage (Amdahl), so on a single-core
// machine all rows converge.
func BenchmarkSnapshotBuild(b *testing.B) {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := BuildSnapshotOpts(testConfig(), BuildOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if snap.Delegations.Len() == 0 {
					b.Fatal("empty delegation index")
				}
			}
		})
	}
}

// benchWriter is the benchmark's ResponseWriter: it discards bodies but
// — unlike httptest.ResponseRecorder — implements io.ReaderFrom with a
// pooled copy buffer, the same fast path a production *http.response
// offers. This keeps the measured bytes/op about the handler's own
// allocations instead of recorder buffer growth: with the recorder, a
// 200 KB body showed up as ~200 KB/op of pure harness artifact.
type benchWriter struct {
	header http.Header
	status int
	n      int64
}

var benchCopyBuf = sync.Pool{New: func() any {
	b := make([]byte, 32*1024)
	return &b
}}

func (w *benchWriter) Header() http.Header  { return w.header }
func (w *benchWriter) WriteHeader(code int) { w.status = code }

func (w *benchWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

// ReadFrom drains r through a pooled buffer. The onlyWriter wrapper
// hides ReadFrom from io.CopyBuffer so the copy cannot recurse.
func (w *benchWriter) ReadFrom(r io.Reader) (int64, error) {
	bp := benchCopyBuf.Get().(*[]byte)
	defer benchCopyBuf.Put(bp)
	return io.CopyBuffer(onlyWriter{w}, r, *bp)
}

type onlyWriter struct{ io.Writer }

func (w *benchWriter) reset() {
	clear(w.header)
	w.status = 0
	w.n = 0
}

// benchServer builds the server the serve benchmarks run against:
// store-backed (like marketd with -data-dir), so the static artifact
// rows measure the zero-copy segment-file path production takes.
func benchServer(b *testing.B) *Server {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(testConfig(), Options{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	if srv.Snapshot().Gen == 0 {
		b.Fatal("benchmark snapshot was not persisted")
	}
	return srv
}

// BenchmarkSnapshotServe measures the fast path: requests against a
// prebuilt snapshot, in parallel (RunParallel mirrors a concurrent
// client population). The snapshot builds once, outside the timer — the
// point of the architecture is that request cost is decoupled from
// study cost, and these numbers are the request cost. Bodies are
// validated once per row outside the timer, then discarded through
// benchWriter inside it. Baselines live in BENCH_serve.json.
func BenchmarkSnapshotServe(b *testing.B) {
	srv := benchServer(b)
	h := srv.Handler()

	bench := func(path string, header http.Header, wantStatus int) func(*testing.B) {
		return func(b *testing.B) {
			// Correctness gate outside the timer: the route must answer
			// with the expected status and a non-empty body on 200.
			probe := httptest.NewRecorder()
			probeReq := httptest.NewRequest(http.MethodGet, path, nil)
			for k, vs := range header {
				probeReq.Header[k] = vs
			}
			h.ServeHTTP(probe, probeReq)
			if probe.Code != wantStatus {
				b.Fatalf("%s: status %d, want %d", path, probe.Code, wantStatus)
			}
			if wantStatus == http.StatusOK && probe.Body.Len() == 0 {
				b.Fatalf("%s: empty body", path)
			}

			tmpl := httptest.NewRequest(http.MethodGet, path, nil)
			for k, vs := range header {
				tmpl.Header[k] = vs
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				w := &benchWriter{header: make(http.Header, 8)}
				for pb.Next() {
					w.reset()
					req := *tmpl
					h.ServeHTTP(w, &req)
					if w.status != wantStatus {
						b.Fatalf("%s: status %d, want %d", path, w.status, wantStatus)
					}
				}
			})
		}
	}

	b.Run("table1", bench("/v1/table1", nil, http.StatusOK))
	b.Run("prices_full", bench("/v1/prices", nil, http.StatusOK))
	b.Run("prices_filtered", bench("/v1/prices?size=/16&region=ARIN", nil, http.StatusOK))
	b.Run("delegation_lookup", bench("/v1/delegations?prefix=185.0.0.0/16", nil, http.StatusOK))
	b.Run("asof_point", bench("/v1/asof?date=2019-06-01&prefix=185.0.0.0/16", nil, http.StatusOK))
	b.Run("varz", bench("/varz", nil, http.StatusOK))

	// The 304 path: client revalidation against a warm ETag.
	art, ok := srv.Snapshot().staticArtifact("table1")
	if !ok {
		b.Fatal("no table1 artifact")
	}
	b.Run("table1_304", bench("/v1/table1", http.Header{"If-None-Match": {art.jsonETag}}, http.StatusNotModified))
}

// TestServeAllocRegression holds the zero-copy read path to its
// budget: serving the full price artifact must stay well under the
// ~220 KB/op the buffer-copying path cost, even measured through the
// same discarding harness. A regression that reintroduces a per-request
// body copy trips this immediately.
func TestServeAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark-backed regression check in -short mode")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(testConfig(), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	for _, row := range []struct {
		name, path string
		maxBytes   int64
	}{
		// The artifact bodies here are ~40-200 KB; the budgets leave room
		// for harness noise while sitting an order of magnitude below a
		// full body copy.
		{"prices_full", "/v1/prices", 16 << 10},
		{"prices_filtered", "/v1/prices?size=/16&region=ARIN", 16 << 10},
		{"table1", "/v1/table1", 16 << 10},
	} {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			tmpl := httptest.NewRequest(http.MethodGet, row.path, nil)
			w := &benchWriter{header: make(http.Header, 8)}
			for i := 0; i < b.N; i++ {
				w.reset()
				req := *tmpl
				h.ServeHTTP(w, &req)
				if w.status != http.StatusOK {
					b.Fatalf("%s: status %d", row.path, w.status)
				}
			}
		})
		if got := res.AllocedBytesPerOp(); got > row.maxBytes {
			t.Errorf("%s: %d bytes/op, budget %d — a per-request body copy crept back in",
				row.name, got, row.maxBytes)
		}
	}
}
