package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkSnapshotServe measures the fast path: requests against a
// prebuilt snapshot, in parallel (RunParallel mirrors a concurrent
// client population). The snapshot builds once, outside the timer — the
// point of the architecture is that request cost is decoupled from
// study cost, and these numbers are the request cost. Baselines live in
// BENCH_serve.json.
func BenchmarkSnapshotServe(b *testing.B) {
	srv, err := New(testConfig(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()

	bench := func(path string, header http.Header) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodGet, path, nil)
					for k, vs := range header {
						req.Header[k] = vs
					}
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotModified {
						b.Fatalf("%s: status %d", path, rec.Code)
					}
				}
			})
		}
	}

	b.Run("table1", bench("/v1/table1", nil))
	b.Run("prices_full", bench("/v1/prices", nil))
	b.Run("prices_filtered", bench("/v1/prices?size=/16&region=ARIN", nil))
	b.Run("delegation_lookup", bench("/v1/delegations?prefix=185.0.0.0/16", nil))
	b.Run("varz", bench("/varz", nil))

	// The 304 path: client revalidation against a warm ETag.
	art, ok := srv.Snapshot().staticArtifact("table1")
	if !ok {
		b.Fatal("no table1 artifact")
	}
	b.Run("table1_304", bench("/v1/table1", http.Header{"If-None-Match": {art.jsonETag}}))
}
