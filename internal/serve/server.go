package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipv4market/internal/simulation"
)

// Options tunes a Server. The zero value picks sensible defaults.
type Options struct {
	// Timeout bounds each request's handler time (default 10s).
	Timeout time.Duration
	// CacheSize caps the per-snapshot filtered-query cache (default 256).
	CacheSize int
	// EnableAdmin exposes POST /admin/rebuild when set.
	EnableAdmin bool
	// BuildWorkers caps snapshot build-stage concurrency (<= 0: NumCPU).
	// Any value yields byte-identical snapshots; see BuildOptions.
	BuildWorkers int
	// Logf, when set, receives operational log lines (rebuild failures
	// with the failing stage, swap notices). No trailing newline needed.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	return o
}

// state pairs a snapshot with the query cache rendered from it. They swap
// together so a cached response can never describe a different snapshot
// generation than the one being served.
type state struct {
	snap  *Snapshot
	cache *queryCache
}

// Server serves one Snapshot at a time over HTTP. Reads are wait-free on
// the snapshot pointer: handlers load the current state once and use it
// for the whole request, so a concurrent swap never mixes generations.
// Rebuilds happen on a background goroutine and only the finished
// snapshot is swapped in; readers are never blocked by a build.
type Server struct {
	opts    Options
	metrics *Metrics
	mux     *http.ServeMux

	st       atomic.Pointer[state]
	seq      atomic.Uint64
	building atomic.Bool
	wg       sync.WaitGroup

	// lastRebuildErr holds the most recent background-rebuild failure
	// (an error string wrapped with the failing stage name), "" after a
	// success. Exposed on /varz so partial-build failures are
	// diagnosable without log access.
	lastRebuildErr atomic.Value // string
}

// New builds the initial snapshot for cfg synchronously (so a listening
// server is always ready) and returns the serving layer around it.
func New(cfg simulation.Config, opts Options) (*Server, error) {
	s := &Server{
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	snap, err := BuildSnapshotOpts(cfg, s.buildOptions())
	if err != nil {
		return nil, err
	}
	snap.Seq = s.seq.Add(1)
	s.lastRebuildErr.Store("")
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
	s.routes()
	return s, nil
}

// buildOptions derives the snapshot build options from the server
// options.
func (s *Server) buildOptions() BuildOptions {
	return BuildOptions{Workers: s.opts.BuildWorkers}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counter registry (shared with /varz).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.st.Load().snap }

// current returns the full serving state for one request's lifetime.
func (s *Server) current() *state { return s.st.Load() }

// swap publishes a freshly built snapshot together with an empty query
// cache sized from the options. Readers holding the old state keep using
// it untouched.
func (s *Server) swap(snap *Snapshot) {
	snap.Seq = s.seq.Add(1)
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
}

// Rebuilding reports whether a background rebuild is in flight.
func (s *Server) Rebuilding() bool { return s.building.Load() }

// RebuildAsync starts a background rebuild with cfg and reports whether
// it was started; it declines (returning false) while another rebuild is
// already in flight, so concurrent triggers cannot stack builds. The
// result is published via swap on success and counted on failure either
// way; Wait blocks until all started rebuilds finish.
func (s *Server) RebuildAsync(cfg simulation.Config) bool {
	if !s.building.CompareAndSwap(false, true) {
		return false
	}
	s.wg.Add(1)
	go func() { // coordinated: wg.Done + building flag released in defer
		defer s.wg.Done()
		defer s.building.Store(false)
		s.metrics.rebuilds.Add(1)
		snap, err := BuildSnapshotOpts(cfg, s.buildOptions())
		if err != nil {
			// The error arrives wrapped with the failing stage name
			// ("serve: build stage %q: ..."); keep the chain intact so
			// both the log line and /varz name the stage.
			s.metrics.rebuildErrors.Add(1)
			s.lastRebuildErr.Store(err.Error())
			s.logf("serve: rebuild failed (seed=%d): %v", cfg.Seed, err)
			return
		}
		s.lastRebuildErr.Store("")
		s.swap(snap)
		s.logf("serve: rebuild complete: seq=%d seed=%d in %v (%d workers)",
			snap.Seq, snap.Cfg.Seed, snap.BuildTime.Round(time.Millisecond), snap.Workers)
	}()
	return true
}

// Wait blocks until every in-flight background rebuild has finished. Call
// it during shutdown after the listener has drained.
func (s *Server) Wait() { s.wg.Wait() }

// varz assembles the full counter document, including snapshot identity
// and cache occupancy from the current generation.
func (s *Server) varz(now time.Time) varzView {
	v := s.metrics.varz(now)
	st := s.current()
	v.Snapshot = varzSnapshot{
		Seq:          st.snap.Seq,
		Seed:         st.snap.Cfg.Seed,
		BuiltAt:      st.snap.BuiltAt.UTC().Format(time.RFC3339),
		AgeSeconds:   st.snap.Age(now).Seconds(),
		BuildSeconds: st.snap.BuildTime.Seconds(),
		BuildWorkers: st.snap.Workers,
		Delegations:  st.snap.Delegations.Len(),
		Transfers:    len(st.snap.Transfers),
	}
	for _, stg := range st.snap.Stages {
		v.Snapshot.BuildStages = append(v.Snapshot.BuildStages, varzStage{
			Name:    stg.Name,
			Seconds: stg.Duration.Seconds(),
		})
	}
	v.Cache.Entries = st.cache.size()
	v.Rebuilds.InFlight = s.building.Load()
	if msg, _ := s.lastRebuildErr.Load().(string); msg != "" {
		v.Rebuilds.LastError = msg
	}
	return v
}

// rebuildConfig derives the config for an admin-triggered rebuild: the
// current snapshot's config, optionally reseeded.
func (s *Server) rebuildConfig(seed int64, reseed bool) simulation.Config {
	cfg := s.Snapshot().Cfg
	if reseed {
		cfg.Seed = seed
	}
	return cfg
}

// String identifies the server's snapshot generation (used in logs).
func (s *Server) String() string {
	snap := s.Snapshot()
	return fmt.Sprintf("serve.Server{seq=%d seed=%d}", snap.Seq, snap.Cfg.Seed)
}
