package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipv4market/internal/simulation"
	"ipv4market/internal/store"
)

// Options tunes a Server. The zero value picks sensible defaults.
type Options struct {
	// Timeout bounds each request's handler time (default 10s).
	Timeout time.Duration
	// CacheSize caps the per-snapshot filtered-query cache (default 256).
	CacheSize int
	// EnableAdmin exposes POST /admin/rebuild when set.
	EnableAdmin bool
	// BuildWorkers caps snapshot build-stage concurrency (<= 0: NumCPU).
	// Any value yields byte-identical snapshots; see BuildOptions.
	BuildWorkers int
	// Store, when set, is the durable snapshot store: every successful
	// build is persisted to it, /v1/history and ?gen= pinned reads are
	// served from it, and WarmStart restores from it.
	Store *store.Store
	// StoreKeep bounds retention: after each persist the store is
	// compacted to the newest StoreKeep generations (< 1: keep all).
	StoreKeep int
	// WarmStart makes New restore the newest valid store generation
	// instead of building a snapshot, so a restarted server answers its
	// first request immediately. The caller decides whether to follow up
	// with RebuildAsync for a fresh build (cmd/marketd does). With no
	// store, an empty store, or a failed restore, New falls back to a
	// cold build.
	WarmStart bool
	// Follower makes this server a replication follower: it only ever
	// serves generations restored from its Store (seeded by
	// internal/replicate), never builds locally, and refuses rebuilds
	// (RebuildAsync declines, POST /admin/rebuild answers 409). New
	// fails instead of cold-building when the store has no restorable
	// generation — the caller must sync one first.
	Follower bool
	// ReplicationVarz, when set, supplies the `replication` section of
	// /varz (a replicate.Leader's or replicate.Replicator's Varz). A
	// func hook keeps serve free of a dependency on internal/replicate.
	ReplicationVarz func() any
	// ScenarioList, when set, supplies the GET /v1/scenarios document (a
	// scenario.Registry's listing). Unset, the endpoint describes the
	// single implicit scenario this server serves — the same func-hook
	// pattern as ReplicationVarz keeps serve free of a dependency on
	// internal/scenario.
	ScenarioList func() any
	// ScenarioVarz, when set, supplies the `scenarios` section of /varz
	// (per-scenario generation, build timings, and store bytes). The flat
	// /varz fields always describe this server alone, so on a
	// multi-scenario deployment the default scenario's server carries
	// both views and dashboards keyed on the flat fields keep working.
	ScenarioVarz func() any
	// ReadyCheck, when set, gates /readyz: a non-nil error makes the
	// endpoint answer 503 with the error as the reason, so a router
	// polling /readyz drains this node until the check clears. Followers
	// use it to reflect replication lag (replicate.Replicator.ReadyCheck
	// wired by cmd/marketd's -max-lag flag); the same func-hook pattern
	// as ReplicationVarz keeps serve dependency-free. It is called on
	// every /readyz request and must be safe for concurrent use.
	ReadyCheck func() error
	// Logf, when set, receives operational log lines (rebuild failures
	// with the failing stage, swap notices). No trailing newline needed.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	return o
}

// state pairs a snapshot with the query cache rendered from it. They swap
// together so a cached response can never describe a different snapshot
// generation than the one being served.
type state struct {
	snap  *Snapshot
	cache *queryCache
}

// Server serves one Snapshot at a time over HTTP. Reads are wait-free on
// the snapshot pointer: handlers load the current state once and use it
// for the whole request, so a concurrent swap never mixes generations.
// Rebuilds happen on a background goroutine and only the finished
// snapshot is swapped in; readers are never blocked by a build.
type Server struct {
	opts    Options
	metrics *Metrics
	mux     *http.ServeMux
	// patterns records every route pattern registered on the mux
	// (built-ins via handle, extras via Mount), in registration order.
	// Written only during construction and pre-serving Mount calls;
	// Routes exposes it so tests can hold documentation to the real
	// surface.
	patterns []string
	// baseCfg is the config the server was constructed with; follower
	// mode restores adopted generations against it (restoreSnapshot
	// overlays the persisted meta's identity fields).
	baseCfg simulation.Config

	st       atomic.Pointer[state]
	seq      atomic.Uint64
	building atomic.Bool
	wg       sync.WaitGroup

	// gens caches decoded artifact maps of past store generations for
	// ?gen= pinned reads; warm reports whether this server booted from
	// the store instead of a cold build.
	gens *genCache
	warm bool

	// lastRebuildErr holds the most recent background-rebuild failure
	// (an error string wrapped with the failing stage name), "" after a
	// success. Exposed on /varz so partial-build failures are
	// diagnosable without log access.
	lastRebuildErr atomic.Value // string
}

// New returns the serving layer for cfg with a snapshot ready to serve:
// restored from the durable store when Options.WarmStart finds a valid
// generation (the restore is milliseconds where a build is seconds —
// the point of the store), built synchronously otherwise. A cold-built
// initial snapshot is persisted like any other successful build.
func New(cfg simulation.Config, opts Options) (*Server, error) {
	s := &Server{
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		baseCfg: cfg,
		gens:    newGenCache(pinnedGenerations),
	}
	s.lastRebuildErr.Store("")

	snap := s.tryWarmStart(cfg)
	if snap == nil {
		if s.opts.Follower {
			// A follower never builds: its snapshots come from the leader.
			// The caller (cmd/marketd) runs an initial sync before New.
			return nil, fmt.Errorf("serve: follower mode: no restorable generation in store")
		}
		var err error
		if snap, err = BuildSnapshotOpts(cfg, s.buildOptions()); err != nil {
			return nil, err
		}
		s.persist(snap)
	}
	snap.Seq = s.seq.Add(1)
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
	s.routes()
	return s, nil
}

// tryWarmStart restores the newest valid store generation when warm
// starts are enabled. It returns nil — meaning "cold-build instead" —
// for a missing store, an empty store, or a failed restore; a restore
// failure is logged, never fatal, because the cold path always works.
func (s *Server) tryWarmStart(cfg simulation.Config) *Snapshot {
	if s.opts.Store == nil || !(s.opts.WarmStart || s.opts.Follower) {
		return nil
	}
	latest, ok := s.opts.Store.Latest()
	if !ok {
		return nil
	}
	meta, arts, err := s.opts.Store.Load(latest.Gen)
	if err == nil {
		var snap *Snapshot
		if snap, err = restoreSnapshot(meta, arts, cfg); err == nil {
			s.warm = true
			return snap
		}
	}
	s.logf("serve: warm start from generation %d failed, cold building: %v", latest.Gen, err)
	return nil
}

// WarmStarted reports whether this server booted by restoring a store
// generation rather than building a snapshot.
func (s *Server) WarmStarted() bool { return s.warm }

// persist writes a freshly built snapshot to the durable store (when
// one is configured) and enforces retention. Persistence is best-effort
// by design: the snapshot serves from memory either way, so a full
// disk degrades durability, not availability. Failures are logged and
// surface in /varz store.last_persist_error.
func (s *Server) persist(snap *Snapshot) {
	if s.opts.Store == nil || s.opts.Follower {
		// A follower's store is written exclusively by the replicator;
		// persisting here would mint generation IDs the leader never
		// issued.
		return
	}
	meta, arts, err := snapshotRecord(snap)
	if err != nil {
		s.logf("serve: persist: %v", err)
		return
	}
	meta, err = s.opts.Store.Append(meta, arts)
	if err != nil {
		s.logf("serve: persist: %v", err)
		return
	}
	snap.Gen = meta.Gen
	if removed, err := s.opts.Store.CompactTo(s.opts.StoreKeep); err != nil {
		s.logf("serve: compact: %v", err)
	} else if removed > 0 {
		s.logf("serve: retention: compacted %d old generation(s), keeping %d", removed, s.opts.StoreKeep)
	}
	s.logf("serve: persisted generation %d", meta.Gen)
}

// buildOptions derives the snapshot build options from the server
// options.
func (s *Server) buildOptions() BuildOptions {
	return BuildOptions{Workers: s.opts.BuildWorkers}
}

// logf forwards to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counter registry (shared with /varz).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.st.Load().snap }

// current returns the full serving state for one request's lifetime.
func (s *Server) current() *state { return s.st.Load() }

// swap publishes a freshly built snapshot together with an empty query
// cache sized from the options. Readers holding the old state keep using
// it untouched.
func (s *Server) swap(snap *Snapshot) {
	snap.Seq = s.seq.Add(1)
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
}

// Rebuilding reports whether a background rebuild is in flight.
func (s *Server) Rebuilding() bool { return s.building.Load() }

// Follower reports whether this server runs in replication-follower
// mode (serves adopted generations only, refuses local rebuilds).
func (s *Server) Follower() bool { return s.opts.Follower }

// Mount registers an extra handler (e.g. the replication leader
// endpoints) through the same middleware stack as the built-in routes.
// A non-positive timeout disables the per-request timeout layer — pass
// 0 for endpoints that stream large bodies. Call before serving begins;
// the mux is read-only afterwards.
func (s *Server) Mount(pattern string, h http.Handler, timeout time.Duration) {
	s.patterns = append(s.patterns, pattern)
	s.mux.Handle(pattern, Wrap(h, s.metrics, pattern, timeout))
}

// Routes returns every route pattern registered on this server's mux —
// the built-in endpoints plus anything Mounted — sorted. It is the
// authoritative HTTP surface; the docs-drift test checks docs/API.md
// against it.
func (s *Server) Routes() []string {
	out := append([]string(nil), s.patterns...)
	sort.Strings(out)
	return out
}

// AdoptGeneration loads gen from the store, restores it against the
// server's base config, and hot-swaps it in as the served snapshot —
// the follower-side counterpart of a rebuild. internal/replicate calls
// it (through the Apply hook) after importing a new generation; readers
// are never blocked, exactly as with a rebuild swap.
func (s *Server) AdoptGeneration(gen uint64) error {
	if s.opts.Store == nil {
		return fmt.Errorf("serve: adopt generation %d: no store configured", gen)
	}
	meta, arts, err := s.opts.Store.Load(gen)
	if err != nil {
		return fmt.Errorf("serve: adopt generation %d: %w", gen, err)
	}
	snap, err := restoreSnapshot(meta, arts, s.baseCfg)
	if err != nil {
		return fmt.Errorf("serve: adopt generation %d: %w", gen, err)
	}
	s.swap(snap)
	s.logf("serve: adopted generation %d (seq=%d)", gen, snap.Seq)
	return nil
}

// RebuildAsync starts a background rebuild with cfg and reports whether
// it was started; it declines (returning false) while another rebuild is
// already in flight, so concurrent triggers cannot stack builds. The
// result is published via swap on success and counted on failure either
// way; Wait blocks until all started rebuilds finish.
func (s *Server) RebuildAsync(cfg simulation.Config) bool {
	if s.opts.Follower {
		return false // followers adopt generations, they never build
	}
	if !s.building.CompareAndSwap(false, true) {
		return false
	}
	s.wg.Add(1)
	go func() { // coordinated: wg.Done + building flag released in defer
		defer s.wg.Done()
		defer s.building.Store(false)
		s.metrics.rebuilds.Add(1)
		snap, err := BuildSnapshotOpts(cfg, s.buildOptions())
		if err != nil {
			// The error arrives wrapped with the failing stage name
			// ("serve: build stage %q: ..."); keep the chain intact so
			// both the log line and /varz name the stage.
			s.metrics.rebuildErrors.Add(1)
			s.lastRebuildErr.Store(err.Error())
			s.logf("serve: rebuild failed (seed=%d): %v", cfg.Seed, err)
			return
		}
		s.lastRebuildErr.Store("")
		s.persist(snap) // before swap: Gen is read-only once published
		s.swap(snap)
		s.logf("serve: rebuild complete: seq=%d gen=%d seed=%d in %v (%d workers)",
			snap.Seq, snap.Gen, snap.Cfg.Seed, snap.BuildTime.Round(time.Millisecond), snap.Workers)
	}()
	return true
}

// Wait blocks until every in-flight background rebuild has finished. Call
// it during shutdown after the listener has drained.
func (s *Server) Wait() { s.wg.Wait() }

// varz assembles the full counter document, including snapshot identity
// and cache occupancy from the current generation and — when a store is
// configured — the durable store's health.
func (s *Server) varz(now time.Time) varzView {
	v := s.metrics.varz(now)
	st := s.current()
	v.Snapshot = &varzSnapshot{
		Seq:          st.snap.Seq,
		Gen:          st.snap.Gen,
		Source:       string(st.snap.Source),
		Seed:         st.snap.Cfg.Seed,
		BuiltAt:      st.snap.BuiltAt.UTC().Format(time.RFC3339),
		AgeSeconds:   st.snap.Age(now).Seconds(),
		BuildSeconds: st.snap.BuildTime.Seconds(),
		BuildWorkers: st.snap.Workers,
		Delegations:  st.snap.Delegations.Len(),
		Transfers:    st.snap.TransferTotal(),
	}
	if ix := st.snap.Temporal; ix != nil {
		v.Snapshot.TemporalEvents = ix.EventCount()
		v.Snapshot.TemporalSpans = ix.SpanCount()
	}
	for _, stg := range st.snap.Stages {
		v.Snapshot.BuildStages = append(v.Snapshot.BuildStages, varzStage{
			Name:    stg.Name,
			Seconds: stg.Duration.Seconds(),
		})
	}
	v.Cache = &varzCache{
		Hits:      s.metrics.cacheHits.Load(),
		Misses:    s.metrics.cacheMisses.Load(),
		Collapsed: s.metrics.cacheCollapsed.Load(),
		Entries:   st.cache.size(),
	}
	v.ZeroCopy = &varzZeroCopy{
		FileReads: s.metrics.artifactFileReads.Load(),
		MemReads:  s.metrics.artifactMemReads.Load(),
		Fallbacks: s.metrics.artifactFallbacks.Load(),
	}
	v.Rebuilds = &varzRebuilds{
		Total:    s.metrics.rebuilds.Load(),
		Errors:   s.metrics.rebuildErrors.Load(),
		InFlight: s.building.Load(),
	}
	if msg, _ := s.lastRebuildErr.Load().(string); msg != "" {
		v.Rebuilds.LastError = msg
	}
	if s.opts.Store != nil {
		stats := s.opts.Store.Stats()
		v.Store = &varzStore{
			Segments:             stats.Segments,
			Bytes:                stats.Bytes,
			NextGen:              stats.NextGen,
			Persists:             stats.Persists,
			PersistErrors:        stats.PersistErrors,
			LastPersistError:     stats.LastPersistError,
			TruncatedTails:       stats.TruncatedTails,
			RecoveredGenerations: stats.RecoveredGenerations,
			CompactedSegments:    stats.CompactedSegments,
			ImportedSegments:     stats.ImportedSegments,
			WarmStart:            s.warm,
		}
	}
	if s.opts.ReplicationVarz != nil {
		v.Replication = s.opts.ReplicationVarz()
	}
	if s.opts.ScenarioVarz != nil {
		v.Scenarios = s.opts.ScenarioVarz()
	}
	return v
}

// rebuildConfig derives the config for an admin-triggered rebuild: the
// current snapshot's config, optionally reseeded.
func (s *Server) rebuildConfig(seed int64, reseed bool) simulation.Config {
	cfg := s.Snapshot().Cfg
	if reseed {
		cfg.Seed = seed
	}
	return cfg
}

// String identifies the server's snapshot generation (used in logs).
func (s *Server) String() string {
	snap := s.Snapshot()
	return fmt.Sprintf("serve.Server{seq=%d seed=%d}", snap.Seq, snap.Cfg.Seed)
}
