package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipv4market/internal/simulation"
)

// Options tunes a Server. The zero value picks sensible defaults.
type Options struct {
	// Timeout bounds each request's handler time (default 10s).
	Timeout time.Duration
	// CacheSize caps the per-snapshot filtered-query cache (default 256).
	CacheSize int
	// EnableAdmin exposes POST /admin/rebuild when set.
	EnableAdmin bool
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	return o
}

// state pairs a snapshot with the query cache rendered from it. They swap
// together so a cached response can never describe a different snapshot
// generation than the one being served.
type state struct {
	snap  *Snapshot
	cache *queryCache
}

// Server serves one Snapshot at a time over HTTP. Reads are wait-free on
// the snapshot pointer: handlers load the current state once and use it
// for the whole request, so a concurrent swap never mixes generations.
// Rebuilds happen on a background goroutine and only the finished
// snapshot is swapped in; readers are never blocked by a build.
type Server struct {
	opts    Options
	metrics *Metrics
	mux     *http.ServeMux

	st       atomic.Pointer[state]
	seq      atomic.Uint64
	building atomic.Bool
	wg       sync.WaitGroup
}

// New builds the initial snapshot for cfg synchronously (so a listening
// server is always ready) and returns the serving layer around it.
func New(cfg simulation.Config, opts Options) (*Server, error) {
	s := &Server{
		opts:    opts.withDefaults(),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	snap, err := BuildSnapshot(cfg)
	if err != nil {
		return nil, err
	}
	snap.Seq = s.seq.Add(1)
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
	s.routes()
	return s, nil
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counter registry (shared with /varz).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Snapshot returns the currently served snapshot.
func (s *Server) Snapshot() *Snapshot { return s.st.Load().snap }

// current returns the full serving state for one request's lifetime.
func (s *Server) current() *state { return s.st.Load() }

// swap publishes a freshly built snapshot together with an empty query
// cache sized from the options. Readers holding the old state keep using
// it untouched.
func (s *Server) swap(snap *Snapshot) {
	snap.Seq = s.seq.Add(1)
	s.st.Store(&state{snap: snap, cache: newQueryCache(s.opts.CacheSize)})
}

// Rebuilding reports whether a background rebuild is in flight.
func (s *Server) Rebuilding() bool { return s.building.Load() }

// RebuildAsync starts a background rebuild with cfg and reports whether
// it was started; it declines (returning false) while another rebuild is
// already in flight, so concurrent triggers cannot stack builds. The
// result is published via swap on success and counted on failure either
// way; Wait blocks until all started rebuilds finish.
func (s *Server) RebuildAsync(cfg simulation.Config) bool {
	if !s.building.CompareAndSwap(false, true) {
		return false
	}
	s.wg.Add(1)
	go func() { // coordinated: wg.Done + building flag released in defer
		defer s.wg.Done()
		defer s.building.Store(false)
		s.metrics.rebuilds.Add(1)
		snap, err := BuildSnapshot(cfg)
		if err != nil {
			s.metrics.rebuildErrors.Add(1)
			return
		}
		s.swap(snap)
	}()
	return true
}

// Wait blocks until every in-flight background rebuild has finished. Call
// it during shutdown after the listener has drained.
func (s *Server) Wait() { s.wg.Wait() }

// varz assembles the full counter document, including snapshot identity
// and cache occupancy from the current generation.
func (s *Server) varz(now time.Time) varzView {
	v := s.metrics.varz(now)
	st := s.current()
	v.Snapshot = varzSnapshot{
		Seq:          st.snap.Seq,
		Seed:         st.snap.Cfg.Seed,
		BuiltAt:      st.snap.BuiltAt.UTC().Format(time.RFC3339),
		AgeSeconds:   st.snap.Age(now).Seconds(),
		BuildSeconds: st.snap.BuildTime.Seconds(),
		Delegations:  st.snap.Delegations.Len(),
		Transfers:    len(st.snap.Transfers),
	}
	v.Cache.Entries = st.cache.size()
	v.Rebuilds.InFlight = s.building.Load()
	return v
}

// rebuildConfig derives the config for an admin-triggered rebuild: the
// current snapshot's config, optionally reseeded.
func (s *Server) rebuildConfig(seed int64, reseed bool) simulation.Config {
	cfg := s.Snapshot().Cfg
	if reseed {
		cfg.Seed = seed
	}
	return cfg
}

// String identifies the server's snapshot generation (used in logs).
func (s *Server) String() string {
	snap := s.Snapshot()
	return fmt.Sprintf("serve.Server{seq=%d seed=%d}", snap.Seq, snap.Cfg.Seed)
}
