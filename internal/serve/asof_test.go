package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"ipv4market/internal/temporal"
)

// TestAsofRequestValidation pins the /v1/asof error surface: every bad
// request answers a structured JSON 400/404 whose message tells the
// client how to fix it — malformed dates name the accepted format,
// out-of-range dates name the indexed epoch.
func TestAsofRequestValidation(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
		msg  string // substring the error must carry; empty for 200s
	}{
		{"/v1/asof", http.StatusBadRequest, "date=YYYY-MM-DD"},
		{"/v1/asof?date=2019-06-01", http.StatusBadRequest, "prefix"},
		{"/v1/asof?prefix=10.0.0.0/8", http.StatusBadRequest, "date"},
		{"/v1/asof?date=06/01/2019&prefix=10.0.0.0/8", http.StatusBadRequest, "want YYYY-MM-DD"},
		{"/v1/asof?date=2019-13-40&prefix=10.0.0.0/8", http.StatusBadRequest, "want YYYY-MM-DD"},
		{"/v1/asof?date=2030-01-01&prefix=10.0.0.0/8", http.StatusBadRequest, "outside the indexed epoch [2005-01-01, 2020-07-01)"},
		{"/v1/asof?date=2004-12-31&prefix=10.0.0.0/8", http.StatusBadRequest, "outside the indexed epoch"},
		// The epoch is half-open: End itself is out, End-1 is in.
		{"/v1/asof?date=2020-07-01&prefix=10.0.0.0/8", http.StatusBadRequest, "outside the indexed epoch"},
		{"/v1/asof?date=2020-06-30&prefix=10.0.0.0/8", http.StatusOK, ""},
		{"/v1/asof?date=2005-01-01&prefix=10.0.0.0/8", http.StatusOK, ""},
		{"/v1/asof?date=2019-06-01&prefix=banana", http.StatusBadRequest, `prefix "banana"`},
		{"/v1/asof?date=2019-06-01&prefix=10.0.0.0/8&gen=abc", http.StatusBadRequest, "positive generation ID"},
		{"/v1/asof?date=2019-06-01&prefix=10.0.0.0/8&gen=3", http.StatusNotFound, "no durable store"},
		{"/v1/asof/timeline", http.StatusBadRequest, "prefix"},
		{"/v1/asof/timeline?prefix=nope", http.StatusBadRequest, `prefix "nope"`},
		{"/v1/asof/diff", http.StatusBadRequest, "from=YYYY-MM-DD"},
		{"/v1/asof/diff?from=2013-01-01", http.StatusBadRequest, "to"},
		{"/v1/asof/diff?from=2013-01-01&to=garbage", http.StatusBadRequest, "want YYYY-MM-DD"},
		{"/v1/asof/diff?from=2014-01-01&to=2013-01-01", http.StatusBadRequest, "after"},
		{"/v1/asof/diff?from=2013-01-01&to=2013-01-01", http.StatusOK, ""}, // empty window, not an error
	} {
		resp, body := get(t, ts, tc.path)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.path, resp.StatusCode, tc.want, body)
			continue
		}
		if tc.msg == "" {
			continue
		}
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &doc); err != nil || doc.Error == "" {
			t.Errorf("%s: error body %s is not a structured {\"error\": ...} document", tc.path, body)
			continue
		}
		if !strings.Contains(doc.Error, tc.msg) {
			t.Errorf("%s: error %q does not mention %q", tc.path, doc.Error, tc.msg)
		}
	}
}

// TestAsofETagNotModified: as-of answers are computed, but they carry
// strong ETags like any artifact, so revalidation gets a 304.
func TestAsofETagNotModified(t *testing.T) {
	ts := httptest.NewServer(sharedServer(t).Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
		"/v1/asof/timeline?prefix=185.0.0.0/16",
		"/v1/asof/diff?from=2015-01-01&to=2015-12-31",
	} {
		resp, _ := get(t, ts, path)
		etag := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || etag == "" {
			t.Fatalf("%s: status=%d etag=%q", path, resp.StatusCode, etag)
		}
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		resp2, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Errorf("%s: If-None-Match %s answered %d, want 304", path, etag, resp2.StatusCode)
		}
	}
}

// asofHolderDoc mirrors the asofView holder JSON for decoding.
type asofHolderDoc struct {
	Block string `json:"block"`
	Org   string `json:"org"`
	RIR   string `json:"rir"`
	Since string `json:"since"`
	Until string `json:"until"`
	Via   string `json:"via"`
}

type asofDelegationDoc struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
	FromAS uint32 `json:"from_as"`
	ToAS   uint32 `json:"to_as"`
	Start  string `json:"start"`
	End    string `json:"end"`
}

type asofDoc struct {
	Prefix   string              `json:"prefix"`
	Date     string              `json:"date"`
	Holder   *asofHolderDoc      `json:"holder"`
	Exact    []asofDelegationDoc `json:"delegations_exact"`
	Covering []asofDelegationDoc `json:"delegations_covering"`
	Covered  []asofDelegationDoc `json:"delegations_covered"`
	Prices   *struct {
		Quarter    string  `json:"quarter"`
		PriceLevel float64 `json:"price_level"`
	} `json:"prices"`
}

// delegKeys canonicalizes a delegation list (either representation) to a
// sorted multiset of strings for comparison.
func delegKeys(docs []asofDelegationDoc, spans []temporal.DelegationSpan) []string {
	var keys []string
	for _, d := range docs {
		keys = append(keys, d.Parent+"|"+d.Child+"|"+d.Start+"|"+d.End)
	}
	for _, s := range spans {
		end := ""
		if !s.End.IsZero() {
			end = fmtDate(s.End)
		}
		keys = append(keys, s.Parent.String()+"|"+s.Child.String()+"|"+fmtDate(s.Start)+"|"+end)
	}
	sort.Strings(keys)
	return keys
}

// TestAsofMatchesNaiveReplay is the HTTP-level property test: for
// sampled (prefix, date) pairs spanning event boundaries of the real
// served world, the /v1/asof response agrees with a naive linear replay
// of the snapshot's event history (temporal.NaiveAt). The exhaustive
// every-boundary sweep lives in internal/temporal; this test pins the
// serving path on top — parameter plumbing, view rendering, caching.
func TestAsofMatchesNaiveReplay(t *testing.T) {
	srv := sharedServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ix := srv.Snapshot().Temporal
	if ix == nil {
		t.Fatal("snapshot has no temporal index")
	}
	in := ix.Input()
	events := ix.Diff(in.Start.AddDate(0, 0, -1), in.End)
	if len(events) == 0 {
		t.Fatal("served world has no events")
	}

	checked := 0
	for i := 0; i < len(events); i += 1 + len(events)/150 {
		e := events[i]
		for _, off := range []int{-1, 0} {
			d := e.Date.AddDate(0, 0, off)
			if d.Before(in.Start) || !d.Before(in.End) {
				continue
			}
			path := "/v1/asof?date=" + fmtDate(d) + "&prefix=" + e.Prefix.String()
			resp, body := get(t, ts, path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d body %s", path, resp.StatusCode, body)
			}
			var doc asofDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("%s: decode: %v", path, err)
			}
			want := temporal.NaiveAt(in, e.Prefix, d)
			compareAsofDoc(t, path, doc, want)
			checked++
		}
	}
	t.Logf("checked %d (prefix, date) pairs against naive replay", checked)
	if checked < 100 {
		t.Fatalf("only %d pairs checked; sample too thin to mean anything", checked)
	}
}

// compareAsofDoc asserts one decoded /v1/asof response equals a naive
// replay's answer.
func compareAsofDoc(t *testing.T, path string, doc asofDoc, want temporal.PointResult) {
	t.Helper()
	if (doc.Holder == nil) != (want.Holder == nil) {
		t.Errorf("%s: holder present=%v, naive replay says %v", path, doc.Holder != nil, want.Holder != nil)
		return
	}
	if h := want.Holder; h != nil {
		until := ""
		if !h.Until.IsZero() {
			until = fmtDate(h.Until)
		}
		if doc.Holder.Block != h.Block.String() || doc.Holder.Org != h.Org ||
			doc.Holder.RIR != h.RIR.String() || doc.Holder.Since != fmtDate(h.Since) ||
			doc.Holder.Until != until || doc.Holder.Via != string(h.Via) {
			t.Errorf("%s: holder %+v does not match naive %+v", path, *doc.Holder, *h)
		}
	}
	for _, cls := range []struct {
		name string
		got  []asofDelegationDoc
		want []temporal.DelegationSpan
	}{
		{"exact", doc.Exact, want.Exact},
		{"covering", doc.Covering, want.Covering},
		{"covered", doc.Covered, want.Covered},
	} {
		g, w := delegKeys(cls.got, nil), delegKeys(nil, cls.want)
		if len(g) != len(w) {
			t.Errorf("%s: %d %s delegations, naive replay has %d", path, len(g), cls.name, len(w))
			continue
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%s: %s delegation %q, naive replay %q", path, cls.name, g[i], w[i])
			}
		}
	}
	if doc.Prices == nil || doc.Prices.Quarter == "" || doc.Prices.PriceLevel <= 0 {
		t.Errorf("%s: price context missing or empty: %+v", path, doc.Prices)
	}
}

// TestAsofPinnedGeneration: after a reseeded rebuild moves the current
// snapshot to generation 2, ?gen=1 as-of queries are computed from
// generation 1's restored temporal state — byte- and ETag-identical to
// what generation 1 served live — and pre-temporal stores answer 404,
// not garbage.
func TestAsofPinnedGeneration(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg, Options{Store: openStore(t, t.TempDir())})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	paths := []string{
		"/v1/asof?date=2019-06-01&prefix=185.0.0.0/16",
		"/v1/asof/timeline?prefix=185.0.0.0/16",
		"/v1/asof/diff?from=2015-01-01&to=2015-12-31",
	}
	type cached struct {
		etag string
		body []byte
	}
	gen1 := make(map[string]cached)
	for _, path := range paths {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d before rebuild", path, resp.StatusCode)
		}
		gen1[path] = cached{resp.Header.Get("ETag"), body}
	}

	if !srv.RebuildAsync(srv.rebuildConfig(cfg.Seed+99, true)) {
		t.Fatal("rebuild not started")
	}
	srv.Wait()
	if got := srv.Snapshot().Gen; got != 2 {
		t.Fatalf("serving generation %d after rebuild, want 2", got)
	}

	for _, path := range paths {
		resp, body := get(t, ts, path+"&gen=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s&gen=1: status %d body %s", path, resp.StatusCode, body)
		}
		if !bytes.Equal(body, gen1[path].body) {
			t.Errorf("%s&gen=1: body differs from what generation 1 served live", path)
		}
		if got := resp.Header.Get("ETag"); got != gen1[path].etag {
			t.Errorf("%s&gen=1: ETag %q, want %q", path, got, gen1[path].etag)
		}
	}

	// The reseeded world answers differently live — prove the pin is not
	// silently reading current state.
	live, liveBody := get(t, ts, "/v1/asof/diff?from=2015-01-01&to=2015-12-31")
	if live.StatusCode != http.StatusOK {
		t.Fatalf("live diff after rebuild: %d", live.StatusCode)
	}
	if bytes.Equal(liveBody, gen1["/v1/asof/diff?from=2015-01-01&to=2015-12-31"].body) {
		t.Fatal("reseeded rebuild produced an identical diff document; test cannot distinguish generations")
	}
}

// TestAsofDeterministicAcrossRestore: Restore(Record()) answers every
// query the original index does, byte-for-byte, at the serving layer's
// view granularity — the contract that lets followers and warm starts
// share ETags with the builder.
func TestAsofRestoreServesIdenticalViews(t *testing.T) {
	snap, err := BuildSnapshotOpts(testConfig(), BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := snap.Temporal.Record()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := temporal.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	d := time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC)
	in := snap.Temporal.Input()
	for i := 0; i < len(in.Allocations); i += 1 + len(in.Allocations)/64 {
		p := in.Allocations[i].Prefix
		a, errA := newArtifact(viewAsofPoint(snap.Temporal, 0, p, d), nil)
		b, errB := newArtifact(viewAsofPoint(restored, 0, p, d), nil)
		if errA != nil || errB != nil {
			t.Fatalf("render: %v / %v", errA, errB)
		}
		if a.jsonETag != b.jsonETag || !bytes.Equal(a.json, b.json) {
			t.Errorf("prefix %v: restored index renders different bytes", p)
		}
	}
}
