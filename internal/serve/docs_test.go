package serve

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ipv4market/internal/replicate"
)

// This file keeps the prose documentation honest against the code:
// TestAPIDocsMatchRoutes pins docs/API.md to the server's registered
// route set, and TestMarkdownLinks checks every relative link in the
// repository's markdown. Both run in scripts/check.sh as the docs gate.

// apiDocPath is docs/API.md relative to this package's directory (the
// working directory of `go test`).
const apiDocPath = "../../docs/API.md"

// apiHeadingRE matches the route headings docs/API.md is contractually
// required to use: ### `METHOD /path` in ServeMux pattern syntax.
var apiHeadingRE = regexp.MustCompile("(?m)^### `([A-Z]+ /[^`]+)`\\s*$")

// TestAPIDocsMatchRoutes fails when docs/API.md and the registered HTTP
// surface drift apart: an endpoint added without documentation, or
// documentation for an endpoint that no longer exists. The expected set
// is Routes() of an admin-enabled server plus the replication pair that
// cmd/marketd mounts under replicate.Pattern*.
func TestAPIDocsMatchRoutes(t *testing.T) {
	want := append(sharedServer(t).Routes(),
		replicate.PatternGenerations, replicate.PatternSegment)
	sort.Strings(want)

	raw, err := os.ReadFile(apiDocPath)
	if err != nil {
		t.Fatalf("read API reference: %v", err)
	}
	documented := make(map[string]bool)
	for _, m := range apiHeadingRE.FindAllStringSubmatch(string(raw), -1) {
		pattern := m[1]
		if documented[pattern] {
			t.Errorf("docs/API.md documents %q twice", pattern)
		}
		documented[pattern] = true
	}
	if len(documented) == 0 {
		t.Fatalf("docs/API.md has no ### `METHOD /path` headings; the reference format changed out from under this test")
	}

	registered := make(map[string]bool, len(want))
	for _, pattern := range want {
		registered[pattern] = true
		if !documented[pattern] {
			t.Errorf("registered route %q is missing from docs/API.md (add a ### `%s` section)", pattern, pattern)
		}
	}
	for pattern := range documented {
		if !registered[pattern] {
			t.Errorf("docs/API.md documents %q, which is not a registered route", pattern)
		}
	}
}

// markdownFiles returns the repository's markdown set covered by the
// link checker: the root-level *.md files and everything under docs/.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, pattern := range []string{"../../*.md", "../../docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatalf("glob %q: %v", pattern, err)
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; the checker is looking in the wrong place")
	}
	sort.Strings(files)
	return files
}

// linkRE matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repository does not use
// them.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^()\s]+)\)`)

// headingRE matches ATX headings, for anchor validation.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.*)$`)

// anchorSlug reduces a heading to its GitHub-style anchor: lowercase,
// punctuation dropped, spaces and dashes collapsed to single dashes.
func anchorSlug(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// TestMarkdownLinks checks every relative link in the repository's
// markdown: linked files must exist, and same-file #anchors must match
// a heading. External links (http, https, mailto) are not fetched.
func TestMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		text := string(raw)

		anchors := make(map[string]bool)
		for _, m := range headingRE.FindAllStringSubmatch(text, -1) {
			anchors[anchorSlug(m[1])] = true
		}

		name := filepath.Base(filepath.Dir(file)) + "/" + filepath.Base(file)
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if frag, ok := strings.CutPrefix(target, "#"); ok {
				if !anchors[frag] {
					t.Errorf("%s: anchor link %q matches no heading", name, target)
				}
				continue
			}
			// Cross-file link: the path part must resolve relative to
			// the linking file; a fragment on it is not validated.
			path, _, _ := strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), path)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q: %v", name, target, err)
			}
		}
	}
}

// TestRoutesSorted pins the Routes() contract the drift test and
// operators rely on: a sorted copy, safe for callers to mutate.
func TestRoutesSorted(t *testing.T) {
	srv := sharedServer(t)
	routes := srv.Routes()
	if !sort.StringsAreSorted(routes) {
		t.Fatalf("Routes() not sorted: %v", routes)
	}
	if len(routes) == 0 {
		t.Fatal("Routes() empty")
	}
	for _, r := range routes {
		if _, _, ok := strings.Cut(r, " /"); !ok {
			t.Fatalf("route %q is not in METHOD /path form", r)
		}
	}
	routes[0] = "tampered"
	if srv.Routes()[0] == "tampered" {
		t.Fatal("Routes() returned its internal slice; want a copy")
	}
}
