package serve

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"ipv4market/internal/core"
	"ipv4market/internal/delegation"
	"ipv4market/internal/market"
	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
)

// Snapshot is one immutable, fully materialized serving state: every
// artifact of the study precomputed and pre-encoded. Nothing in a
// Snapshot mutates after BuildSnapshot returns, so a Snapshot may be
// read by any number of goroutines while a replacement is built.
type Snapshot struct {
	Cfg       simulation.Config
	Seq       uint64 // rebuild sequence number, assigned by the Server
	BuiltAt   time.Time
	BuildTime time.Duration

	Table1         []core.Table1Row
	PriceCells     []market.PriceCell
	TransferCounts map[registry.RIR][]market.QuarterCount
	InterRIRFlows  []market.InterRIRFlow
	LeasingPoints  []core.Figure4Point
	Leasing        market.LeasingSnapshot
	PriceChanges   []market.PriceChange
	Headline       core.HeadlineStats
	Transfers      []registry.Transfer
	Delegations    *DelegationIndex

	// static maps endpoint keys ("table1", "fig1", ...) to their
	// pre-encoded bodies.
	static map[string]*artifact
}

// leasingObservationEnd is the last advertised-price observation date of
// the paper (§5); the /v1/leasing summary is evaluated there regardless
// of the configured routing window, because the price book is calendar-
// fixed.
var leasingObservationEnd = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

// BuildSnapshot constructs the study for cfg and materializes every
// served artifact. This is the only place the serving layer runs study
// pipelines — and the only place the simulation's randomness executes —
// so handlers never recompute anything.
func BuildSnapshot(cfg simulation.Config) (*Snapshot, error) {
	start := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: build study: %w", err)
	}

	snap := &Snapshot{
		Cfg:            cfg,
		BuiltAt:        start,
		Table1:         study.Table1(),
		PriceCells:     study.Figure1(),
		TransferCounts: study.Figure2(),
		InterRIRFlows:  study.Figure3(),
		LeasingPoints:  study.Figure4(),
		PriceChanges:   market.PriceChanges(market.PaperProviders()),
		Transfers:      study.World.Registry.Transfers(),
	}
	if snap.Headline, err = study.Headline(); err != nil {
		return nil, fmt.Errorf("serve: headline: %w", err)
	}
	if snap.Leasing, err = market.SnapshotAt(market.PaperProviders(), leasingObservationEnd); err != nil {
		return nil, fmt.Errorf("serve: leasing snapshot: %w", err)
	}

	// The delegation index: extended inference on the window's final day.
	day := cfg.RoutingDays - 1
	if day < 0 {
		return nil, fmt.Errorf("serve: empty routing window (RoutingDays=%d)", cfg.RoutingDays)
	}
	date := cfg.RoutingStart.AddDate(0, 0, day)
	inf := delegation.DefaultInference(study.World.OrgSeries)
	snap.Delegations = newDelegationIndex(date, inf.FromSurvey(date, study.Routing.SurveyAt(day)))

	if err := snap.encodeStatic(study); err != nil {
		return nil, err
	}
	snap.BuildTime = time.Since(start)
	return snap, nil
}

// encodeStatic pre-renders the JSON and CSV bodies of every static
// endpoint. The CSV encodings of the figures reuse the core package's
// emitters verbatim; study is still in scope here, and only here.
func (s *Snapshot) encodeStatic(study *core.Study) error {
	targets := []struct {
		key   string
		view  any
		csvFn func(io.Writer) error
	}{
		{"table1", viewTable1(s.Table1), s.table1CSV},
		{"fig1", viewPriceCells(s.PriceCells), study.Figure1CSV},
		{"fig2", viewTransferSeries(s.TransferCounts), study.Figure2CSV},
		{"fig3", viewInterRIRFlows(s.InterRIRFlows), study.Figure3CSV},
		{"fig4", viewLeasingPoints(s.LeasingPoints), study.Figure4CSV},
		{"prices", viewPriceCells(s.PriceCells), study.Figure1CSV},
		{"transfers", viewTransfers(s.Transfers), nil},
		{"delegations", viewDelegationSummary(s.Delegations), nil},
		{"leasing", viewLeasing(s.Leasing, s.PriceChanges), nil},
		{"headline", viewHeadline(s.Headline), nil},
	}
	s.static = make(map[string]*artifact, len(targets))
	for _, t := range targets {
		art, err := newArtifact(t.view, t.csvFn)
		if err != nil {
			return fmt.Errorf("serve: %s: %w", t.key, err)
		}
		s.static[t.key] = art
	}
	return nil
}

// Static returns the pre-encoded artifact for an endpoint key, if any.
func (s *Snapshot) staticArtifact(key string) (*artifact, bool) {
	art, ok := s.static[key]
	return art, ok
}

// Age returns how long ago the snapshot was built.
func (s *Snapshot) Age(now time.Time) time.Duration { return now.Sub(s.BuiltAt) }

// table1CSV renders the exhaustion timeline as CSV (the core package has
// renderers for the figures only).
func (s *Snapshot) table1CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rir", "down_to_last_block", "depleted", "phase_2020", "max_assignment_bits", "waiting_list"}); err != nil {
		return err
	}
	for _, r := range s.Table1 {
		err := cw.Write([]string{
			r.RIR.String(), fmtDate(r.DownToLastBlock), fmtDate(r.Depleted),
			r.Phase2020.String(), strconv.Itoa(r.MaxAssignment), strconv.Itoa(r.WaitingList),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// filterPriceCells returns the cells matching the (optional) filters; a
// nil filter component matches everything.
func filterPriceCells(cells []market.PriceCell, match func(market.PriceCell) bool) []market.PriceCell {
	out := make([]market.PriceCell, 0, len(cells))
	for _, c := range cells {
		if match(c) {
			out = append(out, c)
		}
	}
	return out
}

// priceCellsCSV renders filtered price cells in the Figure1CSV column
// layout so filtered and unfiltered responses share a schema.
func priceCellsCSV(cells []market.PriceCell) func(io.Writer) error {
	return func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"quarter", "prefix_bits", "region", "n", "min", "q1", "median", "q3", "max", "mean"}); err != nil {
			return err
		}
		f2 := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
		for _, c := range cells {
			err := cw.Write([]string{
				c.Quarter.String(), strconv.Itoa(c.Bits), c.Region.String(),
				strconv.Itoa(c.Box.N), f2(c.Box.Min), f2(c.Box.Q1), f2(c.Box.Median),
				f2(c.Box.Q3), f2(c.Box.Max), f2(c.Box.Mean),
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
}
