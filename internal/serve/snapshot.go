package serve

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"ipv4market/internal/core"
	"ipv4market/internal/delegation"
	"ipv4market/internal/market"
	"ipv4market/internal/parallel"
	"ipv4market/internal/registry"
	"ipv4market/internal/simulation"
	"ipv4market/internal/temporal"
)

// Snapshot is one immutable, fully materialized serving state: every
// artifact of the study precomputed and pre-encoded. Nothing in a
// Snapshot mutates after BuildSnapshot returns, so a Snapshot may be
// read by any number of goroutines while a replacement is built.
type Snapshot struct {
	Cfg       simulation.Config
	Seq       uint64 // rebuild sequence number, assigned by the Server
	BuiltAt   time.Time
	BuildTime time.Duration

	// Gen is the durable store generation this snapshot was persisted as
	// (or restored from); 0 when no store is configured. Source records
	// how the snapshot came to be: built in-process or restored from the
	// store at warm start.
	Gen    uint64
	Source Source

	// Workers is the build-stage concurrency the snapshot was built
	// with; Stages records each stage's wall-clock time (the "study"
	// stage runs alone, the artifact stages run concurrently, so stage
	// times overlap and do not sum to BuildTime).
	Workers int
	Stages  []StageTiming

	Table1         []core.Table1Row
	PriceCells     []market.PriceCell
	TransferCounts map[registry.RIR][]market.QuarterCount
	InterRIRFlows  []market.InterRIRFlow
	LeasingPoints  []core.Figure4Point
	Leasing        market.LeasingSnapshot
	PriceChanges   []market.PriceChange
	Headline       core.HeadlineStats
	Transfers      []registry.Transfer
	Delegations    *DelegationIndex
	Utilization    []core.UtilizationPoint
	RPKI           core.RPKISeriesResult

	// Temporal is the as-of index behind /v1/asof: the world's event
	// history (delegations, transfers, holder changes, quarterly price
	// state) materialized for point-in-time lookups. Like every other
	// snapshot field it is immutable once built, and it round-trips
	// through the store as a _state/ artifact so warm starts and
	// followers answer /v1/asof byte-identically.
	Temporal *temporal.Index

	// static maps endpoint keys ("table1", "fig1", ...) to their
	// pre-encoded bodies.
	static map[string]*artifact

	// prices is the columnar layout of PriceCells, built alongside them
	// (and rebuilt on restore) so filtered /v1/prices queries slice
	// column views instead of re-marshalling rows. Nil only in tests
	// that construct snapshots by hand — handlers fall back to the
	// row-at-a-time path.
	prices *priceTable

	// transferTotal backs TransferTotal for restored snapshots, which
	// carry the count but not the decoded transfer log.
	transferTotal int
}

// StageTiming is one build stage's wall-clock cost, exported on /varz.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Source says where a snapshot's bytes came from.
type Source string

const (
	// SourceBuild marks a snapshot built in-process from the simulation.
	SourceBuild Source = "build"
	// SourceStore marks a snapshot restored from the durable store at
	// warm start; its artifacts are byte-identical to the build that
	// persisted them.
	SourceStore Source = "store"
)

// TransferTotal reports how many transfers the snapshot's world holds.
// A restored snapshot does not carry the decoded transfer log, only the
// persisted count.
func (s *Snapshot) TransferTotal() int {
	if s.Transfers != nil {
		return len(s.Transfers)
	}
	return s.transferTotal
}

// BuildOptions tunes a snapshot build. The zero value uses NumCPU
// workers — build as fast as the hardware allows.
type BuildOptions struct {
	// Workers caps how many build stages run concurrently (<= 0:
	// NumCPU). Any worker count produces byte-identical artifacts;
	// TestBuildSnapshotDeterministic enforces it.
	Workers int
}

func (o BuildOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// leasingObservationEnd is the last advertised-price observation date of
// the paper (§5); the /v1/leasing summary is evaluated there regardless
// of the configured routing window, because the price book is calendar-
// fixed.
var leasingObservationEnd = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

// BuildSnapshot constructs the study for cfg and materializes every
// served artifact with default build options. This is the only place the
// serving layer runs study pipelines — and the only place the
// simulation's randomness executes — so handlers never recompute
// anything.
func BuildSnapshot(cfg simulation.Config) (*Snapshot, error) {
	return BuildSnapshotOpts(cfg, BuildOptions{})
}

// buildStage is one node of the artifact DAG: a named unit of work that
// computes snapshot fields and pre-encodes the artifacts derived from
// them. Stages listed in snapshotStages are mutually independent — each
// writes only its own snapshot fields and returns only its own artifacts
// — so they run concurrently after the study stage; results are merged
// in definition order, never completion order.
type buildStage struct {
	name string
	run  func(snap *Snapshot, study *core.Study, workers int) ([]keyedArtifact, error)
}

// keyedArtifact pairs an endpoint key with its pre-encoded artifact.
type keyedArtifact struct {
	key string
	art *artifact
}

// one wraps a single computed artifact with its encode error context.
func one(key string, view any, csvFn func(io.Writer) error) ([]keyedArtifact, error) {
	art, err := newArtifact(view, csvFn)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	return []keyedArtifact{{key, art}}, nil
}

// snapshotStages is the artifact DAG below the study stage. Every stage
// depends only on the read-only study (plus fields the stage itself
// sets), so the build runs them all concurrently, bounded by the worker
// budget.
var snapshotStages = []buildStage{
	{"table1", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		snap.Table1 = study.Table1()
		return one("table1", viewTable1(snap.Table1), snap.table1CSV)
	}},
	{"prices", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		snap.PriceCells = study.Figure1()
		var err error
		if snap.prices, err = newPriceTable(snap.PriceCells); err != nil {
			return nil, err
		}
		// fig1 and the unfiltered /v1/prices serve the same bytes, so
		// they share one artifact (and one ETag).
		arts, err := one("fig1", viewPriceCells(snap.PriceCells), study.Figure1CSV)
		if err != nil {
			return nil, err
		}
		return append(arts, keyedArtifact{"prices", arts[0].art}), nil
	}},
	{"transfer_series", func(snap *Snapshot, study *core.Study, workers int) ([]keyedArtifact, error) {
		var err error
		if snap.TransferCounts, err = study.Figure2Workers(workers); err != nil {
			return nil, err
		}
		return one("fig2", viewTransferSeries(snap.TransferCounts), study.Figure2CSV)
	}},
	{"interrir_flows", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		snap.InterRIRFlows = study.Figure3()
		return one("fig3", viewInterRIRFlows(snap.InterRIRFlows), study.Figure3CSV)
	}},
	{"leasing_prices", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		snap.LeasingPoints = study.Figure4()
		return one("fig4", viewLeasingPoints(snap.LeasingPoints), study.Figure4CSV)
	}},
	{"transfers", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		snap.Transfers = study.World.Registry.Transfers()
		return one("transfers", viewTransfers(snap.Transfers), nil)
	}},
	{"headline", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		var err error
		if snap.Headline, err = study.Headline(); err != nil {
			return nil, err
		}
		return one("headline", viewHeadline(snap.Headline), nil)
	}},
	{"leasing", func(snap *Snapshot, _ *core.Study, _ int) ([]keyedArtifact, error) {
		snap.PriceChanges = market.PriceChanges(market.PaperProviders())
		var err error
		if snap.Leasing, err = market.SnapshotAt(market.PaperProviders(), leasingObservationEnd); err != nil {
			return nil, err
		}
		return one("leasing", viewLeasing(snap.Leasing, snap.PriceChanges), nil)
	}},
	{"delegations", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		// Extended inference on the window's final day.
		day := snap.Cfg.RoutingDays - 1
		date := snap.Cfg.RoutingStart.AddDate(0, 0, day)
		inf := delegation.DefaultInference(study.World.OrgSeries)
		snap.Delegations = newDelegationIndex(date, inf.FromSurvey(date, study.Routing.SurveyAt(day)))
		return one("delegations", viewDelegationSummary(snap.Delegations), nil)
	}},
	{"utilization", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		// The per-quarter survey sampling runs serially inside this
		// stage (workers=1): the stage itself already executes inside
		// the DAG's worker budget, and nested fan-out would oversubscribe
		// it without changing the bytes.
		var err error
		if snap.Utilization, err = study.UtilizationWorkers(1); err != nil {
			return nil, err
		}
		return one("utilization", viewUtilization(snap.Utilization), utilizationCSV(snap.Utilization))
	}},
	{"rpki", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		var err error
		if snap.RPKI, err = study.RPKISeries(); err != nil {
			return nil, err
		}
		return one("rpki", viewRPKI(snap.RPKI), rpkiCSV(snap.RPKI))
	}},
	{"temporal", func(snap *Snapshot, study *core.Study, _ int) ([]keyedArtifact, error) {
		// The as-of index has no static artifact of its own — every
		// /v1/asof response is computed (and query-cached) per request.
		// The index itself rides to the store as _state/temporal.
		ix, err := temporal.New(temporalInput(snap.Cfg, study.World))
		if err != nil {
			return nil, err
		}
		snap.Temporal = ix
		return nil, nil
	}},
}

// BuildSnapshotOpts constructs the study and materializes every served
// artifact as a DAG of build stages: the study build runs first (every
// artifact derives from it), then the artifact stages fan out across the
// worker budget. Determinism contract: results are merged by stage
// index, so any worker count — including 1 — produces byte-identical
// artifacts and ETags. A failing stage cancels its siblings and is
// reported wrapped with the stage name.
func BuildSnapshotOpts(cfg simulation.Config, opts BuildOptions) (*Snapshot, error) {
	start := time.Now()
	workers := opts.workers()
	snap := &Snapshot{Cfg: cfg, BuiltAt: start, Workers: workers, Source: SourceBuild}
	if cfg.RoutingDays < 1 {
		return nil, fmt.Errorf("serve: empty routing window (RoutingDays=%d)", cfg.RoutingDays)
	}

	studyStart := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: build stage %q: %w", "study", err)
	}
	snap.Stages = append(snap.Stages, StageTiming{"study", time.Since(studyStart)})

	// Fan out the artifact stages. Each stage writes its own timing and
	// artifact slot (indexed by stage, so the merge below is
	// deterministic); the first failure cancels the remaining stages.
	durations := make([]time.Duration, len(snapshotStages))
	artifacts, err := parallel.Map(context.Background(), workers, len(snapshotStages),
		func(_ context.Context, i int) ([]keyedArtifact, error) {
			st := snapshotStages[i]
			stageStart := time.Now()
			arts, err := st.run(snap, study, workers)
			durations[i] = time.Since(stageStart)
			if err != nil {
				return nil, fmt.Errorf("serve: build stage %q: %w", st.name, err)
			}
			return arts, nil
		})
	if err != nil {
		return nil, err
	}

	snap.static = make(map[string]*artifact, len(snapshotStages)+1)
	for i, st := range snapshotStages {
		snap.Stages = append(snap.Stages, StageTiming{st.name, durations[i]})
		for _, ka := range artifacts[i] {
			snap.static[ka.key] = ka.art
		}
	}
	snap.BuildTime = time.Since(start)
	return snap, nil
}

// Static returns the pre-encoded artifact for an endpoint key, if any.
func (s *Snapshot) staticArtifact(key string) (*artifact, bool) {
	art, ok := s.static[key]
	return art, ok
}

// Age returns how long ago the snapshot was built.
func (s *Snapshot) Age(now time.Time) time.Duration { return now.Sub(s.BuiltAt) }

// table1CSV renders the exhaustion timeline as CSV (the core package has
// renderers for the figures only).
func (s *Snapshot) table1CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rir", "down_to_last_block", "depleted", "phase_2020", "max_assignment_bits", "waiting_list"}); err != nil {
		return err
	}
	for _, r := range s.Table1 {
		err := cw.Write([]string{
			r.RIR.String(), fmtDate(r.DownToLastBlock), fmtDate(r.Depleted),
			r.Phase2020.String(), strconv.Itoa(r.MaxAssignment), strconv.Itoa(r.WaitingList),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// filterPriceCells returns the cells matching the (optional) filters; a
// nil filter component matches everything.
func filterPriceCells(cells []market.PriceCell, match func(market.PriceCell) bool) []market.PriceCell {
	out := make([]market.PriceCell, 0, len(cells))
	for _, c := range cells {
		if match(c) {
			out = append(out, c)
		}
	}
	return out
}

// utilizationCSV renders the quarterly utilization series.
func utilizationCSV(points []core.UtilizationPoint) func(io.Writer) error {
	return func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"quarter", "date", "allocated", "routed", "active"}); err != nil {
			return err
		}
		for _, p := range points {
			err := cw.Write([]string{
				p.Quarter, fmtDate(p.Date),
				strconv.FormatUint(p.Allocated, 10),
				strconv.FormatUint(p.Routed, 10),
				strconv.FormatUint(p.Active, 10),
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
}

// rpkiCSV renders the bucketed RPKI observability series (the rule grid
// is JSON-only; the CSV carries the time series dashboards plot).
func rpkiCSV(res core.RPKISeriesResult) func(io.Writer) error {
	return func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"date", "days", "mean_present", "max_present", "churn", "mean_churn_per_day"}); err != nil {
			return err
		}
		f2 := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
		for _, b := range res.Buckets {
			err := cw.Write([]string{
				fmtDate(b.Date), strconv.Itoa(b.Days), f2(b.MeanPresent),
				strconv.Itoa(b.MaxPresent), strconv.Itoa(b.Churn), f2(b.MeanChurnDay),
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
}

// priceCellsCSV renders filtered price cells in the Figure1CSV column
// layout so filtered and unfiltered responses share a schema.
func priceCellsCSV(cells []market.PriceCell) func(io.Writer) error {
	return func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"quarter", "prefix_bits", "region", "n", "min", "q1", "median", "q3", "max", "mean"}); err != nil {
			return err
		}
		f2 := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
		for _, c := range cells {
			err := cw.Write([]string{
				c.Quarter.String(), strconv.Itoa(c.Bits), c.Region.String(),
				strconv.Itoa(c.Box.N), f2(c.Box.Min), f2(c.Box.Q1), f2(c.Box.Median),
				f2(c.Box.Q3), f2(c.Box.Max), f2(c.Box.Mean),
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
}
